#include "trend/trend.hpp"

#include <cmath>

#include "util/error.hpp"

namespace rcr::trend {

const char* direction_label(Direction d) {
  switch (d) {
    case Direction::kIncrease: return "increase";
    case Direction::kDecrease: return "decrease";
    case Direction::kStable: return "stable";
  }
  return "?";
}

namespace {

ShareTrend build_trend(const std::string& name, double count1, double n1,
                       double count2, double n2, double confidence) {
  RCR_CHECK_MSG(n1 > 0.0 && n2 > 0.0,
                "trend '" + name + "': both waves need answered rows");
  ShareTrend t;
  t.indicator = name;
  t.count1 = count1;
  t.n1 = n1;
  t.count2 = count2;
  t.n2 = n2;
  t.share1 = stats::wilson_ci(count1, n1, confidence);
  t.share2 = stats::wilson_ci(count2, n2, confidence);
  // Convention: "wave 2 vs wave 1", so p1 = new wave share.
  t.test = stats::two_proportion_test(count2, n2, count1, n1, confidence);
  t.odds_ratio =
      stats::odds_ratio(count2, n2 - count2, count1, n1 - count1);
  return t;
}

// Counts (selected, answered) for a multi-select option in one table.
std::pair<double, double> option_counts(const data::Table& table,
                                        const std::string& column,
                                        const std::string& option) {
  const auto& col = table.multiselect(column);
  const std::int32_t o = col.find_option(option);
  RCR_CHECK_MSG(o >= 0, "unknown option '" + option + "'");
  double count = 0.0, n = 0.0;
  for (std::size_t i = 0; i < col.size(); ++i) {
    if (col.is_missing(i)) continue;
    n += 1.0;
    if (col.has(i, static_cast<std::size_t>(o))) count += 1.0;
  }
  return {count, n};
}

std::pair<double, double> category_counts(const data::Table& table,
                                          const std::string& column,
                                          const std::string& label) {
  const auto& col = table.categorical(column);
  const std::int32_t code = col.find_code(label);
  RCR_CHECK_MSG(code >= 0, "unknown category '" + label + "'");
  double count = 0.0, n = 0.0;
  for (std::size_t i = 0; i < col.size(); ++i) {
    if (col.is_missing(i)) continue;
    n += 1.0;
    if (col.code_at(i) == code) count += 1.0;
  }
  return {count, n};
}

}  // namespace

ShareTrend trend_from_counts(const std::string& indicator, double count1,
                             double n1, double count2, double n2,
                             double confidence) {
  return build_trend(indicator, count1, n1, count2, n2, confidence);
}

void append_share_trends(std::vector<ShareTrend>& out,
                         const std::vector<data::OptionShare>& wave1,
                         const std::vector<data::OptionShare>& wave2,
                         double confidence) {
  RCR_CHECK_MSG(wave1.size() == wave2.size(),
                "waves disagree on the option set: " +
                    std::to_string(wave1.size()) + " vs " +
                    std::to_string(wave2.size()) + " options");
  out.reserve(out.size() + wave1.size());
  for (std::size_t o = 0; o < wave1.size(); ++o) {
    RCR_CHECK_MSG(wave1[o].label == wave2[o].label,
                  "waves disagree on the option set at index " +
                      std::to_string(o) + ": '" + wave1[o].label + "' vs '" +
                      wave2[o].label + "'");
    out.push_back(trend_from_counts(wave1[o].label, wave1[o].count,
                                    wave1[o].total, wave2[o].count,
                                    wave2[o].total, confidence));
  }
}

std::vector<ShareTrend> option_battery_from_shares(
    const std::vector<data::OptionShare>& wave1,
    const std::vector<data::OptionShare>& wave2, double alpha,
    double confidence) {
  std::vector<ShareTrend> trends;
  append_share_trends(trends, wave1, wave2, confidence);
  adjust_and_classify(trends, alpha);
  return trends;
}

ShareTrend compare_option(const data::Table& wave1, const data::Table& wave2,
                          const std::string& column, const std::string& option,
                          double confidence) {
  const auto [c1, n1] = option_counts(wave1, column, option);
  const auto [c2, n2] = option_counts(wave2, column, option);
  return build_trend(option, c1, n1, c2, n2, confidence);
}

ShareTrend compare_category(const data::Table& wave1, const data::Table& wave2,
                            const std::string& column,
                            const std::string& label, double confidence) {
  const auto [c1, n1] = category_counts(wave1, column, label);
  const auto [c2, n2] = category_counts(wave2, column, label);
  return build_trend(label, c1, n1, c2, n2, confidence);
}

ShareTrend compare_predicate(
    const data::Table& wave1, const data::Table& wave2,
    const std::string& indicator_name,
    const std::function<std::optional<bool>(const data::Table&, std::size_t)>&
        predicate,
    double confidence) {
  const auto count_wave = [&](const data::Table& t) {
    double count = 0.0, n = 0.0;
    for (std::size_t i = 0; i < t.row_count(); ++i) {
      const auto v = predicate(t, i);
      if (!v) continue;
      n += 1.0;
      if (*v) count += 1.0;
    }
    return std::pair<double, double>{count, n};
  };
  const auto [c1, n1] = count_wave(wave1);
  const auto [c2, n2] = count_wave(wave2);
  return build_trend(indicator_name, c1, n1, c2, n2, confidence);
}

void adjust_and_classify(std::vector<ShareTrend>& trends, double alpha,
                         Multiplicity method) {
  RCR_CHECK_MSG(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0,1)");
  if (trends.empty()) return;
  std::vector<double> raw;
  raw.reserve(trends.size());
  for (const auto& t : trends) raw.push_back(t.test.p_value);
  const auto adjusted = method == Multiplicity::kHolm
                            ? stats::holm_adjust(raw)
                            : stats::benjamini_hochberg_adjust(raw);
  for (std::size_t i = 0; i < trends.size(); ++i) {
    trends[i].p_adjusted = adjusted[i];
    if (adjusted[i] < alpha) {
      trends[i].direction = trends[i].test.diff > 0.0 ? Direction::kIncrease
                                                      : Direction::kDecrease;
    } else {
      trends[i].direction = Direction::kStable;
    }
  }
}

std::vector<ShareTrend> option_battery(const data::Table& wave1,
                                       const data::Table& wave2,
                                       const std::string& column, double alpha,
                                       double confidence) {
  const auto& col = wave1.multiselect(column);
  std::vector<ShareTrend> trends;
  trends.reserve(col.option_count());
  for (std::size_t o = 0; o < col.option_count(); ++o)
    trends.push_back(
        compare_option(wave1, wave2, column, col.option(o), confidence));
  adjust_and_classify(trends, alpha);
  return trends;
}

std::vector<ShareTrend> per_group_trend(const data::Table& wave1,
                                        const data::Table& wave2,
                                        const std::string& group_column,
                                        const std::string& option_column,
                                        const std::string& option,
                                        std::size_t min_group_n, double alpha,
                                        double confidence) {
  const auto& groups1 = wave1.categorical(group_column);
  const auto& groups2 = wave2.categorical(group_column);
  RCR_CHECK_MSG(groups1.categories() == groups2.categories(),
                "waves disagree on the categories of '" + group_column + "'");
  // The gate counts rows that ANSWERED the option column (the header's
  // contract, and the n the z-test actually runs on) — a group padded with
  // missing answers must not sneak a tiny-denominator test into the family.
  const auto answered_rows = [&option_column](const data::Table& g) {
    const auto& col = g.multiselect(option_column);
    std::size_t n = 0;
    for (std::size_t i = 0; i < col.size(); ++i)
      if (!col.is_missing(i)) ++n;
    return n;
  };
  std::vector<ShareTrend> trends;
  for (const auto& label : groups1.categories()) {
    const data::Table g1 = wave1.filter_equals(group_column, label);
    const data::Table g2 = wave2.filter_equals(group_column, label);
    if (answered_rows(g1) < min_group_n || answered_rows(g2) < min_group_n)
      continue;
    auto t = compare_option(g1, g2, option_column, option, confidence);
    t.indicator = label;
    trends.push_back(std::move(t));
  }
  adjust_and_classify(trends, alpha);
  return trends;
}

MultiWaveTrend multi_wave_trend_from_counts(const std::string& indicator,
                                            const std::vector<WaveCount>& waves,
                                            double confidence) {
  RCR_CHECK_MSG(waves.size() >= 2, "multi-wave trend '" + indicator +
                                       "' needs at least two waves");
  MultiWaveTrend t;
  t.indicator = indicator;
  for (std::size_t w = 0; w < waves.size(); ++w) {
    const WaveCount& wc = waves[w];
    RCR_CHECK_MSG(wc.n > 0.0, "trend '" + indicator + "': wave " +
                                  std::to_string(w) + " has no answered rows");
    RCR_CHECK_MSG(wc.count >= 0.0 && wc.count <= wc.n,
                  "trend '" + indicator + "': wave " + std::to_string(w) +
                      " count exceeds its answered rows");
    if (w > 0)
      RCR_CHECK_MSG(wc.year > waves[w - 1].year,
                    "trend '" + indicator +
                        "': waves must be strictly time-ordered");
    t.years.push_back(wc.year);
    t.counts.push_back(wc.count);
    t.ns.push_back(wc.n);
    t.shares.push_back(stats::wilson_ci(wc.count, wc.n, confidence));
  }
  // Piecewise tests; same convention as ShareTrend (p1 = the later wave,
  // so diff > 0 reads "the share rose over this segment"). With two waves
  // the single segment IS trend_from_counts's z-test.
  for (std::size_t s = 0; s + 1 < waves.size(); ++s) {
    t.segments.push_back(stats::two_proportion_test(
        waves[s + 1].count, waves[s + 1].n, waves[s].count, waves[s].n,
        confidence));
  }
  t.segment_p_adjusted.assign(t.segments.size(), 1.0);
  // Overall W×2 chi-square: selected vs not, one row per wave.
  stats::Contingency table(waves.size(), 2);
  for (std::size_t w = 0; w < waves.size(); ++w) {
    table.at(w, 0) = waves[w].count;
    table.at(w, 1) = waves[w].n - waves[w].count;
  }
  t.overall = stats::chi_square_independence(table.without_empty_margins());
  return t;
}

void adjust_and_classify_multi(std::vector<MultiWaveTrend>& trends,
                               double alpha, Multiplicity method) {
  RCR_CHECK_MSG(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0,1)");
  if (trends.empty()) return;
  // ONE family across the whole battery: every indicator's overall test
  // plus all of its segment tests, adjusted together.
  std::vector<double> raw;
  for (const auto& t : trends) {
    raw.push_back(t.overall.p_value);
    for (const auto& s : t.segments) raw.push_back(s.p_value);
  }
  const auto adjusted = method == Multiplicity::kHolm
                            ? stats::holm_adjust(raw)
                            : stats::benjamini_hochberg_adjust(raw);
  std::size_t i = 0;
  for (auto& t : trends) {
    t.overall_p_adjusted = adjusted[i++];
    for (std::size_t s = 0; s < t.segments.size(); ++s)
      t.segment_p_adjusted[s] = adjusted[i++];
    if (t.overall_p_adjusted < alpha) {
      const double net = t.shares.back().estimate - t.shares.front().estimate;
      t.direction = net > 0.0 ? Direction::kIncrease : Direction::kDecrease;
    } else {
      t.direction = Direction::kStable;
    }
  }
}

std::vector<MultiWaveTrend> multi_wave_option_battery(
    const std::vector<double>& years,
    const std::vector<std::vector<data::OptionShare>>& waves, double alpha,
    Multiplicity method, double confidence) {
  RCR_CHECK_MSG(waves.size() >= 2, "battery needs at least two waves");
  RCR_CHECK_MSG(years.size() == waves.size(),
                "battery needs exactly one year per wave");
  const std::size_t options = waves.front().size();
  for (std::size_t w = 1; w < waves.size(); ++w) {
    RCR_CHECK_MSG(waves[w].size() == options,
                  "wave " + std::to_string(w) +
                      " disagrees on the option set: " +
                      std::to_string(waves[w].size()) + " vs " +
                      std::to_string(options) + " options");
    for (std::size_t o = 0; o < options; ++o)
      RCR_CHECK_MSG(waves[w][o].label == waves[0][o].label,
                    "wave " + std::to_string(w) +
                        " disagrees on the option set at index " +
                        std::to_string(o) + ": '" + waves[0][o].label +
                        "' vs '" + waves[w][o].label + "'");
  }
  std::vector<MultiWaveTrend> trends;
  trends.reserve(options);
  for (std::size_t o = 0; o < options; ++o) {
    std::vector<WaveCount> counts;
    counts.reserve(waves.size());
    for (std::size_t w = 0; w < waves.size(); ++w)
      counts.push_back({years[w], waves[w][o].count, waves[w][o].total});
    trends.push_back(
        multi_wave_trend_from_counts(waves[0][o].label, counts, confidence));
  }
  adjust_and_classify_multi(trends, alpha, method);
  return trends;
}

double AdoptionCurve::predict(double year) const {
  return stats::sigmoid(intercept + slope_per_year * (year - 2011.0));
}

AdoptionCurve fit_adoption_curve(const data::Table& wave1, double year1,
                                 const data::Table& wave2, double year2,
                                 const std::string& column,
                                 const std::string& option) {
  RCR_CHECK_MSG(year2 > year1, "waves must be time-ordered");
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  const auto append = [&](const data::Table& t, double year) {
    const auto& col = t.multiselect(column);
    const std::int32_t o = col.find_option(option);
    RCR_CHECK_MSG(o >= 0, "unknown option '" + option + "'");
    for (std::size_t i = 0; i < col.size(); ++i) {
      if (col.is_missing(i)) continue;
      xs.push_back({year - 2011.0});
      ys.push_back(col.has(i, static_cast<std::size_t>(o)) ? 1.0 : 0.0);
    }
  };
  append(wave1, year1);
  append(wave2, year2);
  RCR_CHECK_MSG(xs.size() >= 4, "adoption fit needs data in both waves");

  // Mild ridge keeps the fit finite when adoption is 0% or 100% in a wave.
  const auto fit = stats::logistic_fit(xs, ys, {}, /*ridge_lambda=*/1e-4);
  AdoptionCurve c;
  c.intercept = fit.coefficients[0];
  c.slope_per_year = fit.coefficients[1];
  c.converged = fit.converged;
  c.midpoint_year =
      c.slope_per_year != 0.0 ? 2011.0 - c.intercept / c.slope_per_year
                              : std::numeric_limits<double>::quiet_NaN();
  c.share_2011 = c.predict(year1);
  c.share_2024 = c.predict(year2);
  return c;
}

double TransitionCounts::share_before() const {
  const double n = pairs();
  return n > 0.0 ? (kept + abandoned) / n : 0.0;
}

double TransitionCounts::share_after() const {
  const double n = pairs();
  return n > 0.0 ? (kept + adopted) / n : 0.0;
}

TransitionCounts option_transitions(const data::Table& wave1,
                                    const data::Table& wave2,
                                    const std::string& column,
                                    const std::string& option) {
  const auto& c1 = wave1.multiselect(column);
  const auto& c2 = wave2.multiselect(column);
  RCR_CHECK_MSG(c1.size() == c2.size(),
                "panel waves must have the same (paired) rows");
  const std::int32_t o1 = c1.find_option(option);
  const std::int32_t o2 = c2.find_option(option);
  RCR_CHECK_MSG(o1 >= 0 && o1 == o2, "option mismatch across waves");

  TransitionCounts t;
  for (std::size_t i = 0; i < c1.size(); ++i) {
    if (c1.is_missing(i) || c2.is_missing(i)) continue;
    const bool before = c1.has(i, static_cast<std::size_t>(o1));
    const bool after = c2.has(i, static_cast<std::size_t>(o1));
    if (before && after) t.kept += 1.0;
    else if (!before && after) t.adopted += 1.0;
    else if (before && !after) t.abandoned += 1.0;
    else t.never += 1.0;
  }
  t.mcnemar = stats::mcnemar_test(t.adopted, t.abandoned);
  return t;
}

stats::ChiSquareResult distribution_shift_test(const data::Table& wave1,
                                               const data::Table& wave2,
                                               const std::string& column) {
  const auto& c1 = wave1.categorical(column);
  const auto& c2 = wave2.categorical(column);
  RCR_CHECK_MSG(c1.categories() == c2.categories(),
                "waves disagree on the category set of '" + column + "'");
  stats::Contingency table(2, c1.category_count());
  const auto counts1 = c1.counts();
  const auto counts2 = c2.counts();
  for (std::size_t c = 0; c < counts1.size(); ++c) {
    table.at(0, c) = counts1[c];
    table.at(1, c) = counts2[c];
  }
  return stats::chi_square_independence(table.without_empty_margins());
}

}  // namespace rcr::trend
