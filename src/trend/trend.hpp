// Two-wave trend analysis: the statistical core of the "Practices and
// Trends" comparison between the 2011 study and the 2024 revisit.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "data/crosstab.hpp"
#include "data/table.hpp"
#include "stats/ci.hpp"
#include "stats/contingency.hpp"
#include "stats/regression.hpp"

namespace rcr::trend {

enum class Direction { kIncrease, kDecrease, kStable };

const char* direction_label(Direction d);

// Share of one indicator in each wave plus the cross-wave test.
struct ShareTrend {
  std::string indicator;
  double count1 = 0.0, n1 = 0.0;   // wave 1 (2011)
  double count2 = 0.0, n2 = 0.0;   // wave 2 (2024)
  stats::Interval share1;          // Wilson CI
  stats::Interval share2;
  stats::TwoProportionResult test; // pooled z, two-sided p
  double odds_ratio = 1.0;         // wave2 odds / wave1 odds
  double p_adjusted = 1.0;         // Holm-adjusted within a battery
  Direction direction = Direction::kStable;
};

// Indicator = "respondent selected `option` of multi-select `column`".
// Missing answers are excluded from the denominator.
ShareTrend compare_option(const data::Table& wave1, const data::Table& wave2,
                          const std::string& column, const std::string& option,
                          double confidence = 0.95);

// Indicator = "respondent answered `label` on single-choice `column`".
ShareTrend compare_category(const data::Table& wave1, const data::Table& wave2,
                            const std::string& column,
                            const std::string& label,
                            double confidence = 0.95);

// Indicator = arbitrary per-row predicate (missing handled by caller
// returning nullopt).
ShareTrend compare_predicate(
    const data::Table& wave1, const data::Table& wave2,
    const std::string& indicator_name,
    const std::function<std::optional<bool>(const data::Table&, std::size_t)>&
        predicate,
    double confidence = 0.95);

// Family-wise / FDR control for a battery of trends.
enum class Multiplicity {
  kHolm,               // family-wise error rate (the batteries' default)
  kBenjaminiHochberg,  // false discovery rate (for exploratory sweeps)
};

// Applies the chosen multiplicity adjustment across a battery of trends and
// classifies each: significant increase / decrease at `alpha` (on adjusted
// p), else stable.
void adjust_and_classify(std::vector<ShareTrend>& trends, double alpha = 0.05,
                         Multiplicity method = Multiplicity::kHolm);

// Every option of a multi-select column, as one adjusted battery.
std::vector<ShareTrend> option_battery(const data::Table& wave1,
                                       const data::Table& wave2,
                                       const std::string& column,
                                       double alpha = 0.05,
                                       double confidence = 0.95);

// One indicator's trend from precomputed counts (count = selected/labelled
// rows, n = answered rows). Produces exactly compare_option's /
// compare_category's result when fed the same counts — the building block
// for callers that already hold per-option tallies from a fused
// query::QueryEngine scan instead of re-scanning the tables per option.
ShareTrend trend_from_counts(const std::string& indicator, double count1,
                             double n1, double count2, double n2,
                             double confidence = 0.95);

// Pairs two waves' per-option share vectors into ShareTrend rows appended
// to `out`, validating that the option sets align pairwise — waves whose
// option lists differ in order or content fail loudly (naming the first
// mismatched label) instead of silently pairing unrelated indicators by
// raw index. The validated building block for every caller holding fused
// per-wave tallies (T6's cross-family battery, the option batteries below).
void append_share_trends(std::vector<ShareTrend>& out,
                         const std::vector<data::OptionShare>& wave1,
                         const std::vector<data::OptionShare>& wave2,
                         double confidence = 0.95);

// option_battery built from per-wave share vectors (data::option_shares or
// one engine scan per wave): one adjusted battery with zero table scans.
// Both waves must report the same options in the same order (validated
// pairwise via append_share_trends; mismatches throw).
std::vector<ShareTrend> option_battery_from_shares(
    const std::vector<data::OptionShare>& wave1,
    const std::vector<data::OptionShare>& wave2, double alpha = 0.05,
    double confidence = 0.95);

// One option's trend computed separately within each category of a
// grouping column (e.g. per research field), Holm-adjusted as one family.
// Groups with fewer than `min_group_n` answered rows — rows actually
// answering `option_column`, not merely present in the group — in either
// wave are skipped. Each trend's indicator is the group label.
std::vector<ShareTrend> per_group_trend(const data::Table& wave1,
                                        const data::Table& wave2,
                                        const std::string& group_column,
                                        const std::string& option_column,
                                        const std::string& option,
                                        std::size_t min_group_n = 5,
                                        double alpha = 0.05,
                                        double confidence = 0.95);

// --- N-wave trends ----------------------------------------------------------
//
// The two-wave ShareTrend machinery above stays the canonical 2011→2024
// surface (its z-test outputs are pinned byte-identical to seed); the
// types below generalize the same battery idea to studies with any number
// of time-ordered waves: per-wave Wilson intervals, adjacent-pair
// two-proportion tests (the piecewise trend), and one overall W×2
// chi-square of "did the share change at all across the waves".

// One wave's tally of an indicator: `count` selected out of `n` answered
// rows observed in calendar year `year`.
struct WaveCount {
  double year = 0.0;
  double count = 0.0;
  double n = 0.0;
};

// One indicator across W >= 2 time-ordered waves.
struct MultiWaveTrend {
  std::string indicator;
  std::vector<double> years;                // strictly increasing, size W
  std::vector<double> counts;               // size W
  std::vector<double> ns;                   // size W
  std::vector<stats::Interval> shares;      // Wilson CI per wave, size W
  // Piecewise tests between adjacent waves: segment s compares wave s+1
  // against wave s (diff > 0 means the later wave's share is higher).
  std::vector<stats::TwoProportionResult> segments;   // size W - 1
  std::vector<double> segment_p_adjusted;             // size W - 1
  // Overall W×2 chi-square: does the share differ across the waves at all?
  stats::ChiSquareResult overall;
  double overall_p_adjusted = 1.0;
  // Net classification: first-vs-last movement when the overall test
  // survives adjustment, else stable.
  Direction direction = Direction::kStable;

  double share(std::size_t wave) const { return shares[wave].estimate; }
};

// Builds one indicator's N-wave trend from per-wave counts. Requires
// W >= 2 waves with strictly increasing years and answered rows in every
// wave. With W == 2 the single segment is exactly trend_from_counts's
// z-test. Adjusted p's are raw until a battery adjusts them.
MultiWaveTrend multi_wave_trend_from_counts(
    const std::string& indicator, const std::vector<WaveCount>& waves,
    double confidence = 0.95);

// A battery of N-wave trends from per-wave share vectors (one fused-engine
// scan per wave): waves[w] is wave w's per-option tally, labels validated
// pairwise across every wave like append_share_trends. All tests of the
// whole battery — each indicator's overall chi-square AND its W-1 segment
// tests — are adjusted together as ONE Holm family (or BH), so a
// significant segment claim survives the same multiplicity control as the
// headline claim it refines.
std::vector<MultiWaveTrend> multi_wave_option_battery(
    const std::vector<double>& years,
    const std::vector<std::vector<data::OptionShare>>& waves,
    double alpha = 0.05, Multiplicity method = Multiplicity::kHolm,
    double confidence = 0.95);

// The battery's multiplicity step, exposed for callers assembling mixed
// batteries by hand: one family spanning every overall + segment p.
void adjust_and_classify_multi(std::vector<MultiWaveTrend>& trends,
                               double alpha = 0.05,
                               Multiplicity method = Multiplicity::kHolm);

// Logistic adoption curve fitted on respondent-level data pooled over both
// waves: P(adopt | year) = sigmoid(b0 + b1 * (year - 2011)).
struct AdoptionCurve {
  double intercept = 0.0;       // b0 at year 2011
  double slope_per_year = 0.0;  // b1
  double midpoint_year = 0.0;   // year where P = 0.5
  bool converged = false;
  double share_2011 = 0.0;      // fitted share at each wave
  double share_2024 = 0.0;

  double predict(double year) const;
};

// Fits the curve for one multi-select option observed in both waves.
AdoptionCurve fit_adoption_curve(const data::Table& wave1, double year1,
                                 const data::Table& wave2, double year2,
                                 const std::string& column,
                                 const std::string& option);

// --- Panel (paired) analysis ------------------------------------------------

// Transition counts of one multi-select option between paired waves (rows
// matched by index). Pairs with a missing answer in either wave are dropped.
struct TransitionCounts {
  double kept = 0.0;       // used then, uses now
  double adopted = 0.0;    // not then, uses now
  double abandoned = 0.0;  // used then, not now
  double never = 0.0;      // neither wave
  stats::McNemarResult mcnemar;  // adopted vs abandoned

  double pairs() const { return kept + adopted + abandoned + never; }
  double share_before() const;
  double share_after() const;
};

TransitionCounts option_transitions(const data::Table& wave1,
                                    const data::Table& wave2,
                                    const std::string& column,
                                    const std::string& option);

// χ² test of the full category distribution shift between waves (e.g. did
// the primary-language mix change?). Returns the test on the 2×k table.
stats::ChiSquareResult distribution_shift_test(const data::Table& wave1,
                                               const data::Table& wave2,
                                               const std::string& column);

}  // namespace rcr::trend
