#include "serve/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace rcr::serve {

// --- FrameDecoder -----------------------------------------------------------

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  // Reclaim handed-out bytes before growing (amortized O(1) per byte).
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  if (buffer_.size() - consumed_ >= sizeof(std::uint32_t)) {
    std::uint32_t len;
    std::memcpy(&len, buffer_.data() + consumed_, sizeof len);
    if (len > kMaxFrameBytes)
      throw InvalidInputError("serve: frame length " + std::to_string(len) +
                              " exceeds the " +
                              std::to_string(kMaxFrameBytes) + "-byte cap");
  }
}

bool FrameDecoder::has_frame() const {
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < sizeof(std::uint32_t)) return false;
  std::uint32_t len;
  std::memcpy(&len, buffer_.data() + consumed_, sizeof len);
  return avail >= sizeof len + len;
}

std::vector<std::uint8_t> FrameDecoder::take() {
  RCR_CHECK_MSG(has_frame(), "serve: no complete frame buffered");
  std::uint32_t len;
  std::memcpy(&len, buffer_.data() + consumed_, sizeof len);
  const auto* begin = buffer_.data() + consumed_ + sizeof len;
  consumed_ += sizeof len + len;
  return std::vector<std::uint8_t>(begin, begin + len);
}

// --- LocalTransport ---------------------------------------------------------

std::vector<std::uint8_t> LocalTransport::roundtrip_frame(
    std::span<const std::uint8_t> frame) {
  FrameDecoder decoder;
  decoder.feed(frame);
  RCR_CHECK_MSG(decoder.has_frame(), "serve: incomplete request frame");
  const auto payload = decoder.take();
  const auto response_payload = server_.handle_payload(payload);
  std::vector<std::uint8_t> out;
  append_frame(out, response_payload);
  return out;
}

Response LocalTransport::query(std::uint64_t epoch, const QuerySpec& spec) {
  std::vector<std::uint8_t> frame;
  append_frame(frame, encode_request({epoch, spec}));
  const auto reply = roundtrip_frame(frame);
  FrameDecoder decoder;
  decoder.feed(reply);
  RCR_CHECK_MSG(decoder.has_frame(), "serve: incomplete response frame");
  return decode_response(decoder.take());
}

// --- TcpServer --------------------------------------------------------------

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error("serve: " + what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

// Writes the whole buffer, polling for writability on EAGAIN (the socket
// is nonblocking). Returns false if the peer went away.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

struct TcpServer::Connection {
  int fd = -1;
  FrameDecoder decoder;
};

struct TcpServer::Worker {
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::mutex mutex;                 // guards handoff
  std::vector<int> handoff;         // fds assigned by the acceptor
  std::unordered_map<int, Connection> connections;
};

TcpServer::TcpServer(Server& server, std::uint16_t port, std::size_t workers)
    : server_(server),
      port_(port),
      worker_count_(workers > 0 ? workers
                                : std::max(1u, std::thread::hardware_concurrency())) {}

TcpServer::~TcpServer() { stop(); }

void TcpServer::start() {
  RCR_CHECK_MSG(!running_, "serve: TcpServer already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
    throw_errno("bind");
  if (::listen(listen_fd_, SOMAXCONN) < 0) throw_errno("listen");

  socklen_t addr_len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0)
    throw_errno("getsockname");
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  accept_wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (accept_wake_fd_ < 0) throw_errno("eventfd");

  workers_.clear();
  for (std::size_t i = 0; i < worker_count_; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (worker->epoll_fd < 0) throw_errno("epoll_create1");
    worker->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (worker->wake_fd < 0) throw_errno("eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = worker->wake_fd;
    if (::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->wake_fd, &ev) < 0)
      throw_errno("epoll_ctl(wake)");
    workers_.push_back(std::move(worker));
  }

  running_ = true;
  for (auto& worker : workers_)
    worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
  acceptor_ = std::thread([this] { accept_loop(); });
  obs::registry().gauge("serve.tcp.workers")
      .set(static_cast<std::int64_t>(worker_count_));
}

void TcpServer::stop() {
  if (!running_) return;
  running_ = false;

  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t r = ::write(accept_wake_fd_, &one, sizeof one);
  for (auto& worker : workers_)
    r = ::write(worker->wake_fd, &one, sizeof one);

  if (acceptor_.joinable()) acceptor_.join();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
    for (auto& [fd, conn] : worker->connections) ::close(fd);
    for (int fd : worker->handoff) ::close(fd);
    ::close(worker->epoll_fd);
    ::close(worker->wake_fd);
  }
  workers_.clear();
  ::close(listen_fd_);
  ::close(accept_wake_fd_);
  listen_fd_ = accept_wake_fd_ = -1;
}

void TcpServer::accept_loop() {
  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = accept_wake_fd_;
  ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, accept_wake_fd_, &ev);

  obs::Counter& accepted = obs::registry().counter("serve.tcp.accepted");
  std::size_t next_worker = 0;
  while (running_) {
    epoll_event events[16];
    const int n = ::epoll_wait(epoll_fd, events, 16, -1);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) break;
    for (int i = 0; i < n && running_; ++i) {
      if (events[i].data.fd != listen_fd_) continue;  // wake eventfd
      for (;;) {
        const int conn_fd = ::accept4(listen_fd_, nullptr, nullptr,
                                      SOCK_CLOEXEC | SOCK_NONBLOCK);
        if (conn_fd < 0) break;  // EAGAIN drained (or transient error)
        const int one = 1;
        ::setsockopt(conn_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        accepted.add();
        // Round-robin handoff; the eventfd write makes the worker pick the
        // connection up on its next epoll_wait return.
        Worker& worker = *workers_[next_worker];
        next_worker = (next_worker + 1) % workers_.size();
        {
          std::lock_guard<std::mutex> lock(worker.mutex);
          worker.handoff.push_back(conn_fd);
        }
        const std::uint64_t tick = 1;
        [[maybe_unused]] ssize_t r =
            ::write(worker.wake_fd, &tick, sizeof tick);
      }
    }
  }
  ::close(epoll_fd);
}

void TcpServer::worker_loop(Worker& worker) {
  while (running_) {
    epoll_event events[32];
    const int n = ::epoll_wait(worker.epoll_fd, events, 32, -1);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) break;

    // Adopt connections the acceptor handed off.
    {
      std::lock_guard<std::mutex> lock(worker.mutex);
      for (int fd : worker.handoff) {
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLRDHUP;
        ev.data.fd = fd;
        if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, fd, &ev) == 0) {
          worker.connections.emplace(fd, Connection{fd, {}});
        } else {
          ::close(fd);
        }
      }
      worker.handoff.clear();
    }

    for (int i = 0; i < n && running_; ++i) {
      const int fd = events[i].data.fd;
      if (fd == worker.wake_fd) {
        std::uint64_t drain;
        while (::read(worker.wake_fd, &drain, sizeof drain) > 0) {
        }
        continue;
      }
      serve_connection(worker, fd);
    }
  }
}

void TcpServer::serve_connection(Worker& worker, int fd) {
  const auto it = worker.connections.find(fd);
  if (it == worker.connections.end()) return;
  Connection& conn = it->second;

  bool closed = false;
  std::uint8_t chunk[16384];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      try {
        conn.decoder.feed(
            std::span<const std::uint8_t>(chunk, static_cast<std::size_t>(n)));
        while (conn.decoder.has_frame()) {
          const auto payload = conn.decoder.take();
          const auto reply_payload = server_.handle_payload(payload);
          std::vector<std::uint8_t> reply;
          append_frame(reply, reply_payload);
          if (!write_all(fd, reply.data(), reply.size())) {
            closed = true;
            break;
          }
        }
      } catch (const Error&) {
        closed = true;  // oversized/corrupt framing: drop the connection
      }
      if (closed) break;
      continue;
    }
    if (n == 0) {
      closed = true;  // orderly EOF
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    closed = true;  // hard error
    break;
  }

  if (closed) {
    ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    worker.connections.erase(it);
  }
}

}  // namespace rcr::serve
