// Transports for the rcr::serve core.
//
// Two ways into Server::handle_payload, sharing the same length-prefixed
// framing (protocol.hpp):
//
//   * LocalTransport — in-process. A caller hands in request frames and
//     gets response frames back, exercising the complete encode -> frame ->
//     decode -> pipeline -> encode path with no sockets. Tests and
//     bench_serve drive the full stack through this, so the serving
//     numbers measure the server, not the kernel's loopback.
//
//   * TcpServer — the real thing: a listening socket on 127.0.0.1 with a
//     thread-per-core worker group. The acceptor thread epoll-waits on the
//     listen socket and deals accepted connections round-robin onto the
//     workers; each worker epoll-waits on its own connection set (plus an
//     eventfd for shutdown wakeups), reassembles frames from nonblocking
//     reads, answers each request synchronously through the server core,
//     and writes the response frame back. A worker blocking in an engine
//     pass stalls only its own connections — that is the thread-per-core
//     trade, and the batching layer means a stalled worker's concurrent
//     misses were usually riding that very pass anyway.
//
// FrameDecoder is the shared reassembly buffer: feed() bytes as they
// arrive, take() complete payloads as they become available. Oversized
// length prefixes are rejected immediately (kMaxFrameBytes) so a corrupt
// peer cannot request a giant allocation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace rcr::serve {

// Incremental length-prefix frame reassembly (one peer's byte stream).
class FrameDecoder {
 public:
  // Appends raw bytes from the stream; throws InvalidInputError on an
  // oversized frame length.
  void feed(std::span<const std::uint8_t> bytes);

  // True when at least one complete payload is buffered.
  bool has_frame() const;

  // Pops the next complete payload (call has_frame() first).
  std::vector<std::uint8_t> take();

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // bytes of buffer_ already handed out
};

// In-process transport: the full framing path with no sockets.
class LocalTransport {
 public:
  explicit LocalTransport(Server& server) : server_(server) {}

  // One request frame in -> one response frame out (both length-prefixed).
  std::vector<std::uint8_t> roundtrip_frame(
      std::span<const std::uint8_t> frame);

  // Convenience: encode the request, frame it, round-trip, unframe and
  // decode the response.
  Response query(std::uint64_t epoch, const QuerySpec& spec);

 private:
  Server& server_;
};

// epoll TCP server on 127.0.0.1. start() spawns the acceptor and workers;
// stop() (or destruction) shuts them down and closes every connection.
class TcpServer {
 public:
  // port 0 picks an ephemeral port (read it back with port());
  // workers == 0 sizes the group to hardware_concurrency.
  TcpServer(Server& server, std::uint16_t port = 0, std::size_t workers = 0);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  void start();
  void stop();

  bool running() const { return running_; }
  std::uint16_t port() const { return port_; }

 private:
  struct Connection;
  struct Worker;

  void accept_loop();
  void worker_loop(Worker& worker);
  void serve_connection(Worker& worker, int fd);

  Server& server_;
  std::uint16_t port_;
  std::size_t worker_count_;
  std::atomic<bool> running_{false};

  int listen_fd_ = -1;
  int accept_wake_fd_ = -1;
  std::thread acceptor_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace rcr::serve
