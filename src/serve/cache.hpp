// Result cache for the serving layer: fingerprint -> encoded result body.
//
// A served result is an immutable byte string (protocol.hpp encodes engine
// answers with bit-pattern doubles), so the cache stores
// shared_ptr<const vector> values: a hit hands back a reference under a
// shard lock and the bytes stay alive however long the responder needs
// them, even if the entry is evicted mid-flight.
//
// The key is the full 64-bit (epoch, canonical spec) XXH64 fingerprint.
// The table is sharded by the key's low bits — requests for different keys
// take different locks — and each shard runs an independent LRU over its
// slice of the capacity. Hot keys (the head of the Zipf popularity curve)
// therefore stay resident while the long tail cycles through, and a shard
// never touches its siblings' locks. Hash-collision false sharing of an
// entry would serve the wrong bytes, so the full key is stored and
// compared, not just its bucket.
//
// invalidate_epoch exists for snapshot turnover: retiring an epoch drops
// every entry fingerprinted against it (the epoch seeds the fingerprint,
// so entries record their epoch explicitly alongside the key).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace rcr::serve {

using CachedBody = std::shared_ptr<const std::vector<std::uint8_t>>;

class ResultCache {
 public:
  // `capacity` is the total entry budget across shards (min 1 per shard).
  explicit ResultCache(std::size_t capacity);

  // nullptr on miss; on hit the entry moves to the front of its shard LRU.
  CachedBody find(std::uint64_t key);

  // Inserts (or refreshes) the entry, evicting the shard's least recently
  // used entries over budget.
  void insert(std::uint64_t key, std::uint64_t epoch, CachedBody body);

  // Drops every entry recorded under `epoch`.
  void invalidate_epoch(std::uint64_t epoch);

  std::size_t size() const;
  std::size_t capacity() const { return per_shard_ * kShards; }

 private:
  static constexpr std::size_t kShards = 16;  // power of two

  struct Entry {
    std::uint64_t key;
    std::uint64_t epoch;
    CachedBody body;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
  };

  Shard& shard_for(std::uint64_t key) { return shards_[key & (kShards - 1)]; }

  std::size_t per_shard_;
  std::vector<Shard> shards_;
};

}  // namespace rcr::serve
