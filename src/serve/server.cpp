#include "serve/server.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "obs/timer.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace rcr::serve {

namespace {

struct Metrics {
  obs::Counter& requests = obs::registry().counter("serve.requests");
  obs::Counter& hits = obs::registry().counter("serve.hits");
  obs::Counter& misses = obs::registry().counter("serve.misses");
  obs::Counter& coalesced = obs::registry().counter("serve.coalesced");
  obs::Counter& shed = obs::registry().counter("serve.shed");
  obs::Counter& errors = obs::registry().counter("serve.errors");
  obs::Counter& batches = obs::registry().counter("serve.batches");
  obs::Counter& batch_queries =
      obs::registry().counter("serve.batch.queries");
  obs::Counter& deltas = obs::registry().counter("serve.deltas");
  obs::Counter& delta_refreshed =
      obs::registry().counter("serve.delta.refreshed");
  obs::Gauge& inflight = obs::registry().gauge("serve.inflight");
  obs::Gauge& admit_limit = obs::registry().gauge("serve.admit.limit");
  obs::Histogram& request_ms = obs::registry().histogram("serve.request.ms");
  obs::Histogram& batch_ms = obs::registry().histogram("serve.batch.ms");
  obs::Histogram& delta_ms = obs::registry().histogram("serve.delta.ms");
};

Metrics& metrics() {
  static Metrics m;
  return m;
}

// register_spec's twin for the incremental engine: every servable wire
// kind maps (the external-weight-span kind has no wire form — see the
// protocol header — so the lineage can always maintain served specs).
query::QueryId register_incr_spec(incr::IncrementalEngine& engine,
                                  const QuerySpec& spec) {
  const std::optional<std::string> weight =
      spec.weight.empty() ? std::nullopt
                          : std::optional<std::string>(spec.weight);
  switch (spec.kind) {
    case QueryKind::kCrosstab:
      return engine.add_crosstab(spec.a, spec.b, weight);
    case QueryKind::kCrosstabMultiselect:
      return engine.add_crosstab_multiselect(spec.a, spec.b, weight);
    case QueryKind::kCategoryShares:
      return engine.add_category_shares(spec.a, spec.confidence);
    case QueryKind::kOptionShares:
      return engine.add_option_shares(spec.a, spec.confidence);
    case QueryKind::kNumericSummary:
      return engine.add_numeric_summary(spec.a);
    case QueryKind::kGroupAnswered:
      return engine.add_group_answered(spec.a, spec.b);
  }
  throw InvalidInputError("serve: unknown query kind");
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(config),
      cache_(config.cache_capacity),
      admit_limit_(std::max<std::size_t>(1, config.max_admitted)) {
  RCR_CHECK_MSG(config_.min_admitted >= 1,
                "serve: min_admitted must be at least 1");
  RCR_CHECK_MSG(config_.min_admitted <= config_.max_admitted,
                "serve: min_admitted must not exceed max_admitted");
  metrics().admit_limit.set(
      static_cast<std::int64_t>(admit_limit_.load(std::memory_order_relaxed)));
}

void Server::register_snapshot(std::uint64_t epoch, data::Table table) {
  table.validate_rectangular();
  auto ep = std::make_shared<Epoch>();
  ep->id = epoch;
  ep->table = std::move(table);
  std::lock_guard<std::mutex> lock(epochs_mutex_);
  RCR_CHECK_MSG(epochs_.find(epoch) == epochs_.end(),
                "serve: epoch already registered (snapshots are immutable)");
  epochs_.emplace(epoch, std::move(ep));
}

void Server::retire_snapshot(std::uint64_t epoch) {
  {
    std::lock_guard<std::mutex> lock(epochs_mutex_);
    epochs_.erase(epoch);
  }
  {
    std::lock_guard<std::mutex> lock(lineage_mutex_);
    lineages_.erase(epoch);
  }
  cache_.invalidate_epoch(epoch);
}

std::size_t Server::append_delta(std::uint64_t base_epoch,
                                 std::uint64_t new_epoch,
                                 const data::Table& block) {
  Metrics& m = metrics();
  obs::ScopedTimer timer(m.delta_ms);
  // Admin plane: one delta at a time. Request handling stays live — it
  // only ever touches epochs_mutex_, the cache shards, and ep->m briefly.
  // The O(delta) scan below runs on a privately-extracted Lineage;
  // lineage_mutex_ is taken only for the extract and the final publish,
  // so retire_snapshot never stalls behind an in-flight delta.
  std::lock_guard<std::mutex> admin(delta_mutex_);

  const auto base = find_epoch(base_epoch);
  RCR_CHECK_MSG(base != nullptr, "serve: unknown snapshot epoch " +
                                     std::to_string(base_epoch));
  RCR_CHECK_MSG(find_epoch(new_epoch) == nullptr,
                "serve: epoch already registered (snapshots are immutable)");

  std::vector<QuerySpec> served;
  std::vector<std::uint64_t> served_keys;
  {
    std::lock_guard<std::mutex> lock(base->m);
    served = base->served_specs;
  }

  // Pull the base lineage out of the shared map; the rebuild and the
  // incremental append below own it privately, off every shared lock.
  Lineage lin;
  {
    std::lock_guard<std::mutex> lock(lineage_mutex_);
    const auto it = lineages_.find(base_epoch);
    if (it != lineages_.end()) {
      lin = std::move(it->second);
      lineages_.erase(it);
    }
  }

  // (Re)build the lineage when it doesn't exist yet or the base epoch has
  // served specs the engine never registered (late specs went through the
  // cold batch path): register everything served and catch up with ONE
  // scan of the base table. Otherwise this delta costs O(block rows).
  if (!lin.engine || lin.specs != served) {
    lin.engine = std::make_unique<incr::IncrementalEngine>(base->table);
    lin.specs = served;
    lin.ids.clear();
    lin.ids.reserve(served.size());
    for (const QuerySpec& spec : served)
      lin.ids.push_back(register_incr_spec(*lin.engine, spec));
    lin.engine->append_block(base->table, config_.pool);
  }
  lin.engine->append_block(block, config_.pool);

  data::Table merged = base->table;  // deep copy; base stays pinned as-is
  merged.append_rows(block);

  // Refresh every served spec from the incremental partials and insert
  // under the NEW epoch's fingerprints before the epoch is visible — a
  // reader can never observe the new epoch cold for a served spec.
  std::size_t refreshed = 0;
  served_keys.reserve(lin.specs.size());
  for (std::size_t i = 0; i < lin.specs.size(); ++i) {
    const std::uint64_t key = fingerprint(new_epoch, lin.specs[i]);
    auto body = std::make_shared<const std::vector<std::uint8_t>>(
        encode_result_body(lin.engine->result(lin.ids[i]), lin.specs[i]));
    cache_.insert(key, new_epoch, std::move(body));
    served_keys.push_back(key);
    ++refreshed;
  }

  register_snapshot(new_epoch, std::move(merged));
  {
    // The new epoch inherits the served set (it answered all of it at
    // birth, via the pre-warmed cache), so the next delta refreshes the
    // same specs without a rebuild.
    const auto ep = find_epoch(new_epoch);
    std::lock_guard<std::mutex> lock(ep->m);
    ep->served_specs = lin.specs;
    ep->served_keys = std::move(served_keys);
  }

  // The lineage advances: its engine now holds partials for new_epoch's
  // rows. Publish it under the new head; the base keeps serving reads but
  // accepts no further deltas on this lineage.
  {
    std::lock_guard<std::mutex> lock(lineage_mutex_);
    lineages_[new_epoch] = std::move(lin);
  }

  m.deltas.add(1);
  m.delta_refreshed.add(refreshed);
  return refreshed;
}

std::vector<std::uint64_t> Server::epochs() const {
  std::lock_guard<std::mutex> lock(epochs_mutex_);
  std::vector<std::uint64_t> out;
  out.reserve(epochs_.size());
  for (const auto& [id, ep] : epochs_) out.push_back(id);
  return out;
}

std::shared_ptr<Server::Epoch> Server::find_epoch(std::uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(epochs_mutex_);
  const auto it = epochs_.find(epoch);
  return it == epochs_.end() ? nullptr : it->second;
}

Response Server::handle(const Request& req) {
  Metrics& m = metrics();
  m.requests.add();
  Stopwatch watch;

  const QuerySpec spec = canonicalize(req.spec);
  const std::uint64_t key = fingerprint(req.epoch, spec);
  Response resp;
  resp.fingerprint = key;

  const auto ep = find_epoch(req.epoch);
  if (!ep) {
    m.errors.add();
    resp.type = MsgType::kError;
    resp.body = encode_error_body("serve: unknown snapshot epoch " +
                                  std::to_string(req.epoch));
    complete_request(watch.elapsed_ms());
    return resp;
  }

  if (CachedBody hit = cache_.find(key)) {
    m.hits.add();
    resp.type = MsgType::kResult;
    resp.body = *hit;
    complete_request(watch.elapsed_ms());
    return resp;
  }
  m.misses.add();

  // Admission control: refuse with explicit backpressure once the miss
  // queue has consumed its budget. Sheds are NOT recorded into the latency
  // window — a flood of fast refusals must not read as "p99 recovered".
  const std::size_t limit = admit_limit_.load(std::memory_order_relaxed);
  const std::size_t depth = inflight_.load(std::memory_order_relaxed);
  if (depth >= limit) {
    m.shed.add();
    resp.type = MsgType::kShed;
    resp.body = encode_shed_body(
        {depth, limit, window_p99_ms_.load(std::memory_order_relaxed)});
    return resp;
  }

  inflight_.fetch_add(1, std::memory_order_relaxed);
  m.inflight.add(1);

  // Single-flight: one computation per key, however many wait on it.
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    const auto it = inflight_map_.find(key);
    if (it != inflight_map_.end()) {
      flight = it->second;
      m.coalesced.add();
    } else {
      flight = std::make_shared<Flight>();
      inflight_map_.emplace(key, flight);
      leader = true;
    }
  }

  // Batch folding: the leader enqueues its query for the epoch's next
  // engine pass; whichever leader finds no runner active becomes the
  // runner and drains batches until the queue is empty.
  bool runner = false;
  if (leader) {
    std::lock_guard<std::mutex> lock(ep->m);
    ep->pending.push_back({key, spec, flight});
    if (!ep->runner_active) {
      ep->runner_active = true;
      runner = true;
    }
  }
  if (runner) run_batches(*ep);

  {
    std::unique_lock<std::mutex> lock(flight->m);
    flight->cv.wait(lock, [&] { return flight->done; });
    resp.type = flight->type;
    if (flight->type == MsgType::kResult) {
      resp.body = *flight->body;
    } else {
      m.errors.add();
      resp.body = encode_error_body(flight->error);
    }
  }

  inflight_.fetch_sub(1, std::memory_order_relaxed);
  m.inflight.add(-1);
  complete_request(watch.elapsed_ms());
  return resp;
}

std::vector<std::uint8_t> Server::handle_payload(
    std::span<const std::uint8_t> payload) {
  Response resp;
  try {
    resp = handle(decode_request(payload));
  } catch (const Error& e) {
    metrics().errors.add();
    resp.type = MsgType::kError;
    resp.fingerprint = 0;
    resp.body = encode_error_body(e.what());
  }
  return encode_response(resp);
}

void Server::run_batches(Epoch& ep) {
  for (;;) {
    wait_if_held();
    std::vector<PendingQuery> batch;
    {
      std::lock_guard<std::mutex> lock(ep.m);
      if (ep.pending.empty()) {
        ep.runner_active = false;
        return;
      }
      batch.swap(ep.pending);
    }
    execute_batch(ep, batch);
  }
}

void Server::execute_batch(Epoch& ep, std::vector<PendingQuery>& batch) {
  Metrics& m = metrics();
  obs::ScopedTimer timer(m.batch_ms);
  m.batches.add();
  m.batch_queries.add(batch.size());

  // Distinct concurrent misses for this epoch become ONE fused engine
  // pass: registration is per query, the sharded scan is shared.
  query::QueryEngine engine(ep.table);
  std::vector<std::optional<query::QueryId>> ids(batch.size());
  std::size_t registered = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    try {
      ids[i] = register_spec(engine, batch[i].spec);
      ++registered;
    } catch (const Error& e) {
      finish_flight(batch[i].flight, MsgType::kError, nullptr, e.what());
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_map_.erase(batch[i].key);
    }
  }

  bool ran = false;
  std::string run_error;
  if (registered > 0) {
    try {
      engine.run(config_.pool);
      ran = true;
    } catch (const Error& e) {
      run_error = e.what();
    }
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!ids[i]) continue;  // failed registration, already answered
    if (ran) {
      auto body = std::make_shared<const std::vector<std::uint8_t>>(
          encode_result_body(engine, *ids[i], batch[i].spec));
      cache_.insert(batch[i].key, ep.id, body);
      {
        // Record the spec as served (deduped by fingerprint): the set
        // append_delta refreshes when this epoch grows a delta.
        std::lock_guard<std::mutex> lock(ep.m);
        if (std::find(ep.served_keys.begin(), ep.served_keys.end(),
                      batch[i].key) == ep.served_keys.end()) {
          ep.served_keys.push_back(batch[i].key);
          ep.served_specs.push_back(batch[i].spec);
        }
      }
      {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        inflight_map_.erase(batch[i].key);
      }
      finish_flight(batch[i].flight, MsgType::kResult, std::move(body), "");
    } else {
      {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        inflight_map_.erase(batch[i].key);
      }
      finish_flight(batch[i].flight, MsgType::kError, nullptr, run_error);
    }
  }
}

void Server::finish_flight(const std::shared_ptr<Flight>& flight, MsgType type,
                           CachedBody body, std::string error) {
  {
    std::lock_guard<std::mutex> lock(flight->m);
    flight->type = type;
    flight->body = std::move(body);
    flight->error = std::move(error);
    flight->done = true;
  }
  flight->cv.notify_all();
}

void Server::complete_request(double elapsed_ms) {
  Metrics& m = metrics();
  m.request_ms.record(elapsed_ms);
  latency_.record(elapsed_ms);
  const std::uint64_t done =
      completed_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.slo_window == 0 || done % config_.slo_window != 0) return;

  // SLO interval boundary: take the per-window p99 and adapt the budget
  // AIMD-style (halve over target, +1 under it).
  std::lock_guard<std::mutex> lock(slo_mutex_);
  const auto window = latency_.window_snapshot();
  if (window.count == 0) return;
  window_p99_ms_.store(window.p99, std::memory_order_relaxed);
  std::size_t limit = admit_limit_.load(std::memory_order_relaxed);
  if (window.p99 > config_.slo_p99_ms) {
    limit = std::max(config_.min_admitted, limit / 2);
  } else {
    limit = std::min(config_.max_admitted, limit + 1);
  }
  admit_limit_.store(limit, std::memory_order_relaxed);
  m.admit_limit.set(static_cast<std::int64_t>(limit));
}

std::size_t Server::pending_queries(std::uint64_t epoch) const {
  const auto ep = find_epoch(epoch);
  if (!ep) return 0;
  std::lock_guard<std::mutex> lock(ep->m);
  return ep->pending.size();
}

void Server::hold_batches(bool hold) {
  {
    std::lock_guard<std::mutex> lock(hold_mutex_);
    hold_ = hold;
  }
  hold_cv_.notify_all();
}

void Server::wait_if_held() {
  std::unique_lock<std::mutex> lock(hold_mutex_);
  hold_cv_.wait(lock, [&] { return !hold_; });
}

}  // namespace rcr::serve
