// rcr::serve server core — holds immutable Table snapshots resident and
// answers query requests through a four-layer pipeline:
//
//   1. result cache   — (epoch, canonical spec) fingerprint -> encoded
//                       result body (protocol.hpp); a hit never touches
//                       the engine.
//   2. single-flight  — concurrent misses on the SAME key attach to one
//                       in-flight computation; N identical requests cost
//                       one engine query, and the other N-1 wait on it.
//   3. batch folding  — concurrent misses on DISTINCT keys for the same
//                       epoch fold into one fused QueryEngine pass (the
//                       engine's whole design premise: a batch of queries
//                       costs one sharded scan). The first miss to find no
//                       runner active becomes the batch runner and loops,
//                       draining whatever misses accumulated while the
//                       previous engine pass ran; everyone else waits on
//                       their flight. No timers: batches form exactly from
//                       natural concurrency.
//   0. delta epochs   — append_delta() mints a new epoch as a delta on an
//                       existing one: the appended block feeds a per-
//                       lineage incr::IncrementalEngine (O(block rows)),
//                       and every result the base epoch ever served is
//                       re-encoded from the refreshed partials and
//                       inserted into the cache under the new epoch's
//                       fingerprints BEFORE the epoch becomes visible —
//                       readers never see the new epoch cold, and the old
//                       epoch stays registered (PR 8's pinning), so
//                       in-flight readers keep a consistent cut.
//   4. admission      — a request that misses while the miss queue
//                       (in-flight misses, waiters included) has reached
//                       the admitted-limit budget is refused with an
//                       explicit kShed response instead of queueing
//                       unboundedly. The budget adapts AIMD-style: every
//                       slo_window completed requests the server takes a
//                       windowed p99 of serve.request.ms (obs histogram
//                       window_snapshot) and halves the limit while the
//                       interval's p99 exceeds the SLO target, recovering
//                       by +1 per interval while it meets it.
//
// Determinism contract: a served result body is byte-identical to
// encode_result_body over a cold direct QueryEngine run of the same spec
// on the same snapshot — for any thread count (the engine's shard layout
// is a pure function of the row count), any SIMD width (kernels are
// bitwise-identical across widths), either cache path (the cached bytes
// ARE the first computation's bytes), and any batch composition (each
// query accumulates into its own cells, so co-batched queries cannot
// perturb each other).
//
// Metrics: serve.requests / serve.hits / serve.misses / serve.coalesced /
// serve.shed / serve.errors / serve.batches / serve.batch.queries
// counters, serve.inflight and serve.admit.limit gauges, serve.request.ms
// and serve.batch.ms histograms.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/table.hpp"
#include "incr/engine.hpp"
#include "obs/metrics.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"

namespace rcr::parallel {
class ThreadPool;
}

namespace rcr::serve {

struct ServerConfig {
  std::size_t cache_capacity = 4096;  // cached result bodies (total)
  // Admission control:
  double slo_p99_ms = 5.0;         // windowed-p99 latency target
  std::size_t max_admitted = 256;  // miss-queue budget ceiling (and start)
  std::size_t min_admitted = 2;    // decay floor (keeps the server live)
  std::size_t slo_window = 256;    // completed requests per SLO interval
  // Engine execution; nullptr runs the fused scans serially. Results are
  // bitwise identical either way.
  parallel::ThreadPool* pool = nullptr;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});

  // Registers an immutable snapshot under `epoch` (must be new).
  void register_snapshot(std::uint64_t epoch, data::Table table);

  // Drops the snapshot and every cached result fingerprinted against it.
  // In-flight batches keep the table alive until they finish.
  void retire_snapshot(std::uint64_t epoch);

  // Mints `new_epoch` as a delta on `base_epoch`: the new snapshot is the
  // base table plus `block`'s rows, but instead of recomputing, every spec
  // the base epoch ever served is refreshed in O(block rows) through the
  // lineage's incremental engine and cached under the new epoch before it
  // becomes visible (a reader can never find the new epoch cold for those
  // specs). Refreshed bodies are byte-identical to a cold engine run on
  // the merged table — the incremental partials reproduce the cold bits
  // exactly. The base epoch stays registered; retire it separately once
  // its readers drain. Returns the number of cache entries refreshed.
  // Specs first requested on the new epoch miss into the normal cold
  // batch path and join the lineage at its next delta.
  std::size_t append_delta(std::uint64_t base_epoch, std::uint64_t new_epoch,
                           const data::Table& block);

  std::vector<std::uint64_t> epochs() const;

  // The full pipeline for one decoded request. Never throws for request
  // problems — bad specs and unknown epochs come back as kError responses.
  Response handle(const Request& req);

  // Wire entry point: decode payload -> handle -> encode response payload.
  std::vector<std::uint8_t> handle_payload(
      std::span<const std::uint8_t> payload);

  // --- Introspection (tests, admin) ----------------------------------------
  std::size_t admit_limit() const {
    return admit_limit_.load(std::memory_order_relaxed);
  }
  std::size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  double window_p99_ms() const {
    return window_p99_ms_.load(std::memory_order_relaxed);
  }
  std::size_t cache_size() const { return cache_.size(); }

  // Queries enqueued for `epoch`'s next batch (0 for unknown epochs).
  std::size_t pending_queries(std::uint64_t epoch) const;

  // Test hook: while held, batch runners stall before executing, so
  // concurrent misses pile into one batch. Lets tests pin coalescing,
  // batch folding, and shedding without racing the engine. A request
  // thread that becomes the batch runner blocks until released, so only
  // hold from a thread that is not itself sending requests.
  void hold_batches(bool hold);

 private:
  // One in-flight miss computation; waiters block on cv until done.
  struct Flight {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    MsgType type = MsgType::kResult;
    CachedBody body;    // kResult
    std::string error;  // kError
  };

  struct PendingQuery {
    std::uint64_t key = 0;
    QuerySpec spec;  // canonicalized
    std::shared_ptr<Flight> flight;
  };

  struct Epoch {
    std::uint64_t id = 0;
    data::Table table;
    std::mutex m;  // guards pending + runner_active + served_*
    std::vector<PendingQuery> pending;
    bool runner_active = false;
    // Every distinct spec this epoch answered successfully (canonicalized,
    // deduped by fingerprint) — what append_delta refreshes.
    std::vector<QuerySpec> served_specs;
    std::vector<std::uint64_t> served_keys;
  };

  // The incremental state advancing one snapshot lineage: an engine
  // holding partials for the head epoch's served specs. Keyed by head
  // epoch; append_delta moves it base -> new.
  struct Lineage {
    std::unique_ptr<incr::IncrementalEngine> engine;
    std::vector<QuerySpec> specs;       // engine registration order
    std::vector<query::QueryId> ids;    // parallel to specs
  };

  std::shared_ptr<Epoch> find_epoch(std::uint64_t epoch) const;
  void run_batches(Epoch& ep);
  void execute_batch(Epoch& ep, std::vector<PendingQuery>& batch);
  void finish_flight(const std::shared_ptr<Flight>& flight, MsgType type,
                     CachedBody body, std::string error);
  void complete_request(double elapsed_ms);
  void wait_if_held();

  ServerConfig config_;
  ResultCache cache_;

  mutable std::mutex epochs_mutex_;
  std::map<std::uint64_t, std::shared_ptr<Epoch>> epochs_;

  // Admin plane: serializes whole append_delta calls (one delta at a
  // time). Nothing else ever takes it, so holding it across the O(delta)
  // rebuild/refresh work blocks only other admins.
  std::mutex delta_mutex_;
  // Guards the lineages_ map itself — held only for the brief extract /
  // publish of a Lineage entry, never across the incremental scan, so
  // retire_snapshot (and anything else touching the map) never waits on
  // an in-flight delta's O(block rows) work.
  std::mutex lineage_mutex_;
  std::map<std::uint64_t, Lineage> lineages_;

  std::mutex inflight_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Flight>> inflight_map_;
  std::atomic<std::size_t> inflight_{0};

  std::atomic<std::size_t> admit_limit_;
  std::atomic<double> window_p99_ms_{0.0};
  std::atomic<std::uint64_t> completed_{0};
  std::mutex slo_mutex_;
  // Per-server latency histogram driving the SLO window (the registry's
  // serve.request.ms is also fed, for dashboards, but windows on a shared
  // registry metric would interleave across server instances). With
  // RCR_OBS_DISABLED this is a no-op, every window p99 reads 0, and
  // admission degrades gracefully to the static max_admitted budget.
  obs::Histogram latency_;

  std::mutex hold_mutex_;
  std::condition_variable hold_cv_;
  bool hold_ = false;
};

}  // namespace rcr::serve
