// rcr::serve wire protocol — length-prefixed binary frames, canonical
// query-spec encoding, and the (epoch, spec) result fingerprint.
//
// Every message travels as one frame: a little-endian u32 payload length
// followed by the payload. Request payloads carry a protocol version, the
// snapshot epoch being queried, and a QuerySpec in its canonical encoding;
// response payloads carry a message type, the request's fingerprint, and a
// type-specific body.
//
//   request  := u8 kQuery | u16 version | u64 epoch | canonical-spec
//   response := u8 type   | u64 fingerprint | body
//     kResult body := encoded result (see below)
//     kError  body := u32 len | message bytes
//     kShed   body := u64 queue_depth | u64 admit_limit | f64 window_p99_ms
//
// The canonical spec encoding is the normalization the cache key hashes:
// fields a kind ignores are cleared first (weight on non-crosstab kinds,
// confidence on kinds without an interval, the secondary column on
// single-column kinds), then the fields serialize in fixed order with
// length-prefixed strings and the confidence as its raw IEEE-754 bit
// pattern. Two requests therefore share a fingerprint — XXH64 of the
// canonical bytes seeded with the snapshot epoch — exactly when the engine
// would compute identical answers for them against the same snapshot.
//
// Result bodies encode doubles as bit patterns too, which is what makes
// the serving determinism contract checkable at the byte level: a served
// response body equals the encoding of a cold QueryEngine run bit for bit,
// for any thread count and either cache path.
//
// The weighted-option-share query kind (external weight span) is not
// servable: a span of caller memory has no wire representation. Weighted
// analyses go through the weight-column crosstab kinds instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/crosstab.hpp"
#include "query/engine.hpp"

namespace rcr::serve {

inline constexpr std::uint16_t kProtocolVersion = 1;

// Frames larger than this are rejected before buffering (a corrupt or
// hostile length prefix must not look like a 4 GiB allocation request).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 24;  // 16 MiB

enum class QueryKind : std::uint8_t {
  kCrosstab = 1,
  kCrosstabMultiselect = 2,
  kCategoryShares = 3,
  kOptionShares = 4,
  kNumericSummary = 5,
  kGroupAnswered = 6,
};

enum class MsgType : std::uint8_t {
  kQuery = 1,
  kResult = 2,
  kError = 3,
  kShed = 4,
};

struct QuerySpec {
  QueryKind kind = QueryKind::kCategoryShares;
  std::string a;       // primary column
  std::string b;       // secondary column (crosstabs, group-answered)
  std::string weight;  // weight column (crosstab kinds); empty = unweighted
  double confidence = 0.95;  // share kinds only

  bool operator==(const QuerySpec&) const = default;
};

struct Request {
  std::uint64_t epoch = 0;
  QuerySpec spec;
};

struct Response {
  MsgType type = MsgType::kError;
  std::uint64_t fingerprint = 0;
  std::vector<std::uint8_t> body;

  bool operator==(const Response&) const = default;
};

// Fields the kind ignores cleared to fixed values, so equivalent requests
// canonicalize (and fingerprint) identically.
QuerySpec canonicalize(QuerySpec spec);

// The canonical byte encoding of canonicalize(spec).
std::vector<std::uint8_t> canonical_bytes(const QuerySpec& spec);

// XXH64 of the canonical spec bytes, seeded with the snapshot epoch — the
// result-cache key and the provenance tag every response echoes.
std::uint64_t fingerprint(std::uint64_t epoch, const QuerySpec& spec);

// --- Message encoding -------------------------------------------------------

// Payload encoders (no length prefix; transports add the frame header).
std::vector<std::uint8_t> encode_request(const Request& req);
std::vector<std::uint8_t> encode_response(const Response& resp);

// Payload decoders; throw InvalidInputError on malformed bytes.
Request decode_request(std::span<const std::uint8_t> payload);
Response decode_response(std::span<const std::uint8_t> payload);

// Appends the u32 length prefix + payload to `out` (transport framing).
void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload);

// Error / shed bodies.
std::vector<std::uint8_t> encode_error_body(const std::string& message);
std::string decode_error_body(std::span<const std::uint8_t> body);

struct ShedInfo {
  std::uint64_t queue_depth = 0;
  std::uint64_t admit_limit = 0;
  double window_p99_ms = 0.0;
};
std::vector<std::uint8_t> encode_shed_body(const ShedInfo& info);
ShedInfo decode_shed_body(std::span<const std::uint8_t> body);

// --- Engine bridge ----------------------------------------------------------

// Registers `spec` on the engine (validating columns with the engine's own
// errors). The returned id fetches the result after engine.run().
query::QueryId register_spec(query::QueryEngine& engine, const QuerySpec& spec);

// Encodes the engine's answer for `spec` as a kResult body. Doubles are
// raw bit patterns: equal result bits <=> equal bodies.
std::vector<std::uint8_t> encode_result_body(const query::QueryEngine& engine,
                                             query::QueryId id,
                                             const QuerySpec& spec);

// Same encoding from a raw result record — the form the delta-epoch path
// uses, where answers come from an incremental engine's partial-merge
// instead of a cold engine pass. Byte-identical to the overload above for
// bitwise-equal results.
std::vector<std::uint8_t> encode_result_body(const query::QueryResult& result,
                                             const QuerySpec& spec);

// Client-side decoded result; `kind` selects which member is meaningful.
struct ResultView {
  QueryKind kind = QueryKind::kCategoryShares;
  data::LabeledCrosstab crosstab;
  std::vector<data::OptionShare> shares;
  query::NumericSummary numeric;
  std::vector<double> group_counts;
};
ResultView decode_result_body(std::span<const std::uint8_t> body);

}  // namespace rcr::serve
