#include "serve/protocol.hpp"

#include <cstring>
#include <optional>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace rcr::serve {

namespace {

// --- Byte-level helpers (little-endian, doubles as bit patterns) ------------

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

 private:
  // resize + memcpy rather than insert(range): GCC 12's -Warray-bounds
  // false-positives on small constant-size range inserts.
  void raw(const void* p, std::size_t n) {
    const std::size_t old = out_.size();
    out_.resize(old + n);
    std::memcpy(out_.data() + old, p, n);
  }

  std::vector<std::uint8_t>& out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return load<std::uint16_t>(); }
  std::uint32_t u32() { return load<std::uint32_t>(); }
  std::uint64_t u64() { return load<std::uint64_t>(); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    const auto bytes = take(n);
    return std::string(reinterpret_cast<const char*>(bytes.data()), n);
  }

  bool exhausted() const { return pos_ == data_.size(); }
  void expect_exhausted(const char* what) const {
    if (!exhausted())
      throw InvalidInputError(std::string("serve: trailing bytes after ") +
                              what);
  }

 private:
  template <typename T>
  T load() {
    const auto bytes = take(sizeof(T));
    T v;
    std::memcpy(&v, bytes.data(), sizeof(T));
    return v;
  }

  std::span<const std::uint8_t> take(std::size_t n) {
    if (data_.size() - pos_ < n)
      throw InvalidInputError("serve: truncated message");
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

bool kind_has_weight(QueryKind k) {
  return k == QueryKind::kCrosstab || k == QueryKind::kCrosstabMultiselect;
}

bool kind_has_confidence(QueryKind k) {
  return k == QueryKind::kCategoryShares || k == QueryKind::kOptionShares;
}

bool kind_has_secondary(QueryKind k) {
  return k == QueryKind::kCrosstab || k == QueryKind::kCrosstabMultiselect ||
         k == QueryKind::kGroupAnswered;
}

QueryKind check_kind(std::uint8_t raw) {
  if (raw < static_cast<std::uint8_t>(QueryKind::kCrosstab) ||
      raw > static_cast<std::uint8_t>(QueryKind::kGroupAnswered))
    throw InvalidInputError("serve: unknown query kind " + std::to_string(raw));
  return static_cast<QueryKind>(raw);
}

void write_spec(Writer& w, const QuerySpec& canonical) {
  w.u8(static_cast<std::uint8_t>(canonical.kind));
  w.str(canonical.a);
  w.str(canonical.b);
  w.str(canonical.weight);
  w.f64(canonical.confidence);
}

QuerySpec read_spec(Reader& r) {
  QuerySpec spec;
  spec.kind = check_kind(r.u8());
  spec.a = r.str();
  spec.b = r.str();
  spec.weight = r.str();
  spec.confidence = r.f64();
  return spec;
}

void write_shares(Writer& w, const std::vector<data::OptionShare>& shares) {
  w.u32(static_cast<std::uint32_t>(shares.size()));
  for (const auto& s : shares) {
    w.str(s.label);
    w.f64(s.count);
    w.f64(s.total);
    w.f64(s.share.estimate);
    w.f64(s.share.lo);
    w.f64(s.share.hi);
  }
}

std::vector<data::OptionShare> read_shares(Reader& r) {
  const std::uint32_t n = r.u32();
  std::vector<data::OptionShare> shares;
  shares.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    data::OptionShare s;
    s.label = r.str();
    s.count = r.f64();
    s.total = r.f64();
    s.share.estimate = r.f64();
    s.share.lo = r.f64();
    s.share.hi = r.f64();
    shares.push_back(std::move(s));
  }
  return shares;
}

void write_crosstab(Writer& w, const data::LabeledCrosstab& ct) {
  w.u32(static_cast<std::uint32_t>(ct.counts.rows()));
  w.u32(static_cast<std::uint32_t>(ct.counts.cols()));
  for (const auto& label : ct.row_labels) w.str(label);
  for (const auto& label : ct.col_labels) w.str(label);
  for (std::size_t i = 0; i < ct.counts.rows(); ++i)
    for (std::size_t j = 0; j < ct.counts.cols(); ++j)
      w.f64(ct.counts.at(i, j));
}

data::LabeledCrosstab read_crosstab(Reader& r) {
  const std::uint32_t rows = r.u32();
  const std::uint32_t cols = r.u32();
  if (rows == 0 || cols == 0)
    throw InvalidInputError("serve: degenerate crosstab dimensions");
  data::LabeledCrosstab ct;
  ct.row_labels.reserve(rows);
  ct.col_labels.reserve(cols);
  for (std::uint32_t i = 0; i < rows; ++i) ct.row_labels.push_back(r.str());
  for (std::uint32_t j = 0; j < cols; ++j) ct.col_labels.push_back(r.str());
  ct.counts = stats::Contingency(rows, cols);
  for (std::uint32_t i = 0; i < rows; ++i)
    for (std::uint32_t j = 0; j < cols; ++j) ct.counts.at(i, j) = r.f64();
  return ct;
}

}  // namespace

// --- Canonicalization and fingerprint ---------------------------------------

QuerySpec canonicalize(QuerySpec spec) {
  if (!kind_has_weight(spec.kind)) spec.weight.clear();
  if (!kind_has_confidence(spec.kind)) spec.confidence = 0.0;
  if (!kind_has_secondary(spec.kind)) spec.b.clear();
  return spec;
}

std::vector<std::uint8_t> canonical_bytes(const QuerySpec& spec) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  write_spec(w, canonicalize(spec));
  return out;
}

std::uint64_t fingerprint(std::uint64_t epoch, const QuerySpec& spec) {
  const auto canon = canonical_bytes(spec);
  return xxhash64(canon.data(), canon.size(), epoch);
}

// --- Message encoding -------------------------------------------------------

std::vector<std::uint8_t> encode_request(const Request& req) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kQuery));
  w.u16(kProtocolVersion);
  w.u64(req.epoch);
  write_spec(w, canonicalize(req.spec));
  return out;
}

Request decode_request(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const auto type = r.u8();
  if (type != static_cast<std::uint8_t>(MsgType::kQuery))
    throw InvalidInputError("serve: expected a query message, got type " +
                            std::to_string(type));
  const auto version = r.u16();
  if (version != kProtocolVersion)
    throw InvalidInputError("serve: unsupported protocol version " +
                            std::to_string(version));
  Request req;
  req.epoch = r.u64();
  req.spec = read_spec(r);
  r.expect_exhausted("request");
  return req;
}

std::vector<std::uint8_t> encode_response(const Response& resp) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 8 + resp.body.size());
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(resp.type));
  w.u64(resp.fingerprint);
  out.insert(out.end(), resp.body.begin(), resp.body.end());
  return out;
}

Response decode_response(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  Response resp;
  const auto type = r.u8();
  if (type < static_cast<std::uint8_t>(MsgType::kResult) ||
      type > static_cast<std::uint8_t>(MsgType::kShed))
    throw InvalidInputError("serve: unknown response type " +
                            std::to_string(type));
  resp.type = static_cast<MsgType>(type);
  resp.fingerprint = r.u64();
  resp.body.assign(payload.begin() + 9, payload.end());
  return resp;
}

void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload) {
  RCR_CHECK_MSG(payload.size() <= kMaxFrameBytes, "serve: frame too large");
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&len);
  out.insert(out.end(), bytes, bytes + sizeof len);
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::uint8_t> encode_error_body(const std::string& message) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.str(message);
  return out;
}

std::string decode_error_body(std::span<const std::uint8_t> body) {
  Reader r(body);
  std::string message = r.str();
  r.expect_exhausted("error body");
  return message;
}

std::vector<std::uint8_t> encode_shed_body(const ShedInfo& info) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.u64(info.queue_depth);
  w.u64(info.admit_limit);
  w.f64(info.window_p99_ms);
  return out;
}

ShedInfo decode_shed_body(std::span<const std::uint8_t> body) {
  Reader r(body);
  ShedInfo info;
  info.queue_depth = r.u64();
  info.admit_limit = r.u64();
  info.window_p99_ms = r.f64();
  r.expect_exhausted("shed body");
  return info;
}

// --- Engine bridge ----------------------------------------------------------

query::QueryId register_spec(query::QueryEngine& engine,
                             const QuerySpec& spec) {
  const std::optional<std::string> weight =
      spec.weight.empty() ? std::nullopt
                          : std::optional<std::string>(spec.weight);
  switch (spec.kind) {
    case QueryKind::kCrosstab:
      return engine.add_crosstab(spec.a, spec.b, weight);
    case QueryKind::kCrosstabMultiselect:
      return engine.add_crosstab_multiselect(spec.a, spec.b, weight);
    case QueryKind::kCategoryShares:
      return engine.add_category_shares(spec.a, spec.confidence);
    case QueryKind::kOptionShares:
      return engine.add_option_shares(spec.a, spec.confidence);
    case QueryKind::kNumericSummary:
      return engine.add_numeric_summary(spec.a);
    case QueryKind::kGroupAnswered:
      return engine.add_group_answered(spec.a, spec.b);
  }
  throw InvalidInputError("serve: unknown query kind");
}

std::vector<std::uint8_t> encode_result_body(const query::QueryEngine& engine,
                                             query::QueryId id,
                                             const QuerySpec& spec) {
  return encode_result_body(engine.raw_result(id), spec);
}

std::vector<std::uint8_t> encode_result_body(const query::QueryResult& result,
                                             const QuerySpec& spec) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(spec.kind));
  switch (spec.kind) {
    case QueryKind::kCrosstab:
    case QueryKind::kCrosstabMultiselect:
      write_crosstab(w, result.crosstab);
      break;
    case QueryKind::kCategoryShares:
    case QueryKind::kOptionShares:
      write_shares(w, result.shares);
      break;
    case QueryKind::kNumericSummary: {
      w.f64(result.numeric.count);
      w.f64(result.numeric.sum);
      w.f64(result.numeric.min);
      w.f64(result.numeric.max);
      break;
    }
    case QueryKind::kGroupAnswered: {
      w.u32(static_cast<std::uint32_t>(result.group_counts.size()));
      for (double c : result.group_counts) w.f64(c);
      break;
    }
  }
  return out;
}

ResultView decode_result_body(std::span<const std::uint8_t> body) {
  Reader r(body);
  ResultView view;
  view.kind = check_kind(r.u8());
  switch (view.kind) {
    case QueryKind::kCrosstab:
    case QueryKind::kCrosstabMultiselect:
      view.crosstab = read_crosstab(r);
      break;
    case QueryKind::kCategoryShares:
    case QueryKind::kOptionShares:
      view.shares = read_shares(r);
      break;
    case QueryKind::kNumericSummary:
      view.numeric.count = r.f64();
      view.numeric.sum = r.f64();
      view.numeric.min = r.f64();
      view.numeric.max = r.f64();
      break;
    case QueryKind::kGroupAnswered: {
      const std::uint32_t n = r.u32();
      view.group_counts.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i)
        view.group_counts.push_back(r.f64());
      break;
    }
  }
  r.expect_exhausted("result body");
  return view;
}

}  // namespace rcr::serve
