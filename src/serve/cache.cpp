#include "serve/cache.hpp"

#include <algorithm>

namespace rcr::serve {

ResultCache::ResultCache(std::size_t capacity)
    : per_shard_(std::max<std::size_t>(1, (capacity + kShards - 1) / kShards)),
      shards_(kShards) {}

CachedBody ResultCache::find(std::uint64_t key) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it == s.index.end()) return nullptr;
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  return it->second->body;
}

void ResultCache::insert(std::uint64_t key, std::uint64_t epoch,
                         CachedBody body) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    it->second->body = std::move(body);
    it->second->epoch = epoch;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.push_front(Entry{key, epoch, std::move(body)});
  s.index.emplace(key, s.lru.begin());
  while (s.lru.size() > per_shard_) {
    s.index.erase(s.lru.back().key);
    s.lru.pop_back();
  }
}

void ResultCache::invalidate_epoch(std::uint64_t epoch) {
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    for (auto it = s.lru.begin(); it != s.lru.end();) {
      if (it->epoch == epoch) {
        s.index.erase(it->key);
        it = s.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    total += s.lru.size();
  }
  return total;
}

}  // namespace rcr::serve
