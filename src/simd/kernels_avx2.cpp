// AVX2 (L = 4) instantiations. This TU is compiled with -mavx2 (see
// CMakeLists.txt); the guard keeps it an empty TU if the flag ever goes
// missing, instead of miscompiling the V<4> specializations.
#include "simd/kernels_impl.hpp"

#if defined(__AVX2__)
namespace rcr::simd::detail {
RCR_SIMD_KERNEL_INSTANCES(, 4);
}  // namespace rcr::simd::detail
#endif
