#include "simd/philox.hpp"

#include <algorithm>

#include "simd/kernels.hpp"

namespace rcr::simd {

Philox::Philox(std::uint64_t seed, std::uint64_t stream)
    : seed_(seed), stream_(stream) {
  std::uint32_t k0 = static_cast<std::uint32_t>(seed);
  std::uint32_t k1 = static_cast<std::uint32_t>(seed >> 32);
  for (int r = 0; r < kRounds; ++r) {
    round_keys_[2 * r] = k0;
    round_keys_[2 * r + 1] = k1;
    k0 += kWeyl0;
    k1 += kWeyl1;
  }
}

std::array<std::uint32_t, 4> Philox::block(
    const std::array<std::uint32_t, 4>& ctr,
    const std::array<std::uint32_t, 2>& key) {
  std::uint32_t c0 = ctr[0], c1 = ctr[1], c2 = ctr[2], c3 = ctr[3];
  std::uint32_t k0 = key[0], k1 = key[1];
  for (int r = 0; r < kRounds; ++r) {
    const std::uint64_t p0 = std::uint64_t{kMult0} * c0;
    const std::uint64_t p1 = std::uint64_t{kMult1} * c2;
    c0 = static_cast<std::uint32_t>(p1 >> 32) ^ c1 ^ k0;
    c1 = static_cast<std::uint32_t>(p1);
    c2 = static_cast<std::uint32_t>(p0 >> 32) ^ c3 ^ k1;
    c3 = static_cast<std::uint32_t>(p0);
    k0 += kWeyl0;
    k1 += kWeyl1;
  }
  return {c0, c1, c2, c3};
}

std::array<std::uint64_t, 2> Philox::draws_of_block(std::uint64_t b) const {
  const std::array<std::uint32_t, 4> ctr = {
      static_cast<std::uint32_t>(b), static_cast<std::uint32_t>(b >> 32),
      static_cast<std::uint32_t>(stream_),
      static_cast<std::uint32_t>(stream_ >> 32)};
  const auto x = block(ctr, {round_keys_[0], round_keys_[1]});
  return {x[0] | std::uint64_t{x[1]} << 32, x[2] | std::uint64_t{x[3]} << 32};
}

std::uint64_t Philox::next_u64() {
  const std::uint64_t b = pos_ >> 1;
  if (b != cached_block_) {
    cached_draws_ = draws_of_block(b);
    cached_block_ = b;
  }
  return cached_draws_[pos_++ & 1];
}

double Philox::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

void Philox::fill_u64(std::span<std::uint64_t> out) {
  std::size_t i = 0;
  // Mid-block entry: finish the current pair through the scalar path so the
  // bulk kernel starts block-aligned.
  if ((pos_ & 1) != 0 && i < out.size()) out[i++] = next_u64();
  const std::size_t nblocks = (out.size() - i) / 2;
  if (nblocks != 0) {
    // block0 = pos_ >> 1 <= 2^63 - 1 and nblocks <= 2^63, so the lane
    // indices block0 + k never wrap 64 bits.
    philox_fill_u64(pos_ >> 1, stream_, round_keys_.data(), out.data() + i,
                    nblocks);
    pos_ += nblocks * 2;
    i += nblocks * 2;
  }
  if (i < out.size()) out[i++] = next_u64();
}

void Philox::fill_double(std::span<double> out) {
  // Chunked draw-then-convert: fill_u64 advances the stream exactly as the
  // scalar loop would, and the conversion is exact at every width, so this
  // is bitwise the sequence of next_double() calls.
  std::array<std::uint64_t, 1024> scratch;
  std::size_t off = 0;
  while (off < out.size()) {
    const std::size_t n = std::min(out.size() - off, scratch.size());
    fill_u64(std::span<std::uint64_t>(scratch.data(), n));
    unit_doubles_from_u64(scratch.data(), n, out.data() + off);
    off += n;
  }
}

}  // namespace rcr::simd
