// Public entry points of the rcr::simd kernel library.
//
// Each function runs the width-generic body from kernels_impl.hpp at the
// lane count chosen by dispatch.hpp. Every kernel is bitwise-identical to
// its scalar (L = 1) instantiation by construction — the bodies only use
// lane-local operations whose scalar and vector semantics agree exactly
// (integer arithmetic, bitwise select in place of `w * bit`, exact
// u64 -> f64 conversion below 2^53) — and the determinism suite pins that
// equivalence at every available width.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rcr::simd {

// Unweighted multi-select crosstab: for each row i in [lo, hi) with
// codes[i] >= 0, adds bit o of masks[i] to
// tallies[codes[i] * n_opts + o] for every option o < n_opts. Missing
// multi-select rows carry an all-zero mask, so they tally nothing.
void tally_multiselect(const std::int32_t* codes, const std::uint64_t* masks,
                       std::size_t lo, std::size_t hi, std::size_t n_opts,
                       std::uint64_t* tallies);

// Option-share tally: adds bit o of every mask in [lo, hi) to tallies[o]
// (o < n_opts) and returns the number of rows flagged missing.
std::size_t tally_options(const std::uint64_t* masks,
                          const std::uint8_t* missing, std::size_t lo,
                          std::size_t hi, std::size_t n_opts,
                          std::uint64_t* tallies);

// Weighted multi-select crosstab: for each answered row (code >= 0, not
// missing), adds weights[i] to cells[codes[i] * n_opts + o] for every set
// option bit. A NaN weight drops the row; a negative weight throws
// rcr::Error (matching query::row_weight_or_skip). The add is a bitwise
// select of w or +0.0 per lane — identical bits to `cells[..] += w * bit`.
void add_weighted_multiselect(const std::int32_t* codes,
                              const std::uint64_t* masks,
                              const std::uint8_t* missing,
                              const double* weights, std::size_t lo,
                              std::size_t hi, std::size_t n_opts,
                              double* cells);

// out[i] = stream::mix64(in[i] ^ salt) — the count-min row hash
// (salt = mix64(seed + d + 1)) and HyperLogLog hash (salt = mix64(seed)).
void mix64_map(const std::uint64_t* in, std::size_t n, std::uint64_t salt,
               std::uint64_t* out);

// h[i] = stream::mix64(h[i] ^ cells[i]) — one column step of the
// TableSketch composite row key, applied to a whole block of rows.
void mix64_combine(std::uint64_t* h, const std::uint64_t* cells,
                   std::size_t n);

// Philox4x32-10 bulk generation: writes the 2 * nblocks u64 draws of
// blocks [block0, block0 + nblocks) of the given stream. round_keys is the
// 10-round bumped key schedule ({k0 + r*W0, k1 + r*W1} pairs, 20 words) —
// see simd::Philox, which owns the schedule and the draw convention.
void philox_fill_u64(std::uint64_t block0, std::uint64_t stream,
                     const std::uint32_t* round_keys, std::uint64_t* dst,
                     std::size_t nblocks);

// out[i] = (in[i] >> 11) * 0x1.0p-53 — the uniform-[0,1) convention shared
// with rcr::Rng::next_double, exact at every width.
void unit_doubles_from_u64(const std::uint64_t* in, std::size_t n,
                           double* out);

}  // namespace rcr::simd
