// Baseline translation unit of the kernel library: instantiates the scalar
// (L = 1) and SSE2 (L = 2) kernel bodies — both compile at the default
// x86-64 feature level — and routes every public entry point through the
// runtime-selected ISA. The AVX2 / AVX-512 instantiations live in their own
// TUs so only these files carry wide-vector code generation.
#include "simd/kernels.hpp"

#include "simd/dispatch.hpp"
#include "simd/kernels_impl.hpp"

namespace rcr::simd {

namespace detail {

RCR_SIMD_KERNEL_INSTANCES(, 1);
#if defined(RCR_SIMD_BUILD_SSE2) && defined(__SSE2__)
RCR_SIMD_KERNEL_INSTANCES(, 2);
#endif
#if defined(RCR_SIMD_BUILD_AVX2)
RCR_SIMD_KERNEL_INSTANCES(extern, 4);
#endif
#if defined(RCR_SIMD_BUILD_AVX512)
RCR_SIMD_KERNEL_INSTANCES(extern, 8);
#endif

}  // namespace detail

// Four-way dispatch: a case only exists when its TU was compiled, and
// active_isa() never returns an ISA whose build macro is absent
// (dispatch.cpp consults the same macros), so the default arm is always
// the scalar reference.
#if defined(RCR_SIMD_BUILD_AVX512)
#define RCR_SIMD_CASE_AVX512(fn, ...) \
  case Isa::kAvx512:                  \
    return detail::fn<8>(__VA_ARGS__);
#else
#define RCR_SIMD_CASE_AVX512(fn, ...)
#endif

#if defined(RCR_SIMD_BUILD_AVX2)
#define RCR_SIMD_CASE_AVX2(fn, ...) \
  case Isa::kAvx2:                  \
    return detail::fn<4>(__VA_ARGS__);
#else
#define RCR_SIMD_CASE_AVX2(fn, ...)
#endif

#if defined(RCR_SIMD_BUILD_SSE2) && defined(__SSE2__)
#define RCR_SIMD_CASE_SSE2(fn, ...) \
  case Isa::kSse2:                  \
    return detail::fn<2>(__VA_ARGS__);
#else
#define RCR_SIMD_CASE_SSE2(fn, ...)
#endif

#define RCR_SIMD_DISPATCH(fn, ...)          \
  switch (active_isa()) {                   \
    RCR_SIMD_CASE_AVX512(fn, __VA_ARGS__)   \
    RCR_SIMD_CASE_AVX2(fn, __VA_ARGS__)     \
    RCR_SIMD_CASE_SSE2(fn, __VA_ARGS__)     \
    default:                                \
      return detail::fn<1>(__VA_ARGS__);    \
  }

void tally_multiselect(const std::int32_t* codes, const std::uint64_t* masks,
                       std::size_t lo, std::size_t hi, std::size_t n_opts,
                       std::uint64_t* tallies) {
  RCR_SIMD_DISPATCH(tally_multiselect_impl, codes, masks, lo, hi, n_opts,
                    tallies);
}

std::size_t tally_options(const std::uint64_t* masks,
                          const std::uint8_t* missing, std::size_t lo,
                          std::size_t hi, std::size_t n_opts,
                          std::uint64_t* tallies) {
  RCR_SIMD_DISPATCH(tally_options_impl, masks, missing, lo, hi, n_opts,
                    tallies);
}

void add_weighted_multiselect(const std::int32_t* codes,
                              const std::uint64_t* masks,
                              const std::uint8_t* missing,
                              const double* weights, std::size_t lo,
                              std::size_t hi, std::size_t n_opts,
                              double* cells) {
  RCR_SIMD_DISPATCH(add_weighted_multiselect_impl, codes, masks, missing,
                    weights, lo, hi, n_opts, cells);
}

void mix64_map(const std::uint64_t* in, std::size_t n, std::uint64_t salt,
               std::uint64_t* out) {
  RCR_SIMD_DISPATCH(mix64_map_impl, in, n, salt, out);
}

void mix64_combine(std::uint64_t* h, const std::uint64_t* cells,
                   std::size_t n) {
  RCR_SIMD_DISPATCH(mix64_combine_impl, h, cells, n);
}

void philox_fill_u64(std::uint64_t block0, std::uint64_t stream,
                     const std::uint32_t* round_keys, std::uint64_t* dst,
                     std::size_t nblocks) {
  RCR_SIMD_DISPATCH(philox_fill_u64_impl, block0, stream, round_keys, dst,
                    nblocks);
}

void unit_doubles_from_u64(const std::uint64_t* in, std::size_t n,
                           double* out) {
  RCR_SIMD_DISPATCH(unit_doubles_from_u64_impl, in, n, out);
}

}  // namespace rcr::simd
