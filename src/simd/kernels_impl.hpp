// Width-generic kernel bodies. Each template here is instantiated once per
// compiled lane count: L = 1 and L = 2 in kernels.cpp (baseline flags),
// L = 4 in kernels_avx2.cpp (-mavx2), L = 8 in kernels_avx512.cpp
// (-mavx512f -mavx512dq). The bodies are written so every instantiation
// produces bitwise-identical output (see kernels.hpp); anything that could
// reassociate a floating-point sum is deliberately absent.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "simd/vec.hpp"
#include "util/error.hpp"

namespace rcr::simd::detail {

template <int L>
void tally_multiselect_impl(const std::int32_t* codes,
                            const std::uint64_t* masks, std::size_t lo,
                            std::size_t hi, std::size_t n_opts,
                            std::uint64_t* tallies) {
  using V = VU64<L>;
  const V one = V::set1(1);
  const V iota = V::iota();
  const std::size_t full = n_opts - n_opts % L;
  const int rem = static_cast<int>(n_opts - full);
  for (std::size_t i = lo; i < hi; ++i) {
    const std::int32_t r = codes[i];
    if (r < 0) continue;
    const V m = V::set1(masks[i]);
    std::uint64_t* row = tallies + static_cast<std::size_t>(r) * n_opts;
    std::size_t o = 0;
    for (; o < full; o += L) {
      const V bits = V::srlv(m, iota + V::set1(o)) & one;
      (V::load(row + o) + bits).store(row + o);
    }
    if (rem != 0) {
      // Masked-out lanes shift by >= n_opts (possibly >= 64, which srlv
      // defines as 0) and are never stored.
      const V bits = V::srlv(m, iota + V::set1(o)) & one;
      (V::load_first(row + o, rem) + bits).store_first(row + o, rem);
    }
  }
}

template <int L>
std::size_t tally_options_impl(const std::uint64_t* masks,
                               const std::uint8_t* missing, std::size_t lo,
                               std::size_t hi, std::size_t n_opts,
                               std::uint64_t* tallies) {
  using V = VU64<L>;
  const V one = V::set1(1);
  const V iota = V::iota();
  // Option-block outer loop: the accumulator lives in a register for the
  // whole row sweep (every row hits the same tally row), at the price of
  // re-reading the mask column once per block — it streams from cache.
  for (std::size_t o = 0; o < n_opts; o += L) {
    const int lanes = static_cast<int>(std::min<std::size_t>(L, n_opts - o));
    const V shifts = iota + V::set1(o);
    V acc = V::load_first(tallies + o, lanes);
    for (std::size_t i = lo; i < hi; ++i) {
      acc = acc + (V::srlv(V::set1(masks[i]), shifts) & one);
    }
    acc.store_first(tallies + o, lanes);
  }
  std::size_t miss = 0;
  for (std::size_t i = lo; i < hi; ++i) miss += missing[i] != 0 ? 1u : 0u;
  return miss;
}

template <int L>
void add_weighted_multiselect_impl(const std::int32_t* codes,
                                   const std::uint64_t* masks,
                                   const std::uint8_t* missing,
                                   const double* weights, std::size_t lo,
                                   std::size_t hi, std::size_t n_opts,
                                   double* cells) {
  using V = VU64<L>;
  using F = VF64<L>;
  const V one = V::set1(1);
  const V iota = V::iota();
  const std::size_t full = n_opts - n_opts % L;
  const int rem = static_cast<int>(n_opts - full);
  for (std::size_t i = lo; i < hi; ++i) {
    const std::int32_t r = codes[i];
    if (r < 0 || missing[i] != 0) continue;
    const double w = weights[i];
    if (w != w) continue;  // missing (NaN) weight drops the row
    RCR_CHECK_MSG(w >= 0.0, "weights must be non-negative");
    const F wv = F::set1(w);
    const V m = V::set1(masks[i]);
    double* row = cells + static_cast<std::size_t>(r) * n_opts;
    std::size_t o = 0;
    for (; o < full; o += L) {
      const V bits = V::srlv(m, iota + V::set1(o)) & one;
      (F::load(row + o) + F::masked01(bits, wv)).store(row + o);
    }
    if (rem != 0) {
      const V bits = V::srlv(m, iota + V::set1(o)) & one;
      (F::load_first(row + o, rem) + F::masked01(bits, wv))
          .store_first(row + o, rem);
    }
  }
}

// stream::mix64 lifted lane-wise (same constants, same shifts).
template <int L>
inline VU64<L> mix64_v(VU64<L> z) {
  using V = VU64<L>;
  z = z + V::set1(0x9E3779B97F4A7C15ULL);
  z = V::mullo(z ^ z.template srl<30>(), V::set1(0xBF58476D1CE4E5B9ULL));
  z = V::mullo(z ^ z.template srl<27>(), V::set1(0x94D049BB133111EBULL));
  return z ^ z.template srl<31>();
}

template <int L>
void mix64_map_impl(const std::uint64_t* in, std::size_t n,
                    std::uint64_t salt, std::uint64_t* out) {
  using V = VU64<L>;
  const V saltv = V::set1(salt);
  std::size_t i = 0;
  for (; i + L <= n; i += L) {
    mix64_v<L>(V::load(in + i) ^ saltv).store(out + i);
  }
  const int rem = static_cast<int>(n - i);
  if (rem != 0) {
    mix64_v<L>(V::load_first(in + i, rem) ^ saltv)
        .store_first(out + i, rem);
  }
}

template <int L>
void mix64_combine_impl(std::uint64_t* h, const std::uint64_t* cells,
                        std::size_t n) {
  using V = VU64<L>;
  std::size_t i = 0;
  for (; i + L <= n; i += L) {
    mix64_v<L>(V::load(h + i) ^ V::load(cells + i)).store(h + i);
  }
  const int rem = static_cast<int>(n - i);
  if (rem != 0) {
    mix64_v<L>(V::load_first(h + i, rem) ^ V::load_first(cells + i, rem))
        .store_first(h + i, rem);
  }
}

// Philox4x32-10 over L blocks at a time. Each u64 lane carries one 32-bit
// counter word zero-extended, so mul_lo32 delivers the exact 64-bit
// product the round function splits into hi/lo halves — no widening
// shuffle needed. Trailing blocks (nblocks % L) rerun the same body at
// L = 1, which is identical math on one lane.
template <int L>
void philox_fill_u64_impl(std::uint64_t block0, std::uint64_t stream,
                          const std::uint32_t* round_keys,
                          std::uint64_t* dst, std::size_t nblocks) {
  using V = VU64<L>;
  const V lo32 = V::set1(0xFFFFFFFFULL);
  const V m0 = V::set1(0xD2511F53ULL);
  const V m1 = V::set1(0xCD9E8D57ULL);
  const V c2_init = V::set1(stream & 0xFFFFFFFFULL);
  const V c3_init = V::set1(stream >> 32);
  const V iota = V::iota();
  for (std::size_t b = 0; b + L <= nblocks; b += L) {
    const V bn = V::set1(block0 + b) + iota;
    V c0 = bn & lo32;
    V c1 = bn.template srl<32>();
    V c2 = c2_init;
    V c3 = c3_init;
    for (int r = 0; r < 10; ++r) {
      const V p0 = V::mul_lo32(m0, c0);
      const V p1 = V::mul_lo32(m1, c2);
      const V k0 = V::set1(round_keys[2 * r]);
      const V k1 = V::set1(round_keys[2 * r + 1]);
      c0 = p1.template srl<32>() ^ c1 ^ k0;
      c1 = p1 & lo32;
      c2 = p0.template srl<32>() ^ c3 ^ k1;
      c3 = p0 & lo32;
    }
    // Draw 2b = x0 | x1 << 32, draw 2b+1 = x2 | x3 << 32, in stream order.
    const V even = c0 | c1.template sll<32>();
    const V odd = c2 | c3.template sll<32>();
    V::interleave_store(dst + 2 * b, even, odd);
  }
  if constexpr (L > 1) {
    const std::size_t done = nblocks - nblocks % L;
    if (done != nblocks) {
      philox_fill_u64_impl<1>(block0 + done, stream, round_keys,
                              dst + 2 * done, nblocks - done);
    }
  }
}

template <int L>
void unit_doubles_from_u64_impl(const std::uint64_t* in, std::size_t n,
                                double* out) {
  using V = VU64<L>;
  using F = VF64<L>;
  const F scale = F::set1(0x1.0p-53);
  std::size_t i = 0;
  for (; i + L <= n; i += L) {
    (F::from_u53(V::load(in + i).template srl<11>()) * scale).store(out + i);
  }
  const int rem = static_cast<int>(n - i);
  if (rem != 0) {
    (F::from_u53(V::load_first(in + i, rem).template srl<11>()) * scale)
        .store_first(out + i, rem);
  }
}

}  // namespace rcr::simd::detail

// Explicit-instantiation helper: KW is `extern` for declarations (in
// kernels.cpp, pointing at the wide TUs) and empty for definitions.
#define RCR_SIMD_KERNEL_INSTANCES(KW, L)                                     \
  KW template void tally_multiselect_impl<L>(                                \
      const std::int32_t*, const std::uint64_t*, std::size_t, std::size_t,   \
      std::size_t, std::uint64_t*);                                          \
  KW template std::size_t tally_options_impl<L>(                             \
      const std::uint64_t*, const std::uint8_t*, std::size_t, std::size_t,   \
      std::size_t, std::uint64_t*);                                          \
  KW template void add_weighted_multiselect_impl<L>(                         \
      const std::int32_t*, const std::uint64_t*, const std::uint8_t*,        \
      const double*, std::size_t, std::size_t, std::size_t, double*);        \
  KW template void mix64_map_impl<L>(const std::uint64_t*, std::size_t,      \
                                     std::uint64_t, std::uint64_t*);         \
  KW template void mix64_combine_impl<L>(std::uint64_t*,                     \
                                         const std::uint64_t*, std::size_t); \
  KW template void philox_fill_u64_impl<L>(                                  \
      std::uint64_t, std::uint64_t, const std::uint32_t*, std::uint64_t*,    \
      std::size_t);                                                          \
  KW template void unit_doubles_from_u64_impl<L>(const std::uint64_t*,       \
                                                 std::size_t, double*)
