// V<L> — the width-generic SIMD value types of rcr::simd.
//
// One kernel body, written against VU64<L> (L unsigned 64-bit lanes) and
// VF64<L> (L doubles), compiles at every lane count: L = 1 is plain scalar
// code, L = 2 maps to SSE2, L = 4 to AVX2, L = 8 to AVX-512 (F + DQ). The
// style follows fabiocannizzo/MT19937-SIMD: a thin struct around the native
// register with static factory loads, member stores, and operator
// overloads, so the kernel source reads like scalar arithmetic.
//
// Two rules keep every instantiation bitwise-identical to the scalar one:
//
//   * Only lane-local operations are exposed. There is deliberately no
//     horizontal add/reduce: reassociating a floating-point sum changes
//     bits, and the toolkit's determinism contract (DESIGN.md) forbids it.
//     Kernels that accumulate doubles do so lane-parallel into memory the
//     scalar code would touch in the same per-cell order.
//   * Tails are handled with masked loads/stores (`first_n` lanes), never
//     by over-reading or over-writing — the masked-out lanes are not
//     accessed, so kernels stay clean under ASan and on page boundaries.
//
// Each specialization is guarded by the compiler's ISA macros; the wide
// ones only exist inside translation units compiled with -mavx2 /
// -mavx512f -mavx512dq (see src/simd/CMakeLists.txt). Runtime selection
// between the compiled widths lives in dispatch.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#define RCR_SIMD_X86 1
#include <immintrin.h>
#endif

namespace rcr::simd {

template <int L>
struct VU64;
template <int L>
struct VF64;

// Bit patterns for the u64 -> f64 exact-conversion trick (see from_u53).
inline constexpr std::uint64_t kExpBits52 = 0x4330000000000000ULL;  // 2^52
inline constexpr std::uint64_t kExpBits84 = 0x4530000000000000ULL;  // 2^84

// --- L = 1: the scalar reference every wider width must match --------------

template <>
struct VU64<1> {
  static constexpr int kLanes = 1;
  std::uint64_t v;

  static VU64 load(const std::uint64_t* p) { return {*p}; }
  static VU64 set1(std::uint64_t x) { return {x}; }
  static VU64 zero() { return {0}; }
  // Lane i holds i.
  static VU64 iota() { return {0}; }
  // First `n` lanes only (n in [0, kLanes]); other lanes are untouched
  // memory (load returns zero there).
  static VU64 load_first(const std::uint64_t* p, int n) {
    return {n > 0 ? *p : 0};
  }
  void store(std::uint64_t* p) const { *p = v; }
  void store_first(std::uint64_t* p, int n) const {
    if (n > 0) *p = v;
  }

  friend VU64 operator+(VU64 a, VU64 b) { return {a.v + b.v}; }
  friend VU64 operator-(VU64 a, VU64 b) { return {a.v - b.v}; }
  friend VU64 operator&(VU64 a, VU64 b) { return {a.v & b.v}; }
  friend VU64 operator|(VU64 a, VU64 b) { return {a.v | b.v}; }
  friend VU64 operator^(VU64 a, VU64 b) { return {a.v ^ b.v}; }

  template <int K>
  VU64 srl() const {
    return {v >> K};
  }
  template <int K>
  VU64 sll() const {
    return {v << K};
  }
  // Per-lane variable right shift; shifts >= 64 yield 0 (hardware vpsrlvq
  // semantics — C++ leaves them undefined, so guard explicitly).
  static VU64 srlv(VU64 x, VU64 counts) {
    return {counts.v >= 64 ? 0 : x.v >> counts.v};
  }
  // Full 64x64 -> low 64 multiply.
  static VU64 mullo(VU64 a, VU64 b) { return {a.v * b.v}; }
  // Exact 32x32 -> 64 multiply of the low halves of each lane.
  static VU64 mul_lo32(VU64 a, VU64 b) {
    return {static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.v)) *
            static_cast<std::uint32_t>(b.v)};
  }
  // p[2i] = even.lane(i), p[2i+1] = odd.lane(i) — the Philox draw order.
  static void interleave_store(std::uint64_t* p, VU64 even, VU64 odd) {
    p[0] = even.v;
    p[1] = odd.v;
  }
};

template <>
struct VF64<1> {
  static constexpr int kLanes = 1;
  double v;

  static VF64 load(const double* p) { return {*p}; }
  static VF64 set1(double x) { return {x}; }
  static VF64 zero() { return {0.0}; }
  static VF64 load_first(const double* p, int n) { return {n > 0 ? *p : 0.0}; }
  void store(double* p) const { *p = v; }
  void store_first(double* p, int n) const {
    if (n > 0) *p = v;
  }

  friend VF64 operator+(VF64 a, VF64 b) { return {a.v + b.v}; }
  friend VF64 operator*(VF64 a, VF64 b) { return {a.v * b.v}; }

  // Lane-wise select: w where bits01 lane == 1, +0.0 where it is 0. Exactly
  // `w * bit` for bit in {0,1} (w * 1.0 == w and w * 0.0 == +0.0 bitwise
  // for non-NaN, non-negative w), with no multiply on the critical path.
  static VF64 masked01(VU64<1> bits01, VF64 w) {
    return {bits01.v != 0 ? w.v : 0.0};
  }
  // Exact conversion of integer lanes < 2^53 to double.
  static VF64 from_u53(VU64<1> x) { return {static_cast<double>(x.v)}; }
};

// --- L = 2: SSE2 ------------------------------------------------------------

#if defined(RCR_SIMD_X86) && defined(__SSE2__)
template <>
struct VU64<2> {
  static constexpr int kLanes = 2;
  __m128i v;

  static VU64 load(const std::uint64_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  static VU64 set1(std::uint64_t x) {
    return {_mm_set1_epi64x(static_cast<long long>(x))};
  }
  static VU64 zero() { return {_mm_setzero_si128()}; }
  static VU64 iota() { return {_mm_set_epi64x(1, 0)}; }
  static VU64 load_first(const std::uint64_t* p, int n) {
    // SSE2 has no masked loads; a lane loop keeps masked-out memory
    // untouched (n < kLanes only on tails).
    alignas(16) std::uint64_t tmp[2] = {0, 0};
    for (int i = 0; i < n; ++i) tmp[i] = p[i];
    return {_mm_load_si128(reinterpret_cast<const __m128i*>(tmp))};
  }
  void store(std::uint64_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  void store_first(std::uint64_t* p, int n) const {
    alignas(16) std::uint64_t tmp[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), v);
    for (int i = 0; i < n; ++i) p[i] = tmp[i];
  }

  friend VU64 operator+(VU64 a, VU64 b) { return {_mm_add_epi64(a.v, b.v)}; }
  friend VU64 operator-(VU64 a, VU64 b) { return {_mm_sub_epi64(a.v, b.v)}; }
  friend VU64 operator&(VU64 a, VU64 b) { return {_mm_and_si128(a.v, b.v)}; }
  friend VU64 operator|(VU64 a, VU64 b) { return {_mm_or_si128(a.v, b.v)}; }
  friend VU64 operator^(VU64 a, VU64 b) { return {_mm_xor_si128(a.v, b.v)}; }

  template <int K>
  VU64 srl() const {
    return {_mm_srli_epi64(v, K)};
  }
  template <int K>
  VU64 sll() const {
    return {_mm_slli_epi64(v, K)};
  }
  static VU64 srlv(VU64 x, VU64 counts) {
    // No vpsrlvq before AVX2: shift each lane through the scalar path.
    alignas(16) std::uint64_t xv[2], cv[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(xv), x.v);
    _mm_store_si128(reinterpret_cast<__m128i*>(cv), counts.v);
    for (int i = 0; i < 2; ++i) xv[i] = cv[i] >= 64 ? 0 : xv[i] >> cv[i];
    return {_mm_load_si128(reinterpret_cast<const __m128i*>(xv))};
  }
  static VU64 mullo(VU64 a, VU64 b) {
    // 64x64 low product from three 32x32 partials:
    //   lo(a*b) = lo32(a)*lo32(b) + ((lo32(a)*hi32(b) + hi32(a)*lo32(b)) << 32)
    const __m128i a_hi = _mm_srli_epi64(a.v, 32);
    const __m128i b_hi = _mm_srli_epi64(b.v, 32);
    const __m128i ll = _mm_mul_epu32(a.v, b.v);
    const __m128i lh = _mm_mul_epu32(a.v, b_hi);
    const __m128i hl = _mm_mul_epu32(a_hi, b.v);
    const __m128i cross = _mm_slli_epi64(_mm_add_epi64(lh, hl), 32);
    return {_mm_add_epi64(ll, cross)};
  }
  static VU64 mul_lo32(VU64 a, VU64 b) { return {_mm_mul_epu32(a.v, b.v)}; }
  static void interleave_store(std::uint64_t* p, VU64 even, VU64 odd) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p),
                     _mm_unpacklo_epi64(even.v, odd.v));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p + 2),
                     _mm_unpackhi_epi64(even.v, odd.v));
  }
};

template <>
struct VF64<2> {
  static constexpr int kLanes = 2;
  __m128d v;

  static VF64 load(const double* p) { return {_mm_loadu_pd(p)}; }
  static VF64 set1(double x) { return {_mm_set1_pd(x)}; }
  static VF64 zero() { return {_mm_setzero_pd()}; }
  static VF64 load_first(const double* p, int n) {
    alignas(16) double tmp[2] = {0.0, 0.0};
    for (int i = 0; i < n; ++i) tmp[i] = p[i];
    return {_mm_load_pd(tmp)};
  }
  void store(double* p) const { _mm_storeu_pd(p, v); }
  void store_first(double* p, int n) const {
    alignas(16) double tmp[2];
    _mm_store_pd(tmp, v);
    for (int i = 0; i < n; ++i) p[i] = tmp[i];
  }

  friend VF64 operator+(VF64 a, VF64 b) { return {_mm_add_pd(a.v, b.v)}; }
  friend VF64 operator*(VF64 a, VF64 b) { return {_mm_mul_pd(a.v, b.v)}; }

  static VF64 masked01(VU64<2> bits01, VF64 w) {
    // 0 - bit gives an all-ones / all-zeros lane mask without the 64-bit
    // compare SSE2 lacks; AND keeps w or leaves +0.0.
    const __m128i mask = _mm_sub_epi64(_mm_setzero_si128(), bits01.v);
    return {_mm_and_pd(_mm_castsi128_pd(mask), w.v)};
  }
  static VF64 from_u53(VU64<2> x) {
    // Exact for x < 2^53: assemble hi32 * 2^32 + lo32 from the mantissas of
    // two magic-biased doubles. Both partials and their sum are exact.
    const __m128i lo =
        _mm_or_si128(_mm_and_si128(x.v, _mm_set1_epi64x(0xFFFFFFFFLL)),
                     _mm_set1_epi64x(static_cast<long long>(kExpBits52)));
    const __m128i hi =
        _mm_or_si128(_mm_srli_epi64(x.v, 32),
                     _mm_set1_epi64x(static_cast<long long>(kExpBits84)));
    const __m128d hi_d = _mm_sub_pd(
        _mm_castsi128_pd(hi),
        _mm_add_pd(_mm_set1_pd(0x1.0p84), _mm_set1_pd(0x1.0p52)));
    return {_mm_add_pd(hi_d, _mm_castsi128_pd(lo))};
  }
};
#endif  // __SSE2__

// --- L = 4: AVX2 ------------------------------------------------------------

#if defined(RCR_SIMD_X86) && defined(__AVX2__)
template <>
struct VU64<4> {
  static constexpr int kLanes = 4;
  __m256i v;

  static VU64 load(const std::uint64_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static VU64 set1(std::uint64_t x) {
    return {_mm256_set1_epi64x(static_cast<long long>(x))};
  }
  static VU64 zero() { return {_mm256_setzero_si256()}; }
  static VU64 iota() { return {_mm256_set_epi64x(3, 2, 1, 0)}; }
  static __m256i first_n_mask(int n) {
    return _mm256_cmpgt_epi64(_mm256_set1_epi64x(n), iota().v);
  }
  static VU64 load_first(const std::uint64_t* p, int n) {
    // vpmaskmovq suppresses access to masked-out lanes entirely.
    return {_mm256_maskload_epi64(reinterpret_cast<const long long*>(p),
                                  first_n_mask(n))};
  }
  void store(std::uint64_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  void store_first(std::uint64_t* p, int n) const {
    _mm256_maskstore_epi64(reinterpret_cast<long long*>(p), first_n_mask(n),
                           v);
  }

  friend VU64 operator+(VU64 a, VU64 b) {
    return {_mm256_add_epi64(a.v, b.v)};
  }
  friend VU64 operator-(VU64 a, VU64 b) {
    return {_mm256_sub_epi64(a.v, b.v)};
  }
  friend VU64 operator&(VU64 a, VU64 b) {
    return {_mm256_and_si256(a.v, b.v)};
  }
  friend VU64 operator|(VU64 a, VU64 b) {
    return {_mm256_or_si256(a.v, b.v)};
  }
  friend VU64 operator^(VU64 a, VU64 b) {
    return {_mm256_xor_si256(a.v, b.v)};
  }

  template <int K>
  VU64 srl() const {
    return {_mm256_srli_epi64(v, K)};
  }
  template <int K>
  VU64 sll() const {
    return {_mm256_slli_epi64(v, K)};
  }
  static VU64 srlv(VU64 x, VU64 counts) {
    return {_mm256_srlv_epi64(x.v, counts.v)};
  }
  static VU64 mullo(VU64 a, VU64 b) {
    const __m256i a_hi = _mm256_srli_epi64(a.v, 32);
    const __m256i b_hi = _mm256_srli_epi64(b.v, 32);
    const __m256i ll = _mm256_mul_epu32(a.v, b.v);
    const __m256i lh = _mm256_mul_epu32(a.v, b_hi);
    const __m256i hl = _mm256_mul_epu32(a_hi, b.v);
    const __m256i cross = _mm256_slli_epi64(_mm256_add_epi64(lh, hl), 32);
    return {_mm256_add_epi64(ll, cross)};
  }
  static VU64 mul_lo32(VU64 a, VU64 b) {
    return {_mm256_mul_epu32(a.v, b.v)};
  }
  static void interleave_store(std::uint64_t* p, VU64 even, VU64 odd) {
    // unpack works within 128-bit halves; permute2x128 reassembles the
    // sequential order {e0,o0,e1,o1 | e2,o2,e3,o3}.
    const __m256i lo = _mm256_unpacklo_epi64(even.v, odd.v);  // e0 o0 e2 o2
    const __m256i hi = _mm256_unpackhi_epi64(even.v, odd.v);  // e1 o1 e3 o3
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p),
                        _mm256_permute2x128_si256(lo, hi, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + 4),
                        _mm256_permute2x128_si256(lo, hi, 0x31));
  }
};

template <>
struct VF64<4> {
  static constexpr int kLanes = 4;
  __m256d v;

  static VF64 load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static VF64 set1(double x) { return {_mm256_set1_pd(x)}; }
  static VF64 zero() { return {_mm256_setzero_pd()}; }
  static VF64 load_first(const double* p, int n) {
    return {_mm256_maskload_pd(p, VU64<4>::first_n_mask(n))};
  }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  void store_first(double* p, int n) const {
    _mm256_maskstore_pd(p, VU64<4>::first_n_mask(n), v);
  }

  friend VF64 operator+(VF64 a, VF64 b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend VF64 operator*(VF64 a, VF64 b) { return {_mm256_mul_pd(a.v, b.v)}; }

  static VF64 masked01(VU64<4> bits01, VF64 w) {
    const __m256i mask = _mm256_sub_epi64(_mm256_setzero_si256(), bits01.v);
    return {_mm256_and_pd(_mm256_castsi256_pd(mask), w.v)};
  }
  static VF64 from_u53(VU64<4> x) {
    const __m256i lo = _mm256_or_si256(
        _mm256_and_si256(x.v, _mm256_set1_epi64x(0xFFFFFFFFLL)),
        _mm256_set1_epi64x(static_cast<long long>(kExpBits52)));
    const __m256i hi = _mm256_or_si256(
        _mm256_srli_epi64(x.v, 32),
        _mm256_set1_epi64x(static_cast<long long>(kExpBits84)));
    const __m256d hi_d = _mm256_sub_pd(
        _mm256_castsi256_pd(hi),
        _mm256_add_pd(_mm256_set1_pd(0x1.0p84), _mm256_set1_pd(0x1.0p52)));
    return {_mm256_add_pd(hi_d, _mm256_castsi256_pd(lo))};
  }
};
#endif  // __AVX2__

// --- L = 8: AVX-512 (F + DQ) ------------------------------------------------

#if defined(RCR_SIMD_X86) && defined(__AVX512F__) && defined(__AVX512DQ__)
template <>
struct VU64<8> {
  static constexpr int kLanes = 8;
  __m512i v;

  static VU64 load(const std::uint64_t* p) {
    return {_mm512_loadu_si512(p)};
  }
  static VU64 set1(std::uint64_t x) {
    return {_mm512_set1_epi64(static_cast<long long>(x))};
  }
  static VU64 zero() { return {_mm512_setzero_si512()}; }
  static VU64 iota() { return {_mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0)}; }
  static __mmask8 first_n_mask(int n) {
    return static_cast<__mmask8>((1u << n) - 1u);
  }
  static VU64 load_first(const std::uint64_t* p, int n) {
    return {_mm512_maskz_loadu_epi64(first_n_mask(n), p)};
  }
  void store(std::uint64_t* p) const { _mm512_storeu_si512(p, v); }
  void store_first(std::uint64_t* p, int n) const {
    _mm512_mask_storeu_epi64(p, first_n_mask(n), v);
  }

  friend VU64 operator+(VU64 a, VU64 b) {
    return {_mm512_add_epi64(a.v, b.v)};
  }
  friend VU64 operator-(VU64 a, VU64 b) {
    return {_mm512_sub_epi64(a.v, b.v)};
  }
  friend VU64 operator&(VU64 a, VU64 b) {
    return {_mm512_and_si512(a.v, b.v)};
  }
  friend VU64 operator|(VU64 a, VU64 b) {
    return {_mm512_or_si512(a.v, b.v)};
  }
  friend VU64 operator^(VU64 a, VU64 b) {
    return {_mm512_xor_si512(a.v, b.v)};
  }

  template <int K>
  VU64 srl() const {
    return {_mm512_srli_epi64(v, K)};
  }
  template <int K>
  VU64 sll() const {
    return {_mm512_slli_epi64(v, K)};
  }
  static VU64 srlv(VU64 x, VU64 counts) {
    return {_mm512_srlv_epi64(x.v, counts.v)};
  }
  static VU64 mullo(VU64 a, VU64 b) {
    return {_mm512_mullo_epi64(a.v, b.v)};  // vpmullq (DQ)
  }
  static VU64 mul_lo32(VU64 a, VU64 b) {
    return {_mm512_mul_epu32(a.v, b.v)};
  }
  static void interleave_store(std::uint64_t* p, VU64 even, VU64 odd) {
    const __m512i idx_lo =
        _mm512_set_epi64(11, 3, 10, 2, 9, 1, 8, 0);  // e0 o0 .. e3 o3
    const __m512i idx_hi =
        _mm512_set_epi64(15, 7, 14, 6, 13, 5, 12, 4);  // e4 o4 .. e7 o7
    _mm512_storeu_si512(p, _mm512_permutex2var_epi64(even.v, idx_lo, odd.v));
    _mm512_storeu_si512(p + 8,
                        _mm512_permutex2var_epi64(even.v, idx_hi, odd.v));
  }
};

template <>
struct VF64<8> {
  static constexpr int kLanes = 8;
  __m512d v;

  static VF64 load(const double* p) { return {_mm512_loadu_pd(p)}; }
  static VF64 set1(double x) { return {_mm512_set1_pd(x)}; }
  static VF64 zero() { return {_mm512_setzero_pd()}; }
  static VF64 load_first(const double* p, int n) {
    return {_mm512_maskz_loadu_pd(VU64<8>::first_n_mask(n), p)};
  }
  void store(double* p) const { _mm512_storeu_pd(p, v); }
  void store_first(double* p, int n) const {
    _mm512_mask_storeu_pd(p, VU64<8>::first_n_mask(n), v);
  }

  friend VF64 operator+(VF64 a, VF64 b) { return {_mm512_add_pd(a.v, b.v)}; }
  friend VF64 operator*(VF64 a, VF64 b) { return {_mm512_mul_pd(a.v, b.v)}; }

  static VF64 masked01(VU64<8> bits01, VF64 w) {
    return {_mm512_maskz_mov_pd(_mm512_test_epi64_mask(bits01.v, bits01.v),
                                w.v)};
  }
  static VF64 from_u53(VU64<8> x) {
    return {_mm512_cvtepu64_pd(x.v)};  // vcvtuqq2pd (DQ); exact below 2^53
  }
};
#endif  // __AVX512F__ && __AVX512DQ__

}  // namespace rcr::simd
