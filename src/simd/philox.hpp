// Philox4x32-10 — a counter-based, splittable RNG (Salmon et al.,
// "Parallel Random Numbers: As Easy as 1, 2, 3", SC'11; the Random123
// reference implementation defines the algorithm).
//
// Where xoshiro256** (util/rng.hpp) carries 256 bits of sequential state,
// Philox is a pure function: draw i of stream s under seed k is
// block(counter = {i/2, s}, key = k) with no state to advance. That buys
// the two properties the sequential generators cannot offer:
//
//   * O(1) arbitrary offset — skip(n) is `pos += n`, so a shard can jump
//     straight to its slice of a logical stream without generating (or
//     jump-polynomial-ing) everything before it;
//   * cheap splitting — substream(s) reuses the key schedule with a new
//     64-bit stream id packed into the counter's high half: 2^64
//     independent streams per seed, each 2^65 draws long, with no
//     correlation concerns beyond the cipher itself (Philox passes
//     BigCrush).
//
// Draw convention: block b of stream s yields output words x0..x3 (each 32
// bits); draw 2b is x0 | x1 << 32 and draw 2b+1 is x2 | x3 << 32.
// next_double() maps a draw through (u >> 11) * 2^-53, the same convention
// as Rng::next_double. fill_u64/fill_double produce exactly the scalar
// call sequence (vectorized L blocks at a time through simd::philox_fill_u64,
// which the determinism suite pins against the scalar path), so converting
// a draw loop to a fill never changes any output.
//
// Like the XXH64-from-spec implementation in util/hash.hpp, the test suite
// pins the published Random123 known-answer vectors, so this generator can
// never drift silently from the spec.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace rcr::simd {

class Philox {
 public:
  // Multipliers and Weyl key increments from the Philox4x32 spec.
  static constexpr std::uint32_t kMult0 = 0xD2511F53u;
  static constexpr std::uint32_t kMult1 = 0xCD9E8D57u;
  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1
  static constexpr int kRounds = 10;

  explicit Philox(std::uint64_t seed = 0x9E3779B97F4A7C15ULL,
                  std::uint64_t stream = 0);

  // The 10-round reference permutation, straight from the spec: counter
  // words {c0..c3}, key {k0, k1} bumped by the Weyl constants each round.
  // Exposed so tests can pin the published known-answer vectors.
  static std::array<std::uint32_t, 4> block(
      const std::array<std::uint32_t, 4>& ctr,
      const std::array<std::uint32_t, 2>& key);

  std::uint64_t next_u64();
  // Uniform in [0, 1), 53 bits: (next_u64() >> 11) * 2^-53.
  double next_double();

  // Batched draws; exactly the sequence of the equivalent scalar loop.
  void fill_u64(std::span<std::uint64_t> out);
  void fill_double(std::span<double> out);

  // O(1) stream positioning: skip(n) advances past n draws; seek(p) jumps
  // to absolute draw index p; position() is the index of the next draw.
  void skip(std::uint64_t n) { pos_ += n; }
  void seek(std::uint64_t p) { pos_ = p; }
  std::uint64_t position() const { return pos_; }

  std::uint64_t seed() const { return seed_; }
  std::uint64_t stream() const { return stream_; }

  // An independent generator on stream `s` of the same seed, at draw 0.
  Philox substream(std::uint64_t s) const { return Philox(seed_, s); }

 private:
  std::array<std::uint64_t, 2> draws_of_block(std::uint64_t b) const;

  std::uint64_t seed_;
  std::uint64_t stream_;
  std::uint64_t pos_ = 0;
  // Bumped key schedule {k0 + r*W0, k1 + r*W1} for r in [0, kRounds) —
  // precomputed once so the per-block hot path carries no key updates.
  std::array<std::uint32_t, 2 * kRounds> round_keys_{};
  // next_u64 generates a whole block (2 draws) at a time; remember it so
  // the odd draw of a pair costs nothing.
  std::uint64_t cached_block_ = ~std::uint64_t{0};
  std::array<std::uint64_t, 2> cached_draws_{};
};

}  // namespace rcr::simd
