#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace rcr::simd {

namespace {

// -1 == unresolved; otherwise a cached static_cast<int>(Isa).
std::atomic<int> g_active{-1};
std::atomic<int> g_override{-1};

bool compiled(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
#if defined(RCR_SIMD_BUILD_SSE2)
      return true;
#else
      return false;
#endif
    case Isa::kAvx2:
#if defined(RCR_SIMD_BUILD_AVX2)
      return true;
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(RCR_SIMD_BUILD_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool cpu_supports(Isa isa) {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
      return true;  // baseline on x86-64
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2");
    case Isa::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq");
  }
  return false;
#else
  return isa == Isa::kScalar;
#endif
}

// Widest available ISA with lane count <= max_lanes.
Isa widest_within(std::size_t max_lanes) {
  for (const Isa isa : {Isa::kAvx512, Isa::kAvx2, Isa::kSse2}) {
    if (isa_lanes(isa) <= max_lanes && isa_available(isa)) return isa;
  }
  return Isa::kScalar;
}

Isa resolve() {
  if (const char* env = std::getenv("RCR_SIMD_WIDTH")) {
    char* end = nullptr;
    const long lanes = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && lanes >= 1 && lanes <= 8) {
      return widest_within(static_cast<std::size_t>(lanes));
    }
    std::fprintf(stderr,
                 "rcr::simd: ignoring invalid RCR_SIMD_WIDTH='%s' "
                 "(want 1, 2, 4 or 8)\n",
                 env);
  }
  return widest_within(8);
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kSse2: return "sse2";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
  }
  return "unknown";
}

std::size_t isa_lanes(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return 1;
    case Isa::kSse2: return 2;
    case Isa::kAvx2: return 4;
    case Isa::kAvx512: return 8;
  }
  return 1;
}

bool isa_available(Isa isa) { return compiled(isa) && cpu_supports(isa); }

Isa active_isa() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Isa>(forced);
  int cached = g_active.load(std::memory_order_relaxed);
  if (cached < 0) {
    cached = static_cast<int>(resolve());
    g_active.store(cached, std::memory_order_relaxed);
  }
  return static_cast<Isa>(cached);
}

void force_isa(Isa isa) {
  RCR_CHECK_MSG(isa_available(isa),
                std::string("cannot force unavailable ISA ") + isa_name(isa));
  g_override.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void clear_isa_override() {
  g_override.store(-1, std::memory_order_relaxed);
}

std::string describe() {
  const Isa isa = active_isa();
  return std::string(isa_name(isa)) + " lanes=" +
         std::to_string(isa_lanes(isa));
}

}  // namespace rcr::simd
