// AVX-512 (L = 8) instantiations. This TU is compiled with
// -mavx512f -mavx512dq (see CMakeLists.txt); the guard keeps it an empty
// TU if the flags ever go missing.
#include "simd/kernels_impl.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__)
namespace rcr::simd::detail {
RCR_SIMD_KERNEL_INSTANCES(, 8);
}  // namespace rcr::simd::detail
#endif
