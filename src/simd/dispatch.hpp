// Runtime ISA selection for the rcr::simd kernels.
//
// Every kernel body is instantiated once per lane width in translation
// units compiled with the matching -m flags (see src/simd/CMakeLists.txt);
// kernels.cpp routes each public entry point through the Isa returned by
// active_isa(). Selection is a cached switch rather than target_clones /
// ifunc resolvers because the determinism suite must be able to force the
// scalar path at runtime (ifunc binds once at load, before main, and
// misbehaves under TSan — the same reason RCR_RNG_KERNEL is gated off for
// sanitized builds in util/rng.cpp).
//
// Resolution order, widest wins within each source:
//   1. force_isa() override (tests; cleared with clear_isa_override());
//   2. the RCR_SIMD_WIDTH environment variable — lane count 1, 2, 4 or 8,
//      clamped down to the widest compiled-and-supported width <= request;
//   3. CPU detection over the compiled-in widths.
// Building with -DRCR_SIMD_WIDTH=1 compiles only the scalar kernels, so
// every route collapses to kScalar.
#pragma once

#include <cstddef>
#include <string>

namespace rcr::simd {

enum class Isa : int {
  kScalar = 0,  // V<1> — the reference every other width must match
  kSse2 = 1,    // V<2>
  kAvx2 = 2,    // V<4>
  kAvx512 = 3,  // V<8> (F + DQ)
};

// "scalar", "sse2", "avx2", "avx512".
const char* isa_name(Isa isa);

// 1, 2, 4, 8.
std::size_t isa_lanes(Isa isa);

// True when the width was compiled in AND the running CPU supports it.
bool isa_available(Isa isa);

// The ISA the kernels will dispatch to, resolved once and cached.
Isa active_isa();

// Test hook: pin dispatch to `isa` (must be available). Takes effect on
// the next active_isa() call; not thread-safe against in-flight kernels,
// so only flip it from test/bench setup code.
void force_isa(Isa isa);
void clear_isa_override();

// One-line summary for bench stderr echoes: "avx512 lanes=8".
std::string describe();

}  // namespace rcr::simd
