#include "util/mmap_file.hpp"

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define RCR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define RCR_HAVE_MMAP 0
#include <fstream>
#endif

namespace rcr::util {

namespace {

[[noreturn]] void open_fail(const std::string& path, const std::string& why) {
  throw rcr::InvalidInputError("cannot map file: " + path + " (" + why + ")");
}

}  // namespace

std::shared_ptr<MappedFile> MappedFile::open(const std::string& path) {
  // make_shared needs a public constructor; this keeps it private.
  std::shared_ptr<MappedFile> file(new MappedFile());
  file->path_ = path;

#if RCR_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) open_fail(path, std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    open_fail(path, std::strerror(err));
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    // mmap rejects zero-length mappings; an empty file is a valid (if
    // doomed-to-fail-validation) input, represented as an empty view.
    ::close(fd);
    file->size_ = 0;
    return file;
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_err = errno;
  ::close(fd);  // the mapping keeps its own reference to the file
  if (addr == MAP_FAILED) open_fail(path, std::strerror(map_err));
  file->map_addr_ = addr;
  file->data_ = static_cast<const unsigned char*>(addr);
  file->size_ = size;
  file->mapped_ = true;
#else
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) open_fail(path, "open failed");
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  file->fallback_.resize(size);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(file->fallback_.data()),
               static_cast<std::streamsize>(size)))
    open_fail(path, "short read");
  file->data_ = file->fallback_.data();
  file->size_ = size;
#endif
  return file;
}

MappedFile::~MappedFile() {
#if RCR_HAVE_MMAP
  if (map_addr_ != nullptr) ::munmap(map_addr_, size_);
#endif
}

}  // namespace rcr::util
