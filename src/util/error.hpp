// Error handling primitives for the RCR toolkit.
//
// The toolkit reports programming errors and unsatisfiable requests by
// throwing rcr::Error. Hot loops use RCR_DCHECK, which compiles away in
// release builds, so error handling never taxes the numeric kernels.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rcr {

// Base exception for every failure raised by the toolkit.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Raised when user-provided input (CSV, schema, responses) is malformed.
class InvalidInputError : public Error {
 public:
  explicit InvalidInputError(const std::string& what) : Error(what) {}
};

// Raised when an algorithm cannot proceed (singular matrix, empty data, ...).
class ComputeError : public Error {
 public:
  explicit ComputeError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace rcr

// Always-on invariant check; throws rcr::Error with location info.
#define RCR_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond))                                                            \
      ::rcr::detail::fail("RCR_CHECK", #cond, __FILE__, __LINE__, "");      \
  } while (0)

#define RCR_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond))                                                            \
      ::rcr::detail::fail("RCR_CHECK", #cond, __FILE__, __LINE__, (msg));   \
  } while (0)

// Debug-only check for hot paths.
#ifdef NDEBUG
#define RCR_DCHECK(cond) ((void)0)
#else
#define RCR_DCHECK(cond) RCR_CHECK(cond)
#endif
