#include "util/strings.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace rcr {

std::string format_double(double value, int decimals) {
  RCR_CHECK_MSG(decimals >= 0 && decimals <= 17, "decimals out of range");
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace rcr
