// xxHash64 — the checksum of the rcr::data snapshot format.
//
// The snapshot reader validates every region of a memory-mapped file
// (header, dictionary, page index, each column page) before aliasing or
// copying its bytes, so the hash has to run at memory bandwidth: XXH64
// consumes 32 bytes per step through four independent accumulator lanes
// and finishes with an avalanche mix, giving multi-GiB/s throughput with
// no tables and no dependencies. This is a from-spec implementation of
// the stable, public XXH64 algorithm (Yann Collet); the test suite pins
// the published reference vectors, so the on-disk checksum can never
// drift silently between builds or platforms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace rcr {

namespace detail {

inline constexpr std::uint64_t kXxPrime1 = 0x9E3779B185EBCA87ULL;
inline constexpr std::uint64_t kXxPrime2 = 0xC2B2AE3D27D4EB4FULL;
inline constexpr std::uint64_t kXxPrime3 = 0x165667B19E3779F9ULL;
inline constexpr std::uint64_t kXxPrime4 = 0x85EBCA77C2B2AE63ULL;
inline constexpr std::uint64_t kXxPrime5 = 0x27D4EB2F165667C5ULL;

inline std::uint64_t xx_rotl(std::uint64_t v, int r) {
  return (v << r) | (v >> (64 - r));
}

// Unaligned little-endian loads. memcpy compiles to a plain load on every
// target we build for; on a big-endian machine these would need byte
// swaps, which is why the snapshot header carries an endianness tag
// instead of pretending to be portable at the byte level.
inline std::uint64_t xx_read64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline std::uint64_t xx_read32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline std::uint64_t xx_round(std::uint64_t acc, std::uint64_t input) {
  acc += input * kXxPrime2;
  acc = xx_rotl(acc, 31);
  return acc * kXxPrime1;
}

inline std::uint64_t xx_merge_round(std::uint64_t acc, std::uint64_t val) {
  acc ^= xx_round(0, val);
  return acc * kXxPrime1 + kXxPrime4;
}

}  // namespace detail

// XXH64 of [data, data + len) with the given seed.
inline std::uint64_t xxhash64(const void* data, std::size_t len,
                              std::uint64_t seed = 0) {
  using namespace detail;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + len;
  std::uint64_t h;

  if (len >= 32) {
    std::uint64_t v1 = seed + kXxPrime1 + kXxPrime2;
    std::uint64_t v2 = seed + kXxPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kXxPrime1;
    const unsigned char* const limit = end - 32;
    do {
      v1 = xx_round(v1, xx_read64(p));
      v2 = xx_round(v2, xx_read64(p + 8));
      v3 = xx_round(v3, xx_read64(p + 16));
      v4 = xx_round(v4, xx_read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = xx_rotl(v1, 1) + xx_rotl(v2, 7) + xx_rotl(v3, 12) + xx_rotl(v4, 18);
    h = xx_merge_round(h, v1);
    h = xx_merge_round(h, v2);
    h = xx_merge_round(h, v3);
    h = xx_merge_round(h, v4);
  } else {
    h = seed + kXxPrime5;
  }

  h += static_cast<std::uint64_t>(len);
  while (p + 8 <= end) {
    h ^= xx_round(0, xx_read64(p));
    h = xx_rotl(h, 27) * kXxPrime1 + kXxPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= xx_read32(p) * kXxPrime1;
    h = xx_rotl(h, 23) * kXxPrime2 + kXxPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= *p * kXxPrime5;
    h = xx_rotl(h, 11) * kXxPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kXxPrime2;
  h ^= h >> 29;
  h *= kXxPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace rcr
