#include "util/cli.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace rcr {

CliParser::CliParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

std::optional<std::string> CliParser::get(const std::string& name) {
  consumed_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string CliParser::get_or(const std::string& name,
                              const std::string& fallback) {
  return get(name).value_or(fallback);
}

std::int64_t CliParser::get_int_or(const std::string& name,
                                   std::int64_t fallback) {
  const auto v = get(name);
  if (!v) return fallback;
  const auto parsed = parse_int(*v);
  if (!parsed)
    throw InvalidInputError("flag --" + name + " expects an integer, got '" +
                            *v + "'");
  return *parsed;
}

double CliParser::get_double_or(const std::string& name, double fallback) {
  const auto v = get(name);
  if (!v) return fallback;
  const auto parsed = parse_double(*v);
  if (!parsed)
    throw InvalidInputError("flag --" + name + " expects a number, got '" +
                            *v + "'");
  return *parsed;
}

bool CliParser::has_switch(const std::string& name) {
  const auto v = get(name);
  return v && *v != "false" && *v != "0";
}

void CliParser::finish() const {
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (!consumed_.count(name))
      throw InvalidInputError("unknown flag --" + name);
  }
}

}  // namespace rcr
