#include "util/rng.hpp"

#include <cmath>
#include <cstddef>
#include <limits>

#include "obs/metrics.hpp"
#include "util/stopwatch.hpp"

// The batched fill kernels below are plain loops over structure-of-arrays
// state, written so the compiler can vectorize them. On x86-64 GCC/glibc we
// compile ISA-specific clones (AVX-512 / AVX2 / baseline) with runtime
// dispatch, so one binary runs everywhere and still uses the widest unit the
// host has. target_clones relies on ifunc resolvers, which run before the
// sanitizer runtimes initialize (TSan crashes outright), so any sanitized
// build falls back to the portable single-version kernel.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    defined(__gnu_linux__) && !defined(__SANITIZE_ADDRESS__) &&        \
    !defined(__SANITIZE_THREAD__)
#define RCR_RNG_KERNEL                                                 \
  __attribute__((target_clones("arch=x86-64-v4", "arch=x86-64-v3",     \
                               "default"),                             \
                 optimize("O3")))
#elif defined(__GNUC__) && !defined(__clang__)
#define RCR_RNG_KERNEL __attribute__((optimize("O3")))
#else
#define RCR_RNG_KERNEL
#endif

namespace rcr {

namespace {

inline std::uint64_t rotl64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// SplitMix64 expansion of a seed into xoshiro256** state, shared by Rng and
// BatchRng so "stream k is exactly Rng(stream_seed(seed, k))" holds.
void expand_seed(std::uint64_t seed, std::uint64_t out[4]) {
  std::uint64_t sm = seed;
  for (int i = 0; i < 4; ++i) out[i] = splitmix64(sm);
  // All-zero state would be absorbing; splitmix64 cannot produce four zero
  // outputs from any seed, but guard anyway.
  if (out[0] == 0 && out[1] == 0 && out[2] == 0 && out[3] == 0) out[0] = 1;
}

inline double u64_to_unit_double(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

constexpr std::size_t kStreams = BatchRng::kStreams;

// One draw from each of the kStreams interleaved generators per row. State
// lives in locals for the whole call so the only memory traffic in the loop
// is the output stores; the k-loop has no cross-iteration dependencies and
// vectorizes (xoshiro's xor/shift/rotate update maps directly onto SIMD;
// the *5/*9 multiplies strength-reduce to shifts and adds).
RCR_RNG_KERNEL
void fill_rows_u64(std::uint64_t* __restrict s0, std::uint64_t* __restrict s1,
                   std::uint64_t* __restrict s2, std::uint64_t* __restrict s3,
                   std::uint64_t* __restrict dst, std::size_t rows) {
  std::uint64_t a[kStreams], b[kStreams], c[kStreams], d[kStreams];
  for (std::size_t k = 0; k < kStreams; ++k) {
    a[k] = s0[k];
    b[k] = s1[k];
    c[k] = s2[k];
    d[k] = s3[k];
  }
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t k = 0; k < kStreams; ++k) {
      dst[k] = rotl64(b[k] * 5, 7) * 9;
      const std::uint64_t t = b[k] << 17;
      c[k] ^= a[k];
      d[k] ^= b[k];
      b[k] ^= c[k];
      a[k] ^= d[k];
      c[k] ^= t;
      d[k] = rotl64(d[k], 45);
    }
    dst += kStreams;
  }
  for (std::size_t k = 0; k < kStreams; ++k) {
    s0[k] = a[k];
    s1[k] = b[k];
    s2[k] = c[k];
    s3[k] = d[k];
  }
}

RCR_RNG_KERNEL
void fill_rows_f64(std::uint64_t* __restrict s0, std::uint64_t* __restrict s1,
                   std::uint64_t* __restrict s2, std::uint64_t* __restrict s3,
                   double* __restrict dst, std::size_t rows) {
  std::uint64_t a[kStreams], b[kStreams], c[kStreams], d[kStreams];
  for (std::size_t k = 0; k < kStreams; ++k) {
    a[k] = s0[k];
    b[k] = s1[k];
    c[k] = s2[k];
    d[k] = s3[k];
  }
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t k = 0; k < kStreams; ++k) {
      const std::uint64_t x = rotl64(b[k] * 5, 7) * 9;
      dst[k] = u64_to_unit_double(x);
      const std::uint64_t t = b[k] << 17;
      c[k] ^= a[k];
      d[k] ^= b[k];
      b[k] ^= c[k];
      a[k] ^= d[k];
      c[k] ^= t;
      d[k] = rotl64(d[k], 45);
    }
    dst += kStreams;
  }
  for (std::size_t k = 0; k < kStreams; ++k) {
    s0[k] = a[k];
    s1[k] = b[k];
    s2[k] = c[k];
    s3[k] = d[k];
  }
}

// Bulk fill_below: one row is generated (vector loop), then reduced to
// [0, bound) lane by lane. The Lemire rejection fixup must redraw from the
// owning stream *before* that stream's next row value is generated — the
// per-stream draw order is the determinism contract — so the fixup steps
// the lane's state right here inside the row loop. Rejections occur with
// probability (2^64 mod bound)/2^64 per draw, so for realistic bounds the
// fixup path is never taken and the generate loop stays vector-clean.
RCR_RNG_KERNEL
void fill_rows_below(std::uint64_t* __restrict s0,
                     std::uint64_t* __restrict s1,
                     std::uint64_t* __restrict s2,
                     std::uint64_t* __restrict s3, std::uint64_t bound,
                     std::uint64_t threshold, std::uint64_t* __restrict dst,
                     std::size_t rows) {
  std::uint64_t a[kStreams], b[kStreams], c[kStreams], d[kStreams];
  for (std::size_t k = 0; k < kStreams; ++k) {
    a[k] = s0[k];
    b[k] = s1[k];
    c[k] = s2[k];
    d[k] = s3[k];
  }
  const auto step_lane = [&](std::size_t k) {
    const std::uint64_t x = rotl64(b[k] * 5, 7) * 9;
    const std::uint64_t t = b[k] << 17;
    c[k] ^= a[k];
    d[k] ^= b[k];
    b[k] ^= c[k];
    a[k] ^= d[k];
    c[k] ^= t;
    d[k] = rotl64(d[k], 45);
    return x;
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t k = 0; k < kStreams; ++k) dst[k] = step_lane(k);
    for (std::size_t k = 0; k < kStreams; ++k) {
      __uint128_t m = static_cast<__uint128_t>(dst[k]) * bound;
      while (static_cast<std::uint64_t>(m) < threshold) [[unlikely]]
        m = static_cast<__uint128_t>(step_lane(k)) * bound;
      dst[k] = static_cast<std::uint64_t>(m >> 64);
    }
    dst += kStreams;
  }
  for (std::size_t k = 0; k < kStreams; ++k) {
    s0[k] = a[k];
    s1[k] = b[k];
    s2[k] = c[k];
    s3[k] = d[k];
  }
}

// --- obs wiring --------------------------------------------------------------
// Handles are resolved once (registration takes a mutex) and kept for the
// process lifetime. Batch sizes feed a histogram; the meter reports
// draws/sec over the time actually spent filling. Under RCR_OBS_DISABLED
// all of this compiles to no-ops.

obs::Histogram& fill_size_histogram() {
  static obs::Histogram& h = obs::registry().histogram("rng.fill.batch_size");
  return h;
}

obs::Meter& fill_draws_meter() {
  static obs::Meter& m = obs::registry().meter("rng.fill.draws");
  return m;
}

obs::Meter& alias_samples_meter() {
  static obs::Meter& m = obs::registry().meter("rng.alias.samples");
  return m;
}

#ifndef RCR_OBS_DISABLED

// Sampled 1 in 16 per calling thread (the repo's obs cost discipline):
// fills can be as small as a handful of draws, and two clock reads plus a
// histogram record on every one would cost more than the fill. Rates stay
// unbiased — sampled calls contribute both their events and their wall
// time, so events/busy-second is the true throughput of the sampled
// subset; absolute counts read ~1/16 of the real draw volume.
class FillScope {
 public:
  explicit FillScope(std::size_t n, obs::Meter& meter = fill_draws_meter())
      : active_(tick()), n_(n), meter_(meter) {
    if (active_) fill_size_histogram().record(static_cast<double>(n));
  }
  FillScope(const FillScope&) = delete;
  FillScope& operator=(const FillScope&) = delete;
  ~FillScope() {
    if (active_) meter_.add(n_, watch_.elapsed_seconds());
  }

 private:
  static bool tick() {
    thread_local std::uint32_t count = 0;
    return (count++ & 0xF) == 0;
  }

  bool active_;
  std::size_t n_;
  obs::Meter& meter_;
  Stopwatch watch_;
};

#else  // RCR_OBS_DISABLED

class FillScope {
 public:
  explicit FillScope(std::size_t) {}
  FillScope(std::size_t, obs::Meter&) {}
  FillScope(const FillScope&) = delete;
  FillScope& operator=(const FillScope&) = delete;
};

#endif  // RCR_OBS_DISABLED

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  expand_seed(seed, s_.data());
  has_spare_ = false;
}

// --- Rng batched draws -------------------------------------------------------
// A single xoshiro stream is a serial dependency chain, so these loops do
// not vectorize; the win over call sites' own loops is the state hoisted
// into registers for the whole batch (the span's pointer may alias the
// member array, so the member-state form reloads state every iteration)
// plus one instrumented call per batch. BatchRng below is the wide path.

void Rng::fill_u64(std::span<std::uint64_t> out) {
  FillScope scope(out.size());
  std::uint64_t a = s_[0], b = s_[1], c = s_[2], d = s_[3];
  std::uint64_t* __restrict dst = out.data();
  const std::size_t n = out.size();
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = rotl64(b * 5, 7) * 9;
    const std::uint64_t t = b << 17;
    c ^= a;
    d ^= b;
    b ^= c;
    a ^= d;
    c ^= t;
    d = rotl64(d, 45);
  }
  s_[0] = a;
  s_[1] = b;
  s_[2] = c;
  s_[3] = d;
}

void Rng::fill_double(std::span<double> out) {
  FillScope scope(out.size());
  std::uint64_t a = s_[0], b = s_[1], c = s_[2], d = s_[3];
  double* __restrict dst = out.data();
  const std::size_t n = out.size();
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = u64_to_unit_double(rotl64(b * 5, 7) * 9);
    const std::uint64_t t = b << 17;
    c ^= a;
    d ^= b;
    b ^= c;
    a ^= d;
    c ^= t;
    d = rotl64(d, 45);
  }
  s_[0] = a;
  s_[1] = b;
  s_[2] = c;
  s_[3] = d;
}

void Rng::fill_below(std::uint64_t bound, std::span<std::uint64_t> out) {
  RCR_CHECK_MSG(bound > 0, "fill_below needs a positive bound");
  FillScope scope(out.size());
  // Hoisted Lemire threshold: one division per batch instead of the scalar
  // path's lazy per-draw check. threshold < bound, so "l < threshold" makes
  // exactly the accept/reject decisions of next_below's lazy form and the
  // output sequence is unchanged.
  const std::uint64_t threshold = (0 - bound) % bound;
  std::uint64_t a = s_[0], b = s_[1], c = s_[2], d = s_[3];
  const auto step = [&] {
    const std::uint64_t x = rotl64(b * 5, 7) * 9;
    const std::uint64_t t = b << 17;
    c ^= a;
    d ^= b;
    b ^= c;
    a ^= d;
    c ^= t;
    d = rotl64(d, 45);
    return x;
  };
  std::uint64_t* __restrict dst = out.data();
  const std::size_t n = out.size();
  for (std::size_t i = 0; i < n; ++i) {
    __uint128_t m = static_cast<__uint128_t>(step()) * bound;
    while (static_cast<std::uint64_t>(m) < threshold) [[unlikely]]
      m = static_cast<__uint128_t>(step()) * bound;
    dst[i] = static_cast<std::uint64_t>(m >> 64);
  }
  s_[0] = a;
  s_[1] = b;
  s_[2] = c;
  s_[3] = d;
}


double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  // Box–Muller, polar rejection form (no trig, numerically friendly).
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) {
  RCR_CHECK_MSG(lambda > 0.0, "exponential rate must be positive");
  // -log(1-U) avoids log(0) since next_double() < 1.
  return -std::log1p(-next_double()) / lambda;
}

double Rng::gamma(double shape, double scale) {
  RCR_CHECK_MSG(shape > 0.0 && scale > 0.0, "gamma parameters must be > 0");
  if (shape < 1.0) {
    // Boost to shape+1 then scale back (Marsaglia–Tsang boosting trick).
    const double u = next_double();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = next_double();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

double Rng::beta(double a, double b) {
  const double x = gamma(a, 1.0);
  const double y = gamma(b, 1.0);
  return x / (x + y);
}

std::uint64_t Rng::poisson(double lambda) {
  RCR_CHECK_MSG(lambda >= 0.0, "poisson rate must be non-negative");
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth inversion, numerically stabilized in log space.
    const double limit = -lambda;
    double sum = 0.0;
    std::uint64_t k = 0;
    for (;;) {
      sum += std::log1p(-next_double());  // log of uniform product term
      if (sum < limit) return k;
      ++k;
    }
  }
  // Normal approximation with continuity correction; adequate for the
  // simulator's arrival batching at large lambda.
  for (;;) {
    const double draw = normal(lambda, std::sqrt(lambda));
    if (draw > -0.5) return static_cast<std::uint64_t>(draw + 0.5);
  }
}

std::size_t Rng::categorical(std::span<const double> weights) {
  RCR_CHECK_MSG(!weights.empty(), "categorical needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    RCR_CHECK_MSG(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  RCR_CHECK_MSG(total > 0.0, "categorical weights must not all be zero");
  double r = next_double() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  RCR_CHECK_MSG(k <= n, "cannot sample more items than the population");
  // Partial Fisher–Yates over an index vector; O(n) space, O(n + k) time.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  // No BufferedDraws here: the caller keeps using this Rng afterwards, and
  // prefetching would advance the state past what was actually consumed.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(next_below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::split() {
  // A fresh seed derived from two outputs keeps child streams decorrelated.
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  return Rng(a ^ rotl64(b, 31));
}

// --- BatchRng ----------------------------------------------------------------

std::uint64_t BatchRng::stream_seed(std::uint64_t seed, std::size_t k) {
  std::uint64_t z = seed ^ (0x9E3779B97F4A7C15ULL * (k + 1));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void BatchRng::reseed(std::uint64_t seed) {
  for (std::size_t k = 0; k < kStreams; ++k) {
    std::uint64_t state[4];
    expand_seed(stream_seed(seed, k), state);
    s0_[k] = state[0];
    s1_[k] = state[1];
    s2_[k] = state[2];
    s3_[k] = state[3];
  }
  buf_pos_ = kStreams;
}

std::uint64_t BatchRng::step_stream(std::size_t k) {
  const std::uint64_t result = rotl64(s1_[k] * 5, 7) * 9;
  const std::uint64_t t = s1_[k] << 17;
  s2_[k] ^= s0_[k];
  s3_[k] ^= s1_[k];
  s1_[k] ^= s2_[k];
  s0_[k] ^= s3_[k];
  s2_[k] ^= t;
  s3_[k] = rotl64(s3_[k], 45);
  return result;
}

void BatchRng::refill_row() {
  fill_rows_u64(s0_.data(), s1_.data(), s2_.data(), s3_.data(), buf_.data(),
                1);
  buf_pos_ = 0;
}

std::uint64_t BatchRng::next_u64() {
  if (buf_pos_ == kStreams) refill_row();
  return buf_[buf_pos_++];
}

void BatchRng::fill_u64(std::span<std::uint64_t> out) {
  FillScope scope(out.size());
  std::size_t i = 0;
  while (buf_pos_ < kStreams && i < out.size()) out[i++] = buf_[buf_pos_++];
  const std::size_t rows = (out.size() - i) / kStreams;
  if (rows > 0) {
    fill_rows_u64(s0_.data(), s1_.data(), s2_.data(), s3_.data(),
                  out.data() + i, rows);
    i += rows * kStreams;
  }
  if (i < out.size()) {
    refill_row();
    while (i < out.size()) out[i++] = buf_[buf_pos_++];
  }
}

void BatchRng::fill_double(std::span<double> out) {
  FillScope scope(out.size());
  std::size_t i = 0;
  while (buf_pos_ < kStreams && i < out.size())
    out[i++] = u64_to_unit_double(buf_[buf_pos_++]);
  const std::size_t rows = (out.size() - i) / kStreams;
  if (rows > 0) {
    fill_rows_f64(s0_.data(), s1_.data(), s2_.data(), s3_.data(),
                  out.data() + i, rows);
    i += rows * kStreams;
  }
  if (i < out.size()) {
    refill_row();
    while (i < out.size()) out[i++] = u64_to_unit_double(buf_[buf_pos_++]);
  }
}

void BatchRng::fill_below(std::uint64_t bound, std::span<std::uint64_t> out) {
  RCR_CHECK_MSG(bound > 0, "fill_below needs a positive bound");
  FillScope scope(out.size());
  // Same accept/reject rule as Rng::next_below: a candidate is rejected iff
  // the low product half is below 2^64 mod bound; the threshold is hoisted
  // (one division per call instead of one per rare rejection).
  const std::uint64_t threshold = (0 - bound) % bound;
  const auto lemire = [&](std::uint64_t x, std::size_t stream) {
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    while (static_cast<std::uint64_t>(m) < threshold) [[unlikely]] {
      // Scalar fixup: redraw from the owning stream until acceptance.
      m = static_cast<__uint128_t>(step_stream(stream)) * bound;
    }
    return static_cast<std::uint64_t>(m >> 64);
  };
  std::size_t i = 0;
  while (buf_pos_ < kStreams && i < out.size()) {
    out[i++] = lemire(buf_[buf_pos_], buf_pos_);
    ++buf_pos_;
  }
  const std::size_t rows = (out.size() - i) / kStreams;
  if (rows > 0) {
    fill_rows_below(s0_.data(), s1_.data(), s2_.data(), s3_.data(), bound,
                    threshold, out.data() + i, rows);
    i += rows * kStreams;
  }
  if (i < out.size()) {
    refill_row();
    while (i < out.size()) {
      out[i++] = lemire(buf_[buf_pos_], buf_pos_);
      ++buf_pos_;
    }
  }
}

// --- AliasTable --------------------------------------------------------------

AliasTable::AliasTable(std::span<const double> weights) {
  RCR_CHECK_MSG(!weights.empty(), "AliasTable needs at least one weight");
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    RCR_CHECK_MSG(w >= 0.0, "AliasTable weights must be non-negative");
    total += w;
  }
  RCR_CHECK_MSG(total > 0.0, "AliasTable weights must not all be zero");

  norm_.resize(n);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    norm_[i] = weights[i] / total;
    scaled[i] = norm_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t l : large) prob_[l] = 1.0;
  for (std::uint32_t s : small) prob_[s] = 1.0;  // numerical leftovers
}

std::size_t AliasTable::sample(Rng& rng) const {
  const std::size_t i = static_cast<std::size_t>(rng.next_below(prob_.size()));
  return rng.next_double() < prob_[i] ? i : alias_[i];
}

void AliasTable::sample_batch(Rng& rng, std::span<std::size_t> out) const {
  FillScope scope(out.size(), alias_samples_meter());
  const std::uint64_t n = prob_.size();
  const std::uint64_t threshold = (0 - n) % n;
  const double* const prob = prob_.data();
  const std::uint32_t* const alias = alias_.data();
  for (auto& slot : out) {
    // Inline sample(): next_below(n) with the threshold hoisted (identical
    // accept/reject decisions, so the stream matches scalar sample calls),
    // then the acceptance uniform.
    __uint128_t m = static_cast<__uint128_t>(rng.next_u64()) * n;
    while (static_cast<std::uint64_t>(m) < threshold) [[unlikely]]
      m = static_cast<__uint128_t>(rng.next_u64()) * n;
    const auto i = static_cast<std::size_t>(m >> 64);
    slot = rng.next_double() < prob[i] ? i : alias[i];
  }
}

}  // namespace rcr
