#include "util/rng.hpp"

#include <cmath>
#include <limits>

namespace rcr {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state would be absorbing; splitmix64 cannot produce four zero
  // outputs from any seed, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
  has_spare_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  RCR_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RCR_CHECK_MSG(lo <= hi, "uniform_int requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform(double lo, double hi) {
  RCR_DCHECK(lo <= hi);
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  // Box–Muller, polar rejection form (no trig, numerically friendly).
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) {
  RCR_CHECK_MSG(lambda > 0.0, "exponential rate must be positive");
  // -log(1-U) avoids log(0) since next_double() < 1.
  return -std::log1p(-next_double()) / lambda;
}

double Rng::gamma(double shape, double scale) {
  RCR_CHECK_MSG(shape > 0.0 && scale > 0.0, "gamma parameters must be > 0");
  if (shape < 1.0) {
    // Boost to shape+1 then scale back (Marsaglia–Tsang boosting trick).
    const double u = next_double();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = next_double();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

double Rng::beta(double a, double b) {
  const double x = gamma(a, 1.0);
  const double y = gamma(b, 1.0);
  return x / (x + y);
}

std::uint64_t Rng::poisson(double lambda) {
  RCR_CHECK_MSG(lambda >= 0.0, "poisson rate must be non-negative");
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth inversion, numerically stabilized in log space.
    const double limit = -lambda;
    double sum = 0.0;
    std::uint64_t k = 0;
    for (;;) {
      sum += std::log1p(-next_double());  // log of uniform product term
      if (sum < limit) return k;
      ++k;
    }
  }
  // Normal approximation with continuity correction; adequate for the
  // simulator's arrival batching at large lambda.
  for (;;) {
    const double draw = normal(lambda, std::sqrt(lambda));
    if (draw > -0.5) return static_cast<std::uint64_t>(draw + 0.5);
  }
}

std::size_t Rng::categorical(std::span<const double> weights) {
  RCR_CHECK_MSG(!weights.empty(), "categorical needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    RCR_CHECK_MSG(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  RCR_CHECK_MSG(total > 0.0, "categorical weights must not all be zero");
  double r = next_double() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  RCR_CHECK_MSG(k <= n, "cannot sample more items than the population");
  // Partial Fisher–Yates over an index vector; O(n) space, O(n + k) time.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(next_below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::split() {
  // A fresh seed derived from two outputs keeps child streams decorrelated.
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  return Rng(a ^ rotl(b, 31));
}

AliasTable::AliasTable(std::span<const double> weights) {
  RCR_CHECK_MSG(!weights.empty(), "AliasTable needs at least one weight");
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    RCR_CHECK_MSG(w >= 0.0, "AliasTable weights must be non-negative");
    total += w;
  }
  RCR_CHECK_MSG(total > 0.0, "AliasTable weights must not all be zero");

  norm_.resize(n);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    norm_[i] = weights[i] / total;
    scaled[i] = norm_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t l : large) prob_[l] = 1.0;
  for (std::uint32_t s : small) prob_[s] = 1.0;  // numerical leftovers
}

std::size_t AliasTable::sample(Rng& rng) const {
  const std::size_t i = static_cast<std::size_t>(rng.next_below(prob_.size()));
  return rng.next_double() < prob_[i] ? i : alias_[i];
}

}  // namespace rcr
