// Small string utilities shared across the toolkit (CSV parsing, report
// rendering, CLI handling). Header-only by design: every function is tiny.
#pragma once

#include <algorithm>
#include <cctype>
#include <charconv>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rcr {

inline std::string_view trim(std::string_view s) {
  const auto not_space = [](unsigned char c) { return !std::isspace(c); };
  while (!s.empty() && !not_space(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && !not_space(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

inline std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

inline std::string join(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

inline std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

inline bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

// Locale-independent numeric parsing; returns nullopt on any trailing junk.
inline std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const char* begin = s.data();
  const char* end = begin + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

inline std::optional<long long> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long long value = 0;
  const char* begin = s.data();
  const char* end = begin + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

// Fixed-point formatting without locale surprises ("3.14", "0.50").
std::string format_double(double value, int decimals);

// "12.3%" style helper used throughout report tables.
inline std::string format_percent(double fraction, int decimals = 1) {
  return format_double(100.0 * fraction, decimals) + "%";
}

}  // namespace rcr
