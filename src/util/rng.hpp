// Deterministic random number generation for the RCR toolkit.
//
// Every stochastic component (synthetic population, bootstrap, simulator
// arrivals) draws from rcr::Rng so that a single 64-bit seed reproduces an
// entire study byte-for-byte, independent of the host platform or the
// standard library's distribution implementations (which are not portable).
//
// The core generator is xoshiro256** (Blackman & Vigna, 2018): fast, 256-bit
// state, passes BigCrush. Seeding goes through SplitMix64 as the authors
// recommend. Distributions are implemented here from first principles so
// results are identical across compilers.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace rcr {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  // Re-initializes the state from a single seed via SplitMix64.
  void reseed(std::uint64_t seed);

  // Raw 64 uniform bits.
  std::uint64_t next_u64();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next_u64(); }

  // Uniform double in [0, 1) with 53 bits of precision.
  double next_double();

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  // Standard normal via Box–Muller (cached spare value).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  // Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  // Exponential with rate lambda (> 0).
  double exponential(double lambda);

  // Gamma(shape k > 0, scale theta) via Marsaglia–Tsang.
  double gamma(double shape, double scale);

  // Beta(a, b) via two gamma draws.
  double beta(double a, double b);

  // Poisson(lambda >= 0); inversion for small lambda, PTRS-lite otherwise.
  std::uint64_t poisson(double lambda);

  // Index drawn from unnormalized non-negative weights (linear scan).
  // For repeated draws from the same weights prefer AliasTable.
  std::size_t categorical(std::span<const double> weights);

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  // Derives an independent child generator; used to give each thread or
  // each respondent its own stream while keeping the study reproducible.
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

// Walker alias table: O(1) sampling from a fixed discrete distribution.
// Construction is O(n). Weights must be non-negative with a positive sum.
class AliasTable {
 public:
  explicit AliasTable(std::span<const double> weights);

  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return prob_.size(); }

  // Normalized probability of outcome i (for testing / introspection).
  double probability(std::size_t i) const { return norm_[i]; }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
  std::vector<double> norm_;
};

}  // namespace rcr
