// Deterministic random number generation for the RCR toolkit.
//
// Every stochastic component (synthetic population, bootstrap, simulator
// arrivals) draws from rcr::Rng so that a single 64-bit seed reproduces an
// entire study byte-for-byte, independent of the host platform or the
// standard library's distribution implementations (which are not portable).
//
// The core generator is xoshiro256** (Blackman & Vigna, 2018): fast, 256-bit
// state, passes BigCrush. Seeding goes through SplitMix64 as the authors
// recommend. Distributions are implemented here from first principles so
// results are identical across compilers.
//
// Two draw pipelines share that generator:
//
//   * Scalar — next_u64() and friends, one value per call. The hot scalar
//     primitives are inline so consumers pay no call overhead per draw.
//   * Batched — fill_u64 / fill_double / fill_below write a whole span per
//     call. On Rng the batch calls are defined to produce *exactly* the
//     sequence the equivalent scalar loop would (so call sites can convert
//     freely without changing any study output), and BatchRng interleaves
//     kStreams independent xoshiro256** streams in a structure-of-arrays
//     layout so the state-update loop vectorizes (see rng.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace rcr {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  // Re-initializes the state from a single seed via SplitMix64.
  void reseed(std::uint64_t seed);

  // Raw 64 uniform bits.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next_u64(); }

  // Uniform double in [0, 1) with 53 bits of precision.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    RCR_DCHECK(bound > 0);
    // Lemire's nearly-divisionless method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      std::uint64_t t = -bound % bound;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    RCR_CHECK_MSG(lo <= hi, "uniform_int requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    RCR_DCHECK(lo <= hi);
    return lo + (hi - lo) * next_double();
  }

  // True with probability p (clamped to [0,1]). Consumes one draw only for
  // p strictly inside (0, 1); degenerate probabilities are answered without
  // touching the stream (bernoulli_mask relies on this contract).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  // --- Batched draws ---------------------------------------------------------
  // Each fill_* call produces exactly the values the equivalent loop of
  // scalar calls would produce, consuming the underlying stream identically
  // (including Lemire rejection redraws). Converting a call site from a
  // scalar loop to one fill is therefore always output-preserving.

  void fill_u64(std::span<std::uint64_t> out);
  void fill_double(std::span<double> out);
  void fill_below(std::uint64_t bound, std::span<std::uint64_t> out);

  // Batched bernoulli: bit i of the result is bernoulli(p[i]), drawn in
  // index order with the same skip-degenerate-p contract as bernoulli().
  // Requires p.size() <= 64. One call answers a whole multi-select
  // question; kept inline and single-pass because the per-question coin
  // counts are small (an out-of-line fill would cost more than it saves).
  std::uint64_t bernoulli_mask(std::span<const double> p) {
    RCR_DCHECK(p.size() <= 64);
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < p.size(); ++i)
      if (bernoulli(p[i])) mask |= std::uint64_t{1} << i;
    return mask;
  }

  // Standard normal via Box–Muller (cached spare value).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  // Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  // Exponential with rate lambda (> 0).
  double exponential(double lambda);

  // Gamma(shape k > 0, scale theta) via Marsaglia–Tsang.
  double gamma(double shape, double scale);

  // Beta(a, b) via two gamma draws.
  double beta(double a, double b);

  // Poisson(lambda >= 0); inversion for small lambda, PTRS-lite otherwise.
  std::uint64_t poisson(double lambda);

  // Index drawn from unnormalized non-negative weights (linear scan).
  // For repeated draws from the same weights prefer AliasTable.
  std::size_t categorical(std::span<const double> weights);

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  // Derives an independent child generator; used to give each thread or
  // each respondent its own stream while keeping the study reproducible.
  Rng split();

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

// Buffered u64 draws over an Rng: prefetches raw words in blocks via
// fill_u64 so variable-bound loops (Fisher–Yates, rejection sampling) can
// batch their randomness. take() and take_below() consume the *same*
// underlying stream, in the same order, as the equivalent scalar calls on
// the wrapped Rng — only the fetch granularity changes. Leftover prefetched
// words are simply discarded when the buffer is dropped, which is harmless
// for the per-replicate / per-respondent throwaway streams this is made for
// (do not interleave buffered and direct draws on the same Rng).
class BufferedDraws {
 public:
  // `expected` sizes the prefetch so a loop that knows its draw count up
  // front fetches (almost) exactly that many words in one fill.
  explicit BufferedDraws(Rng& rng, std::size_t expected = kBlock)
      : rng_(&rng), expected_(expected) {}

  std::uint64_t take() {
    if (pos_ == end_) refill();
    return buf_[pos_++];
  }

  // Equivalent to rng.next_below(bound), drawing through the buffer.
  std::uint64_t take_below(std::uint64_t bound) {
    RCR_DCHECK(bound > 0);
    std::uint64_t x = take();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      std::uint64_t t = -bound % bound;
      while (l < t) {
        x = take();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static constexpr std::size_t kBlock = 256;

  void refill() {
    std::size_t want = kBlock;
    if (expected_ > taken_) {
      want = expected_ - taken_;
      if (want < 8) want = 8;
      if (want > kBlock) want = kBlock;
    } else {
      want = 8;  // rejection redraws / hint exhausted: fetch small
    }
    rng_->fill_u64(std::span<std::uint64_t>(buf_.data(), want));
    taken_ += want;
    pos_ = 0;
    end_ = want;
  }

  Rng* rng_;
  std::size_t expected_;
  std::size_t taken_ = 0;
  std::array<std::uint64_t, kBlock> buf_;
  std::size_t pos_ = 0;
  std::size_t end_ = 0;
};

// BatchRng — wide deterministic draw pipeline.
//
// Advances kStreams independent xoshiro256** generators kept in a
// structure-of-arrays layout, so one "row" update (one draw from every
// stream) is a branch-free loop the compiler vectorizes. Stream k is
// exactly Rng(stream_seed(seed, k)); both pieces are part of the public
// determinism contract:
//
//   * output position i (counted across ALL fill/next calls since
//     construction) is served by stream i % kStreams;
//   * each output consumes one or more successive draws of its stream
//     (more than one only when fill_below hits a Lemire rejection, which
//     redraws from the same stream until acceptance — handled in a scalar
//     fixup tail off the vector path);
//   * batch-call boundaries are invisible: any way of slicing the same
//     total request sequence into fill_* calls yields the same values.
//
// The whole output is therefore a pure function of the seed, reproducible
// on any platform, and testable against kStreams plain Rng references.
class BatchRng {
 public:
  static constexpr std::size_t kStreams = 16;

  explicit BatchRng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    reseed(seed);
  }

  void reseed(std::uint64_t seed);

  // The per-stream seed derivation (SplitMix64-style hash of seed and k);
  // exposed so tests and documentation can reconstruct reference streams.
  static std::uint64_t stream_seed(std::uint64_t seed, std::size_t k);

  void fill_u64(std::span<std::uint64_t> out);
  void fill_double(std::span<double> out);
  void fill_below(std::uint64_t bound, std::span<std::uint64_t> out);

  // Single draw through the same round-robin pipeline.
  std::uint64_t next_u64();

 private:
  // One scalar xoshiro256** step of stream k (rejection fixups, row refill).
  std::uint64_t step_stream(std::size_t k);
  void refill_row();

  alignas(64) std::array<std::uint64_t, kStreams> s0_{};
  std::array<std::uint64_t, kStreams> s1_{};
  std::array<std::uint64_t, kStreams> s2_{};
  std::array<std::uint64_t, kStreams> s3_{};
  // One pre-drawn value per stream for requests that stop mid-row; buf_[k]
  // is stream k's next undelivered draw. buf_pos_ == kStreams means empty.
  std::array<std::uint64_t, kStreams> buf_{};
  std::size_t buf_pos_ = kStreams;
};

// Walker alias table: O(1) sampling from a fixed discrete distribution.
// Construction is O(n). Weights must be non-negative with a positive sum.
class AliasTable {
 public:
  explicit AliasTable(std::span<const double> weights);

  std::size_t sample(Rng& rng) const;

  // Batched sampling: identical to repeated sample() calls on the same
  // stream (same draws in the same order), with the per-call overhead and
  // the Lemire threshold hoisted out of the loop.
  void sample_batch(Rng& rng, std::span<std::size_t> out) const;

  std::size_t size() const { return prob_.size(); }

  // Normalized probability of outcome i (for testing / introspection).
  double probability(std::size_t i) const { return norm_[i]; }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
  std::vector<double> norm_;
};

}  // namespace rcr
