// Minimal command-line flag parsing for examples and bench drivers.
//
// Supports "--name=value" and "--name value" forms plus boolean switches.
// Unknown flags raise InvalidInputError so typos surface immediately.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rcr {

class CliParser {
 public:
  CliParser(int argc, const char* const* argv);

  // Declares a flag so unknown-flag detection works; returns value if given.
  std::optional<std::string> get(const std::string& name);
  std::string get_or(const std::string& name, const std::string& fallback);
  std::int64_t get_int_or(const std::string& name, std::int64_t fallback);
  double get_double_or(const std::string& name, double fallback);
  bool has_switch(const std::string& name);

  // Call after all declarations; throws on flags never asked about.
  void finish() const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace rcr
