// Read-only memory-mapped files for zero-copy ingest.
//
// MappedFile::open maps a whole file readable at `data()`; on POSIX this
// is mmap(2) (the kernel pages bytes in on demand, so "reading" a snapshot
// is pointer arithmetic until a page is actually touched), elsewhere it
// degrades to one read() into a heap buffer — the single-memcpy fallback
// the snapshot reader is specified against. Consumers hold the mapping
// alive through the shared_ptr; columns that alias mapped pages pin it per
// column, so a Table can outlive the reader that produced it.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace rcr::util {

class MappedFile {
 public:
  // Maps (or, without mmap support, reads) `path`. Throws
  // rcr::InvalidInputError when the file cannot be opened or mapped.
  static std::shared_ptr<MappedFile> open(const std::string& path);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }
  // True when the bytes alias the page cache rather than a private copy.
  bool mapped() const { return mapped_; }
  const std::string& path() const { return path_; }

 private:
  MappedFile() = default;

  std::string path_;
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  void* map_addr_ = nullptr;              // munmap handle (POSIX)
  std::vector<unsigned char> fallback_;   // heap copy (non-POSIX)
};

}  // namespace rcr::util
