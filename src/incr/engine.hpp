// Incremental delta-merge query engine: O(delta) updates to a registered
// query batch, bitwise-equal to a cold full recompute at every cut.
//
//   incr::IncrementalEngine engine(schema);      // rows ignored, schema kept
//   const auto ct = engine.add_crosstab("field", "career");
//   const auto ls = engine.add_option_shares("langs");
//   engine.append_block(block0, pool);           // scans ONLY block0's rows
//   engine.append_block(block1, pool);
//   engine.result(ct).crosstab;                  // == cold QueryEngine on
//                                                //    block0 + block1, bitwise
//
// How the bits stay equal. A cold QueryEngine shards rows at the fixed
// query::kShardRows stride and left-folds the shard partials in index
// order. That stride is append-invariant: new rows only ever extend the
// ragged tail shard. So this engine keeps exactly two accumulators per
// batch —
//
//   prefix : the in-order fold of every COMPLETED shard's partial
//   tail   : the open (ragged) shard's partial, scanned so far
//
// and appending a block is a segment walk: rows that complete the open
// shard continue `tail` (BatchPlan::scan resumes mid-shard with the exact
// per-row instruction sequence of one whole-shard scan — the resumability
// contract in query/partials.hpp) and fold it into `prefix`; interior
// whole shards scan from identity (in parallel — each is independent) and
// fold into `prefix` in index order; the remainder starts the new `tail`.
// A cut is then copy(prefix) merged with tail and built into typed
// results — the same association, in the same order, as the cold run, so
// every double matches bit for bit (pinned by tests/determinism_test.cpp
// and enforced at the byte level by bench_incr).
//
// Cost per append: O(block rows) scan work + O(cells) merges — independent
// of how many rows were ingested before. Results rebuild lazily on access
// (O(cells), no row work).
//
// Blocks must carry the schema the engine was built with: same columns in
// order, same kinds, same category/option label vectors (so per-shard cell
// layouts line up). synth::generate_blocks and data::for_each_snapshot_block
// both satisfy this; CSV tail-follow does once recoded against the schema.
//
// Registration seals on the first append — a spec added later would need
// the already-consumed rows rescanned, which is the cold engine's job.
// Weighted option shares (caller-owned per-row weight spans) are rejected:
// an external span over all rows is precisely the thing a streaming
// consumer cannot extend.
//
// Optionally owns a stream::TableSketch fed the same blocks, so the exact
// partials and the sketch summaries (quantiles, heavy hitters, distinct
// counts) advance in lockstep from one append call.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/table.hpp"
#include "parallel/thread_pool.hpp"
#include "query/partials.hpp"
#include "stream/table_sketch.hpp"

namespace rcr::incr {

class IncrementalEngine {
 public:
  // Keeps `schema`'s column layout (names, kinds, category/option labels);
  // any rows it carries are ignored — append them as a block instead.
  explicit IncrementalEngine(const data::Table& schema);

  // --- Registration (before the first append; validates against the
  // --- schema with the cold engine's errors). Returns the result id.
  query::QueryId add_crosstab(
      const std::string& row_column, const std::string& col_column,
      const std::optional<std::string>& weight_column = {});
  query::QueryId add_crosstab_multiselect(
      const std::string& row_column, const std::string& option_column,
      const std::optional<std::string>& weight_column = {});
  query::QueryId add_category_shares(const std::string& column,
                                     double confidence = 0.95);
  query::QueryId add_option_shares(const std::string& option_column,
                                   double confidence = 0.95);
  query::QueryId add_numeric_summary(const std::string& column);
  query::QueryId add_group_answered(const std::string& group_column,
                                    const std::string& answered_column);
  // Always throws: external per-row weight spans cannot be extended
  // incrementally. Use a cold QueryEngine for this kind.
  query::QueryId add_weighted_option_share(const std::string& option_column,
                                           const std::string& option_label,
                                           std::span<const double> weights,
                                           double confidence = 0.95);

  // Attach a TableSketch fed every appended block (before the first
  // append, so it sees the full stream).
  void attach_sketch(stream::TableSketchOptions options = {});

  // Folds `block`'s rows into every registered query in O(block rows).
  // The block's schema must match the engine's. pool == nullptr walks the
  // same segments serially (bitwise-identical).
  void append_block(const data::Table& block,
                    parallel::ThreadPool* pool = nullptr);

  std::size_t row_count() const { return rows_; }
  std::size_t query_count() const { return specs_.size(); }
  const data::Table& schema() const { return schema_; }
  const query::QuerySpec& spec(query::QueryId id) const;

  // --- Results at the current cut (lazily rebuilt after appends).
  // Bitwise-equal to QueryEngine results over all appended rows.
  const query::QueryResult& result(query::QueryId id);
  const std::vector<query::QueryResult>& results();

  // The attached sketch (attach_sketch must have been called).
  const stream::TableSketch& sketch() const;

 private:
  void ensure_plan();
  void check_schema(const data::Table& block) const;

  data::Table schema_;
  std::vector<query::QuerySpec> specs_;
  std::unique_ptr<query::BatchPlan> plan_;  // on schema_; labels + merge/build
  std::vector<double> prefix_;  // fold of completed shards, index order
  std::vector<double> tail_;    // open shard's partial
  std::vector<query::QueryResult> results_;
  std::unique_ptr<stream::TableSketch> sketch_;
  std::size_t rows_ = 0;
  bool sealed_ = false;  // first append seals registration
  bool dirty_ = true;    // results_ stale relative to prefix_/tail_
};

}  // namespace rcr::incr
