#include "incr/engine.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "parallel/algorithms.hpp"
#include "util/error.hpp"

namespace rcr::incr {

namespace {

struct IncrMetrics {
  obs::Counter& appends = obs::registry().counter("incr.appends");
  obs::Counter& rows = obs::registry().counter("incr.rows");
  obs::Counter& shards_completed =
      obs::registry().counter("incr.shards.completed");
  obs::Histogram& append_ms = obs::registry().histogram("incr.append.ms");
};

IncrMetrics& metrics() {
  static IncrMetrics m;
  return m;
}

}  // namespace

IncrementalEngine::IncrementalEngine(const data::Table& schema)
    : schema_(schema.clone_empty()) {}

query::QueryId IncrementalEngine::add_crosstab(
    const std::string& row_column, const std::string& col_column,
    const std::optional<std::string>& weight_column) {
  RCR_CHECK_MSG(!sealed_, "cannot register queries after the first append");
  const auto& rows = schema_.categorical(row_column);
  const auto& cols = schema_.categorical(col_column);
  RCR_CHECK_MSG(rows.category_count() > 0 && cols.category_count() > 0,
                "crosstab needs non-empty category sets");
  if (weight_column) schema_.numeric(*weight_column);
  specs_.push_back({query::SpecKind::kCrosstab, row_column, col_column,
                    weight_column, {}, {}, 0.95});
  return specs_.size() - 1;
}

query::QueryId IncrementalEngine::add_crosstab_multiselect(
    const std::string& row_column, const std::string& option_column,
    const std::optional<std::string>& weight_column) {
  RCR_CHECK_MSG(!sealed_, "cannot register queries after the first append");
  const auto& rows = schema_.categorical(row_column);
  const auto& opts = schema_.multiselect(option_column);
  RCR_CHECK_MSG(rows.category_count() > 0 && opts.option_count() > 0,
                "crosstab needs non-empty category/option sets");
  if (weight_column) schema_.numeric(*weight_column);
  specs_.push_back({query::SpecKind::kCrosstabMultiselect, row_column,
                    option_column, weight_column, {}, {}, 0.95});
  return specs_.size() - 1;
}

query::QueryId IncrementalEngine::add_category_shares(const std::string& column,
                                                      double confidence) {
  RCR_CHECK_MSG(!sealed_, "cannot register queries after the first append");
  schema_.categorical(column);
  specs_.push_back(
      {query::SpecKind::kCategoryShares, column, {}, {}, {}, {}, confidence});
  return specs_.size() - 1;
}

query::QueryId IncrementalEngine::add_option_shares(
    const std::string& option_column, double confidence) {
  RCR_CHECK_MSG(!sealed_, "cannot register queries after the first append");
  schema_.multiselect(option_column);
  specs_.push_back({query::SpecKind::kOptionShares, option_column, {}, {}, {},
                    {}, confidence});
  return specs_.size() - 1;
}

query::QueryId IncrementalEngine::add_numeric_summary(
    const std::string& column) {
  RCR_CHECK_MSG(!sealed_, "cannot register queries after the first append");
  schema_.numeric(column);
  specs_.push_back(
      {query::SpecKind::kNumericSummary, column, {}, {}, {}, {}, 0.95});
  return specs_.size() - 1;
}

query::QueryId IncrementalEngine::add_group_answered(
    const std::string& group_column, const std::string& answered_column) {
  RCR_CHECK_MSG(!sealed_, "cannot register queries after the first append");
  const auto& groups = schema_.categorical(group_column);
  RCR_CHECK_MSG(groups.category_count() > 0,
                "group_answered needs a non-empty category set");
  schema_.kind(answered_column);
  specs_.push_back({query::SpecKind::kGroupAnswered, group_column,
                    answered_column, {}, {}, {}, 0.95});
  return specs_.size() - 1;
}

query::QueryId IncrementalEngine::add_weighted_option_share(
    const std::string&, const std::string&, std::span<const double>, double) {
  RCR_CHECK_MSG(false,
                "weighted option shares take an external per-row weight span "
                "and cannot be maintained incrementally; use QueryEngine");
  return 0;  // unreachable
}

void IncrementalEngine::attach_sketch(stream::TableSketchOptions options) {
  RCR_CHECK_MSG(!sealed_, "attach the sketch before the first append");
  sketch_ = std::make_unique<stream::TableSketch>(schema_, std::move(options));
}

void IncrementalEngine::ensure_plan() {
  if (plan_) return;
  plan_ = std::make_unique<query::BatchPlan>(schema_, specs_);
  prefix_.resize(plan_->cell_count());
  tail_.resize(plan_->cell_count());
  plan_->init_cells(prefix_);
  plan_->init_cells(tail_);
}

void IncrementalEngine::check_schema(const data::Table& block) const {
  RCR_CHECK_MSG(block.column_names() == schema_.column_names(),
                "block columns do not match the engine schema");
  for (const std::string& name : schema_.column_names()) {
    RCR_CHECK_MSG(block.kind(name) == schema_.kind(name),
                  "block column '" + name + "' has a different kind");
    switch (schema_.kind(name)) {
      case data::ColumnKind::kCategorical:
        RCR_CHECK_MSG(block.categorical(name).categories() ==
                          schema_.categorical(name).categories(),
                      "block column '" + name +
                          "' has a different category set");
        break;
      case data::ColumnKind::kMultiSelect:
        RCR_CHECK_MSG(block.multiselect(name).options() ==
                          schema_.multiselect(name).options(),
                      "block column '" + name + "' has a different option set");
        break;
      case data::ColumnKind::kNumeric:
        break;
    }
  }
}

void IncrementalEngine::append_block(const data::Table& block,
                                     parallel::ThreadPool* pool) {
  obs::ScopedTimer append_timer(metrics().append_ms);
  sealed_ = true;
  ensure_plan();
  check_schema(block);

  // The block gets its own plan (its spans point at the block's storage);
  // the schema match above guarantees its cell layout is identical, so its
  // partials merge straight into ours.
  const query::BatchPlan bplan(block, specs_);
  RCR_CHECK_MSG(bplan.cell_count() == plan_->cell_count(),
                "block plan layout diverged from the schema plan");
  const std::size_t cells = plan_->cell_count();
  const std::size_t m = block.row_count();

  // Invariant: whenever rows_ lands on a shard boundary, tail_ holds the
  // identity. The walk below preserves it.
  std::size_t lo = 0;
  std::size_t completed = 0;

  // 1) Head segment: rows that continue (and maybe complete) the open
  //    shard. scan() resumes the fold mid-shard — see the resumability
  //    contract in query/partials.hpp.
  const std::size_t pos = rows_ % query::kShardRows;
  if (pos != 0) {
    const std::size_t take = std::min(query::kShardRows - pos, m);
    bplan.scan(0, take, tail_);
    if (pos + take == query::kShardRows) {
      plan_->merge(prefix_, tail_);
      plan_->init_cells(tail_);
      ++completed;
    }
    lo = take;
  }

  // 2) Interior whole shards: each scans from identity independently (the
  //    parallel part), then folds into the prefix in strict index order —
  //    the same association the cold engine's ordered merge uses.
  const std::size_t full = (m - lo) / query::kShardRows;
  if (full > 0) {
    std::vector<std::vector<double>> parts(full);
    const auto scan_full = [&](std::size_t k) {
      std::vector<double> part(cells);
      plan_->init_cells(part);
      bplan.scan(lo + k * query::kShardRows, lo + (k + 1) * query::kShardRows,
                 part);
      parts[k] = std::move(part);
    };
    if (pool != nullptr && full > 1) {
      parallel::parallel_for(*pool, 0, full,
                             [&](std::size_t k) { scan_full(k); });
    } else {
      for (std::size_t k = 0; k < full; ++k) scan_full(k);
    }
    for (const std::vector<double>& part : parts) plan_->merge(prefix_, part);
    completed += full;
    lo += full * query::kShardRows;
  }

  // 3) Remainder opens the new tail shard.
  if (lo < m) bplan.scan(lo, m, tail_);

  if (sketch_) sketch_->ingest(block, rows_);
  rows_ += m;
  dirty_ = true;

  metrics().appends.add(1);
  metrics().rows.add(m);
  metrics().shards_completed.add(completed);
}

const query::QuerySpec& IncrementalEngine::spec(query::QueryId id) const {
  RCR_CHECK_MSG(id < specs_.size(), "unknown query id");
  return specs_[id];
}

const std::vector<query::QueryResult>& IncrementalEngine::results() {
  ensure_plan();
  if (dirty_) {
    // The cut: the prefix fold continued by the open tail — bitwise the
    // cold engine's ordered merge over the same shards.
    std::vector<double> cut(prefix_);
    plan_->merge(cut, tail_);
    results_ = plan_->build(cut);
    dirty_ = false;
  }
  return results_;
}

const query::QueryResult& IncrementalEngine::result(query::QueryId id) {
  RCR_CHECK_MSG(id < specs_.size(), "unknown query id");
  return results()[id];
}

const stream::TableSketch& IncrementalEngine::sketch() const {
  RCR_CHECK_MSG(sketch_ != nullptr, "no sketch attached");
  return *sketch_;
}

}  // namespace rcr::incr
