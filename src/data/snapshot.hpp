// rcr::data binary columnar snapshots — the native on-disk table format.
//
// CSV is the interchange format; this is the ingest format. A snapshot
// stores a Table as typed per-column pages of raw little-endian machine
// words (f64 values, i32 dictionary codes, u64 selection bitsets, u8
// missing flags) with the dictionaries and a checksummed page index in a
// footer, so reading is: mmap the file, validate checksums, and alias the
// pages straight into the columns' PageVec storage — zero parse, zero
// copy. See DESIGN.md "Columnar snapshot format" for the byte-level
// layout, alignment, checksum, and versioning rules.
//
// Contracts:
//   * Round-trip identity: write_snapshot -> read_snapshot reproduces the
//     table bitwise — column bytes, dictionary label order, frozen state —
//     so snapshot-backed analyses are byte-identical to CSV-backed ones.
//   * Loud corruption: every region (header, dictionary, page index, each
//     page) carries an XXH64 checksum; any flipped byte fails validation
//     with an error naming the region. With verification enabled (the
//     default) codes, masks, and flags are also range-checked against the
//     dictionary, so even a forged checksum cannot produce out-of-bounds
//     indexing later.
//   * A zero-copy table is a normal Table: mutation copies on write, and
//     the file mapping stays pinned for as long as any borrowing column
//     (or copy of one) lives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/table.hpp"

namespace rcr::data {

inline constexpr std::uint32_t kSnapshotVersion = 1;

struct SnapshotWriteOptions {
  // Rows per page. 0 writes one page per column (the layout read_snapshot
  // can alias zero-copy); a positive value splits columns into row-range
  // pages, the shape SnapshotWriter::append produces per ingest block.
  std::size_t page_rows = 0;
};

struct SnapshotReadOptions {
  // Validate every checksum and range-check codes/masks/flags against the
  // dictionaries. Costs one memory-bandwidth pass over the file; disable
  // only for trusted files on a hot path.
  bool verify = true;
  // Alias single-page columns directly onto the file mapping. Columns that
  // span multiple pages, or whose page offsets are misaligned for their
  // element type, are materialized by page-wise memcpy instead.
  bool zero_copy = true;
};

// Streaming snapshot writer: one page set per appended block, so a larger-
// than-RAM ingest (CSV block reader, parallel-shard partials, synth block
// generator) can stream to disk without materializing the full table.
// Categorical blocks re-intern by label against the writer's dictionary
// (independent shard interning is fine); the dictionary written at
// finish() is the final one, and earlier pages stay valid because
// interning only appends. finish() (or the destructor) seals the file —
// no append may follow it.
class SnapshotWriter {
 public:
  // Creates `path` and writes the provisional header. `schema` fixes the
  // column names, kinds, and option sets; category sets may still grow
  // while appending if unfrozen.
  SnapshotWriter(const Table& schema, const std::string& path);
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  // Appends one block of rows: one page per column array, checksummed and
  // 64-byte aligned.
  void append(const Table& block);

  // Writes dictionaries, page index, and trailer, patches the header, and
  // closes the file. Idempotent.
  void finish();

  std::size_t rows_written() const { return rows_; }

 private:
  struct PageEntry {
    std::uint32_t column = 0;
    std::uint32_t kind = 0;
    std::uint64_t first_row = 0;
    std::uint64_t rows = 0;
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint64_t hash = 0;
  };

  void write_page(std::uint32_t column, std::uint32_t kind, const void* data,
                  std::size_t rows, std::size_t elem_size);

  std::string path_;
  Table staging_;  // schema + live dictionaries; rows cleared per append
  std::vector<PageEntry> pages_;
  std::uint64_t offset_ = 0;
  std::size_t rows_ = 0;
  bool finished_ = false;
  void* file_ = nullptr;  // std::FILE*, kept out of the header
};

// Writes `table` to `path` in one shot. With options.page_rows == 0 every
// column is a single page, which is the layout read_snapshot aliases
// zero-copy.
void write_snapshot(const Table& table, const std::string& path,
                    const SnapshotWriteOptions& options = {});

// Memory-maps `path`, validates it (header magic/version/endianness,
// dictionary, page index, and — per options.verify — every page checksum
// and code/mask/flag range), and materializes the Table: single-page
// columns alias the mapping zero-copy, multi-page columns assemble by
// page-wise memcpy. Throws rcr::InvalidInputError naming the offending
// region on any validation failure.
Table read_snapshot(const std::string& path,
                    const SnapshotReadOptions& options = {});

// Walks `path` block by block WITHOUT materializing the whole table: the
// row range cuts at the union of every column's page boundaries, and each
// cut assembles only the page slices overlapping it (one small owned copy
// per block — a block is mutation-bound delta input, not a long-lived
// aliased table). emit(block, first_row) receives contiguous, in-order,
// disjoint blocks tiling [0, rows); every block carries the snapshot's
// full dictionaries (frozen state preserved), so its schema matches the
// read_snapshot table's exactly — the shape incr::IncrementalEngine
// ingests. Peak memory is one block, so a table larger than RAM streams
// through page-granularly; the block granularity is whatever
// SnapshotWriteOptions::page_rows (or SnapshotWriter::append block sizes)
// the writer chose — a page_rows == 0 snapshot is one whole-table block.
// With options.verify (the default) page checksums and code/mask/flag
// ranges are validated per block; options.zero_copy is ignored. Returns
// the total row count.
std::size_t for_each_snapshot_block(
    const std::string& path,
    const std::function<void(const Table& block, std::size_t first_row)>& emit,
    const SnapshotReadOptions& options = {});

}  // namespace rcr::data
