#include "data/column.hpp"

#include <bit>

namespace rcr::data {

std::vector<double> NumericColumn::present_values() const {
  std::vector<double> out;
  out.reserve(values_.size());
  for (double v : values_)
    if (!is_missing(v)) out.push_back(v);
  return out;
}

CategoricalColumn::CategoricalColumn(std::vector<std::string> categories)
    : categories_(std::move(categories)), frozen_(true) {}

void CategoricalColumn::push(const std::string& label) {
  std::int32_t code = find_code(label);
  if (code == kMissingCode) {
    RCR_CHECK_MSG(!frozen_, "unknown category '" + label +
                                "' for a frozen categorical column");
    code = static_cast<std::int32_t>(categories_.size());
    categories_.push_back(label);
  }
  codes_.push_back(code);
}

void CategoricalColumn::push_code(std::int32_t code) {
  RCR_CHECK_MSG(
      code == kMissingCode ||
          (code >= 0 && static_cast<std::size_t>(code) < categories_.size()),
      "categorical code out of range");
  codes_.push_back(code);
}

void CategoricalColumn::set_code(std::size_t i, std::int32_t code) {
  RCR_CHECK_MSG(i < codes_.size(), "set_code row out of range");
  RCR_CHECK_MSG(
      code == kMissingCode ||
          (code >= 0 && static_cast<std::size_t>(code) < categories_.size()),
      "categorical code out of range");
  codes_.set(i, code);
}

const std::string& CategoricalColumn::label_at(std::size_t i) const {
  RCR_CHECK_MSG(!is_missing(i), "label_at on a missing cell");
  return categories_[static_cast<std::size_t>(codes_[i])];
}

std::int32_t CategoricalColumn::find_code(const std::string& label) const {
  for (std::size_t c = 0; c < categories_.size(); ++c)
    if (categories_[c] == label) return static_cast<std::int32_t>(c);
  return kMissingCode;
}

std::vector<double> CategoricalColumn::counts() const {
  std::vector<double> out(categories_.size(), 0.0);
  for (std::int32_t code : codes_)
    if (code != kMissingCode) out[static_cast<std::size_t>(code)] += 1.0;
  return out;
}

MultiSelectColumn::MultiSelectColumn(std::vector<std::string> options)
    : options_(std::move(options)) {
  RCR_CHECK_MSG(options_.size() <= kMaxOptions,
                "multi-select supports at most 64 options");
  // '-' is the CSV "answered, nothing selected" cell sentinel; as an option
  // label it would be unreadable back, so reject it at schema build time.
  for (const auto& option : options_)
    if (option == "-")
      throw rcr::InvalidInputError(
          "multi-select option label '-' is reserved for the answered-none "
          "sentinel");
}

void MultiSelectColumn::push_mask(std::uint64_t mask) {
  if (options_.size() < kMaxOptions) {
    RCR_CHECK_MSG((mask >> options_.size()) == 0,
                  "mask selects options beyond the option list");
  }
  masks_.push_back(mask);
  missing_.push_back(0);
}

void MultiSelectColumn::push_labels(const std::vector<std::string>& labels) {
  std::uint64_t mask = 0;
  for (const auto& label : labels) {
    const std::int32_t o = find_option(label);
    RCR_CHECK_MSG(o >= 0, "unknown multi-select option '" + label + "'");
    mask |= std::uint64_t{1} << o;
  }
  push_mask(mask);
}

void MultiSelectColumn::push_missing() {
  masks_.push_back(0);
  missing_.push_back(1);
}

void MultiSelectColumn::set_mask(std::size_t i, std::uint64_t mask) {
  RCR_CHECK_MSG(i < masks_.size(), "set_mask row out of range");
  if (options_.size() < kMaxOptions) {
    RCR_CHECK_MSG((mask >> options_.size()) == 0,
                  "mask selects options beyond the option list");
  }
  masks_.set(i, mask);
  missing_.set(i, 0);
}

bool MultiSelectColumn::has(std::size_t row, std::size_t option) const {
  RCR_DCHECK(option < options_.size());
  return !is_missing(row) && (masks_[row] >> option) & 1u;
}

std::int32_t MultiSelectColumn::find_option(const std::string& label) const {
  for (std::size_t o = 0; o < options_.size(); ++o)
    if (options_[o] == label) return static_cast<std::int32_t>(o);
  return -1;
}

std::vector<double> MultiSelectColumn::option_counts() const {
  std::vector<double> out(options_.size(), 0.0);
  for (std::size_t i = 0; i < masks_.size(); ++i) {
    if (missing_[i]) continue;
    std::uint64_t m = masks_[i];
    while (m) {
      const int bit = std::countr_zero(m);
      out[static_cast<std::size_t>(bit)] += 1.0;
      m &= m - 1;
    }
  }
  return out;
}

std::size_t MultiSelectColumn::selection_count(std::size_t row) const {
  return is_missing(row) ? 0 : static_cast<std::size_t>(
                                   std::popcount(masks_[row]));
}

}  // namespace rcr::data
