#include "data/recode.hpp"

#include <algorithm>

namespace rcr::data {

void add_binned_column(Table& table, const std::string& numeric_column,
                       const std::string& new_name,
                       const std::vector<double>& breaks,
                       const std::vector<std::string>& labels) {
  RCR_CHECK_MSG(!breaks.empty(), "binning needs at least one break");
  RCR_CHECK_MSG(labels.size() == breaks.size() + 1,
                "binning needs breaks.size() + 1 labels");
  RCR_CHECK_MSG(std::is_sorted(breaks.begin(), breaks.end()),
                "breaks must be ascending");
  const auto& src = table.numeric(numeric_column);
  const std::size_t n = src.size();

  // Compute codes first: add_categorical invalidates no references, but
  // reading src after the add is still fine; building first is clearest.
  std::vector<std::int32_t> codes(n, kMissingCode);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = src.at(i);
    if (NumericColumn::is_missing(v)) continue;
    const auto it = std::upper_bound(breaks.begin(), breaks.end(), v);
    codes[i] = static_cast<std::int32_t>(it - breaks.begin());
  }
  auto& col = table.add_categorical(new_name, labels);
  for (std::int32_t code : codes) col.push_code(code);
  table.validate_rectangular();
}

void add_derived_column(
    Table& table, const std::string& new_name,
    std::vector<std::string> categories,
    const std::function<std::int32_t(const Table&, std::size_t)>& code_fn) {
  RCR_CHECK_MSG(!categories.empty(), "derived column needs categories");
  const std::size_t n = table.row_count();
  std::vector<std::int32_t> codes(n);
  for (std::size_t i = 0; i < n; ++i) codes[i] = code_fn(table, i);
  auto& col = table.add_categorical(new_name, std::move(categories));
  for (std::int32_t code : codes) col.push_code(code);
  table.validate_rectangular();
}

}  // namespace rcr::data
