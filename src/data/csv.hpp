// CSV ingestion and export for survey tables.
//
// Format notes:
//   * RFC-4180 quoting is supported on read and applied on write when a
//     field contains a delimiter, quote, or newline.
//   * Multi-select cells use '|' between selected option labels; a lone
//     '-' means "answered, nothing selected" (distinct from missing).
//   * Empty cells are missing values in every column kind.
#pragma once

#include <iosfwd>
#include <string>

#include "data/table.hpp"

namespace rcr::data {

struct CsvOptions {
  char delimiter = ',';
  char multiselect_separator = '|';
};

// Parses CSV text into `schema`, a table that already has its columns (and,
// for categorical/multiselect, its category/option sets) defined. The header
// row must name a subset-ordering of the schema columns; every schema column
// must appear exactly once. Throws InvalidInputError with a line number on
// malformed input.
Table read_csv(std::istream& in, const Table& schema,
               const CsvOptions& options = {});
Table read_csv_file(const std::string& path, const Table& schema,
                    const CsvOptions& options = {});

// Serializes a table; header row first.
void write_csv(std::ostream& out, const Table& table,
               const CsvOptions& options = {});
void write_csv_file(const std::string& path, const Table& table,
                    const CsvOptions& options = {});

}  // namespace rcr::data
