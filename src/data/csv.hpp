// CSV ingestion and export for survey tables.
//
// Format notes:
//   * RFC-4180 quoting is supported on read and applied on write when a
//     field contains a delimiter, quote, or newline.
//   * Multi-select cells use '|' between selected option labels; a lone
//     '-' means "answered, nothing selected" (distinct from missing).
//   * Empty cells are missing values in every column kind.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "data/table.hpp"

namespace rcr::data {

struct CsvOptions {
  char delimiter = ',';
  char multiselect_separator = '|';
};

// Parses CSV text into `schema`, a table that already has its columns (and,
// for categorical/multiselect, its category/option sets) defined. The header
// row must name a subset-ordering of the schema columns; every schema column
// must appear exactly once. Throws InvalidInputError with a line number on
// malformed input.
Table read_csv(std::istream& in, const Table& schema,
               const CsvOptions& options = {});
Table read_csv_file(const std::string& path, const Table& schema,
                    const CsvOptions& options = {});

// Streaming row visitor over CSV input. Parses with exactly the same
// header/record/cell machinery as read_csv — identical acceptance,
// identical errors, identical values — but never materializes more than a
// single row, so ingest memory is O(1) in the file size. `visit` is called
// once per data row, in file order, with a one-row table (schema cloned
// from `schema`) and the 0-based data-row index. The row table is *reused*
// between calls; visitors must copy anything they keep. Returns the number
// of rows visited.
std::size_t for_each_csv_row(
    std::istream& in, const Table& schema,
    const std::function<void(const Table& row, std::size_t index)>& visit,
    const CsvOptions& options = {});
std::size_t for_each_csv_row_file(
    const std::string& path, const Table& schema,
    const std::function<void(const Table& row, std::size_t index)>& visit,
    const CsvOptions& options = {});

// Serializes a table; header row first.
void write_csv(std::ostream& out, const Table& table,
               const CsvOptions& options = {});
void write_csv_file(const std::string& path, const Table& table,
                    const CsvOptions& options = {});

}  // namespace rcr::data
