// CSV ingestion and export for survey tables.
//
// Format notes:
//   * RFC-4180 quoting is supported on read and applied on write when a
//     field contains a delimiter, quote, CR/LF, or leading/trailing
//     whitespace. Quoted fields may span newlines: the reader is an
//     incremental state machine over byte buffers, not a line splitter, so
//     everything write_csv emits parses back losslessly.
//   * Unquoted cells are whitespace-trimmed; quoted cells are verbatim
//     (that is how a label like " padded " survives a round trip).
//   * Multi-select cells use '|' between selected option labels; a lone
//     '-' means "answered, nothing selected" (distinct from missing).
//     Schema construction rejects '-' as an option label so the sentinel
//     can never collide with data.
//   * Empty cells are missing values in every column kind. Non-finite
//     numeric literals ("nan", "inf") are rejected: NaN is the missing
//     sentinel, so accepting them would silently turn an answered cell
//     into a missing one.
//   * Blank lines: in a multi-column file a blank (empty or whitespace-
//     only) line can never be a valid record, so it is skipped when
//     CsvOptions::skip_blank_lines is set (the default). In a
//     single-column file an empty line IS a valid record — one missing
//     cell — and is always kept; only the no-bytes-after-the-final-newline
//     case yields no record.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>

#include "data/table.hpp"

namespace rcr::parallel {
class ThreadPool;
}

namespace rcr::data {

// Inputs below this byte count parse serially through the parallel entry
// points when parallel_shard_bytes is 0 (derived grain): under the measured
// crossover (BENCH_csv.json) the boundary pass, per-shard tables, and merge
// cost more than sharding saves. A pure function of the byte count, so the
// serial/parallel decision — like the shard partition itself — never
// depends on the pool.
inline constexpr std::size_t kParallelSerialFallbackBytes = 4 * 1024 * 1024;

struct CsvOptions {
  char delimiter = ',';
  char multiselect_separator = '|';
  // Skip blank lines in multi-column files (never applies to single-column
  // schemas, where a blank line is a legitimate missing-cell row). With the
  // skip disabled a blank line raises the usual field-count error.
  bool skip_blank_lines = true;
  // Shard granularity for read_csv_parallel, in bytes; 0 derives it from
  // the input size alone — and lets inputs below the measured crossover
  // (see BENCH_csv.json) parse serially, where sharding costs more than it
  // saves. Any explicit value pins the parallel machinery on regardless of
  // input size. The parsed table is byte-identical for every value — this
  // knob only trades scheduling overhead against balance.
  std::size_t parallel_shard_bytes = 0;
};

// Parses CSV text into `schema`, a table that already has its columns (and,
// for categorical/multiselect, its category/option sets) defined. The header
// row must name a subset-ordering of the schema columns; every schema column
// must appear exactly once. Throws InvalidInputError with a line number on
// malformed input.
Table read_csv(std::istream& in, const Table& schema,
               const CsvOptions& options = {});
Table read_csv_file(const std::string& path, const Table& schema,
                    const CsvOptions& options = {});

// Parallel materializing reader. A single quote-parity pass locates
// record-aligned shard boundaries, each shard parses independently into a
// partial table with the same state machine read_csv uses, and partials
// append in shard-index order — so for any input the result is
// byte-identical to read_csv for every thread count (pool == nullptr, 1, N),
// including the dictionary build order of unfrozen categorical columns and
// which error is raised on malformed input. pool == nullptr walks the same
// shard partition serially. Inputs smaller than a fixed byte threshold skip
// the sharding entirely and parse serially (a pure function of the byte
// count, so still deterministic) unless parallel_shard_bytes pins sharding
// on; either way the bytes parsed and table produced are identical.
Table read_csv_parallel(std::istream& in, const Table& schema,
                        parallel::ThreadPool* pool,
                        const CsvOptions& options = {});
Table read_csv_parallel_file(const std::string& path, const Table& schema,
                             parallel::ThreadPool* pool,
                             const CsvOptions& options = {});

// Streaming row visitor over CSV input. Parses with exactly the same
// header/record/cell machinery as read_csv — identical acceptance,
// identical errors, identical values — but never materializes more than a
// single row, so ingest memory is O(1) in the file size. `visit` is called
// once per data row, in file order, with a one-row table (schema cloned
// from `schema`) and the 0-based data-row index. The row table is *reused*
// between calls; visitors must copy anything they keep. Returns the number
// of rows visited.
std::size_t for_each_csv_row(
    std::istream& in, const Table& schema,
    const std::function<void(const Table& row, std::size_t index)>& visit,
    const CsvOptions& options = {});
std::size_t for_each_csv_row_file(
    const std::string& path, const Table& schema,
    const std::function<void(const Table& row, std::size_t index)>& visit,
    const CsvOptions& options = {});

// Streaming block visitor: like for_each_csv_row but delivers up to
// `block_rows` rows per callback (the final block may be short), with the
// 0-based index of the block's first row. Memory is O(block_rows); the row
// sequence across blocks is identical to read_csv. The block table is
// reused between calls. Returns the total number of rows delivered.
std::size_t for_each_csv_block(
    std::istream& in, const Table& schema, std::size_t block_rows,
    const std::function<void(const Table& block, std::size_t first_row)>&
        visit,
    const CsvOptions& options = {});
std::size_t for_each_csv_block_file(
    const std::string& path, const Table& schema, std::size_t block_rows,
    const std::function<void(const Table& block, std::size_t first_row)>&
        visit,
    const CsvOptions& options = {});

// Serializes a table; header row first. Quotes any field the reader could
// not otherwise reproduce (delimiter, quote, CR/LF, or leading/trailing
// whitespace), so write_csv → read_csv is lossless.
void write_csv(std::ostream& out, const Table& table,
               const CsvOptions& options = {});
void write_csv_file(const std::string& path, const Table& table,
                    const CsvOptions& options = {});

}  // namespace rcr::data
