// A small columnar table: the in-memory form of one survey wave.
//
// Columns are stored by name in insertion order. All mutation goes through
// append-style builders; analysis functions never modify a table, they
// produce new ones (filter/select) or read-only views (spans).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "data/column.hpp"

namespace rcr::data {

class Table {
 public:
  Table() = default;
  Table(const Table& other);             // deep copy
  Table& operator=(const Table& other);  // deep copy
  Table(Table&&) noexcept = default;
  Table& operator=(Table&&) noexcept = default;
  ~Table() = default;

  // --- schema construction -------------------------------------------------
  NumericColumn& add_numeric(const std::string& name);
  CategoricalColumn& add_categorical(const std::string& name,
                                     std::vector<std::string> categories = {});
  MultiSelectColumn& add_multiselect(const std::string& name,
                                     std::vector<std::string> options);

  // --- access ---------------------------------------------------------------
  std::size_t column_count() const { return order_.size(); }
  std::size_t row_count() const;
  bool has_column(const std::string& name) const;
  ColumnKind kind(const std::string& name) const;
  const std::vector<std::string>& column_names() const { return order_; }

  NumericColumn& numeric(const std::string& name);
  const NumericColumn& numeric(const std::string& name) const;
  CategoricalColumn& categorical(const std::string& name);
  const CategoricalColumn& categorical(const std::string& name) const;
  MultiSelectColumn& multiselect(const std::string& name);
  const MultiSelectColumn& multiselect(const std::string& name) const;

  // Checks that every column has the same number of rows.
  void validate_rectangular() const;

  // A table with the same schema (column names, kinds, category/option
  // sets, frozen state) and zero rows — the starting point for CSV ingest,
  // filtered copies, and block-reassembly in the streaming engine.
  Table clone_empty() const;

  // Drops every row but keeps the full schema. Reused scratch tables (the
  // streaming CSV reader's row buffer) keep their column capacity.
  void clear_rows();

  // Appends all rows of `other`, whose schema (column names, kinds, and
  // category/option sets) must match exactly. Used to pool waves or merge
  // partial CSV ingests.
  void append_rows(const Table& other);

  // Appends all rows of `other` by label for categorical columns: codes are
  // re-interned against this table's dictionaries, reproducing the build
  // order a serial ingest would produce even when `other` interned labels
  // independently (a parallel CSV shard, a snapshot writer block). Columns
  // whose category sets already match take the bulk append_rows path.
  // Numeric and multi-select columns (whose option sets must match) always
  // append in bulk.
  void append_rows_labelwise(const Table& other);

  // Rows [lo, hi) copied into a new table with this table's exact schema
  // (dictionaries shared code-for-code) — the block-slicing primitive for
  // streaming snapshot-backed tables through the sketch pipeline.
  Table slice(std::size_t lo, std::size_t hi) const;

  // --- relational operations -------------------------------------------------
  // Rows for which `pred(row_index)` is true, copied into a new table.
  Table filter(const std::function<bool(std::size_t)>& pred) const;

  // Convenience filter on a categorical column value.
  Table filter_equals(const std::string& column, const std::string& label) const;

  // Row indices grouped by the code of a categorical column; missing rows
  // are dropped. Group g corresponds to category code g.
  std::vector<std::vector<std::size_t>> group_rows(
      const std::string& categorical_column) const;

 private:
  struct NamedColumn {
    std::string name;
    std::variant<NumericColumn, CategoricalColumn, MultiSelectColumn> column;
  };

  NamedColumn& find(const std::string& name);
  const NamedColumn& find(const std::string& name) const;

  // unique_ptr keeps column addresses stable, so references returned by
  // add_* remain valid as further columns are added.
  std::vector<std::unique_ptr<NamedColumn>> columns_;
  std::vector<std::string> order_;
};

}  // namespace rcr::data
