// Whole-table description: the "Table 0" every survey paper computes first.
#pragma once

#include <string>

#include "data/table.hpp"

namespace rcr::data {

// Renders a per-column description of the table:
//   * numeric columns      — n, missing, mean, sd, median, min, max;
//   * categorical columns  — n, missing, modal category and share;
//   * multi-select columns — n, missing, mean selections, top option.
// Output is a fixed-width text table ready for printing.
std::string describe(const Table& table);

}  // namespace rcr::data
