// Crosstab construction: turns table columns into contingency tables and
// labeled share summaries — the bridge from the data engine to the tests.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/table.hpp"
#include "stats/ci.hpp"
#include "stats/contingency.hpp"

namespace rcr::data {

// A contingency table that remembers its category labels.
struct LabeledCrosstab {
  std::vector<std::string> row_labels;
  std::vector<std::string> col_labels;
  stats::Contingency counts{1, 1};

  // Share of column c within row r (row-conditional proportion).
  double row_share(std::size_t r, std::size_t c) const;
};

// rows = categories of `row_column`, cols = categories of `col_column`.
// Rows missing either value are dropped. If `weight_column` is given, its
// (non-missing, non-negative) values weight each observation.
LabeledCrosstab crosstab(const Table& table, const std::string& row_column,
                         const std::string& col_column,
                         const std::optional<std::string>& weight_column = {});

// rows = categories of `row_column`, cols = options of the multi-select
// `option_column` plus the respondent not selecting it is simply absent —
// cell (r, o) counts respondents in row-category r selecting option o.
LabeledCrosstab crosstab_multiselect(
    const Table& table, const std::string& row_column,
    const std::string& option_column,
    const std::optional<std::string>& weight_column = {});

// One option's adoption share with a Wilson interval.
struct OptionShare {
  std::string label;
  double count = 0.0;      // possibly weighted
  double total = 0.0;      // respondents answering the question
  stats::Interval share;   // Wilson CI on count/total
};

// Adoption share for every option of a multi-select column.
std::vector<OptionShare> option_shares(const Table& table,
                                       const std::string& option_column,
                                       double confidence = 0.95);

// Weighted share of one multi-select option. The interval uses the Kish
// effective sample size of the weights over answering rows.
OptionShare weighted_option_share(const Table& table,
                                  const std::string& option_column,
                                  const std::string& option_label,
                                  std::span<const double> weights,
                                  double confidence = 0.95);

// Share of each category of a single-choice column.
std::vector<OptionShare> category_shares(const Table& table,
                                         const std::string& column,
                                         double confidence = 0.95);

}  // namespace rcr::data
