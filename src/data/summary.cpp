#include "data/summary.hpp"

#include <algorithm>

#include "report/table.hpp"
#include "stats/descriptive.hpp"
#include "util/strings.hpp"

namespace rcr::data {

std::string describe(const Table& table) {
  table.validate_rectangular();
  report::TextTable out(
      {"Column", "Kind", "n", "Missing", "Summary"});
  const std::size_t rows = table.row_count();

  for (const auto& name : table.column_names()) {
    switch (table.kind(name)) {
      case ColumnKind::kNumeric: {
        const auto& col = table.numeric(name);
        const auto present = col.present_values();
        std::string summary = "(all missing)";
        if (!present.empty()) {
          const auto s = stats::summarize(present);
          summary = "mean " + format_double(s.mean, 2) + ", sd " +
                    format_double(s.stddev, 2) + ", median " +
                    format_double(s.median, 2) + ", range [" +
                    format_double(s.min, 2) + ", " +
                    format_double(s.max, 2) + "]";
        }
        out.add_row({name, "numeric", std::to_string(present.size()),
                     std::to_string(rows - present.size()), summary});
        break;
      }
      case ColumnKind::kCategorical: {
        const auto& col = table.categorical(name);
        const auto counts = col.counts();
        double total = 0.0, best = 0.0;
        std::size_t best_idx = 0;
        for (std::size_t c = 0; c < counts.size(); ++c) {
          total += counts[c];
          if (counts[c] > best) {
            best = counts[c];
            best_idx = c;
          }
        }
        std::string summary = "(all missing)";
        if (total > 0.0) {
          summary = std::to_string(counts.size()) + " categories; mode '" +
                    col.category(best_idx) + "' (" +
                    format_percent(best / total, 0) + ")";
        }
        out.add_row({name, "categorical",
                     std::to_string(static_cast<std::size_t>(total)),
                     std::to_string(rows - static_cast<std::size_t>(total)),
                     summary});
        break;
      }
      case ColumnKind::kMultiSelect: {
        const auto& col = table.multiselect(name);
        std::size_t answered = 0;
        double selections = 0.0;
        for (std::size_t i = 0; i < col.size(); ++i) {
          if (col.is_missing(i)) continue;
          ++answered;
          selections += static_cast<double>(col.selection_count(i));
        }
        const auto counts = col.option_counts();
        std::size_t best_idx = 0;
        for (std::size_t o = 1; o < counts.size(); ++o)
          if (counts[o] > counts[best_idx]) best_idx = o;
        std::string summary = "(all missing)";
        if (answered > 0) {
          summary = "mean " +
                    format_double(selections / answered, 1) +
                    " selections; top '" + col.option(best_idx) + "' (" +
                    format_percent(counts[best_idx] / answered, 0) + ")";
        }
        out.add_row({name, "multi-select", std::to_string(answered),
                     std::to_string(rows - answered), summary});
        break;
      }
    }
  }
  return out.render();
}

}  // namespace rcr::data
