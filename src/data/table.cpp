#include "data/table.hpp"

#include <algorithm>

namespace rcr::data {

Table::Table(const Table& other) { *this = other; }

Table& Table::operator=(const Table& other) {
  if (this == &other) return *this;
  columns_.clear();
  order_ = other.order_;
  columns_.reserve(other.columns_.size());
  for (const auto& c : other.columns_)
    columns_.push_back(std::make_unique<NamedColumn>(*c));
  return *this;
}

NumericColumn& Table::add_numeric(const std::string& name) {
  RCR_CHECK_MSG(!has_column(name), "duplicate column '" + name + "'");
  columns_.push_back(
      std::make_unique<NamedColumn>(NamedColumn{name, NumericColumn{}}));
  order_.push_back(name);
  return std::get<NumericColumn>(columns_.back()->column);
}

CategoricalColumn& Table::add_categorical(
    const std::string& name, std::vector<std::string> categories) {
  RCR_CHECK_MSG(!has_column(name), "duplicate column '" + name + "'");
  if (categories.empty()) {
    columns_.push_back(
        std::make_unique<NamedColumn>(NamedColumn{name, CategoricalColumn{}}));
  } else {
    columns_.push_back(std::make_unique<NamedColumn>(
        NamedColumn{name, CategoricalColumn{std::move(categories)}}));
  }
  order_.push_back(name);
  return std::get<CategoricalColumn>(columns_.back()->column);
}

MultiSelectColumn& Table::add_multiselect(const std::string& name,
                                          std::vector<std::string> options) {
  RCR_CHECK_MSG(!has_column(name), "duplicate column '" + name + "'");
  columns_.push_back(std::make_unique<NamedColumn>(
      NamedColumn{name, MultiSelectColumn{std::move(options)}}));
  order_.push_back(name);
  return std::get<MultiSelectColumn>(columns_.back()->column);
}

std::size_t Table::row_count() const {
  if (columns_.empty()) return 0;
  return std::visit([](const auto& c) { return c.size(); },
                    columns_.front()->column);
}

bool Table::has_column(const std::string& name) const {
  return std::any_of(
      columns_.begin(), columns_.end(),
      [&](const auto& c) { return c->name == name; });
}

ColumnKind Table::kind(const std::string& name) const {
  const auto& c = find(name).column;
  if (std::holds_alternative<NumericColumn>(c)) return ColumnKind::kNumeric;
  if (std::holds_alternative<CategoricalColumn>(c))
    return ColumnKind::kCategorical;
  return ColumnKind::kMultiSelect;
}

Table::NamedColumn& Table::find(const std::string& name) {
  for (auto& c : columns_)
    if (c->name == name) return *c;
  throw InvalidInputError("no such column '" + name + "'");
}

const Table::NamedColumn& Table::find(const std::string& name) const {
  for (const auto& c : columns_)
    if (c->name == name) return *c;
  throw InvalidInputError("no such column '" + name + "'");
}

NumericColumn& Table::numeric(const std::string& name) {
  auto* col = std::get_if<NumericColumn>(&find(name).column);
  RCR_CHECK_MSG(col, "column '" + name + "' is not numeric");
  return *col;
}

const NumericColumn& Table::numeric(const std::string& name) const {
  const auto* col = std::get_if<NumericColumn>(&find(name).column);
  RCR_CHECK_MSG(col, "column '" + name + "' is not numeric");
  return *col;
}

CategoricalColumn& Table::categorical(const std::string& name) {
  auto* col = std::get_if<CategoricalColumn>(&find(name).column);
  RCR_CHECK_MSG(col, "column '" + name + "' is not categorical");
  return *col;
}

const CategoricalColumn& Table::categorical(const std::string& name) const {
  const auto* col = std::get_if<CategoricalColumn>(&find(name).column);
  RCR_CHECK_MSG(col, "column '" + name + "' is not categorical");
  return *col;
}

MultiSelectColumn& Table::multiselect(const std::string& name) {
  auto* col = std::get_if<MultiSelectColumn>(&find(name).column);
  RCR_CHECK_MSG(col, "column '" + name + "' is not multi-select");
  return *col;
}

const MultiSelectColumn& Table::multiselect(const std::string& name) const {
  const auto* col = std::get_if<MultiSelectColumn>(&find(name).column);
  RCR_CHECK_MSG(col, "column '" + name + "' is not multi-select");
  return *col;
}

void Table::validate_rectangular() const {
  const std::size_t n = row_count();
  for (const auto& cp : columns_) {
    const auto& c = *cp;
    const std::size_t size =
        std::visit([](const auto& col) { return col.size(); }, c.column);
    RCR_CHECK_MSG(size == n, "column '" + c.name + "' has " +
                                 std::to_string(size) + " rows, expected " +
                                 std::to_string(n));
  }
}

void Table::append_rows(const Table& other) {
  validate_rectangular();
  other.validate_rectangular();
  RCR_CHECK_MSG(order_ == other.order_, "append_rows: column sets differ");
  for (const auto& name : order_) {
    RCR_CHECK_MSG(kind(name) == other.kind(name),
                  "append_rows: column '" + name + "' kind differs");
    switch (kind(name)) {
      case ColumnKind::kNumeric: {
        // Bulk copies: per-element push re-validated invariants the source
        // column already established, which dominated shard-merge time in
        // the parallel CSV reader.
        numeric(name).append_column(other.numeric(name));
        break;
      }
      case ColumnKind::kCategorical: {
        auto& dst = categorical(name);
        const auto& src = other.categorical(name);
        RCR_CHECK_MSG(dst.categories() == src.categories(),
                      "append_rows: categories of '" + name + "' differ");
        dst.append_codes(src);
        break;
      }
      case ColumnKind::kMultiSelect: {
        auto& dst = multiselect(name);
        const auto& src = other.multiselect(name);
        RCR_CHECK_MSG(dst.options() == src.options(),
                      "append_rows: options of '" + name + "' differ");
        dst.append_column(src);
        break;
      }
    }
  }
}

void Table::append_rows_labelwise(const Table& other) {
  other.validate_rectangular();
  RCR_CHECK_MSG(order_ == other.order_,
                "append_rows_labelwise: column sets differ");
  for (const auto& name : order_) {
    RCR_CHECK_MSG(kind(name) == other.kind(name),
                  "append_rows_labelwise: column '" + name + "' kind differs");
    switch (kind(name)) {
      case ColumnKind::kNumeric:
        numeric(name).append_column(other.numeric(name));
        break;
      case ColumnKind::kCategorical: {
        auto& dst = categorical(name);
        const auto& src = other.categorical(name);
        if (dst.categories() == src.categories()) {
          dst.append_codes(src);  // identical code spaces: bulk copy
          break;
        }
        for (std::size_t i = 0; i < src.size(); ++i) {
          if (src.is_missing(i))
            dst.push_missing();
          else
            dst.push(src.label_at(i));
        }
        break;
      }
      case ColumnKind::kMultiSelect: {
        auto& dst = multiselect(name);
        const auto& src = other.multiselect(name);
        RCR_CHECK_MSG(dst.options() == src.options(),
                      "append_rows_labelwise: options of '" + name +
                          "' differ");
        dst.append_column(src);
        break;
      }
    }
  }
}

Table Table::slice(std::size_t lo, std::size_t hi) const {
  RCR_CHECK_MSG(lo <= hi && hi <= row_count(), "slice range out of bounds");
  Table out = clone_empty();
  for (const auto& cp : columns_) {
    const auto& c = *cp;
    if (const auto* num = std::get_if<NumericColumn>(&c.column)) {
      out.numeric(c.name).append_range(*num, lo, hi);
    } else if (const auto* cat = std::get_if<CategoricalColumn>(&c.column)) {
      out.categorical(c.name).append_range(*cat, lo, hi);
    } else {
      out.multiselect(c.name).append_range(
          std::get<MultiSelectColumn>(c.column), lo, hi);
    }
  }
  return out;
}

Table Table::clone_empty() const {
  Table out;
  // Recreate the schema so category codes stay aligned with this table.
  for (const auto& cp : columns_) {
    const auto& c = *cp;
    if (std::holds_alternative<NumericColumn>(c.column)) {
      out.add_numeric(c.name);
    } else if (const auto* cat = std::get_if<CategoricalColumn>(&c.column)) {
      auto& col = out.add_categorical(c.name, cat->categories());
      if (!cat->frozen() && !cat->categories().empty()) {
        // add_categorical freezes any non-empty set; mirror the source.
        col = CategoricalColumn{};
        for (const auto& label : cat->categories()) col.push(label);
        col.clear();
      }
    } else {
      const auto& ms = std::get<MultiSelectColumn>(c.column);
      out.add_multiselect(c.name, ms.options());
    }
  }
  return out;
}

void Table::clear_rows() {
  for (auto& cp : columns_)
    std::visit([](auto& col) { col.clear(); }, cp->column);
}

Table Table::filter(const std::function<bool(std::size_t)>& pred) const {
  validate_rectangular();
  Table out = clone_empty();
  const std::size_t n = row_count();
  for (std::size_t i = 0; i < n; ++i) {
    if (!pred(i)) continue;
    for (const auto& cp : columns_) {
      const auto& c = *cp;
      if (const auto* num = std::get_if<NumericColumn>(&c.column)) {
        out.numeric(c.name).push(num->at(i));
      } else if (const auto* cat = std::get_if<CategoricalColumn>(&c.column)) {
        out.categorical(c.name).push_code(cat->code_at(i));
      } else {
        const auto& ms = std::get<MultiSelectColumn>(c.column);
        if (ms.is_missing(i)) {
          out.multiselect(c.name).push_missing();
        } else {
          out.multiselect(c.name).push_mask(ms.mask_at(i));
        }
      }
    }
  }
  return out;
}

Table Table::filter_equals(const std::string& column,
                           const std::string& label) const {
  const auto& col = categorical(column);
  const std::int32_t code = col.find_code(label);
  RCR_CHECK_MSG(code != kMissingCode,
                "filter_equals: unknown label '" + label + "'");
  return filter([&col, code](std::size_t i) {
    return !col.is_missing(i) && col.code_at(i) == code;
  });
}

std::vector<std::vector<std::size_t>> Table::group_rows(
    const std::string& categorical_column) const {
  const auto& col = categorical(categorical_column);
  std::vector<std::vector<std::size_t>> groups(col.category_count());
  for (std::size_t i = 0; i < col.size(); ++i) {
    if (col.is_missing(i)) continue;
    groups[static_cast<std::size_t>(col.code_at(i))].push_back(i);
  }
  return groups;
}

}  // namespace rcr::data
