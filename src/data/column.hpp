// Typed columns for the survey data engine.
//
// Three column kinds cover everything the questionnaire produces:
//   * Numeric      — doubles, NaN marks a missing answer;
//   * Categorical  — dictionary-encoded single-choice answers;
//   * MultiSelect  — bitmask-encoded "check all that apply" answers
//                    (up to 64 options, ample for any survey question).
//
// Row storage is a PageVec: owned by default, or borrowed straight from a
// memory-mapped snapshot page (data/snapshot.hpp) with copy-on-write
// semantics — every accessor and mutator below behaves identically in
// both states.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "data/page_vec.hpp"
#include "util/error.hpp"

namespace rcr::data {

enum class ColumnKind { kNumeric, kCategorical, kMultiSelect };

inline constexpr std::int32_t kMissingCode = -1;

class NumericColumn {
 public:
  static double missing() { return std::numeric_limits<double>::quiet_NaN(); }
  static bool is_missing(double v) { return v != v; }

  void push(double v) { values_.push_back(v); }
  void push_missing() { values_.push_back(missing()); }

  // Drops all rows (schema-less for this kind). Capacity is kept so a
  // reused scratch column does not reallocate per row batch.
  void clear() { values_.clear(); }

  // Overwrites an existing cell (imputation / recoding).
  void set(std::size_t i, double v) {
    RCR_DCHECK(i < values_.size());
    values_.set(i, v);
  }

  // Bulk append of another column's rows (shard-merge fast path).
  void append_column(const NumericColumn& other) {
    values_.append(other.values_);
  }
  // Bulk append of other's rows [lo, hi) (table slicing).
  void append_range(const NumericColumn& other, std::size_t lo,
                    std::size_t hi) {
    values_.append(other.values_, lo, hi);
  }

  // Replaces all rows with `values` — the snapshot reader's entry point for
  // columns that alias a mapped page (or were materialized page-wise).
  void adopt(PageVec<double> values) { values_ = std::move(values); }

  std::size_t size() const { return values_.size(); }
  double at(std::size_t i) const { return values_[i]; }
  const PageVec<double>& values() const { return values_; }

  // All present (non-NaN) values, in row order.
  std::vector<double> present_values() const;

 private:
  PageVec<double> values_;
};

// Dictionary-encoded categorical column. Category set may be fixed up front
// (schema-driven) or grown on demand (CSV ingestion).
class CategoricalColumn {
 public:
  CategoricalColumn() = default;
  explicit CategoricalColumn(std::vector<std::string> categories);

  // Appends a value, interning the label if allowed. Throws if the label is
  // unknown and the category set is frozen.
  void push(const std::string& label);
  void push_code(std::int32_t code);
  void push_missing() { codes_.push_back(kMissingCode); }

  // Drops all rows but keeps the category set (and frozen state).
  void clear() { codes_.clear(); }

  // Overwrites an existing cell with a valid code (imputation / recoding).
  void set_code(std::size_t i, std::int32_t code);

  void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  // Bulk append of another column's rows. Callers must ensure the two
  // category sets are identical (codes are copied, not re-interned).
  void append_codes(const CategoricalColumn& other) {
    codes_.append(other.codes_);
  }
  void append_range(const CategoricalColumn& other, std::size_t lo,
                    std::size_t hi) {
    codes_.append(other.codes_, lo, hi);
  }

  // Replaces all rows with `codes`, which must already be valid against
  // this column's category set (the snapshot reader validates before
  // adopting).
  void adopt_codes(PageVec<std::int32_t> codes) { codes_ = std::move(codes); }

  std::size_t size() const { return codes_.size(); }
  std::int32_t code_at(std::size_t i) const { return codes_[i]; }
  bool is_missing(std::size_t i) const { return codes_[i] == kMissingCode; }
  // Raw code array (kMissingCode marks missing rows) for kernels that hoist
  // the per-row accessor out of their hot loop.
  const PageVec<std::int32_t>& codes() const { return codes_; }
  const std::string& label_at(std::size_t i) const;

  std::size_t category_count() const { return categories_.size(); }
  const std::string& category(std::size_t c) const { return categories_[c]; }
  const std::vector<std::string>& categories() const { return categories_; }

  // Returns the code for a label, or kMissingCode if absent.
  std::int32_t find_code(const std::string& label) const;

  // Count of rows holding each code (missing rows excluded).
  std::vector<double> counts() const;

 private:
  std::vector<std::string> categories_;
  PageVec<std::int32_t> codes_;
  bool frozen_ = false;
};

// "Check all that apply" column; each row is a bitmask over options.
class MultiSelectColumn {
 public:
  MultiSelectColumn() = default;
  explicit MultiSelectColumn(std::vector<std::string> options);

  static constexpr std::size_t kMaxOptions = 64;

  void push_mask(std::uint64_t mask);
  void push_labels(const std::vector<std::string>& labels);
  void push_missing();  // recorded as an all-zero mask with a missing flag

  // Drops all rows but keeps the option set.
  void clear() {
    masks_.clear();
    missing_.clear();
  }

  // Overwrites an existing cell and clears its missing flag.
  void set_mask(std::size_t i, std::uint64_t mask);

  // Bulk append of another column's rows. Callers must ensure the two
  // option sets are identical (masks are copied, not revalidated).
  void append_column(const MultiSelectColumn& other) {
    masks_.append(other.masks_);
    missing_.append(other.missing_);
  }
  void append_range(const MultiSelectColumn& other, std::size_t lo,
                    std::size_t hi) {
    masks_.append(other.masks_, lo, hi);
    missing_.append(other.missing_, lo, hi);
  }

  // Replaces all rows with parallel mask/missing arrays, which must already
  // be valid against the option set (a missing row is an all-zero mask with
  // its flag set; the snapshot reader validates before adopting).
  void adopt_rows(PageVec<std::uint64_t> masks,
                  PageVec<std::uint8_t> missing) {
    RCR_CHECK_MSG(masks.size() == missing.size(),
                  "multi-select mask/missing row counts differ");
    masks_ = std::move(masks);
    missing_ = std::move(missing);
  }

  std::size_t size() const { return masks_.size(); }
  std::uint64_t mask_at(std::size_t i) const { return masks_[i]; }
  bool is_missing(std::size_t i) const { return missing_[i] != 0; }
  bool has(std::size_t row, std::size_t option) const;
  // Raw bitmask / missing-flag arrays (a missing row is an all-zero mask
  // with its flag set) for kernels that iterate selections by set bit.
  const PageVec<std::uint64_t>& masks() const { return masks_; }
  const PageVec<std::uint8_t>& missing_flags() const { return missing_; }

  std::size_t option_count() const { return options_.size(); }
  const std::string& option(std::size_t o) const { return options_[o]; }
  const std::vector<std::string>& options() const { return options_; }
  std::int32_t find_option(const std::string& label) const;

  // Number of respondents (non-missing rows) selecting each option.
  std::vector<double> option_counts() const;

  // Number of options selected in one row.
  std::size_t selection_count(std::size_t row) const;

 private:
  std::vector<std::string> options_;
  PageVec<std::uint64_t> masks_;
  PageVec<std::uint8_t> missing_;
};

}  // namespace rcr::data
