// PageVec<T>: column storage that is either owned or borrowed.
//
// Every column kind stores its row data in one of these instead of a bare
// std::vector so a snapshot-backed table can alias memory-mapped pages
// with zero copies. Two states:
//
//   * owned    — a std::vector, exactly the pre-snapshot behaviour;
//   * borrowed — a read-only view over bytes owned by someone else (an
//     mmap'ed snapshot page), pinned alive by a shared_ptr.
//
// Reads never care which state they are in: data()/size()/operator[] and
// the pointer iterators make a PageVec a contiguous range, so the query
// engine's std::span hoists and every range-for over codes()/masks()
// compile unchanged. Mutation is copy-on-write: the first push/set/append
// on a borrowed view materializes it into an owned vector (one memcpy) and
// proceeds — a snapshot-backed table is a full Table, just lazily private.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

namespace rcr::data {

template <typename T>
class PageVec {
 public:
  using value_type = T;
  using const_iterator = const T*;

  PageVec() = default;

  // A read-only view of [data, data + size); `pin` keeps the underlying
  // storage (the file mapping) alive for as long as any copy of this view
  // exists. data may be null only when size is 0.
  static PageVec borrowed(const T* data, std::size_t size,
                          std::shared_ptr<const void> pin) {
    PageVec v;
    v.view_ = data;
    v.view_size_ = size;
    v.pin_ = std::move(pin);
    return v;
  }

  static PageVec owned(std::vector<T> values) {
    PageVec v;
    v.vec_ = std::move(values);
    return v;
  }

  bool is_borrowed() const { return view_ != nullptr; }

  const T* data() const { return view_ ? view_ : vec_.data(); }
  std::size_t size() const { return view_ ? view_size_ : vec_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  const T& front() const { return data()[0]; }
  const T& back() const { return data()[size() - 1]; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size(); }

  // Drops all elements. An owned vector keeps its capacity (reused scratch
  // columns rely on that); a borrowed view just releases its pin.
  void clear() {
    vec_.clear();
    release_view();
  }

  void reserve(std::size_t n) { own().reserve(n); }

  void push_back(const T& v) { own().push_back(v); }

  void set(std::size_t i, const T& v) { own()[i] = v; }

  void append(const PageVec& other) {
    append(other, 0, other.size());
  }

  // Appends other[lo, hi).
  void append(const PageVec& other, std::size_t lo, std::size_t hi) {
    // `other` may alias *this; take the source pointer before own() can
    // reallocate only when they are distinct objects (self-append of an
    // owned vector goes through the vector's own aliasing-safe insert).
    auto& dst = own();
    if (&other == this) {
      dst.insert(dst.end(), dst.begin() + static_cast<std::ptrdiff_t>(lo),
                 dst.begin() + static_cast<std::ptrdiff_t>(hi));
    } else {
      dst.insert(dst.end(), other.data() + lo, other.data() + hi);
    }
  }

  friend bool operator==(const PageVec& a, const PageVec& b) {
    if (a.size() != b.size()) return false;
    if (a.size() == 0) return true;
    return std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0;
  }

 private:
  // Copy-on-write: materialize a borrowed view into the owned vector and
  // hand out the mutable storage.
  std::vector<T>& own() {
    if (view_ != nullptr) {
      vec_.assign(view_, view_ + view_size_);
      release_view();
    }
    return vec_;
  }

  void release_view() {
    view_ = nullptr;
    view_size_ = 0;
    pin_.reset();
  }

  std::vector<T> vec_;
  const T* view_ = nullptr;  // non-null => borrowed
  std::size_t view_size_ = 0;
  std::shared_ptr<const void> pin_;
};

}  // namespace rcr::data
