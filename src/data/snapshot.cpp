#include "data/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/mmap_file.hpp"

namespace rcr::data {

namespace {

// --- On-disk layout ----------------------------------------------------------
//
//   [ 0, 64)            header (fixed size, checksummed)
//   [64, data_end)      pages: raw little-endian arrays, each starting on a
//                       64-byte boundary (zero padding between pages)
//   [data_end, ...)     footer: dictionary section + page index section,
//                       each length-prefixed and checksummed
//   last 32 bytes       trailer: footer offset/size, checksum, magic
//
// Full byte-level specification in DESIGN.md "Columnar snapshot format".

constexpr char kMagic[8] = {'R', 'C', 'R', 'S', 'N', 'A', 'P', '1'};
constexpr std::uint32_t kEndianTag = 0x01020304;
constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kTrailerBytes = 32;
constexpr std::size_t kPageAlign = 64;
constexpr std::size_t kIndexEntryBytes = 48;

// Page kinds; each column kind owns a fixed set of them.
constexpr std::uint32_t kPageF64 = 0;      // numeric values
constexpr std::uint32_t kPageCodes = 1;    // categorical i32 codes
constexpr std::uint32_t kPageMasks = 2;    // multi-select u64 bitsets
constexpr std::uint32_t kPageMissing = 3;  // multi-select u8 missing flags

std::size_t page_elem_size(std::uint32_t kind) {
  switch (kind) {
    case kPageF64: return sizeof(double);
    case kPageCodes: return sizeof(std::int32_t);
    case kPageMasks: return sizeof(std::uint64_t);
    case kPageMissing: return sizeof(std::uint8_t);
    default: return 0;
  }
}

struct SnapshotMetrics {
  obs::Counter& read_bytes = obs::registry().counter("snapshot.read.bytes");
  obs::Counter& read_rows = obs::registry().counter("snapshot.read.rows");
  obs::Counter& read_pages = obs::registry().counter("snapshot.read.pages");
  obs::Counter& zero_copy_cols =
      obs::registry().counter("snapshot.read.zero_copy_columns");
  obs::Counter& write_bytes = obs::registry().counter("snapshot.write.bytes");
  obs::Counter& write_rows = obs::registry().counter("snapshot.write.rows");
  obs::Histogram& read_ms = obs::registry().histogram("snapshot.read.ms");
  obs::Histogram& write_ms = obs::registry().histogram("snapshot.write.ms");
};

SnapshotMetrics& metrics() {
  static SnapshotMetrics m;
  return m;
}

[[noreturn]] void snapshot_fail(const std::string& region,
                                const std::string& msg) {
  throw rcr::InvalidInputError("snapshot " + region + ": " + msg);
}

// --- Little serialization helpers (writer side) ------------------------------

template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

void put_string(std::string& out, const std::string& s) {
  RCR_CHECK_MSG(s.size() <= std::numeric_limits<std::uint32_t>::max(),
                "snapshot string too long");
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

// --- Bounds-checked reads (reader side) --------------------------------------
//
// Every footer byte goes through this cursor, so a truncated or lying
// length field surfaces as a named error instead of an out-of-bounds read.

class Cursor {
 public:
  Cursor(const unsigned char* data, std::size_t size, std::string region)
      : p_(data), end_(data + size), region_(std::move(region)) {}

  template <typename T>
  T get() {
    T v;
    std::memcpy(&v, take(sizeof(T)), sizeof(T));
    return v;
  }

  std::string get_string() {
    const std::uint32_t len = get<std::uint32_t>();
    const unsigned char* s = take(len);
    return std::string(reinterpret_cast<const char*>(s), len);
  }

  const unsigned char* take(std::size_t n) {
    if (n > static_cast<std::size_t>(end_ - p_))
      snapshot_fail(region_, "truncated");
    const unsigned char* at = p_;
    p_ += n;
    return at;
  }

  bool exhausted() const { return p_ == end_; }

 private:
  const unsigned char* p_;
  const unsigned char* end_;
  std::string region_;
};

// Column schema as serialized in the dictionary section.
struct ColumnMeta {
  std::string name;
  ColumnKind kind = ColumnKind::kNumeric;
  bool frozen = false;
  std::vector<std::string> labels;  // categories or options
};

struct PageEntryView {
  std::uint32_t column = 0;
  std::uint32_t kind = 0;
  std::uint64_t first_row = 0;
  std::uint64_t rows = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hash = 0;
};

bool aligned_for(std::uint64_t offset, std::size_t alignment) {
  return offset % alignment == 0;
}

}  // namespace

// --- Writer ------------------------------------------------------------------

SnapshotWriter::SnapshotWriter(const Table& schema, const std::string& path)
    : path_(path), staging_(schema.clone_empty()) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw rcr::InvalidInputError("cannot write snapshot file: " + path);
  file_ = f;
  // Provisional header; finish() patches the real one over it.
  const char zeros[kHeaderBytes] = {};
  if (std::fwrite(zeros, 1, kHeaderBytes, f) != kHeaderBytes)
    throw rcr::InvalidInputError("cannot write snapshot file: " + path);
  offset_ = kHeaderBytes;
}

SnapshotWriter::~SnapshotWriter() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; an unsealed file fails validation loudly
    // on read, which is the intended failure mode here.
    if (file_ != nullptr) {
      std::fclose(static_cast<std::FILE*>(file_));
      file_ = nullptr;
    }
  }
}

void SnapshotWriter::write_page(std::uint32_t column, std::uint32_t kind,
                                const void* data, std::size_t rows,
                                std::size_t elem_size) {
  std::FILE* f = static_cast<std::FILE*>(file_);
  // Pad to the page alignment so readers can alias typed arrays directly.
  const std::uint64_t aligned =
      (offset_ + (kPageAlign - 1)) / kPageAlign * kPageAlign;
  if (aligned > offset_) {
    const char zeros[kPageAlign] = {};
    if (std::fwrite(zeros, 1, aligned - offset_, f) != aligned - offset_)
      throw rcr::InvalidInputError("cannot write snapshot file: " + path_);
    offset_ = aligned;
  }
  const std::size_t bytes = rows * elem_size;
  PageEntry e;
  e.column = column;
  e.kind = kind;
  e.first_row = rows_;
  e.rows = rows;
  e.offset = offset_;
  e.bytes = bytes;
  e.hash = xxhash64(data, bytes);
  if (bytes > 0 && std::fwrite(data, 1, bytes, f) != bytes)
    throw rcr::InvalidInputError("cannot write snapshot file: " + path_);
  offset_ += bytes;
  pages_.push_back(e);
}

void SnapshotWriter::append(const Table& block) {
  RCR_CHECK_MSG(!finished_, "SnapshotWriter::append after finish");
  block.validate_rectangular();
  const std::size_t n = block.row_count();
  if (n == 0) return;

  // Fast path: when the block's dictionaries already match the writer's,
  // pages stream straight from the block's storage. Otherwise the block is
  // re-interned label-wise into the staging table first (the parallel-shard
  // case, where each shard built its own code space).
  bool direct = staging_.column_names() == block.column_names();
  if (direct) {
    for (const auto& name : staging_.column_names()) {
      if (staging_.kind(name) != block.kind(name) ||
          (staging_.kind(name) == ColumnKind::kCategorical &&
           staging_.categorical(name).categories() !=
               block.categorical(name).categories())) {
        direct = false;
        break;
      }
    }
  }
  const Table* src = &block;
  if (!direct) {
    staging_.append_rows_labelwise(block);
    src = &staging_;
  }

  const auto& names = src->column_names();
  for (std::size_t c = 0; c < names.size(); ++c) {
    switch (src->kind(names[c])) {
      case ColumnKind::kNumeric:
        write_page(static_cast<std::uint32_t>(c), kPageF64,
                   src->numeric(names[c]).values().data(), n, sizeof(double));
        break;
      case ColumnKind::kCategorical:
        write_page(static_cast<std::uint32_t>(c), kPageCodes,
                   src->categorical(names[c]).codes().data(), n,
                   sizeof(std::int32_t));
        break;
      case ColumnKind::kMultiSelect: {
        const auto& col = src->multiselect(names[c]);
        write_page(static_cast<std::uint32_t>(c), kPageMasks,
                   col.masks().data(), n, sizeof(std::uint64_t));
        write_page(static_cast<std::uint32_t>(c), kPageMissing,
                   col.missing_flags().data(), n, sizeof(std::uint8_t));
        break;
      }
    }
  }
  rows_ += n;
  if (!direct) staging_.clear_rows();
}

void SnapshotWriter::finish() {
  if (finished_) return;
  std::FILE* f = static_cast<std::FILE*>(file_);
  RCR_CHECK_MSG(f != nullptr, "SnapshotWriter has no open file");
  const std::uint64_t data_end = offset_;

  // Dictionary section: the full schema, including dictionary order and
  // frozen state, so a reload is interning-order identical.
  std::string dict;
  const auto& names = staging_.column_names();
  for (const auto& name : names) {
    put_string(dict, name);
    switch (staging_.kind(name)) {
      case ColumnKind::kNumeric:
        dict += '\0';
        dict += '\0';
        put<std::uint32_t>(dict, 0);
        break;
      case ColumnKind::kCategorical: {
        const auto& col = staging_.categorical(name);
        dict += '\1';
        dict += static_cast<char>(col.frozen() ? 1 : 0);
        put<std::uint32_t>(dict,
                           static_cast<std::uint32_t>(col.category_count()));
        for (const auto& label : col.categories()) put_string(dict, label);
        break;
      }
      case ColumnKind::kMultiSelect: {
        const auto& col = staging_.multiselect(name);
        dict += '\2';
        dict += '\0';
        put<std::uint32_t>(dict,
                           static_cast<std::uint32_t>(col.option_count()));
        for (const auto& label : col.options()) put_string(dict, label);
        break;
      }
    }
  }

  // Page index section.
  std::string index;
  for (const PageEntry& e : pages_) {
    put<std::uint32_t>(index, e.column);
    put<std::uint32_t>(index, e.kind);
    put<std::uint64_t>(index, e.first_row);
    put<std::uint64_t>(index, e.rows);
    put<std::uint64_t>(index, e.offset);
    put<std::uint64_t>(index, e.bytes);
    put<std::uint64_t>(index, e.hash);
  }

  std::string footer;
  put<std::uint64_t>(footer, dict.size());
  footer += dict;
  put<std::uint64_t>(footer, xxhash64(dict.data(), dict.size()));
  put<std::uint64_t>(footer, index.size());
  footer += index;
  put<std::uint64_t>(footer, xxhash64(index.data(), index.size()));

  std::string trailer;
  put<std::uint64_t>(trailer, data_end);
  put<std::uint64_t>(trailer, footer.size());
  put<std::uint64_t>(trailer, xxhash64(trailer.data(), trailer.size()));
  for (char c : kMagic) trailer += c;
  RCR_CHECK(trailer.size() == kTrailerBytes);

  if (std::fwrite(footer.data(), 1, footer.size(), f) != footer.size() ||
      std::fwrite(trailer.data(), 1, trailer.size(), f) != trailer.size())
    throw rcr::InvalidInputError("cannot write snapshot file: " + path_);

  // Patch the real header in place now that the counts are known.
  std::string header;
  for (char c : kMagic) header += c;
  put<std::uint32_t>(header, kSnapshotVersion);
  put<std::uint32_t>(header, kEndianTag);
  put<std::uint64_t>(header, rows_);
  put<std::uint64_t>(header, names.size());
  put<std::uint64_t>(header, pages_.size());
  put<std::uint64_t>(header, data_end);
  put<std::uint64_t>(header, 0);  // reserved
  put<std::uint64_t>(header, xxhash64(header.data(), header.size()));
  RCR_CHECK(header.size() == kHeaderBytes);
  if (std::fseek(f, 0, SEEK_SET) != 0 ||
      std::fwrite(header.data(), 1, header.size(), f) != header.size() ||
      std::fclose(f) != 0) {
    file_ = nullptr;
    throw rcr::InvalidInputError("cannot write snapshot file: " + path_);
  }
  file_ = nullptr;
  finished_ = true;

  metrics().write_rows.add(rows_);
  metrics().write_bytes.add(data_end + footer.size() + trailer.size());
}

void write_snapshot(const Table& table, const std::string& path,
                    const SnapshotWriteOptions& options) {
  obs::ScopedTimer timer(metrics().write_ms);
  table.validate_rectangular();
  SnapshotWriter writer(table, path);
  const std::size_t n = table.row_count();
  if (options.page_rows == 0 || n <= options.page_rows) {
    writer.append(table);
  } else {
    for (std::size_t lo = 0; lo < n; lo += options.page_rows)
      writer.append(table.slice(lo, std::min(lo + options.page_rows, n)));
  }
  writer.finish();
}

// --- Reader ------------------------------------------------------------------

namespace {

struct SnapshotView {
  std::shared_ptr<util::MappedFile> map;
  std::uint64_t row_count = 0;
  std::uint64_t data_end = 0;
  std::vector<ColumnMeta> columns;
  std::vector<PageEntryView> pages;
};

SnapshotView parse_and_validate(const std::string& path) {
  SnapshotView v;
  v.map = util::MappedFile::open(path);
  const unsigned char* base = v.map->data();
  const std::size_t size = v.map->size();

  if (size < kHeaderBytes + kTrailerBytes)
    snapshot_fail("header", "file truncated (" + std::to_string(size) +
                                " bytes): " + path);

  // Header: magic, version, endianness, then the checksum over the rest.
  Cursor h(base, kHeaderBytes, "header");
  if (std::memcmp(h.take(sizeof(kMagic)), kMagic, sizeof(kMagic)) != 0)
    snapshot_fail("header", "bad magic (not an rcr snapshot): " + path);
  const auto version = h.get<std::uint32_t>();
  if (version != kSnapshotVersion)
    snapshot_fail("header", "unsupported version " + std::to_string(version));
  if (h.get<std::uint32_t>() != kEndianTag)
    snapshot_fail("header", "endianness mismatch (file written on an "
                            "incompatible platform)");
  v.row_count = h.get<std::uint64_t>();
  const auto column_count = h.get<std::uint64_t>();
  const auto page_count = h.get<std::uint64_t>();
  v.data_end = h.get<std::uint64_t>();
  h.get<std::uint64_t>();  // reserved
  const auto header_hash = h.get<std::uint64_t>();
  if (xxhash64(base, kHeaderBytes - sizeof(std::uint64_t)) != header_hash)
    snapshot_fail("header", "checksum mismatch");

  // Trailer locates the footer; its own hash guards the location fields.
  const unsigned char* tr = base + size - kTrailerBytes;
  Cursor t(tr, kTrailerBytes, "footer");
  const auto footer_offset = t.get<std::uint64_t>();
  const auto footer_bytes = t.get<std::uint64_t>();
  const auto trailer_hash = t.get<std::uint64_t>();
  if (std::memcmp(t.take(sizeof(kMagic)), kMagic, sizeof(kMagic)) != 0)
    snapshot_fail("footer", "bad trailer magic (file truncated or not "
                            "sealed)");
  if (xxhash64(tr, 2 * sizeof(std::uint64_t)) != trailer_hash)
    snapshot_fail("footer", "trailer checksum mismatch");
  if (footer_offset < kHeaderBytes || footer_offset != v.data_end ||
      footer_bytes != size - kTrailerBytes - footer_offset)
    snapshot_fail("footer", "bounds do not match the file size");

  // Footer: dictionary section then page index section, each checksummed.
  Cursor fc(base + footer_offset, footer_bytes, "footer");
  const auto dict_bytes = fc.get<std::uint64_t>();
  const unsigned char* dict = fc.take(dict_bytes);
  if (xxhash64(dict, dict_bytes) != fc.get<std::uint64_t>())
    snapshot_fail("dictionary", "checksum mismatch");
  const auto index_bytes = fc.get<std::uint64_t>();
  const unsigned char* index = fc.take(index_bytes);
  if (xxhash64(index, index_bytes) != fc.get<std::uint64_t>())
    snapshot_fail("page index", "checksum mismatch");
  if (!fc.exhausted()) snapshot_fail("footer", "trailing bytes");

  // Dictionary section: column names, kinds, frozen flags, label sets.
  Cursor dc(dict, dict_bytes, "dictionary");
  v.columns.reserve(column_count);
  for (std::uint64_t c = 0; c < column_count; ++c) {
    ColumnMeta meta;
    meta.name = dc.get_string();
    const auto kind = dc.get<std::uint8_t>();
    meta.frozen = dc.get<std::uint8_t>() != 0;
    const auto label_count = dc.get<std::uint32_t>();
    switch (kind) {
      case 0: meta.kind = ColumnKind::kNumeric; break;
      case 1: meta.kind = ColumnKind::kCategorical; break;
      case 2: meta.kind = ColumnKind::kMultiSelect; break;
      default:
        snapshot_fail("dictionary", "bad column kind " + std::to_string(kind));
    }
    meta.labels.reserve(label_count);
    for (std::uint32_t l = 0; l < label_count; ++l)
      meta.labels.push_back(dc.get_string());
    v.columns.push_back(std::move(meta));
  }
  if (!dc.exhausted()) snapshot_fail("dictionary", "trailing bytes");

  // Page index: typed, bounds-checked descriptors of every page.
  if (index_bytes != page_count * kIndexEntryBytes)
    snapshot_fail("page index", "entry count does not match the header");
  Cursor ic(index, index_bytes, "page index");
  v.pages.reserve(page_count);
  for (std::uint64_t p = 0; p < page_count; ++p) {
    PageEntryView e;
    e.column = ic.get<std::uint32_t>();
    e.kind = ic.get<std::uint32_t>();
    e.first_row = ic.get<std::uint64_t>();
    e.rows = ic.get<std::uint64_t>();
    e.offset = ic.get<std::uint64_t>();
    e.bytes = ic.get<std::uint64_t>();
    e.hash = ic.get<std::uint64_t>();
    const std::size_t elem = page_elem_size(e.kind);
    if (e.column >= v.columns.size() || elem == 0)
      snapshot_fail("page index", "page " + std::to_string(p) +
                                      ": bad column or page kind");
    if (e.rows > v.row_count || e.first_row > v.row_count - e.rows)
      snapshot_fail("page index", "page " + std::to_string(p) +
                                      ": row range out of bounds");
    if (e.bytes != e.rows * elem)
      snapshot_fail("page index", "page " + std::to_string(p) +
                                      ": size does not match row count");
    if (e.offset < kHeaderBytes || e.offset > v.data_end ||
        e.bytes > v.data_end - e.offset)
      snapshot_fail("page index", "page " + std::to_string(p) +
                                      ": data out of bounds");
    const ColumnKind ck = v.columns[e.column].kind;
    const bool kind_ok =
        (ck == ColumnKind::kNumeric && e.kind == kPageF64) ||
        (ck == ColumnKind::kCategorical && e.kind == kPageCodes) ||
        (ck == ColumnKind::kMultiSelect &&
         (e.kind == kPageMasks || e.kind == kPageMissing));
    if (!kind_ok)
      snapshot_fail("page index",
                    "page " + std::to_string(p) + ": page kind does not "
                    "match column '" + v.columns[e.column].name + "'");
    v.pages.push_back(e);
  }
  return v;
}

// The pages of one (column, page-kind) array, sorted by row range; they
// must tile [0, row_count) exactly.
std::vector<PageEntryView> column_pages(const SnapshotView& v,
                                        std::size_t column,
                                        std::uint32_t kind) {
  std::vector<PageEntryView> pages;
  for (const auto& e : v.pages)
    if (e.column == column && e.kind == kind) pages.push_back(e);
  std::stable_sort(pages.begin(), pages.end(),
                   [](const PageEntryView& a, const PageEntryView& b) {
                     return a.first_row < b.first_row;
                   });
  std::uint64_t next = 0;
  for (const auto& e : pages) {
    if (e.first_row != next)
      snapshot_fail("page index", "column '" + v.columns[column].name +
                                      "' pages do not tile the rows");
    next += e.rows;
  }
  if (next != v.row_count)
    snapshot_fail("page index", "column '" + v.columns[column].name +
                                    "' pages cover " + std::to_string(next) +
                                    " of " + std::to_string(v.row_count) +
                                    " rows");
  return pages;
}

void verify_page(const SnapshotView& v, const PageEntryView& e) {
  if (xxhash64(v.map->data() + e.offset, e.bytes) != e.hash)
    snapshot_fail("page", "column '" + v.columns[e.column].name +
                              "' rows [" + std::to_string(e.first_row) +
                              ", " + std::to_string(e.first_row + e.rows) +
                              "): checksum mismatch");
}

// Materializes one typed array: a single aligned page aliases the mapping
// (zero-copy), anything else assembles by page-wise memcpy.
template <typename T>
PageVec<T> load_array(const SnapshotView& v, std::size_t column,
                      std::uint32_t kind, const SnapshotReadOptions& options,
                      bool* borrowed) {
  const auto pages = column_pages(v, column, kind);
  const unsigned char* base = v.map->data();
  if (options.verify)
    for (const auto& e : pages) verify_page(v, e);
  if (options.zero_copy && pages.size() == 1 &&
      aligned_for(pages[0].offset, alignof(T))) {
    if (borrowed) *borrowed = true;
    return PageVec<T>::borrowed(
        reinterpret_cast<const T*>(base + pages[0].offset), pages[0].rows,
        v.map);
  }
  if (borrowed) *borrowed = false;
  std::vector<T> out(v.row_count);
  for (const auto& e : pages)
    std::memcpy(out.data() + e.first_row, base + e.offset, e.bytes);
  return PageVec<T>::owned(std::move(out));
}

}  // namespace

Table read_snapshot(const std::string& path,
                    const SnapshotReadOptions& options) {
  obs::ScopedTimer timer(metrics().read_ms);
  const SnapshotView v = parse_and_validate(path);

  Table out;
  for (std::size_t c = 0; c < v.columns.size(); ++c) {
    const ColumnMeta& meta = v.columns[c];
    bool borrowed = false;
    switch (meta.kind) {
      case ColumnKind::kNumeric: {
        auto& col = out.add_numeric(meta.name);
        col.adopt(load_array<double>(v, c, kPageF64, options, &borrowed));
        break;
      }
      case ColumnKind::kCategorical: {
        auto& col = out.add_categorical(meta.name);
        if (meta.frozen) {
          col = CategoricalColumn{meta.labels};
        } else {
          // Rebuild the unfrozen dictionary by re-interning in stored
          // order, so continued ingest extends it exactly as the original
          // column would have.
          for (const auto& label : meta.labels) col.push(label);
          col.clear();
        }
        auto codes =
            load_array<std::int32_t>(v, c, kPageCodes, options, &borrowed);
        if (options.verify) {
          const auto limit = static_cast<std::int32_t>(meta.labels.size());
          for (const std::int32_t code : codes)
            if (code != kMissingCode && (code < 0 || code >= limit))
              snapshot_fail("page", "column '" + meta.name +
                                        "': code out of dictionary range");
        }
        col.adopt_codes(std::move(codes));
        break;
      }
      case ColumnKind::kMultiSelect: {
        auto& col = out.add_multiselect(meta.name, meta.labels);
        auto masks =
            load_array<std::uint64_t>(v, c, kPageMasks, options, &borrowed);
        auto missing =
            load_array<std::uint8_t>(v, c, kPageMissing, options, nullptr);
        if (options.verify) {
          for (const std::uint64_t mask : masks)
            if (meta.labels.size() < MultiSelectColumn::kMaxOptions &&
                (mask >> meta.labels.size()) != 0)
              snapshot_fail("page", "column '" + meta.name +
                                        "': mask selects options beyond the "
                                        "option list");
          for (const std::uint8_t flag : missing)
            if (flag > 1)
              snapshot_fail("page", "column '" + meta.name +
                                        "': bad missing flag");
        }
        col.adopt_rows(std::move(masks), std::move(missing));
        break;
      }
    }
    if (borrowed) metrics().zero_copy_cols.add(1);
  }
  out.validate_rectangular();

  metrics().read_rows.add(v.row_count);
  metrics().read_bytes.add(v.map->size());
  metrics().read_pages.add(v.pages.size());
  return out;
}

namespace {

// Copies rows [lo, hi) of one typed array out of its (sorted, tiling)
// pages. Only the overlapping page slices are touched.
template <typename T>
std::vector<T> copy_rows(const SnapshotView& v,
                         const std::vector<PageEntryView>& pages,
                         std::uint64_t lo, std::uint64_t hi) {
  std::vector<T> out(hi - lo);
  for (const PageEntryView& e : pages) {
    const std::uint64_t plo = std::max<std::uint64_t>(e.first_row, lo);
    const std::uint64_t phi = std::min<std::uint64_t>(e.first_row + e.rows, hi);
    if (plo >= phi) continue;
    std::memcpy(out.data() + (plo - lo),
                v.map->data() + e.offset + (plo - e.first_row) * sizeof(T),
                (phi - plo) * sizeof(T));
  }
  return out;
}

}  // namespace

std::size_t for_each_snapshot_block(
    const std::string& path,
    const std::function<void(const Table& block, std::size_t first_row)>& emit,
    const SnapshotReadOptions& options) {
  const SnapshotView v = parse_and_validate(path);
  if (options.verify)
    for (const PageEntryView& e : v.pages) verify_page(v, e);

  // Per-column page lists (validates that each array's pages tile the
  // rows), plus the union of page boundaries — the block cut points.
  struct ColumnPages {
    std::vector<PageEntryView> primary;  // f64 / codes / masks
    std::vector<PageEntryView> missing;  // multi-select flags only
  };
  std::vector<ColumnPages> per_column(v.columns.size());
  std::vector<std::uint64_t> cuts{0, v.row_count};
  const auto note_cuts = [&](const std::vector<PageEntryView>& pages) {
    for (const PageEntryView& e : pages) {
      cuts.push_back(e.first_row);
      cuts.push_back(e.first_row + e.rows);
    }
  };
  for (std::size_t c = 0; c < v.columns.size(); ++c) {
    ColumnPages& cp = per_column[c];
    switch (v.columns[c].kind) {
      case ColumnKind::kNumeric:
        cp.primary = column_pages(v, c, kPageF64);
        break;
      case ColumnKind::kCategorical:
        cp.primary = column_pages(v, c, kPageCodes);
        break;
      case ColumnKind::kMultiSelect:
        cp.primary = column_pages(v, c, kPageMasks);
        cp.missing = column_pages(v, c, kPageMissing);
        note_cuts(cp.missing);
        break;
    }
    note_cuts(cp.primary);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  for (std::size_t b = 0; b + 1 < cuts.size(); ++b) {
    const std::uint64_t lo = cuts[b], hi = cuts[b + 1];
    Table block;
    for (std::size_t c = 0; c < v.columns.size(); ++c) {
      const ColumnMeta& meta = v.columns[c];
      switch (meta.kind) {
        case ColumnKind::kNumeric: {
          auto& col = block.add_numeric(meta.name);
          col.adopt(PageVec<double>::owned(
              copy_rows<double>(v, per_column[c].primary, lo, hi)));
          break;
        }
        case ColumnKind::kCategorical: {
          auto& col = block.add_categorical(meta.name);
          if (meta.frozen) {
            col = CategoricalColumn{meta.labels};
          } else {
            for (const auto& label : meta.labels) col.push(label);
            col.clear();
          }
          auto codes =
              copy_rows<std::int32_t>(v, per_column[c].primary, lo, hi);
          if (options.verify) {
            const auto limit = static_cast<std::int32_t>(meta.labels.size());
            for (const std::int32_t code : codes)
              if (code != kMissingCode && (code < 0 || code >= limit))
                snapshot_fail("page", "column '" + meta.name +
                                          "': code out of dictionary range");
          }
          col.adopt_codes(PageVec<std::int32_t>::owned(std::move(codes)));
          break;
        }
        case ColumnKind::kMultiSelect: {
          auto& col = block.add_multiselect(meta.name, meta.labels);
          auto masks =
              copy_rows<std::uint64_t>(v, per_column[c].primary, lo, hi);
          auto missing =
              copy_rows<std::uint8_t>(v, per_column[c].missing, lo, hi);
          if (options.verify) {
            for (const std::uint64_t mask : masks)
              if (meta.labels.size() < MultiSelectColumn::kMaxOptions &&
                  (mask >> meta.labels.size()) != 0)
                snapshot_fail("page", "column '" + meta.name +
                                          "': mask selects options beyond "
                                          "the option list");
            for (const std::uint8_t flag : missing)
              if (flag > 1)
                snapshot_fail("page", "column '" + meta.name +
                                          "': bad missing flag");
          }
          col.adopt_rows(PageVec<std::uint64_t>::owned(std::move(masks)),
                         PageVec<std::uint8_t>::owned(std::move(missing)));
          break;
        }
      }
    }
    block.validate_rectangular();
    emit(block, static_cast<std::size_t>(lo));
  }

  metrics().read_rows.add(v.row_count);
  metrics().read_bytes.add(v.map->size());
  metrics().read_pages.add(v.pages.size());
  return static_cast<std::size_t>(v.row_count);
}

}  // namespace rcr::data
