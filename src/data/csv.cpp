#include "data/csv.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"
#include "util/strings.hpp"

namespace rcr::data {

namespace {

struct IngestMetrics {
  obs::Counter& rows = obs::registry().counter("ingest.rows");
  obs::Counter& bytes = obs::registry().counter("ingest.bytes");
  obs::Counter& shards = obs::registry().counter("ingest.shards");
  obs::Counter& serial_fallbacks =
      obs::registry().counter("ingest.serial_fallbacks");
  obs::Histogram& parse_ms = obs::registry().histogram("ingest.parse.ms");
};

IngestMetrics& metrics() {
  static IngestMetrics m;
  return m;
}

[[noreturn]] void parse_fail(std::size_t line, const std::string& msg) {
  throw rcr::InvalidInputError("CSV line " + std::to_string(line) + ": " +
                               msg);
}

// --- Incremental RFC-4180 record scanner -------------------------------------
//
// Consumes raw bytes in arbitrary chunk sizes and emits one sink callback
// per record. Quote state is scanner state, not per-line loop state, so a
// quoted field may contain newlines, CRLF, delimiters, and escaped quotes
// ("" -> ") — the full write_csv output grammar — and record boundaries are
// still found correctly. An unquoted CR immediately before LF is part of
// the CRLF terminator; any other CR is field content (a lone CR at EOF is
// dropped, matching the old line reader).
//
// Field buffers are reused across records: parsing allocates only while a
// field outgrows every field seen before it.
class RecordScanner {
 public:
  explicit RecordScanner(char delimiter, std::size_t start_line = 1)
      : delimiter_(delimiter), line_(start_line), record_line_(start_line) {}

  // Fields of the record being delivered; valid only inside a sink call.
  std::size_t field_count() const { return field_count_; }
  const std::string& field(std::size_t i) const { return fields_[i]; }
  bool quoted(std::size_t i) const { return quoted_[i] != 0; }
  // 1-based physical line the current record starts on (error reporting).
  std::size_t record_line() const { return record_line_; }
  // Physical line of the next byte to be consumed.
  std::size_t line() const { return line_; }

  // Consumes [data, data+n), invoking sink(*this) per completed record.
  // Stops early — returning the bytes consumed — when the sink returns
  // false; otherwise returns n.
  //
  // Ordinary content bytes (no delimiter/quote/newline/CR) dominate real
  // files, so mid-field states take a bulk path: scan to the next byte the
  // state machine actually cares about and append the run in one go.
  template <typename Sink>
  std::size_t feed(const char* data, std::size_t n, Sink&& sink) {
    std::size_t i = 0;
    while (i < n) {
      if (in_record_ && !pending_cr_) {
        std::size_t j = i;
        if (state_ == State::kUnquoted) {
          while (j < n && !is_special(data[j])) ++j;
        } else if (state_ == State::kQuoted) {
          while (j < n && data[j] != '"' && data[j] != '\n') ++j;
        }
        if (j > i) {
          fields_[field_count_].append(data + i, j - i);
          i = j;
          continue;
        }
      }
      if (!consume(data[i], sink)) return i + 1;
      ++i;
    }
    return n;
  }

  // Flushes the final record when the input does not end in a newline.
  template <typename Sink>
  void finish(Sink&& sink) {
    pending_cr_ = false;  // a lone trailing CR is dropped
    if (state_ == State::kQuoted)
      parse_fail(record_line_, "unterminated quoted field");
    if (in_record_) end_record(sink);
  }

 private:
  // kQuoteQuote: saw one '"' inside a quoted field — either the first half
  // of an escaped quote or the closing quote.
  enum class State : std::uint8_t {
    kFieldStart,
    kUnquoted,
    kQuoted,
    kQuoteQuote
  };

  bool is_special(char c) const {
    return c == delimiter_ || c == '"' || c == '\n' || c == '\r';
  }

  void open_field() {
    if (field_count_ == fields_.size()) {
      fields_.emplace_back();
      quoted_.push_back(0);
    } else {
      fields_[field_count_].clear();
      quoted_[field_count_] = 0;
    }
  }

  void next_field() {
    ++field_count_;
    open_field();
    state_ = State::kFieldStart;
  }

  template <typename Sink>
  bool end_record(Sink& sink) {
    ++field_count_;  // close the open field
    in_record_ = false;
    state_ = State::kFieldStart;
    const bool keep_going = sink(static_cast<const RecordScanner&>(*this));
    field_count_ = 0;
    record_line_ = line_;
    return keep_going;
  }

  template <typename Sink>
  bool consume(char c, Sink& sink) {
    if (!in_record_) {
      in_record_ = true;
      record_line_ = line_;
      open_field();
    }
    if (pending_cr_) {
      pending_cr_ = false;
      if (c == '\n') {  // CRLF record terminator
        ++line_;
        return end_record(sink);
      }
      // The CR was field content after all (the old reader kept it too).
      fields_[field_count_] += '\r';
      state_ = State::kUnquoted;
    }
    switch (state_) {
      case State::kFieldStart:
        if (c == '"') {
          quoted_[field_count_] = 1;
          state_ = State::kQuoted;
        } else if (c == delimiter_) {
          next_field();
        } else if (c == '\n') {
          ++line_;
          return end_record(sink);
        } else if (c == '\r') {
          pending_cr_ = true;
        } else {
          fields_[field_count_] += c;
          state_ = State::kUnquoted;
        }
        break;
      case State::kUnquoted:
        if (c == '"') {
          parse_fail(record_line_, "quote inside unquoted field");
        } else if (c == delimiter_) {
          next_field();
        } else if (c == '\n') {
          ++line_;
          return end_record(sink);
        } else if (c == '\r') {
          pending_cr_ = true;
        } else {
          fields_[field_count_] += c;
        }
        break;
      case State::kQuoted:
        if (c == '"') {
          state_ = State::kQuoteQuote;
        } else {
          if (c == '\n') ++line_;  // embedded newline: content, but a line
          fields_[field_count_] += c;
        }
        break;
      case State::kQuoteQuote:
        if (c == '"') {  // escaped quote
          fields_[field_count_] += '"';
          state_ = State::kQuoted;
        } else if (c == delimiter_) {
          next_field();
        } else if (c == '\n') {
          ++line_;
          return end_record(sink);
        } else if (c == '\r') {
          pending_cr_ = true;
          state_ = State::kUnquoted;
        } else {
          // Text after the closing quote; the pre-state-machine reader
          // accepted it as field content, so keep accepting it.
          fields_[field_count_] += c;
          state_ = State::kUnquoted;
        }
        break;
    }
    return true;
  }

  char delimiter_;
  State state_ = State::kFieldStart;
  bool pending_cr_ = false;
  bool in_record_ = false;
  std::size_t line_ = 1;
  std::size_t record_line_ = 1;
  std::size_t field_count_ = 0;
  std::vector<std::string> fields_;
  std::vector<std::uint8_t> quoted_;
};

// Validates the header record against the schema and returns the column
// names in file order (unquoted names are trimmed, quoted names verbatim).
std::vector<std::string> header_from(const RecordScanner& rec,
                                     const Table& schema) {
  std::vector<std::string> header(rec.field_count());
  for (std::size_t i = 0; i < rec.field_count(); ++i)
    header[i] = rec.quoted(i) ? rec.field(i)
                              : std::string(trim(rec.field(i)));
  if (header.size() != schema.column_count())
    parse_fail(rec.record_line(),
               "header has " + std::to_string(header.size()) +
                   " columns, schema expects " +
                   std::to_string(schema.column_count()));
  for (const auto& name : header)
    if (!schema.has_column(name))
      parse_fail(rec.record_line(), "unknown column '" + name + "'");
  return header;
}

// A record that is one unquoted whitespace-only field: a blank line. In a
// multi-column file that can never be a valid row; in a single-column file
// it is a legitimate missing-cell row and must not be skipped.
bool blank_record(const RecordScanner& rec) {
  return rec.field_count() == 1 && !rec.quoted(0) &&
         trim(rec.field(0)).empty();
}

// A header column resolved to its typed destination once per parse (or per
// shard). The old reader looked every cell's column up by name twice per
// cell; at ingest scale those linear scans were a measurable share of the
// parse, so the hot path works through these handles instead.
struct BoundColumn {
  ColumnKind kind = ColumnKind::kNumeric;
  NumericColumn* num = nullptr;
  CategoricalColumn* cat = nullptr;
  MultiSelectColumn* multi = nullptr;
  const std::string* name = nullptr;  // error messages only
};

std::vector<BoundColumn> bind_columns(Table& out,
                                      const std::vector<std::string>& header) {
  std::vector<BoundColumn> bound(header.size());
  for (std::size_t i = 0; i < header.size(); ++i) {
    BoundColumn& b = bound[i];
    b.name = &header[i];
    b.kind = out.kind(header[i]);
    switch (b.kind) {
      case ColumnKind::kNumeric: b.num = &out.numeric(header[i]); break;
      case ColumnKind::kCategorical: b.cat = &out.categorical(header[i]); break;
      case ColumnKind::kMultiSelect: b.multi = &out.multiselect(header[i]);
        break;
    }
  }
  return bound;
}

// Parses one cell into its typed column — the single point the serial,
// streaming, and parallel readers all push values through.
void append_cell(const BoundColumn& col, std::string_view cell,
                 const CsvOptions& options, std::size_t line_no) {
  switch (col.kind) {
    case ColumnKind::kNumeric: {
      if (cell.empty()) {
        col.num->push_missing();
      } else {
        const auto v = parse_double(cell);
        if (!v)
          parse_fail(line_no, "column '" + *col.name + "': not a number: '" +
                                  std::string(cell) + "'");
        // NaN is the missing sentinel and infinities cannot round-trip
        // through analysis; a cell that parses but is non-finite is an
        // error, never a silent missing value.
        if (!std::isfinite(*v))
          parse_fail(line_no, "column '" + *col.name + "': non-finite value '" +
                                  std::string(cell) +
                                  "' (reserved for missing cells)");
        col.num->push(*v);
      }
      break;
    }
    case ColumnKind::kCategorical: {
      if (cell.empty()) {
        col.cat->push_missing();
      } else {
        const std::string label(cell);
        if (col.cat->frozen() && col.cat->find_code(label) == kMissingCode)
          parse_fail(line_no, "column '" + *col.name +
                                  "': unknown category '" + label + "'");
        col.cat->push(label);
      }
      break;
    }
    case ColumnKind::kMultiSelect: {
      if (cell.empty()) {
        col.multi->push_missing();
        break;
      }
      if (cell == "-") {  // answered, nothing selected
        col.multi->push_mask(0);
        break;
      }
      std::uint64_t mask = 0;
      for (const auto& part : split(cell, options.multiselect_separator)) {
        // Quoted cells arrive verbatim, so an option label that itself
        // carries padding (" b ") matches verbatim first; otherwise the
        // part is trimmed, which keeps human-typed "a | b" working.
        std::int32_t o = col.multi->find_option(part);
        if (o < 0) {
          const std::string label{trim(part)};
          if (label.empty()) continue;
          o = col.multi->find_option(label);
          if (o < 0)
            parse_fail(line_no, "column '" + *col.name +
                                    "': unknown option '" + label + "'");
        }
        mask |= std::uint64_t{1} << o;
      }
      col.multi->push_mask(mask);
      break;
    }
  }
}

// Appends one data record: field count check, unquoted-cell trim, typed
// push. Quoted cells keep their bytes verbatim — that is the round-trip
// contract for whitespace-padded labels.
void append_record(const RecordScanner& rec,
                   const std::vector<BoundColumn>& bound,
                   const CsvOptions& options) {
  if (rec.field_count() != bound.size())
    parse_fail(rec.record_line(),
               "expected " + std::to_string(bound.size()) + " fields, got " +
                   std::to_string(rec.field_count()));
  for (std::size_t f = 0; f < rec.field_count(); ++f) {
    const std::string_view cell = rec.quoted(f)
                                      ? std::string_view(rec.field(f))
                                      : trim(rec.field(f));
    append_cell(bound[f], cell, options, rec.record_line());
  }
}

inline constexpr std::size_t kIoChunkBytes = 64 * 1024;

// Streams `in` through a scanner in fixed-size chunks; returns total bytes.
template <typename Sink>
std::uint64_t scan_istream(std::istream& in, char delimiter, Sink&& sink) {
  RecordScanner scanner(delimiter);
  std::vector<char> buf(kIoChunkBytes);
  std::uint64_t bytes = 0;
  for (;;) {
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    if (got > 0) {
      bytes += got;
      scanner.feed(buf.data(), got, sink);
    }
    if (got < buf.size()) break;  // read() only comes up short at EOF
  }
  scanner.finish(sink);
  return bytes;
}

// Shared serial driver: header record first, then every data record pushed
// into `out` with `on_row` fired per completed row (streaming callers clear
// `out` there). Returns rows parsed.
std::uint64_t parse_serial(std::istream& in, const Table& schema,
                           const CsvOptions& options, Table& out,
                           const std::function<void()>& on_row) {
  obs::ScopedTimer timer(metrics().parse_ms);
  bool have_header = false;
  std::vector<std::string> header;
  std::vector<BoundColumn> bound;
  std::uint64_t rows = 0;
  const auto on_record = [&](const RecordScanner& rec) {
    if (!have_header) {
      header = header_from(rec, schema);
      bound = bind_columns(out, header);
      have_header = true;
      return true;
    }
    if (blank_record(rec) && header.size() > 1 && options.skip_blank_lines)
      return true;
    append_record(rec, bound, options);
    ++rows;
    if (on_row) on_row();
    return true;
  };
  const std::uint64_t bytes = scan_istream(in, options.delimiter, on_record);
  if (!have_header)
    throw rcr::InvalidInputError("CSV input is empty (no header row)");
  metrics().rows.add(rows);
  metrics().bytes.add(bytes);
  metrics().shards.add(1);
  return rows;
}

// --- Parallel buffer reader --------------------------------------------------

struct ShardSpan {
  std::size_t begin = 0;
  std::size_t end = 0;
};

inline constexpr std::size_t kMinShardBytes = 64 * 1024;
inline constexpr std::size_t kShardTarget = 64;  // cf. kReduceChunkTarget


// One quote-parity pass over the data region [data_begin, buf.size()) that
// snaps chunk_layout's even byte splits forward to the next record start
// (the byte after an unquoted newline). The layout's grain is a pure
// function of the byte count — never of the pool — and the snapped
// boundaries are a pure function of the bytes, so the shard partition is
// identical for every thread count.
//
// The pass jumps with memchr instead of walking bytes: only quote
// characters are visited individually (parity must track every one of
// them, '""' toggling twice nets out), and newlines are searched only
// inside the window where the next desired split could land.
std::vector<ShardSpan> split_shards(const std::string& buf,
                                    std::size_t data_begin,
                                    std::size_t grain) {
  std::vector<ShardSpan> shards;
  if (data_begin >= buf.size()) return shards;
  const auto layout = parallel::chunk_layout(data_begin, buf.size(), grain);
  const char* base = buf.data();
  const std::size_t size = buf.size();
  ShardSpan cur{data_begin, size};
  std::size_t k = 1;  // next desired split: layout.bounds(k).first
  std::size_t i = data_begin;
  bool in_quotes = false;
  while (i < size && k < layout.chunks) {
    if (in_quotes) {
      const void* q = std::memchr(base + i, '"', size - i);
      if (q == nullptr) break;  // unterminated; the shard parse reports it
      i = static_cast<std::size_t>(static_cast<const char*>(q) - base) + 1;
      in_quotes = false;
      continue;
    }
    const void* q = std::memchr(base + i, '"', size - i);
    const std::size_t quote =
        q ? static_cast<std::size_t>(static_cast<const char*>(q) - base)
          : size;
    // Unquoted run [i, quote): a boundary is the byte after a newline, and
    // the next split wants the first boundary >= its target, so newlines
    // before target-1 are irrelevant.
    std::size_t from = std::max(i, layout.bounds(k).first - 1);
    while (from < quote && k < layout.chunks) {
      const void* nl = std::memchr(base + from, '\n', quote - from);
      if (nl == nullptr) break;
      const std::size_t next =
          static_cast<std::size_t>(static_cast<const char*>(nl) - base) + 1;
      if (next >= size) {
        from = size;
        break;
      }
      cur.end = next;
      shards.push_back(cur);
      cur = ShardSpan{next, size};
      // Skip desired splits this boundary already passed (short chunks
      // collapse into their successor instead of going out empty).
      while (k < layout.chunks && layout.bounds(k).first <= next) ++k;
      if (k < layout.chunks)
        from = std::max(next, layout.bounds(k).first - 1);
    }
    if (k >= layout.chunks || quote >= size) break;
    i = quote + 1;
    in_quotes = true;
  }
  shards.push_back(cur);
  return shards;
}

// Physical (1-based) line on which the record at byte `offset` starts:
// one plus every newline before it, quoted or not, matching the serial
// scanner's line accounting. Cold path — only consulted when a shard
// fails and its error must carry the same line number serial would print.
std::size_t line_at(const std::string& buf, std::size_t offset) {
  std::size_t line = 1;
  const char* base = buf.data();
  std::size_t i = 0;
  while (i < offset) {
    const void* nl = std::memchr(base + i, '\n', offset - i);
    if (nl == nullptr) break;
    ++line;
    i = static_cast<std::size_t>(static_cast<const char*>(nl) - base) + 1;
  }
  return line;
}

bool has_open_dictionaries(const Table& schema) {
  for (const auto& name : schema.column_names())
    if (schema.kind(name) == ColumnKind::kCategorical &&
        !schema.categorical(name).frozen())
      return true;
  return false;
}

// One serial scan over an in-memory buffer — the small-input fast path of
// the parallel entry points. Byte-identical to read_csv on the same bytes
// (same scanner, same record handling), so the fallback is invisible to
// callers except in wall time.
Table parse_buffer_serial(const std::string& buf, const Table& schema,
                          const CsvOptions& options) {
  obs::ScopedTimer timer(metrics().parse_ms);
  Table out = schema.clone_empty();
  bool have_header = false;
  std::vector<std::string> header;
  std::vector<BoundColumn> bound;
  std::uint64_t rows = 0;
  const auto on_record = [&](const RecordScanner& rec) {
    if (!have_header) {
      header = header_from(rec, schema);
      bound = bind_columns(out, header);
      have_header = true;
      return true;
    }
    if (blank_record(rec) && header.size() > 1 && options.skip_blank_lines)
      return true;
    append_record(rec, bound, options);
    ++rows;
    return true;
  };
  RecordScanner scanner(options.delimiter);
  scanner.feed(buf.data(), buf.size(), on_record);
  scanner.finish(on_record);
  if (!have_header)
    throw rcr::InvalidInputError("CSV input is empty (no header row)");
  out.validate_rectangular();
  metrics().rows.add(rows);
  metrics().bytes.add(buf.size());
  metrics().shards.add(1);
  metrics().serial_fallbacks.add(1);
  return out;
}

Table parse_buffer_parallel(const std::string& buf, const Table& schema,
                            parallel::ThreadPool* pool,
                            const CsvOptions& options) {
  // Below the crossover (and with the grain left to us — an explicit
  // parallel_shard_bytes pins sharding on, which the determinism tests
  // rely on), skip the boundary pass and shard merge entirely.
  if (options.parallel_shard_bytes == 0 &&
      buf.size() < kParallelSerialFallbackBytes)
    return parse_buffer_serial(buf, schema, options);
  obs::ScopedTimer timer(metrics().parse_ms);

  // Header first. Its quoted fields may span newlines too, so the header's
  // end is found with the scanner, not a line search.
  RecordScanner header_scan(options.delimiter);
  std::vector<std::string> header;
  bool have_header = false;
  std::size_t data_begin =
      header_scan.feed(buf.data(), buf.size(), [&](const RecordScanner& rec) {
        header = header_from(rec, schema);
        have_header = true;
        return false;
      });
  if (!have_header) {
    header_scan.finish([&](const RecordScanner& rec) {
      header = header_from(rec, schema);
      have_header = true;
      return false;
    });
    data_begin = buf.size();
  }
  if (!have_header)
    throw rcr::InvalidInputError("CSV input is empty (no header row)");

  const std::size_t data_bytes = buf.size() - data_begin;
  const std::size_t grain =
      options.parallel_shard_bytes > 0
          ? options.parallel_shard_bytes
          : std::max(kMinShardBytes,
                     (data_bytes + kShardTarget - 1) / kShardTarget);
  const auto shards = split_shards(buf, data_begin, grain);

  std::vector<Table> partials(shards.size());
  std::vector<std::exception_ptr> errors(shards.size());
  const auto parse_shard_at = [&](std::size_t k, std::size_t start_line,
                                  Table& part) {
    const auto bound = bind_columns(part, header);
    RecordScanner scan(options.delimiter, start_line);
    const auto on_record = [&](const RecordScanner& rec) {
      if (blank_record(rec) && header.size() > 1 && options.skip_blank_lines)
        return true;
      append_record(rec, bound, options);
      return true;
    };
    scan.feed(buf.data() + shards[k].begin, shards[k].end - shards[k].begin,
              on_record);
    scan.finish(on_record);
  };
  const auto parse_shard = [&](std::size_t k) {
    try {
      Table part = schema.clone_empty();
      parse_shard_at(k, 1, part);  // line fixed up on the cold error path
      partials[k] = std::move(part);
    } catch (...) {
      errors[k] = std::current_exception();
    }
  };

  if (pool != nullptr && shards.size() > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards.size());
    for (std::size_t k = 0; k < shards.size(); ++k)
      tasks.emplace_back([&parse_shard, k] { parse_shard(k); });
    pool->run_batch(std::move(tasks));
  } else {
    for (std::size_t k = 0; k < shards.size(); ++k) parse_shard(k);
  }

  // Errors surface in shard-index order. The first malformed record in
  // file order lives in the earliest erroring shard (shards before it parse
  // the same valid records the serial scan saw), so serial and parallel
  // reads raise the same error. Shards parse with shard-relative line
  // numbers; here — off the hot path — the failing shard re-runs with its
  // true start line so the message matches serial's exactly.
  for (std::size_t k = 0; k < shards.size(); ++k) {
    if (!errors[k]) continue;
    Table scratch = schema.clone_empty();
    parse_shard_at(k, line_at(buf, shards[k].begin), scratch);
    std::rethrow_exception(errors[k]);  // unreachable unless the rerun passes
  }

  Table out = schema.clone_empty();
  const bool open_dicts = has_open_dictionaries(schema);
  for (std::size_t k = 0; k < shards.size(); ++k) {
    if (open_dicts)
      // Label-wise re-intern reproduces the serial dictionary build order;
      // shards whose category sets already converged take its bulk path.
      out.append_rows_labelwise(partials[k]);
    else
      out.append_rows(partials[k]);
  }
  out.validate_rectangular();

  metrics().rows.add(out.row_count());
  metrics().bytes.add(buf.size());
  metrics().shards.add(shards.empty() ? 1 : shards.size());
  return out;
}

std::string slurp(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

// --- Writing -----------------------------------------------------------------

std::string escape_field(const std::string& field, char delimiter) {
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  // Leading/trailing whitespace must be quoted: the reader trims unquoted
  // cells, so an unquoted padded label would silently mutate on ingest.
  const bool needs_quotes =
      field.find(delimiter) != std::string::npos ||
      field.find('"') != std::string::npos ||
      field.find('\n') != std::string::npos ||
      field.find('\r') != std::string::npos ||
      (!field.empty() && (is_space(field.front()) || is_space(field.back())));
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table read_csv(std::istream& in, const Table& schema,
               const CsvOptions& options) {
  Table out = schema.clone_empty();
  parse_serial(in, schema, options, out, nullptr);
  out.validate_rectangular();
  return out;
}

Table read_csv_file(const std::string& path, const Table& schema,
                    const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw rcr::InvalidInputError("cannot open CSV file: " + path);
  return read_csv(in, schema, options);
}

Table read_csv_parallel(std::istream& in, const Table& schema,
                        parallel::ThreadPool* pool,
                        const CsvOptions& options) {
  return parse_buffer_parallel(slurp(in), schema, pool, options);
}

Table read_csv_parallel_file(const std::string& path, const Table& schema,
                             parallel::ThreadPool* pool,
                             const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw rcr::InvalidInputError("cannot open CSV file: " + path);
  return parse_buffer_parallel(slurp(in), schema, pool, options);
}

std::size_t for_each_csv_row(
    std::istream& in, const Table& schema,
    const std::function<void(const Table& row, std::size_t index)>& visit,
    const CsvOptions& options) {
  Table row = schema.clone_empty();
  std::size_t index = 0;
  parse_serial(in, schema, options, row, [&] {
    visit(row, index);
    ++index;
    row.clear_rows();
  });
  return index;
}

std::size_t for_each_csv_row_file(
    const std::string& path, const Table& schema,
    const std::function<void(const Table& row, std::size_t index)>& visit,
    const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw rcr::InvalidInputError("cannot open CSV file: " + path);
  return for_each_csv_row(in, schema, visit, options);
}

std::size_t for_each_csv_block(
    std::istream& in, const Table& schema, std::size_t block_rows,
    const std::function<void(const Table& block, std::size_t first_row)>&
        visit,
    const CsvOptions& options) {
  if (block_rows == 0)
    throw rcr::InvalidInputError("for_each_csv_block: block_rows must be > 0");
  Table block = schema.clone_empty();
  std::size_t delivered = 0;
  std::size_t in_block = 0;
  parse_serial(in, schema, options, block, [&] {
    if (++in_block == block_rows) {
      visit(block, delivered);
      delivered += in_block;
      in_block = 0;
      block.clear_rows();
    }
  });
  if (in_block > 0) {
    visit(block, delivered);
    delivered += in_block;
  }
  return delivered;
}

std::size_t for_each_csv_block_file(
    const std::string& path, const Table& schema, std::size_t block_rows,
    const std::function<void(const Table& block, std::size_t first_row)>&
        visit,
    const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw rcr::InvalidInputError("cannot open CSV file: " + path);
  return for_each_csv_block(in, schema, block_rows, visit, options);
}

void write_csv(std::ostream& out, const Table& table,
               const CsvOptions& options) {
  table.validate_rectangular();
  const auto& names = table.column_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) out << options.delimiter;
    out << escape_field(names[i], options.delimiter);
  }
  out << '\n';
  const std::size_t n = table.row_count();
  for (std::size_t row = 0; row < n; ++row) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i) out << options.delimiter;
      const auto& name = names[i];
      switch (table.kind(name)) {
        case ColumnKind::kNumeric: {
          const double v = table.numeric(name).at(row);
          if (!NumericColumn::is_missing(v)) {
            // Shortest representation that round-trips exactly.
            char buf[32];
            const auto res = std::to_chars(buf, buf + sizeof(buf), v);
            out.write(buf, res.ptr - buf);
          }
          break;
        }
        case ColumnKind::kCategorical: {
          const auto& col = table.categorical(name);
          if (!col.is_missing(row))
            out << escape_field(col.label_at(row), options.delimiter);
          break;
        }
        case ColumnKind::kMultiSelect: {
          const auto& col = table.multiselect(name);
          if (!col.is_missing(row)) {
            std::string joined;
            for (std::size_t o = 0; o < col.option_count(); ++o) {
              if (!col.has(row, o)) continue;
              if (!joined.empty()) joined += options.multiselect_separator;
              joined += col.option(o);
            }
            // Distinguish "answered, nothing selected" from missing.
            if (joined.empty()) joined = "-";
            out << escape_field(joined, options.delimiter);
          }
          break;
        }
      }
    }
    out << '\n';
  }
}

void write_csv_file(const std::string& path, const Table& table,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw rcr::InvalidInputError("cannot write CSV file: " + path);
  write_csv(out, table, options);
}

}  // namespace rcr::data
