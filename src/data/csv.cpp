#include "data/csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace rcr::data {

namespace {

[[noreturn]] void parse_fail(std::size_t line, const std::string& msg) {
  throw rcr::InvalidInputError("CSV line " + std::to_string(line) + ": " +
                               msg);
}

// Splits one CSV record honoring RFC-4180 double quotes.
std::vector<std::string> split_record(const std::string& record,
                                      char delimiter, std::size_t line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < record.size(); ++i) {
    const char ch = record[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < record.size() && record[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += ch;
      }
    } else if (ch == '"') {
      if (!current.empty()) parse_fail(line, "quote inside unquoted field");
      in_quotes = true;
    } else if (ch == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += ch;
    }
  }
  if (in_quotes) parse_fail(line, "unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

// Validates the header row against the schema and returns the trimmed
// column names in file order.
std::vector<std::string> read_header(std::istream& in, const Table& schema,
                                     char delimiter, std::size_t& line_no) {
  std::string line;
  if (!std::getline(in, line))
    throw rcr::InvalidInputError("CSV input is empty (no header row)");
  ++line_no;
  if (!line.empty() && line.back() == '\r') line.pop_back();

  auto header = split_record(line, delimiter, line_no);
  if (header.size() != schema.column_count())
    parse_fail(line_no, "header has " + std::to_string(header.size()) +
                            " columns, schema expects " +
                            std::to_string(schema.column_count()));
  for (auto& name : header) {
    name = std::string(trim(name));
    if (!schema.has_column(name))
      parse_fail(line_no, "unknown column '" + name + "'");
  }
  return header;
}

// Parses one cell into its typed column — the single point both the
// materializing reader and the streaming visitor push values through.
void append_cell(Table& out, const std::string& name, const std::string& cell,
                 const CsvOptions& options, std::size_t line_no) {
  switch (out.kind(name)) {
    case ColumnKind::kNumeric: {
      if (cell.empty()) {
        out.numeric(name).push_missing();
      } else {
        const auto v = parse_double(cell);
        if (!v)
          parse_fail(line_no,
                     "column '" + name + "': not a number: '" + cell + "'");
        out.numeric(name).push(*v);
      }
      break;
    }
    case ColumnKind::kCategorical: {
      auto& col = out.categorical(name);
      if (cell.empty()) {
        col.push_missing();
      } else {
        if (col.frozen() && col.find_code(cell) == kMissingCode)
          parse_fail(line_no,
                     "column '" + name + "': unknown category '" + cell + "'");
        col.push(cell);
      }
      break;
    }
    case ColumnKind::kMultiSelect: {
      auto& col = out.multiselect(name);
      if (cell.empty()) {
        col.push_missing();
        break;
      }
      if (cell == "-") {  // answered, nothing selected
        col.push_mask(0);
        break;
      }
      std::vector<std::string> labels;
      for (auto& part : split(cell, options.multiselect_separator)) {
        const std::string label{trim(part)};
        if (label.empty()) continue;
        if (col.find_option(label) < 0)
          parse_fail(line_no,
                     "column '" + name + "': unknown option '" + label + "'");
        labels.push_back(label);
      }
      col.push_labels(labels);
      break;
    }
  }
}

// Shared record loop: parses every data row, pushing cells into `out` and
// calling `on_row` after each completed row. `on_row` may clear `out`
// (streaming mode) or do nothing (materializing mode).
void parse_rows(std::istream& in, const std::vector<std::string>& header,
                Table& out, const CsvOptions& options, std::size_t& line_no,
                const std::function<void()>& on_row) {
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (trim(line).empty()) continue;
    const auto fields = split_record(line, options.delimiter, line_no);
    if (fields.size() != header.size())
      parse_fail(line_no, "expected " + std::to_string(header.size()) +
                              " fields, got " + std::to_string(fields.size()));
    for (std::size_t f = 0; f < fields.size(); ++f)
      append_cell(out, header[f], std::string(trim(fields[f])), options,
                  line_no);
    if (on_row) on_row();
  }
}

std::string escape_field(const std::string& field, char delimiter) {
  const bool needs_quotes =
      field.find(delimiter) != std::string::npos ||
      field.find('"') != std::string::npos ||
      field.find('\n') != std::string::npos ||
      field.find('\r') != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table read_csv(std::istream& in, const Table& schema,
               const CsvOptions& options) {
  std::size_t line_no = 0;
  const auto header = read_header(in, schema, options.delimiter, line_no);
  Table out = schema.clone_empty();
  parse_rows(in, header, out, options, line_no, nullptr);
  out.validate_rectangular();
  return out;
}

std::size_t for_each_csv_row(
    std::istream& in, const Table& schema,
    const std::function<void(const Table& row, std::size_t index)>& visit,
    const CsvOptions& options) {
  std::size_t line_no = 0;
  const auto header = read_header(in, schema, options.delimiter, line_no);
  Table row = schema.clone_empty();
  std::size_t index = 0;
  parse_rows(in, header, row, options, line_no, [&] {
    visit(row, index);
    ++index;
    row.clear_rows();
  });
  return index;
}

std::size_t for_each_csv_row_file(
    const std::string& path, const Table& schema,
    const std::function<void(const Table& row, std::size_t index)>& visit,
    const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) throw rcr::InvalidInputError("cannot open CSV file: " + path);
  return for_each_csv_row(in, schema, visit, options);
}

Table read_csv_file(const std::string& path, const Table& schema,
                    const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) throw rcr::InvalidInputError("cannot open CSV file: " + path);
  return read_csv(in, schema, options);
}

void write_csv(std::ostream& out, const Table& table,
               const CsvOptions& options) {
  table.validate_rectangular();
  const auto& names = table.column_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) out << options.delimiter;
    out << escape_field(names[i], options.delimiter);
  }
  out << '\n';
  const std::size_t n = table.row_count();
  for (std::size_t row = 0; row < n; ++row) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i) out << options.delimiter;
      const auto& name = names[i];
      switch (table.kind(name)) {
        case ColumnKind::kNumeric: {
          const double v = table.numeric(name).at(row);
          if (!NumericColumn::is_missing(v)) {
            // Shortest representation that round-trips exactly.
            char buf[32];
            const auto res = std::to_chars(buf, buf + sizeof(buf), v);
            out.write(buf, res.ptr - buf);
          }
          break;
        }
        case ColumnKind::kCategorical: {
          const auto& col = table.categorical(name);
          if (!col.is_missing(row))
            out << escape_field(col.label_at(row), options.delimiter);
          break;
        }
        case ColumnKind::kMultiSelect: {
          const auto& col = table.multiselect(name);
          if (!col.is_missing(row)) {
            std::string joined;
            for (std::size_t o = 0; o < col.option_count(); ++o) {
              if (!col.has(row, o)) continue;
              if (!joined.empty()) joined += options.multiselect_separator;
              joined += col.option(o);
            }
            // Distinguish "answered, nothing selected" from missing.
            if (joined.empty()) joined = "-";
            out << escape_field(joined, options.delimiter);
          }
          break;
        }
      }
    }
    out << '\n';
  }
}

void write_csv_file(const std::string& path, const Table& table,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) throw rcr::InvalidInputError("cannot write CSV file: " + path);
  write_csv(out, table, options);
}

}  // namespace rcr::data
