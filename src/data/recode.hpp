// Recoding utilities: derive categorical columns from existing data —
// binning numerics into classes ("cores" → width class) and arbitrary
// row-wise derivations (the parallelism ladder as a real column).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "data/table.hpp"

namespace rcr::data {

// Adds a categorical column `new_name` classifying `numeric_column` by the
// half-open intervals (-inf, breaks[0]), [breaks[0], breaks[1]), ...,
// [breaks.back(), +inf). `labels` must have breaks.size() + 1 entries.
// Missing numerics become missing categories.
void add_binned_column(Table& table, const std::string& numeric_column,
                       const std::string& new_name,
                       const std::vector<double>& breaks,
                       const std::vector<std::string>& labels);

// Adds a categorical column computed by `code_fn(row)`; the function
// returns a code into `categories` or kMissingCode.
void add_derived_column(
    Table& table, const std::string& new_name,
    std::vector<std::string> categories,
    const std::function<std::int32_t(const Table&, std::size_t)>& code_fn);

}  // namespace rcr::data
