// Parallel-scaling models: the substitute for hardware we do not have.
//
// Two independent predictors, cross-validated against each other in tests
// and ablated in F5:
//   * an analytic machine model (Amdahl + fork-join overhead + a shared
//     memory-bandwidth ceiling), calibrated from one measured serial run;
//   * a discrete-event fork-join simulator that executes an explicit task
//     list on P virtual cores (greedy list scheduling) and reports the
//     makespan — no closed-form assumptions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rcr::sim {

// Virtual machine the study's scaling questions are asked about.
struct MachineModel {
  double core_gflops = 4.0;          // per-core arithmetic throughput
  double mem_bandwidth_gbs = 25.0;   // shared bandwidth ceiling (GB/s)
  double barrier_latency_us = 5.0;   // fork-join barrier cost at p=2
  // Barrier cost grows ~log2(p) (tree barrier), scaled by this model.
};

// Workload description matching kernels::KernelCase.
struct WorkloadModel {
  double work_ops = 1e9;        // arithmetic operations per run
  double serial_fraction = 0.01;
  double bytes_per_flop = 0.0;
  std::size_t barriers = 1;     // synchronization points per run
};

struct ScalingPoint {
  std::size_t cores = 1;
  double time_seconds = 0.0;
  double speedup = 1.0;
  double efficiency = 1.0;
};

// Analytic prediction of runtime on `cores`.
//   t(p) = f*W/F + max((1-f)*W/(p*F), B/bw) + barriers*c_b*log2(p)
// where W = work_ops, F = per-core flops, B = total bytes moved.
double predict_time(const MachineModel& machine, const WorkloadModel& work,
                    std::size_t cores);

// Full strong-scaling curve over the given core counts.
std::vector<ScalingPoint> strong_scaling_curve(
    const MachineModel& machine, const WorkloadModel& work,
    std::span<const std::size_t> core_counts);

// Ablation switches for F5: drop individual model terms.
struct ModelAblation {
  bool include_bandwidth = true;
  bool include_barriers = true;
};
double predict_time_ablated(const MachineModel& machine,
                            const WorkloadModel& work, std::size_t cores,
                            const ModelAblation& ablation);

// --- Discrete-event fork-join simulation ----------------------------------

// Simulates executing `task_durations` (seconds each) on `cores` virtual
// cores with greedy earliest-finish assignment, plus `serial_seconds` of
// non-overlappable work and a per-barrier cost. Returns the makespan.
double simulate_fork_join(std::span<const double> task_durations,
                          std::size_t cores, double serial_seconds = 0.0,
                          double barrier_seconds = 0.0);

// Builds the task list the DES needs from a workload: the parallel portion
// split into `tasks` equal chunks (plus jitter_fraction of lognormal-ish
// imbalance when > 0, deterministic under `seed`).
std::vector<double> make_task_durations(const MachineModel& machine,
                                        const WorkloadModel& work,
                                        std::size_t tasks,
                                        double jitter_fraction = 0.0,
                                        std::uint64_t seed = 1);

// Weak scaling: the problem grows with the core count (work_ops is the
// per-core workload). Returns predicted time and scaled efficiency
// t(1)/t(p) at each core count; an ideal machine holds time flat.
struct WeakScalingPoint {
  std::size_t cores = 1;
  double time_seconds = 0.0;
  double efficiency = 1.0;  // t(1) / t(p)
};
std::vector<WeakScalingPoint> weak_scaling_curve(
    const MachineModel& machine, const WorkloadModel& per_core_work,
    std::span<const std::size_t> core_counts);

// Amdahl's law ideal speedup (no overheads), for reference lines.
double amdahl_speedup(double serial_fraction, std::size_t cores);

// Gustafson's scaled speedup, for the weak-scaling discussion.
double gustafson_speedup(double serial_fraction, std::size_t cores);

}  // namespace rcr::sim
