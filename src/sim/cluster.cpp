#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::sim {

const char* scheduler_label(SchedulerPolicy p) {
  switch (p) {
    case SchedulerPolicy::kFcfs: return "FCFS";
    case SchedulerPolicy::kEasyBackfill: return "EASY-backfill";
    case SchedulerPolicy::kShortestFirst: return "SJF";
  }
  return "?";
}

std::vector<Job> generate_job_stream(const JobStreamConfig& config) {
  RCR_CHECK_MSG(config.jobs > 0, "job stream must be non-empty");
  RCR_CHECK_MSG(config.arrival_rate_per_hour > 0.0,
                "arrival rate must be positive");
  RCR_CHECK_MSG(config.max_cores >= 1, "max_cores must be >= 1");
  Rng rng(config.seed);
  std::vector<Job> jobs;
  jobs.reserve(config.jobs);

  // Width distribution: half the jobs are serial; the rest double in width
  // with geometrically decaying probability — the standard trace shape.
  std::vector<double> width_weights;
  std::vector<std::size_t> widths;
  double w = 1.0;
  for (std::size_t c = 1; c <= config.max_cores; c *= 2) {
    widths.push_back(c);
    width_weights.push_back(w);
    w *= 0.55;
  }

  double t = 0.0;
  const double mean_gap = 3600.0 / config.arrival_rate_per_hour;
  for (std::size_t i = 0; i < config.jobs; ++i) {
    t += rng.exponential(1.0 / mean_gap);
    Job job;
    job.submit_time = t;
    job.cores = widths[rng.categorical(width_weights)];
    job.runtime = std::min(config.max_runtime,
                           rng.lognormal(config.runtime_log_mu,
                                         config.runtime_log_sigma));
    jobs.push_back(job);
  }
  return jobs;
}

namespace {

struct Running {
  double end_time;
  std::size_t cores;
  bool operator<(const Running& o) const { return end_time < o.end_time; }
};

// Inserts a running record keeping the vector sorted by end time.
void insert_running(std::vector<Running>& running, Running r) {
  running.insert(std::upper_bound(running.begin(), running.end(), r), r);
}

}  // namespace

QueueMetrics simulate_cluster(std::vector<Job>& jobs, std::size_t total_cores,
                              SchedulerPolicy policy) {
  RCR_CHECK_MSG(total_cores >= 1, "cluster needs cores");
  RCR_CHECK_MSG(!jobs.empty(), "no jobs to simulate");
  for (const auto& j : jobs) {
    RCR_CHECK_MSG(j.cores >= 1 && j.cores <= total_cores,
                  "job width exceeds the cluster");
    RCR_CHECK_MSG(j.runtime >= 0.0, "negative runtime");
  }
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const Job& a, const Job& b) {
                     return a.submit_time < b.submit_time;
                   });

  std::vector<Running> running;  // sorted by end_time
  std::deque<std::size_t> queue; // indices of waiting jobs, arrival order
  std::size_t free_cores = total_cores;
  std::size_t next_arrival = 0;
  double now = 0.0;
  double busy_core_seconds = 0.0;
  double makespan = 0.0;

  const auto start_job = [&](std::size_t idx) {
    Job& j = jobs[idx];
    j.start_time = now;
    free_cores -= j.cores;
    insert_running(running, {now + j.runtime, j.cores});
    busy_core_seconds += j.runtime * static_cast<double>(j.cores);
    makespan = std::max(makespan, now + j.runtime);
  };

  // Attempts to start queued jobs under the active policy.
  const auto schedule = [&] {
    if (policy == SchedulerPolicy::kShortestFirst) {
      // Repeatedly start the shortest queued job that fits right now.
      for (;;) {
        std::size_t best = queue.size();
        for (std::size_t qi = 0; qi < queue.size(); ++qi) {
          const Job& j = jobs[queue[qi]];
          if (j.cores > free_cores) continue;
          if (best == queue.size() ||
              j.runtime < jobs[queue[best]].runtime) {
            best = qi;
          }
        }
        if (best == queue.size()) return;
        start_job(queue[best]);
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(best));
      }
    }
    // FCFS / EASY: start from the head while it fits.
    while (!queue.empty() && jobs[queue.front()].cores <= free_cores) {
      start_job(queue.front());
      queue.pop_front();
    }
    if (policy != SchedulerPolicy::kEasyBackfill || queue.empty()) return;

    // EASY backfill: reserve a start time for the head, then let later
    // jobs run now if they cannot delay that reservation.
    const Job& head = jobs[queue.front()];
    // Find the shadow time: walking the running list in end-time order,
    // when do enough cores accumulate for the head?
    std::size_t accumulated = free_cores;
    double shadow = std::numeric_limits<double>::infinity();
    std::size_t extra_at_shadow = 0;
    for (const Running& r : running) {
      accumulated += r.cores;
      if (accumulated >= head.cores) {
        shadow = r.end_time;
        extra_at_shadow = accumulated - head.cores;
        break;
      }
    }
    // Candidates after the head may backfill if they fit now and either
    // finish before the shadow time or use only the spare cores that the
    // head's reservation leaves free.
    for (std::size_t qi = 1; qi < queue.size();) {
      const std::size_t idx = queue[qi];
      const Job& j = jobs[idx];
      const bool fits_now = j.cores <= free_cores;
      const bool before_shadow = now + j.runtime <= shadow;
      const bool within_spare = j.cores <= extra_at_shadow;
      if (fits_now && (before_shadow || within_spare)) {
        if (within_spare && !before_shadow) extra_at_shadow -= j.cores;
        start_job(idx);
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(qi));
      } else {
        ++qi;
      }
    }
  };

  while (next_arrival < jobs.size() || !queue.empty() || !running.empty()) {
    // Next event: arrival or completion.
    const double t_arrival = next_arrival < jobs.size()
                                 ? jobs[next_arrival].submit_time
                                 : std::numeric_limits<double>::infinity();
    const double t_complete = !running.empty()
                                  ? running.front().end_time
                                  : std::numeric_limits<double>::infinity();
    RCR_CHECK_MSG(std::isfinite(t_arrival) || std::isfinite(t_complete),
                  "scheduler deadlock: queued jobs but no pending events");
    now = std::min(t_arrival, t_complete);

    // Process all completions at `now`.
    while (!running.empty() && running.front().end_time <= now) {
      free_cores += running.front().cores;
      running.erase(running.begin());
    }
    // Process all arrivals at `now`.
    while (next_arrival < jobs.size() &&
           jobs[next_arrival].submit_time <= now) {
      queue.push_back(next_arrival);
      ++next_arrival;
    }
    schedule();
  }

  // Metrics.
  std::vector<double> waits, slowdowns;
  waits.reserve(jobs.size());
  slowdowns.reserve(jobs.size());
  for (const Job& j : jobs) {
    RCR_CHECK_MSG(j.start_time >= j.submit_time, "job never started");
    const double wait = j.start_time - j.submit_time;
    waits.push_back(wait);
    const double denom = std::max(10.0, j.runtime);
    slowdowns.push_back((wait + j.runtime) / denom);
  }
  QueueMetrics m;
  m.jobs = jobs.size();
  m.mean_wait = stats::mean(waits);
  m.median_wait = stats::median(waits);
  m.p95_wait = stats::quantile(waits, 0.95);
  m.max_wait = stats::max(waits);
  m.mean_bounded_slowdown = stats::mean(slowdowns);
  m.makespan = makespan;
  m.utilization =
      busy_core_seconds / (static_cast<double>(total_cores) * makespan);
  return m;
}

}  // namespace rcr::sim
