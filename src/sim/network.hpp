// Communication-cost models for distributed (cluster) workloads.
//
// The postal (alpha–beta) model: sending an m-byte message costs
// alpha + m * beta seconds. Collectives compose point-to-point steps; the
// formulas below are the standard tree/ring algorithm costs used to reason
// about MPI programs — the cluster-side complement of the shared-memory
// scaling model in scaling.hpp.
#pragma once

#include <cstddef>

namespace rcr::sim {

struct NetworkModel {
  double latency_us = 2.0;          // alpha, per message
  double bandwidth_gbs = 12.5;      // 1/beta (100 Gb/s network)

  double alpha_seconds() const { return latency_us * 1e-6; }
  double beta_seconds_per_byte() const { return 1.0 / (bandwidth_gbs * 1e9); }
};

// Point-to-point: alpha + m beta.
double ptp_time(const NetworkModel& net, double message_bytes);

// Broadcast via binomial tree: ceil(log2 p) (alpha + m beta).
double broadcast_time(const NetworkModel& net, std::size_t ranks,
                      double message_bytes);

// Allreduce via ring (Rabenseifner-style): 2(p-1) alpha-steps on m/p
// chunks: 2(p-1) alpha + 2 m (p-1)/p beta.
double allreduce_time(const NetworkModel& net, std::size_t ranks,
                      double message_bytes);

// Halo exchange: each rank swaps `halo_bytes` with `neighbors` neighbors
// (sends run concurrently; cost is per-neighbor serialized alpha, one beta
// stream): neighbors * alpha + neighbors * halo beta.
double halo_exchange_time(const NetworkModel& net, std::size_t neighbors,
                          double halo_bytes);

// Distributed iteration time for a bulk-synchronous stencil-style code:
// compute (work/p at `core_gflops`) + halo exchange + one allreduce of
// 8 bytes (the convergence check). The cluster-scale analogue of
// predict_time(); tests pin its crossover behavior.
struct DistributedWorkload {
  double work_ops_total = 1e12;
  double core_gflops = 4.0;
  double halo_bytes_per_rank = 1e6;
  std::size_t halo_neighbors = 4;
};

double bsp_step_time(const NetworkModel& net, const DistributedWorkload& w,
                     std::size_t ranks);

// Ranks beyond which adding more stops helping (communication dominates);
// found by scanning powers of two up to `max_ranks`.
std::size_t bsp_sweet_spot(const NetworkModel& net,
                           const DistributedWorkload& w,
                           std::size_t max_ranks = 1 << 14);

}  // namespace rcr::sim
