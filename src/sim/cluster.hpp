// Batch-cluster queueing simulator.
//
// Models the shared departmental cluster the survey's respondents queue on:
// a fixed pool of cores, a stream of rigid parallel jobs, and a scheduler
// (FCFS or EASY backfill). F6 sweeps offered load and reports the classic
// wait-time knee, quantifying the "my job sat in the queue all day"
// experience that shapes researchers' tooling choices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rcr::sim {

struct Job {
  double submit_time = 0.0;  // seconds since trace start
  std::size_t cores = 1;
  double runtime = 0.0;      // seconds of execution once started
  // Filled by the simulator:
  double start_time = -1.0;
};

enum class SchedulerPolicy {
  kFcfs,          // strict arrival order; head-of-line blocking
  kEasyBackfill,  // EASY: jobs may jump ahead if they cannot delay the head
  kShortestFirst, // SJF: shortest runnable job next (starvation-prone)
};

const char* scheduler_label(SchedulerPolicy p);

struct JobStreamConfig {
  std::size_t jobs = 1000;
  double arrival_rate_per_hour = 30.0;  // Poisson arrivals
  double runtime_log_mu = 7.0;          // lognormal seconds (e^7 ≈ 18 min)
  double runtime_log_sigma = 1.5;
  double max_runtime = 48.0 * 3600.0;   // walltime cap
  // Job widths: 2^k cores with P(k) ∝ geometric-ish decay, capped below.
  std::size_t max_cores = 256;
  std::uint64_t seed = 99;
};

// Generates a submit-time-sorted job stream.
std::vector<Job> generate_job_stream(const JobStreamConfig& config);

struct QueueMetrics {
  std::size_t jobs = 0;
  double mean_wait = 0.0;
  double median_wait = 0.0;
  double p95_wait = 0.0;
  double max_wait = 0.0;
  double mean_bounded_slowdown = 0.0;  // bound 10 s (standard metric)
  double utilization = 0.0;            // busy core-seconds / capacity
  double makespan = 0.0;               // last completion time
};

// Simulates the job stream on a cluster with `total_cores` cores.
// Jobs wider than the cluster throw InvalidInputError.
// The input vector's start_time fields are updated in place.
QueueMetrics simulate_cluster(std::vector<Job>& jobs, std::size_t total_cores,
                              SchedulerPolicy policy);

}  // namespace rcr::sim
