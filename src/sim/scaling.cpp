#include "sim/scaling.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::sim {

namespace {
void validate(const MachineModel& m, const WorkloadModel& w) {
  RCR_CHECK_MSG(m.core_gflops > 0.0, "core throughput must be positive");
  RCR_CHECK_MSG(m.mem_bandwidth_gbs > 0.0, "bandwidth must be positive");
  RCR_CHECK_MSG(m.barrier_latency_us >= 0.0, "barrier cost must be >= 0");
  RCR_CHECK_MSG(w.work_ops > 0.0, "workload must have work");
  RCR_CHECK_MSG(w.serial_fraction >= 0.0 && w.serial_fraction <= 1.0,
                "serial fraction out of [0,1]");
  RCR_CHECK_MSG(w.bytes_per_flop >= 0.0, "bytes_per_flop must be >= 0");
}
}  // namespace

double predict_time_ablated(const MachineModel& machine,
                            const WorkloadModel& work, std::size_t cores,
                            const ModelAblation& ablation) {
  validate(machine, work);
  RCR_CHECK_MSG(cores >= 1, "need at least one core");
  const double flops = machine.core_gflops * 1e9;
  const double serial_time = work.serial_fraction * work.work_ops / flops;
  const double parallel_ops = (1.0 - work.serial_fraction) * work.work_ops;
  double parallel_time = parallel_ops / (static_cast<double>(cores) * flops);

  if (ablation.include_bandwidth && work.bytes_per_flop > 0.0) {
    // The parallel phase cannot beat the shared-bandwidth floor.
    const double bytes = parallel_ops * work.bytes_per_flop;
    const double bw_floor = bytes / (machine.mem_bandwidth_gbs * 1e9);
    parallel_time = std::max(parallel_time, bw_floor);
  }

  double barrier_time = 0.0;
  if (ablation.include_barriers && cores > 1) {
    barrier_time = static_cast<double>(work.barriers) *
                   machine.barrier_latency_us * 1e-6 *
                   std::log2(static_cast<double>(cores));
  }
  return serial_time + parallel_time + barrier_time;
}

double predict_time(const MachineModel& machine, const WorkloadModel& work,
                    std::size_t cores) {
  return predict_time_ablated(machine, work, cores, ModelAblation{});
}

std::vector<ScalingPoint> strong_scaling_curve(
    const MachineModel& machine, const WorkloadModel& work,
    std::span<const std::size_t> core_counts) {
  RCR_CHECK_MSG(!core_counts.empty(), "need core counts");
  const double t1 = predict_time(machine, work, 1);
  std::vector<ScalingPoint> curve;
  curve.reserve(core_counts.size());
  for (std::size_t p : core_counts) {
    ScalingPoint pt;
    pt.cores = p;
    pt.time_seconds = predict_time(machine, work, p);
    pt.speedup = t1 / pt.time_seconds;
    pt.efficiency = pt.speedup / static_cast<double>(p);
    curve.push_back(pt);
  }
  return curve;
}

double simulate_fork_join(std::span<const double> task_durations,
                          std::size_t cores, double serial_seconds,
                          double barrier_seconds) {
  RCR_CHECK_MSG(cores >= 1, "need at least one core");
  RCR_CHECK_MSG(serial_seconds >= 0.0 && barrier_seconds >= 0.0,
                "negative overhead");
  // Greedy list scheduling: always hand the next task to the earliest-free
  // core. A min-heap of core-free times implements this exactly. The heap
  // is seeded with min(cores, tasks) slots, so whenever the loop runs it is
  // non-empty — with more cores than tasks every task simply lands on its
  // own core at time 0.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (std::size_t c = 0; c < std::min(cores, task_durations.size()); ++c)
    free_at.push(0.0);
  double makespan = 0.0;
  for (double d : task_durations) {
    RCR_CHECK_MSG(d >= 0.0, "negative task duration");
    const double start = free_at.top();
    free_at.pop();
    const double finish = start + d;
    makespan = std::max(makespan, finish);
    free_at.push(finish);
  }
  return serial_seconds + makespan + barrier_seconds;
}

std::vector<double> make_task_durations(const MachineModel& machine,
                                        const WorkloadModel& work,
                                        std::size_t tasks,
                                        double jitter_fraction,
                                        std::uint64_t seed) {
  validate(machine, work);
  RCR_CHECK_MSG(tasks >= 1, "need at least one task");
  RCR_CHECK_MSG(jitter_fraction >= 0.0 && jitter_fraction < 1.0,
                "jitter fraction out of [0,1)");
  const double flops = machine.core_gflops * 1e9;
  const double parallel_time =
      (1.0 - work.serial_fraction) * work.work_ops / flops;
  const double base = parallel_time / static_cast<double>(tasks);
  std::vector<double> durations(tasks, base);
  if (jitter_fraction > 0.0) {
    Rng rng(seed);
    for (double& d : durations)
      d *= 1.0 + jitter_fraction * (2.0 * rng.next_double() - 1.0);
  }
  return durations;
}

std::vector<WeakScalingPoint> weak_scaling_curve(
    const MachineModel& machine, const WorkloadModel& per_core_work,
    std::span<const std::size_t> core_counts) {
  RCR_CHECK_MSG(!core_counts.empty(), "need core counts");
  const double t1 = predict_time(machine, per_core_work, 1);
  std::vector<WeakScalingPoint> curve;
  curve.reserve(core_counts.size());
  for (std::size_t p : core_counts) {
    WorkloadModel scaled = per_core_work;
    scaled.work_ops = per_core_work.work_ops * static_cast<double>(p);
    WeakScalingPoint pt;
    pt.cores = p;
    pt.time_seconds = predict_time(machine, scaled, p);
    pt.efficiency = t1 / pt.time_seconds;
    curve.push_back(pt);
  }
  return curve;
}

double amdahl_speedup(double serial_fraction, std::size_t cores) {
  RCR_CHECK_MSG(serial_fraction >= 0.0 && serial_fraction <= 1.0,
                "serial fraction out of [0,1]");
  RCR_CHECK_MSG(cores >= 1, "need at least one core");
  return 1.0 /
         (serial_fraction +
          (1.0 - serial_fraction) / static_cast<double>(cores));
}

double gustafson_speedup(double serial_fraction, std::size_t cores) {
  RCR_CHECK_MSG(serial_fraction >= 0.0 && serial_fraction <= 1.0,
                "serial fraction out of [0,1]");
  RCR_CHECK_MSG(cores >= 1, "need at least one core");
  const double p = static_cast<double>(cores);
  return p - serial_fraction * (p - 1.0);
}

}  // namespace rcr::sim
