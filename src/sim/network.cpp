#include "sim/network.hpp"

#include <cmath>

#include "util/error.hpp"

namespace rcr::sim {

namespace {
void validate(const NetworkModel& net) {
  RCR_CHECK_MSG(net.latency_us >= 0.0, "negative latency");
  RCR_CHECK_MSG(net.bandwidth_gbs > 0.0, "bandwidth must be positive");
}
}  // namespace

double ptp_time(const NetworkModel& net, double message_bytes) {
  validate(net);
  RCR_CHECK_MSG(message_bytes >= 0.0, "negative message size");
  return net.alpha_seconds() + message_bytes * net.beta_seconds_per_byte();
}

double broadcast_time(const NetworkModel& net, std::size_t ranks,
                      double message_bytes) {
  validate(net);
  RCR_CHECK_MSG(ranks >= 1, "need at least one rank");
  if (ranks == 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(ranks)));
  return rounds * ptp_time(net, message_bytes);
}

double allreduce_time(const NetworkModel& net, std::size_t ranks,
                      double message_bytes) {
  validate(net);
  RCR_CHECK_MSG(ranks >= 1, "need at least one rank");
  RCR_CHECK_MSG(message_bytes >= 0.0, "negative message size");
  if (ranks == 1) return 0.0;
  const double p = static_cast<double>(ranks);
  return 2.0 * (p - 1.0) * net.alpha_seconds() +
         2.0 * message_bytes * (p - 1.0) / p * net.beta_seconds_per_byte();
}

double halo_exchange_time(const NetworkModel& net, std::size_t neighbors,
                          double halo_bytes) {
  validate(net);
  RCR_CHECK_MSG(halo_bytes >= 0.0, "negative halo size");
  if (neighbors == 0) return 0.0;
  return static_cast<double>(neighbors) *
         (net.alpha_seconds() + halo_bytes * net.beta_seconds_per_byte());
}

double bsp_step_time(const NetworkModel& net, const DistributedWorkload& w,
                     std::size_t ranks) {
  validate(net);
  RCR_CHECK_MSG(ranks >= 1, "need at least one rank");
  RCR_CHECK_MSG(w.work_ops_total > 0.0 && w.core_gflops > 0.0,
                "workload must have positive work and throughput");
  const double compute = w.work_ops_total /
                         (static_cast<double>(ranks) * w.core_gflops * 1e9);
  // Halos shrink with the surface/volume ratio as ranks grow: per-rank
  // halo scales with (1/p)^(1/2) for a 2-D decomposition.
  const double halo =
      w.halo_bytes_per_rank / std::sqrt(static_cast<double>(ranks));
  const double comm = ranks > 1 ? halo_exchange_time(net, w.halo_neighbors,
                                                     halo) +
                                      allreduce_time(net, ranks, 8.0)
                                : 0.0;
  return compute + comm;
}

std::size_t bsp_sweet_spot(const NetworkModel& net,
                           const DistributedWorkload& w,
                           std::size_t max_ranks) {
  RCR_CHECK_MSG(max_ranks >= 1, "max_ranks must be >= 1");
  std::size_t best = 1;
  double best_time = bsp_step_time(net, w, 1);
  for (std::size_t p = 2; p <= max_ranks; p *= 2) {
    const double t = bsp_step_time(net, w, p);
    if (t < best_time) {
      best_time = t;
      best = p;
    }
  }
  return best;
}

}  // namespace rcr::sim
