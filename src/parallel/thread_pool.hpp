// Fork-join thread pool for the RCR toolkit.
//
// The pool follows the OpenMP-style structured-parallelism model the HPC
// guides recommend: a caller submits a batch of tasks (or a parallel_for
// range) and blocks until the batch completes. No detached work, no global
// mutable state; exceptions thrown by tasks are captured and rethrown on
// the calling thread after the batch drains.
//
// The pool reports into rcr::obs: tasks executed by workers vs. the
// caller-drain loop (including tasks drained from *other* concurrent
// batches), batches run, queue-depth high-water mark, and a batch
// wall-time histogram ("threadpool.*" metrics).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rcr::parallel {

class ThreadPool {
 public:
  // threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  // Runs all tasks, blocking until every one has finished. If any task
  // throws, the first captured exception is rethrown here (after all tasks
  // have still been executed or drained).
  void run_batch(std::vector<std::function<void()>> tasks);

 private:
  struct Batch;

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::pair<Batch*, std::function<void()>>> queue_;
  bool shutting_down_ = false;
};

// Returns a lazily constructed process-wide pool sized to the hardware.
ThreadPool& default_pool();

}  // namespace rcr::parallel
