// Parallel loop constructs layered on ThreadPool.
//
// parallel_for hands each worker a contiguous [begin, end) sub-range, so
// body functions can use cache-friendly inner loops (the OpenMP
// "schedule(static)" idiom). Scheduling policy:
//   * Static  — ranges pre-split into ~2 chunks per thread; lowest overhead.
//   * Dynamic — smaller chunks pulled from a shared atomic counter; better
//     for irregular per-iteration cost. The micro benches quantify the gap.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace rcr::parallel {

enum class Schedule { kStatic, kDynamic };

struct ForOptions {
  Schedule schedule = Schedule::kStatic;
  // Minimum iterations per chunk; 0 lets the library choose.
  std::size_t grain = 0;
};

// Invokes body(lo, hi) over disjoint sub-ranges covering [begin, end).
void parallel_for_range(ThreadPool& pool, std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t, std::size_t)>& body,
                        ForOptions options = {});

// Element-wise convenience: body(i) for each i in [begin, end).
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Body&& body, ForOptions options = {}) {
  parallel_for_range(
      pool, begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      options);
}

// Parallel reduction: combines per-chunk partial results with `combine`.
// `chunk_fn(lo, hi)` returns the partial value for a sub-range.
template <typename T, typename ChunkFn, typename Combine>
T parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end,
                  T init, ChunkFn&& chunk_fn, Combine&& combine,
                  ForOptions options = {}) {
  if (begin >= end) return init;
  std::vector<T> partials;
  std::mutex partial_mutex;
  parallel_for_range(
      pool, begin, end,
      [&](std::size_t lo, std::size_t hi) {
        T local = chunk_fn(lo, hi);
        std::lock_guard<std::mutex> lock(partial_mutex);
        partials.push_back(std::move(local));
      },
      options);
  T result = std::move(init);
  for (auto& p : partials) result = combine(std::move(result), std::move(p));
  return result;
}

// out[i] = fn(i) for each i; output must already be sized.
template <typename T, typename Fn>
void parallel_transform(ThreadPool& pool, std::vector<T>& out, Fn&& fn,
                        ForOptions options = {}) {
  parallel_for(
      pool, 0, out.size(), [&](std::size_t i) { out[i] = fn(i); }, options);
}

}  // namespace rcr::parallel
