// Parallel loop constructs layered on ThreadPool.
//
// parallel_for hands each worker a contiguous [begin, end) sub-range, so
// body functions can use cache-friendly inner loops (the OpenMP
// "schedule(static)" idiom). Scheduling policy:
//   * Static  — ranges pre-split into ~2 chunks per thread; lowest overhead.
//   * Dynamic — chunks pulled from a shared atomic cursor; better for
//     irregular per-iteration cost. The micro benches quantify the gap.
//
// Chunk layout is a pure function of (range, grain, thread count): the range
// splits into ceil(total/grain) chunks whose sizes differ by at most one
// iteration, each with a stable index. parallel_reduce exploits that to
// store partials by chunk index and fold them in index order, which makes
// floating-point reductions bitwise reproducible run-to-run — and, because
// its default grain depends only on the range, across thread counts too.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace rcr::parallel {

enum class Schedule { kStatic, kDynamic };

struct ForOptions {
  Schedule schedule = Schedule::kStatic;
  // Minimum iterations per chunk; 0 lets the library choose.
  std::size_t grain = 0;
};

// Invokes body(lo, hi) over disjoint sub-ranges covering [begin, end).
void parallel_for_range(ThreadPool& pool, std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t, std::size_t)>& body,
                        ForOptions options = {});

// Like parallel_for_range but also passes the chunk's stable index
// (0 .. chunk_count-1). For a fixed (range, grain, thread count) chunk k
// always covers the same [lo, hi) regardless of schedule or execution order.
void parallel_for_chunks(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    ForOptions options = {});

// Number of chunks parallel_for_chunks will dispatch for this range.
// Independent of the pool size whenever options.grain > 0.
std::size_t chunk_count(const ThreadPool& pool, std::size_t begin,
                        std::size_t end, ForOptions options = {});

// The chunk layout parallel_for_chunks uses for an explicit grain: a pure
// function of (begin, end, grain), never of the pool or schedule. Exposed
// so pool-free callers — the streaming engine's serial path — can walk
// exactly the shard partition the pooled path merges, keeping order-
// sensitive accumulators bitwise identical with and without a pool.
struct ChunkLayout {
  std::size_t begin = 0;
  std::size_t chunks = 0;
  std::size_t base = 0;  // every chunk gets base iterations...
  std::size_t rem = 0;   // ...and the first `rem` chunks one extra

  std::pair<std::size_t, std::size_t> bounds(std::size_t k) const {
    const std::size_t lo = begin + k * base + std::min(k, rem);
    return {lo, lo + base + (k < rem ? 1 : 0)};
  }
};
ChunkLayout chunk_layout(std::size_t begin, std::size_t end,
                         std::size_t grain);

// Element-wise convenience: body(i) for each i in [begin, end).
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Body&& body, ForOptions options = {}) {
  parallel_for_range(
      pool, begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      options);
}

// Default chunk-count target for parallel_reduce when no grain is given:
// enough chunks to keep any realistic pool busy, few enough that the
// index-ordered combine loop stays trivial.
inline constexpr std::size_t kReduceChunkTarget = 64;

// Parallel reduction: combines per-chunk partial results with `combine`.
// `chunk_fn(lo, hi)` returns the partial value for a sub-range.
//
// Each partial lands at its chunk's index in a pre-sized vector and the
// partials are combined in index order, so the result is bitwise identical
// across runs AND across pool sizes: when options.grain == 0 the grain is
// derived from the range alone (ceil(total / kReduceChunkTarget)), never
// from the thread count. T must be default-constructible (every slot is
// overwritten before combining).
template <typename T, typename ChunkFn, typename Combine>
T parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end,
                  T init, ChunkFn&& chunk_fn, Combine&& combine,
                  ForOptions options = {}) {
  if (begin >= end) return init;
  ForOptions opts = options;
  if (opts.grain == 0) {
    const std::size_t total = end - begin;
    opts.grain = std::max<std::size_t>(
        1, (total + kReduceChunkTarget - 1) / kReduceChunkTarget);
  }
  std::vector<T> partials(chunk_count(pool, begin, end, opts));
  parallel_for_chunks(
      pool, begin, end,
      [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
        partials[chunk] = chunk_fn(lo, hi);
      },
      opts);
  T result = std::move(init);
  for (auto& p : partials) result = combine(std::move(result), std::move(p));
  return result;
}

// out[i] = fn(i) for each i; output must already be sized.
template <typename T, typename Fn>
void parallel_transform(ThreadPool& pool, std::vector<T>& out, Fn&& fn,
                        ForOptions options = {}) {
  parallel_for(
      pool, 0, out.size(), [&](std::size_t i) { out[i] = fn(i); }, options);
}

}  // namespace rcr::parallel
