#include "parallel/thread_pool.hpp"

#include <optional>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace rcr::parallel {

namespace {

// Pool-wide metrics, resolved once. Per-task cost is one relaxed sharded
// increment; everything else is per-batch, and the batch wall-time
// histogram is sampled (1 in kBatchSampleEvery batches per calling
// thread) so the two steady_clock reads stay off the common path.
struct PoolObs {
  obs::Counter& batches = obs::registry().counter("threadpool.batches");
  obs::Counter& worker_tasks =
      obs::registry().counter("threadpool.tasks.worker");
  obs::Counter& caller_tasks =
      obs::registry().counter("threadpool.tasks.caller");
  obs::Counter& caller_foreign_tasks =
      obs::registry().counter("threadpool.tasks.caller_foreign");
  // Depth right after the latest enqueue; the high-water mark is exact
  // because the queue is longest immediately after an enqueue.
  obs::Gauge& queue_depth = obs::registry().gauge("threadpool.queue_depth");
  obs::Histogram& batch_wait_ms =
      obs::registry().histogram("threadpool.batch_wait_ms");
};

PoolObs& pool_obs() {
  static PoolObs o;
  return o;
}

constexpr unsigned kBatchSampleEvery = 16;

bool sample_this_batch() {
#ifndef RCR_OBS_DISABLED
  thread_local unsigned batch_no = 0;
  return (batch_no++ % kBatchSampleEvery) == 0;
#else
  return false;
#endif
}

}  // namespace

// Tracks completion and the first exception of one run_batch call.
struct ThreadPool::Batch {
  std::mutex mutex;
  std::condition_variable done;
  std::size_t remaining = 0;
  std::exception_ptr first_error;

  void finish_one(std::exception_ptr error) {
    std::lock_guard<std::mutex> lock(mutex);
    if (error && !first_error) first_error = error;
    if (--remaining == 0) done.notify_all();
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  PoolObs& obs = pool_obs();
  for (;;) {
    std::pair<Batch*, std::function<void()>> item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // only true when shutting down
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      item.second();
    } catch (...) {
      error = std::current_exception();
    }
    obs.worker_tasks.add(1);
    item.first->finish_one(error);
  }
}

void ThreadPool::run_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  PoolObs& obs = pool_obs();
  obs.batches.add(1);
  std::optional<Stopwatch> batch_clock;
  if (sample_this_batch()) batch_clock.emplace();
  Batch batch;
  batch.remaining = tasks.size();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RCR_CHECK_MSG(!shutting_down_, "run_batch on a destroyed pool");
    for (auto& t : tasks) queue_.emplace_back(&batch, std::move(t));
    obs.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
  }
  work_available_.notify_all();

  // The calling thread helps drain the queue: correct on 1-core hosts and
  // avoids idle blocking elsewhere. It may execute tasks from other batches
  // submitted concurrently; that is safe because every task is independent
  // (each finish_one routes to its own batch), and the caller_foreign
  // counter makes the cross-batch work visible.
  std::uint64_t own_drained = 0, foreign_drained = 0;
  for (;;) {
    std::pair<Batch*, std::function<void()>> item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (queue_.empty()) break;
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      item.second();
    } catch (...) {
      error = std::current_exception();
    }
    (item.first == &batch ? own_drained : foreign_drained) += 1;
    item.first->finish_one(error);
  }
  if (own_drained > 0) obs.caller_tasks.add(own_drained);
  if (foreign_drained > 0) obs.caller_foreign_tasks.add(foreign_drained);

  std::unique_lock<std::mutex> lock(batch.mutex);
  batch.done.wait(lock, [&] { return batch.remaining == 0; });
  lock.unlock();
  if (batch_clock) obs.batch_wait_ms.record(batch_clock->elapsed_ms());
  if (batch.first_error) std::rethrow_exception(batch.first_error);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace rcr::parallel
