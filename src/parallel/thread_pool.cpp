#include "parallel/thread_pool.hpp"

#include "util/error.hpp"

namespace rcr::parallel {

// Tracks completion and the first exception of one run_batch call.
struct ThreadPool::Batch {
  std::mutex mutex;
  std::condition_variable done;
  std::size_t remaining = 0;
  std::exception_ptr first_error;

  void finish_one(std::exception_ptr error) {
    std::lock_guard<std::mutex> lock(mutex);
    if (error && !first_error) first_error = error;
    if (--remaining == 0) done.notify_all();
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::pair<Batch*, std::function<void()>> item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // only true when shutting down
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      item.second();
    } catch (...) {
      error = std::current_exception();
    }
    item.first->finish_one(error);
  }
}

void ThreadPool::run_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  Batch batch;
  batch.remaining = tasks.size();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RCR_CHECK_MSG(!shutting_down_, "run_batch on a destroyed pool");
    for (auto& t : tasks) queue_.emplace_back(&batch, std::move(t));
  }
  work_available_.notify_all();

  // The calling thread helps drain the queue: correct on 1-core hosts and
  // avoids idle blocking elsewhere. It may execute tasks from other batches;
  // that is safe because every task is independent.
  for (;;) {
    std::pair<Batch*, std::function<void()>> item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (queue_.empty()) break;
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      item.second();
    } catch (...) {
      error = std::current_exception();
    }
    item.first->finish_one(error);
  }

  std::unique_lock<std::mutex> lock(batch.mutex);
  batch.done.wait(lock, [&] { return batch.remaining == 0; });
  if (batch.first_error) std::rethrow_exception(batch.first_error);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace rcr::parallel
