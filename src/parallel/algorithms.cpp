#include "parallel/algorithms.hpp"

#include <algorithm>

namespace rcr::parallel {

namespace {

std::size_t pick_grain(std::size_t total, std::size_t threads,
                       Schedule schedule, std::size_t requested) {
  if (requested > 0) return requested;
  if (schedule == Schedule::kStatic) {
    // ~2 chunks per thread balances tail imbalance against overhead.
    return std::max<std::size_t>(1, total / (2 * threads));
  }
  // Dynamic: ~8 chunks per thread gives the scheduler room to rebalance.
  return std::max<std::size_t>(1, total / (8 * threads));
}

}  // namespace

void parallel_for_range(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    ForOptions options) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t threads = std::max<std::size_t>(1, pool.thread_count());
  const std::size_t grain =
      pick_grain(total, threads, options.schedule, options.grain);

  if (total <= grain) {
    body(begin, end);
    return;
  }

  if (options.schedule == Schedule::kStatic) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve((total + grain - 1) / grain);
    for (std::size_t lo = begin; lo < end; lo += grain) {
      const std::size_t hi = std::min(end, lo + grain);
      tasks.push_back([&body, lo, hi] { body(lo, hi); });
    }
    pool.run_batch(std::move(tasks));
    return;
  }

  // Dynamic: one task per worker, each claiming chunks from a shared cursor.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(begin);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    tasks.push_back([&body, cursor, end, grain] {
      for (;;) {
        const std::size_t lo = cursor->fetch_add(grain);
        if (lo >= end) return;
        body(lo, std::min(end, lo + grain));
      }
    });
  }
  pool.run_batch(std::move(tasks));
}

}  // namespace rcr::parallel
