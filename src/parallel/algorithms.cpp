#include "parallel/algorithms.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace rcr::parallel {

namespace {

// Counters for chunk dispatch, resolved once (registration takes a mutex).
struct LoopObs {
  obs::Counter& serial_runs =
      obs::registry().counter("parallel.for.serial_runs");
  obs::Counter& static_chunks =
      obs::registry().counter("parallel.for.chunks.static");
  obs::Counter& dynamic_chunks =
      obs::registry().counter("parallel.for.chunks.dynamic");
};

LoopObs& loop_obs() {
  static LoopObs o;
  return o;
}

std::size_t pick_grain(std::size_t total, std::size_t threads,
                       Schedule schedule, std::size_t requested) {
  if (requested > 0) return requested;
  if (schedule == Schedule::kStatic) {
    // ~2 chunks per thread balances tail imbalance against overhead.
    return std::max<std::size_t>(1, total / (2 * threads));
  }
  // Dynamic: ~8 chunks per thread gives the scheduler room to rebalance.
  return std::max<std::size_t>(1, total / (8 * threads));
}

ChunkLayout make_plan(std::size_t begin, std::size_t end, std::size_t threads,
                      ForOptions options) {
  return chunk_layout(begin, end, pick_grain(end - begin, threads,
                                             options.schedule,
                                             options.grain));
}

}  // namespace

// ceil(total/grain) chunks whose sizes differ by at most one iteration:
// chunk k covers [begin + k*base + min(k, rem), ...) with the first `rem`
// chunks one iteration longer. Rebalancing means a range that barely
// exceeds the grain never produces a degenerate 1-iteration tail chunk.
ChunkLayout chunk_layout(std::size_t begin, std::size_t end,
                         std::size_t grain) {
  if (begin >= end) return {begin, 0, 0, 0};
  const std::size_t total = end - begin;
  const std::size_t g = std::max<std::size_t>(1, grain);
  const std::size_t chunks = (total + g - 1) / g;
  return {begin, chunks, total / chunks, total % chunks};
}

std::size_t chunk_count(const ThreadPool& pool, std::size_t begin,
                        std::size_t end, ForOptions options) {
  if (begin >= end) return 0;
  const std::size_t threads = std::max<std::size_t>(1, pool.thread_count());
  return make_plan(begin, end, threads, options).chunks;
}

void parallel_for_chunks(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    ForOptions options) {
  if (begin >= end) return;
  const std::size_t threads = std::max<std::size_t>(1, pool.thread_count());
  const ChunkLayout plan = make_plan(begin, end, threads, options);

  if (plan.chunks <= 1) {
    // Single chunk: skip the pool entirely (no task allocation, no wakeup).
    loop_obs().serial_runs.add(1);
    body(0, begin, end);
    return;
  }

  if (options.schedule == Schedule::kStatic) {
    loop_obs().static_chunks.add(plan.chunks);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(plan.chunks);
    for (std::size_t k = 0; k < plan.chunks; ++k) {
      tasks.push_back([&body, plan, k] {
        const auto [lo, hi] = plan.bounds(k);
        body(k, lo, hi);
      });
    }
    pool.run_batch(std::move(tasks));
    return;
  }

  // Dynamic: at most min(threads, chunks) tasks, each claiming chunk
  // indices from a shared cursor — near-empty ranges no longer spawn one
  // task per pool thread.
  loop_obs().dynamic_chunks.add(plan.chunks);
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t workers = std::min(threads, plan.chunks);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) {
    tasks.push_back([&body, plan, cursor] {
      for (;;) {
        const std::size_t k = cursor->fetch_add(1);
        if (k >= plan.chunks) return;
        const auto [lo, hi] = plan.bounds(k);
        body(k, lo, hi);
      }
    });
  }
  pool.run_batch(std::move(tasks));
}

void parallel_for_range(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    ForOptions options) {
  parallel_for_chunks(
      pool, begin, end,
      [&body](std::size_t, std::size_t lo, std::size_t hi) { body(lo, hi); },
      options);
}

}  // namespace rcr::parallel
