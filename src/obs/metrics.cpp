#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "report/table.hpp"

namespace rcr::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// JSON forbids NaN/Inf; metrics never produce them, but guard anyway.
std::string json_number(double v) {
  if (!(v > -1e308 && v < 1e308)) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string fixed(double v, int decimals = 3) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace

// --- Snapshot rendering (compiled in both modes) ----------------------------

std::string Snapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& c : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(c.name) + "\": " + std::to_string(c.value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& g : gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(g.name) +
           "\": {\"value\": " + std::to_string(g.value) +
           ", \"high_water\": " + std::to_string(g.high_water) + "}";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& h : histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(h.name) +
           "\": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + json_number(h.sum) +
           ", \"min\": " + json_number(h.min) +
           ", \"max\": " + json_number(h.max) +
           ", \"p50\": " + json_number(h.p50) +
           ", \"p95\": " + json_number(h.p95) +
           ", \"p99\": " + json_number(h.p99) + "}";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"meters\": {";
  first = true;
  for (const auto& m : meters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(m.name) +
           "\": {\"count\": " + std::to_string(m.count) +
           ", \"busy_seconds\": " + json_number(m.busy_seconds) +
           ", \"rate_per_sec\": " + json_number(m.rate_per_sec) + "}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}";
  return out;
}

std::string Snapshot::to_table() const {
  report::TextTable t({"Metric", "Type", "Summary"});
  for (const auto& c : counters)
    t.add_row({c.name, "counter", std::to_string(c.value)});
  for (const auto& g : gauges)
    t.add_row({g.name, "gauge",
               std::to_string(g.value) + " (high-water " +
                   std::to_string(g.high_water) + ")"});
  for (const auto& h : histograms)
    t.add_row({h.name, "histogram",
               "n=" + std::to_string(h.count) + " p50=" + fixed(h.p50) +
                   " p95=" + fixed(h.p95) + " p99=" + fixed(h.p99) +
                   " max=" + fixed(h.max)});
  for (const auto& m : meters)
    t.add_row({m.name, "meter",
               std::to_string(m.count) + " events, " +
                   fixed(m.rate_per_sec, 1) + "/s over " +
                   fixed(m.busy_seconds) + "s"});
  if (t.row_count() == 0) return "(no metrics recorded)\n";
  return t.render();
}

#ifndef RCR_OBS_DISABLED

// --- Histogram --------------------------------------------------------------

namespace {

// bound[i] = 1e-3 * 1.5^i; values <= bound[i] land in bucket i, everything
// beyond the last bound in the overflow bucket.
constexpr auto kBounds = [] {
  std::array<double, Histogram::kBuckets - 1> b{};
  double v = 1e-3;
  for (auto& x : b) {
    x = v;
    v *= 1.5;
  }
  return b;
}();

std::size_t bucket_for(double value) noexcept {
  const auto it = std::lower_bound(kBounds.begin(), kBounds.end(), value);
  return static_cast<std::size_t>(it - kBounds.begin());
}

// Rank-interpolated percentile over a plain bucket-count array, clamped to
// [clamp_lo, clamp_hi] — shared by the lifetime and window paths.
double percentile_of(const std::array<std::uint64_t, Histogram::kBuckets>& b,
                     std::uint64_t n, double q, double clamp_lo,
                     double clamp_hi) noexcept {
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    const double in_bucket = static_cast<double>(b[i]);
    if (cumulative + in_bucket >= target && in_bucket > 0.0) {
      const double lo = i == 0 ? 0.0 : kBounds[i - 1];
      const double hi = i < kBounds.size() ? kBounds[i] : clamp_hi;
      const double frac = (target - cumulative) / in_bucket;
      const double est = lo + frac * (hi - lo);
      return std::clamp(est, clamp_lo, clamp_hi);
    }
    cumulative += in_bucket;
  }
  return clamp_hi;
}

}  // namespace

void Histogram::record(double value) noexcept {
  if (!(value >= 0.0)) value = 0.0;  // also normalizes NaN
  buckets_[bucket_for(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  detail::lower_to(min_, value);
  detail::raise_to(max_, value);
}

double Histogram::min() const noexcept {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const noexcept {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::percentile(double q) const noexcept {
  std::array<std::uint64_t, kBuckets> counts;
  for (std::size_t i = 0; i < kBuckets; ++i)
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  return percentile_of(counts, count(), q, min(), max());
}

HistogramSample Histogram::window_snapshot(const std::string& name) {
  std::lock_guard<std::mutex> lock(window_mutex_);
  std::array<std::uint64_t, kBuckets> delta;
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t cur = buckets_[i].load(std::memory_order_relaxed);
    delta[i] = cur - window_base_[i];
    n += delta[i];
    window_base_[i] = cur;
  }
  const double cur_sum = sum_.load(std::memory_order_relaxed);
  HistogramSample s;
  s.name = name;
  s.count = n;
  s.sum = cur_sum - window_sum_base_;
  window_sum_base_ = cur_sum;
  if (n == 0) return s;
  // Window min/max from the occupied delta-bucket bounds (see header).
  std::size_t first = kBuckets, last = 0;
  for (std::size_t i = 0; i < kBuckets; ++i)
    if (delta[i] > 0) {
      if (first == kBuckets) first = i;
      last = i;
    }
  s.min = first == 0 ? 0.0 : kBounds[first - 1];
  s.max = last < kBounds.size() ? kBounds[last]
                                : max();  // overflow bucket: lifetime max
  s.p50 = percentile_of(delta, n, 0.50, s.min, s.max);
  s.p95 = percentile_of(delta, n, 0.95, s.min, s.max);
  s.p99 = percentile_of(delta, n, 0.99, s.min, s.max);
  return s;
}

void Histogram::reset() noexcept {
  std::lock_guard<std::mutex> lock(window_mutex_);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  window_base_.fill(0);
  window_sum_base_ = 0.0;
}

// --- Registry ---------------------------------------------------------------

namespace {

template <typename Map>
auto& find_or_create(Map& map, const std::string& name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(name, std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(counters_, name);
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(gauges_, name);
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(histograms_, name);
}

Meter& Registry::meter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(meters_, name);
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c->total()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    snap.gauges.push_back({name, g->value(), g->high_water()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back({name, h->count(), h->sum(), h->min(), h->max(),
                               h->percentile(0.50), h->percentile(0.95),
                               h->percentile(0.99)});
  }
  snap.meters.reserve(meters_.size());
  for (const auto& [name, m] : meters_) {
    snap.meters.push_back(
        {name, m->count(), m->busy_seconds(), m->rate_per_sec()});
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, m] : meters_) m->reset();
}

Registry& registry() {
  static Registry* instance = new Registry();  // never destroyed: metric
  return *instance;  // references must outlive static-destruction order
}

#endif  // RCR_OBS_DISABLED

}  // namespace rcr::obs
