// RAII instrumentation scopes built on rcr::Stopwatch.
//
//   obs::ScopedTimer t(obs::registry().histogram("stage.ms"));
//       — records the scope's wall time (ms) into a latency histogram.
//
//   obs::MeterScope m(obs::registry().meter("engine.replicates"), n);
//       — on scope exit adds n events plus the scope's wall seconds to a
//         throughput meter (events/sec).
//
// Both compile to empty structs under RCR_OBS_DISABLED.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "util/stopwatch.hpp"

namespace rcr::obs {

#ifndef RCR_OBS_DISABLED

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram) noexcept
      : histogram_(&histogram) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { histogram_->record(watch_.elapsed_ms()); }

 private:
  Histogram* histogram_;
  Stopwatch watch_;
};

class MeterScope {
 public:
  MeterScope(Meter& meter, std::uint64_t events) noexcept
      : meter_(&meter), events_(events) {}
  MeterScope(const MeterScope&) = delete;
  MeterScope& operator=(const MeterScope&) = delete;
  ~MeterScope() { meter_->add(events_, watch_.elapsed_seconds()); }

  // Adjust the event count before the scope closes (e.g. early exit).
  void set_events(std::uint64_t events) noexcept { events_ = events; }

 private:
  Meter* meter_;
  std::uint64_t events_;
  Stopwatch watch_;
};

#else  // RCR_OBS_DISABLED

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram&) noexcept {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

class MeterScope {
 public:
  MeterScope(Meter&, std::uint64_t) noexcept {}
  MeterScope(const MeterScope&) = delete;
  MeterScope& operator=(const MeterScope&) = delete;
  void set_events(std::uint64_t) noexcept {}
};

#endif  // RCR_OBS_DISABLED

}  // namespace rcr::obs
