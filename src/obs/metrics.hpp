// rcr::obs — lock-cheap metrics and instrumentation for the toolkit.
//
// The registry hands out four metric kinds, all safe to update from any
// thread with no lock on the hot path:
//   * Counter   — monotonic, sharded across cache lines so concurrent
//                 increments from many workers do not contend.
//   * Gauge     — last-set value plus a high-water mark (queue depths).
//   * Histogram — fixed geometric buckets with p50/p95/p99 estimation;
//                 used for latencies recorded in milliseconds by convention.
//   * Meter     — event count + busy wall time, reported as events/sec
//                 (replicates/sec for the resampling engines).
//
// Registration (registry().counter("name")) takes a mutex, so call sites
// resolve their handles once and keep the reference; references stay valid
// for the life of the process. snapshot() exports everything as JSON or an
// aligned text table (via the report layer).
//
// Compiling with -DRCR_OBS_DISABLED swaps every type for an inline no-op
// with the same API, so instrumented code builds unchanged at zero cost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#ifndef RCR_OBS_DISABLED
#include <array>
#include <atomic>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#endif

namespace rcr::obs {

// --- Snapshot (shared between the live and disabled builds) -----------------

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
  std::int64_t high_water = 0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct MeterSample {
  std::string name;
  std::uint64_t count = 0;
  double busy_seconds = 0.0;
  double rate_per_sec = 0.0;
};

// Point-in-time export of every registered metric, sorted by name.
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<MeterSample> meters;

  // One JSON object with "counters"/"gauges"/"histograms"/"meters" keys;
  // always valid JSON, even when empty.
  std::string to_json() const;

  // Aligned ASCII table (report::TextTable), one row per metric.
  std::string to_table() const;
};

#ifndef RCR_OBS_DISABLED

namespace detail {

inline constexpr std::size_t kShards = 16;  // power of two

// Stable small id per thread; distinct threads land on distinct shards
// until more than kShards threads exist.
inline std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot & (kShards - 1);
}

// Lock-free max update for atomics without a fetch_max.
template <typename T>
void raise_to(std::atomic<T>& target, T candidate) noexcept {
  T cur = target.load(std::memory_order_relaxed);
  while (candidate > cur &&
         !target.compare_exchange_weak(cur, candidate,
                                       std::memory_order_relaxed)) {
  }
}

template <typename T>
void lower_to(std::atomic<T>& target, T candidate) noexcept {
  T cur = target.load(std::memory_order_relaxed);
  while (candidate < cur &&
         !target.compare_exchange_weak(cur, candidate,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace detail

// Monotonic counter sharded across cache lines. add() is one relaxed
// fetch_add on the caller's shard; total() folds the shards.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::shard_index()].value.fetch_add(n,
                                                   std::memory_order_relaxed);
  }

  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.value.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() noexcept {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, detail::kShards> shards_{};
};

// Last-set value plus the highest value ever observed.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    detail::raise_to(high_water_, v);
  }

  void add(std::int64_t delta) noexcept {
    const std::int64_t now =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    detail::raise_to(high_water_, now);
  }

  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t high_water() const noexcept {
    return high_water_.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    high_water_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> high_water_{0};
};

// Fixed geometric buckets: bound[i] = 1e-3 * 1.5^i, covering one microsecond
// to ~30 hours when values are milliseconds. Percentiles interpolate inside
// the bucket the rank falls in, clamped to the exact observed min/max, so
// the estimate is within one bucket ratio (1.5x) of the true quantile.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  void record(double value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double min() const noexcept;
  double max() const noexcept;

  // q in [0, 1]; returns 0 when empty.
  double percentile(double q) const noexcept;

  // Per-interval view: statistics over the values recorded since the
  // previous window_snapshot() call, after which a new window begins.
  // Lifetime count/sum/percentiles are unaffected — the window is a delta
  // of the cumulative bucket counts, so the hot record() path pays nothing
  // for it. Because the exact per-window min/max are not tracked, the
  // window's min/max (and therefore its percentile clamp) come from the
  // bounds of the lowest/highest occupied delta bucket — within one bucket
  // ratio (1.5x) of the true values, same as the percentile estimate
  // itself. Serialized internally; callers may snapshot from any thread,
  // but concurrent callers split the stream between their windows.
  HistogramSample window_snapshot(const std::string& name = "");

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Infinity sentinels; the accessors report 0 while count_ == 0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  // Cumulative state as of the last window_snapshot(); guarded by
  // window_mutex_ (cold path only — record() never touches these).
  std::mutex window_mutex_;
  std::array<std::uint64_t, kBuckets> window_base_{};
  double window_sum_base_ = 0.0;
};

// Throughput: how many events happened and how long the producing code was
// busy. rate_per_sec() = count / busy_seconds.
class Meter {
 public:
  void add(std::uint64_t events, double busy_seconds) noexcept {
    events_.add(events);
    busy_seconds_.fetch_add(busy_seconds, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept { return events_.total(); }
  double busy_seconds() const noexcept {
    return busy_seconds_.load(std::memory_order_relaxed);
  }
  double rate_per_sec() const noexcept {
    const double s = busy_seconds();
    return s > 0.0 ? static_cast<double>(count()) / s : 0.0;
  }

  void reset() noexcept {
    events_.reset();
    busy_seconds_.store(0.0, std::memory_order_relaxed);
  }

 private:
  Counter events_;
  std::atomic<double> busy_seconds_{0.0};
};

// Named metric store. Lookup is mutex-guarded (cache the reference);
// returned references stay valid forever — metrics are never removed.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  Meter& meter(const std::string& name);

  Snapshot snapshot() const;

  // Zeroes every metric but keeps registrations (per-run deltas, tests).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Meter>> meters_;
};

// Process-wide registry every instrumented subsystem reports into.
Registry& registry();

// Convenience for exporters: registry().snapshot().
inline Snapshot snapshot() { return registry().snapshot(); }

#else  // RCR_OBS_DISABLED — identical API, every operation a no-op.

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  std::uint64_t total() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  std::int64_t value() const noexcept { return 0; }
  std::int64_t high_water() const noexcept { return 0; }
  void reset() noexcept {}
};

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 0;
  void record(double) noexcept {}
  std::uint64_t count() const noexcept { return 0; }
  double sum() const noexcept { return 0.0; }
  double min() const noexcept { return 0.0; }
  double max() const noexcept { return 0.0; }
  double percentile(double) const noexcept { return 0.0; }
  HistogramSample window_snapshot(const std::string& name = "") {
    HistogramSample s;
    s.name = name;
    return s;
  }
  void reset() noexcept {}
};

class Meter {
 public:
  void add(std::uint64_t, double) noexcept {}
  std::uint64_t count() const noexcept { return 0; }
  double busy_seconds() const noexcept { return 0.0; }
  double rate_per_sec() const noexcept { return 0.0; }
  void reset() noexcept {}
};

class Registry {
 public:
  Counter& counter(const std::string&) {
    static Counter c;
    return c;
  }
  Gauge& gauge(const std::string&) {
    static Gauge g;
    return g;
  }
  Histogram& histogram(const std::string&) {
    static Histogram h;
    return h;
  }
  Meter& meter(const std::string&) {
    static Meter m;
    return m;
  }
  Snapshot snapshot() const { return {}; }
  void reset() {}
};

inline Registry& registry() {
  static Registry r;
  return r;
}

inline Snapshot snapshot() { return {}; }

#endif  // RCR_OBS_DISABLED

}  // namespace rcr::obs
