#include "sweep/sweep.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "parallel/thread_pool.hpp"
#include "report/table.hpp"
#include "simd/dispatch.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"

namespace rcr::sweep {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

// Shortest decimal that round-trips the double, plus the exact bits — the
// decimal is for eyes, the bits are the contract.
void append_metric_json(std::string& out, const Metric& m) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", m.value);
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof m.value);
  std::memcpy(&bits, &m.value, sizeof bits);
  out += "{\"name\":\"" + m.name + "\",\"value\":" + buf + ",\"bits\":\"" +
         hex64(bits) + "\"}";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::uint64_t config_hash(const std::string& canonical_config) {
  return xxhash64(canonical_config.data(), canonical_config.size(), 0);
}

std::uint64_t cell_seed(std::uint64_t master_seed, std::uint64_t cfg_hash) {
  return xxhash64(&master_seed, sizeof master_seed, cfg_hash);
}

std::uint64_t fingerprint_metrics(const std::vector<Metric>& metrics) {
  std::uint64_t h = 0x5EEDC0DEULL;
  for (const Metric& m : metrics) {
    h = xxhash64(m.name.data(), m.name.size(), h);
    std::uint64_t bits = 0;
    std::memcpy(&bits, &m.value, sizeof bits);
    h = xxhash64(&bits, sizeof bits, h);
  }
  return h;
}

CellResult run_cell(const CellSpec& spec, const SweepConfig& config) {
  RCR_CHECK_MSG(!spec.id.empty(), "sweep cell needs an id");
  RCR_CHECK_MSG(static_cast<bool>(spec.run), "sweep cell needs a body");
  CellResult r;
  r.id = spec.id;
  r.scenario = spec.scenario;
  r.config = spec.config;
  r.provenance.master_seed = config.seed;
  r.provenance.config_hash = config_hash(spec.config);
  r.provenance.cell_seed = cell_seed(config.seed, r.provenance.config_hash);
  r.provenance.threads =
      config.pool != nullptr ? config.pool->thread_count() : 0;
  r.provenance.simd_isa = simd::describe();
  CellContext ctx;
  ctx.seed = r.provenance.cell_seed;
  ctx.pool = config.pool;
  r.metrics = spec.run(ctx);
  RCR_CHECK_MSG(!r.metrics.empty(), "sweep cell '" + spec.id +
                                        "' produced no metrics");
  r.fingerprint = fingerprint_metrics(r.metrics);
  return r;
}

std::vector<CellResult> run_sweep(const std::vector<CellSpec>& cells,
                                  const SweepConfig& config) {
  std::vector<CellResult> out;
  out.reserve(cells.size());
  for (const CellSpec& spec : cells) out.push_back(run_cell(spec, config));
  return out;
}

std::string render_cell_json(const CellResult& cell) {
  std::string out = "{\"id\":\"" + json_escape(cell.id) + "\",\"scenario\":\"" +
                    json_escape(cell.scenario) + "\",\"config\":\"" +
                    json_escape(cell.config) + "\",\"provenance\":{";
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "\"master_seed\":%" PRIu64 ",\"cell_seed\":\"%s\","
                "\"threads\":%zu,",
                cell.provenance.master_seed,
                hex64(cell.provenance.cell_seed).c_str(),
                cell.provenance.threads);
  out += buf;
  out += "\"simd_isa\":\"" + json_escape(cell.provenance.simd_isa) +
         "\",\"config_hash\":\"" + hex64(cell.provenance.config_hash) +
         "\"},\"metrics\":[";
  for (std::size_t i = 0; i < cell.metrics.size(); ++i) {
    if (i > 0) out += ",";
    append_metric_json(out, cell.metrics[i]);
  }
  out += "],\"fingerprint\":\"" + hex64(cell.fingerprint) + "\"}";
  return out;
}

std::string render_sweep_json(const std::vector<CellResult>& cells) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out += "  " + render_cell_json(cells[i]);
    if (i + 1 < cells.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

std::string render_sweep_table(const std::vector<CellResult>& cells) {
  report::TextTable t({"Cell", "Scenario", "Config", "Metric", "Value",
                       "Fingerprint"});
  for (const CellResult& c : cells) {
    const Metric& head = c.metrics.front();
    t.add_row({c.id, c.scenario, c.config, head.name,
               format_double(head.value, 6), hex64(c.fingerprint)});
  }
  return t.render();
}

}  // namespace rcr::sweep
