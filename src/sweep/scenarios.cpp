#include "sweep/scenarios.hpp"

#include <cmath>
#include <string>

#include "query/engine.hpp"
#include "sim/cluster.hpp"
#include "sim/network.hpp"
#include "sim/scaling.hpp"
#include "simd/philox.hpp"
#include "synth/calibration.hpp"
#include "synth/domain.hpp"
#include "synth/generator.hpp"
#include "synth/traffic.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace rcr::sweep {

namespace {

std::string num(double v) {
  // Canonical short rendering for config strings (which get hashed):
  // trailing zeros trimmed so 0.05 renders identically everywhere.
  std::string s = format_double(v, 6);
  while (s.find('.') != std::string::npos && (s.back() == '0')) s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

double find_option_share(const std::vector<data::OptionShare>& shares,
                         const std::string& label) {
  for (const auto& s : shares)
    if (s.label == label) return s.share.estimate;
  throw Error("sweep: option '" + label + "' missing from shares");
}

}  // namespace

std::vector<CellSpec> amdahl_ablation_grid() {
  std::vector<CellSpec> cells;
  const double serial_fractions[] = {0.01, 0.05};
  const std::size_t core_counts[] = {8, 64};
  struct Ablation {
    const char* name;
    sim::ModelAblation switches;
  };
  const Ablation ablations[] = {
      {"full", {true, true}},
      {"no_bandwidth", {false, true}},
      {"no_barriers", {true, false}},
  };
  for (double f : serial_fractions) {
    for (std::size_t p : core_counts) {
      for (const Ablation& ab : ablations) {
        CellSpec c;
        c.scenario = "amdahl_ablation";
        c.id = "amdahl_f" + num(f) + "_p" + std::to_string(p) + "_" + ab.name;
        c.config = "scenario=amdahl_ablation serial_fraction=" + num(f) +
                   " cores=" + std::to_string(p) +
                   " ablation=" + ab.name +
                   " work_ops=1e9 bytes_per_flop=0.5 barriers=4"
                   " tasks_per_core=4 jitter=0.2";
        c.run = [f, p, ab](const CellContext& ctx) {
          sim::MachineModel machine;
          sim::WorkloadModel work;
          work.work_ops = 1e9;
          work.serial_fraction = f;
          work.bytes_per_flop = 0.5;
          work.barriers = 4;
          const double predicted =
              sim::predict_time_ablated(machine, work, p, ab.switches);
          // DES cross-check on the same workload: jittered task list,
          // deterministic under the cell seed.
          const auto durations =
              sim::make_task_durations(machine, work, p * 4, 0.2, ctx.seed);
          const double serial_s =
              work.serial_fraction * work.work_ops /
              (machine.core_gflops * 1e9);
          const double des = sim::simulate_fork_join(durations, p, serial_s);
          return std::vector<Metric>{
              {"predicted_seconds", predicted},
              {"des_makespan_seconds", des},
              {"amdahl_ideal_speedup", sim::amdahl_speedup(f, p)},
              {"gustafson_speedup", sim::gustafson_speedup(f, p)},
          };
        };
        cells.push_back(std::move(c));
      }
    }
  }
  return cells;
}

std::vector<CellSpec> queue_policy_grid() {
  std::vector<CellSpec> cells;
  const double loads_per_hour[] = {20.0, 40.0};
  const sim::SchedulerPolicy policies[] = {
      sim::SchedulerPolicy::kFcfs,
      sim::SchedulerPolicy::kEasyBackfill,
      sim::SchedulerPolicy::kShortestFirst,
  };
  for (double rate : loads_per_hour) {
    for (sim::SchedulerPolicy policy : policies) {
      CellSpec c;
      c.scenario = "queue_policy";
      c.id = std::string("queue_") + sim::scheduler_label(policy) + "_rate" +
             num(rate);
      c.config = "scenario=queue_policy policy=" +
                 std::string(sim::scheduler_label(policy)) +
                 " arrival_rate_per_hour=" + num(rate) +
                 " jobs=400 total_cores=256";
      c.run = [rate, policy](const CellContext& ctx) {
        sim::JobStreamConfig jc;
        jc.jobs = 400;
        jc.arrival_rate_per_hour = rate;
        jc.seed = ctx.seed;
        auto jobs = sim::generate_job_stream(jc);
        const auto m = sim::simulate_cluster(jobs, 256, policy);
        return std::vector<Metric>{
            {"mean_wait_seconds", m.mean_wait},
            {"p95_wait_seconds", m.p95_wait},
            {"mean_bounded_slowdown", m.mean_bounded_slowdown},
            {"utilization", m.utilization},
        };
      };
      cells.push_back(std::move(c));
    }
  }
  return cells;
}

std::vector<CellSpec> network_contention_grid() {
  std::vector<CellSpec> cells;
  const double bandwidths_gbs[] = {12.5, 1.25};
  const double halo_bytes[] = {1e5, 1e6};
  for (double bw : bandwidths_gbs) {
    for (double halo : halo_bytes) {
      CellSpec c;
      c.scenario = "network_contention";
      c.id = "network_bw" + num(bw) + "_halo" + num(halo);
      c.config = "scenario=network_contention bandwidth_gbs=" + num(bw) +
                 " halo_bytes_per_rank=" + num(halo) +
                 " latency_us=2 work_ops_total=1e12 ranks=256";
      c.run = [bw, halo](const CellContext&) {
        sim::NetworkModel net;
        net.bandwidth_gbs = bw;
        sim::DistributedWorkload w;
        w.halo_bytes_per_rank = halo;
        return std::vector<Metric>{
            {"bsp_step_seconds_256", sim::bsp_step_time(net, w, 256)},
            {"sweet_spot_ranks",
             static_cast<double>(sim::bsp_sweet_spot(net, w))},
            {"allreduce_seconds_256", sim::allreduce_time(net, 256, 8.0)},
        };
      };
      cells.push_back(std::move(c));
    }
  }
  return cells;
}

std::vector<CellSpec> population_grid() {
  std::vector<CellSpec> cells;
  const double years[] = {2011.0, 2017.5, 2024.0};
  for (double year : years) {
    CellSpec c;
    c.scenario = "population";
    c.id = "population_y" + num(year);
    c.config = "scenario=population year=" + num(year) + " respondents=400";
    c.run = [year](const CellContext& ctx) {
      const synth::WaveParams params = synth::interpolated_params(year);
      synth::GeneratorConfig gc;
      gc.wave = params.wave;
      gc.respondents = 400;
      gc.seed = ctx.seed;
      gc.pool = ctx.pool;
      gc.params = &params;
      const data::Table wave = synth::generate_wave(gc);
      // One fused engine pass for every aggregate the cell reports.
      query::QueryEngine engine(wave);
      const auto langs = engine.add_option_shares(synth::col::kLanguages);
      const auto se = engine.add_option_shares(synth::col::kSePractices);
      const auto res =
          engine.add_option_shares(synth::col::kParallelResources);
      const auto cores = engine.add_numeric_summary(synth::col::kCoresTypical);
      engine.run(ctx.pool);
      const auto& summary = engine.numeric(cores);
      return std::vector<Metric>{
          {"python_share",
           find_option_share(engine.shares(langs), "Python")},
          {"vcs_share",
           find_option_share(engine.shares(se), "Version control")},
          {"gpu_share", find_option_share(engine.shares(res), "GPU")},
          {"cores_mean", summary.mean()},
          {"cores_max", summary.max},
      };
    };
    cells.push_back(std::move(c));
  }
  return cells;
}

std::vector<CellSpec> beta_trait_grid() {
  std::vector<CellSpec> cells;
  struct Shape {
    double alpha, beta;
  };
  const Shape shapes[] = {{2.0, 5.0}, {5.0, 2.0}, {0.5, 0.5}};
  for (const Shape& sh : shapes) {
    CellSpec c;
    c.scenario = "beta_trait";
    c.id = "beta_a" + num(sh.alpha) + "_b" + num(sh.beta);
    c.config = "scenario=beta_trait alpha=" + num(sh.alpha) +
               " beta=" + num(sh.beta) + " draws=4096";
    c.run = [sh](const CellContext& ctx) {
      const synth::BetaSampler sampler(sh.alpha, sh.beta);
      simd::Philox rng(ctx.seed);
      const std::size_t draws = 4096;
      double sum = 0.0, sum_sq = 0.0, max_cdf_gap = 0.0;
      for (std::size_t i = 0; i < draws; ++i) {
        const double u = rng.next_double();
        const double x = sampler.sample(u);
        sum += x;
        sum_sq += x * x;
        // Inversion self-check: the CDF at the sample must reproduce the
        // driving uniform (up to the bisection's terminal bracket).
        max_cdf_gap = std::max(max_cdf_gap, std::abs(sampler.cdf(x) - u));
      }
      const double n = static_cast<double>(draws);
      const double mean = sum / n;
      return std::vector<Metric>{
          {"empirical_mean", mean},
          {"empirical_variance", sum_sq / n - mean * mean},
          {"closed_mean", sampler.mean()},
          {"closed_variance", sampler.variance()},
          {"max_cdf_gap", max_cdf_gap},
      };
    };
    cells.push_back(std::move(c));
  }
  return cells;
}

std::vector<CellSpec> standard_catalog() {
  std::vector<CellSpec> cells;
  for (auto grid : {amdahl_ablation_grid(), queue_policy_grid(),
                    network_contention_grid(), population_grid(),
                    beta_trait_grid()})
    for (auto& c : grid) cells.push_back(std::move(c));
  return cells;
}

}  // namespace rcr::sweep
