// rcr::sweep — provenance-stamped scenario sweeps.
//
// A sweep is a grid of cells, each a named scenario configuration (an
// Amdahl ablation point, a queue policy × load point, a synthetic
// population variant, ...) run as a batch job through the repo's sim /
// synth / query stack. Every cell's report carries full provenance — the
// master seed, the cell's derived seed, the thread count, the active SIMD
// ISA, and a hash of the canonical config string — plus a fingerprint of
// the metric values (XXH64 over the exact IEEE-754 bit patterns).
//
// The reproducibility contract, enforced by bench_sweep and sweep_test:
// re-running any cell from its recorded provenance (seed + config; thread
// count is free, because every engine in the repo is bitwise
// pool-invariant) reproduces its fingerprint exactly. A sweep result that
// cannot name the bits that produced it is not a result — this module is
// the paper's "record your computational environment" practice turned
// into an API.
//
// Determinism rules for cell bodies:
//   * all randomness derives from CellContext::seed (itself
//     cell_seed(master, config_hash), so cells are independent and
//     insertion-order-free);
//   * metrics are pure doubles computed by deterministic engines; no
//     wall-clock times, host names, or pointers may enter a Metric.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rcr::parallel {
class ThreadPool;
}

namespace rcr::sweep {

// Everything needed to reproduce one cell's bits.
struct Provenance {
  std::uint64_t master_seed = 0;  // the sweep's seed
  std::uint64_t cell_seed = 0;    // derived: cell_seed(master, config_hash)
  std::size_t threads = 0;        // pool width the run used (0 = serial)
  std::string simd_isa;           // active dispatch target (simd::describe)
  std::uint64_t config_hash = 0;  // XXH64 of the canonical config string
};

// One named scalar output of a cell.
struct Metric {
  std::string name;
  double value = 0.0;
};

// What a cell body receives: its derived seed and the execution pool.
struct CellContext {
  std::uint64_t seed = 0;
  parallel::ThreadPool* pool = nullptr;
};

// One grid cell: identity, the canonical config string (hashed into the
// provenance; keep it a full, ordered key=value rendering of every
// parameter), and the body computing its metrics.
struct CellSpec {
  std::string id;        // unique within the sweep, stable across runs
  std::string scenario;  // catalog family (e.g. "amdahl_ablation")
  std::string config;    // canonical parameter rendering
  std::function<std::vector<Metric>(const CellContext&)> run;
};

struct CellResult {
  std::string id;
  std::string scenario;
  std::string config;
  Provenance provenance;
  std::vector<Metric> metrics;
  std::uint64_t fingerprint = 0;  // fingerprint_metrics(metrics)
};

struct SweepConfig {
  std::uint64_t seed = 7;
  parallel::ThreadPool* pool = nullptr;  // nullptr = serial
};

// XXH64 of the canonical config string (seedless, so the hash is a pure
// function of the text).
std::uint64_t config_hash(const std::string& canonical_config);

// The cell's derived seed: XXH64 over the master seed, keyed by the
// config hash. Adding, removing, or reordering cells never changes any
// other cell's stream.
std::uint64_t cell_seed(std::uint64_t master_seed, std::uint64_t config_hash);

// XXH64 over the metric names and the raw IEEE-754 bit patterns of their
// values, in order. Bitwise — two runs match iff every metric matches to
// the last ulp.
std::uint64_t fingerprint_metrics(const std::vector<Metric>& metrics);

// Runs one cell: derives its seed, executes the body, stamps provenance
// and fingerprint.
CellResult run_cell(const CellSpec& spec, const SweepConfig& config);

// Runs every cell in order. (Cells are seed-independent, so any future
// parallel driver must only preserve result order, not execution order.)
std::vector<CellResult> run_sweep(const std::vector<CellSpec>& cells,
                                  const SweepConfig& config);

// --- Reports ----------------------------------------------------------------

// One JSON object per cell: identity, provenance, metrics (decimal value
// plus exact bit pattern), fingerprint.
std::string render_cell_json(const CellResult& cell);

// The whole sweep as a JSON array (one render_cell_json per line).
std::string render_sweep_json(const std::vector<CellResult>& cells);

// Human-readable summary table: one row per cell with its scenario,
// config, first metric, and fingerprint.
std::string render_sweep_table(const std::vector<CellResult>& cells);

}  // namespace rcr::sweep
