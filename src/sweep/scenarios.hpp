// The standard scenario catalogs bench_sweep and the examples run.
//
// Each grid function expands one scenario family into CellSpecs whose
// bodies drive the corresponding subsystem deterministically from the
// cell's derived seed:
//
//   * amdahl_ablation_grid  — the analytic scaling model vs the
//     discrete-event fork-join simulator across serial fractions, core
//     counts, and F5's ablation switches (drop the bandwidth ceiling /
//     the barrier term);
//   * queue_policy_grid     — the batch-cluster simulator across offered
//     loads and scheduler policies (FCFS / EASY backfill / SJF);
//   * network_contention_grid — BSP step time and the communication
//     sweet spot across rank counts, halo sizes, and network bandwidths;
//   * population_grid       — synthetic survey populations at
//     interpolated calendar years, aggregated by one fused query engine
//     scan (key adoption shares + job-width summary);
//   * beta_trait_grid       — BetaSampler trait-propensity variants
//     (moments of inverse-CDF draws from Philox substreams), closing the
//     roadmap's distribution checklist.
//
// Config strings are canonical key=value listings: the whole parameter
// set, in a fixed order — they are hashed into the provenance, so two
// cells differ iff their configs differ.
#pragma once

#include <vector>

#include "sweep/sweep.hpp"

namespace rcr::sweep {

std::vector<CellSpec> amdahl_ablation_grid();
std::vector<CellSpec> queue_policy_grid();
std::vector<CellSpec> network_contention_grid();
std::vector<CellSpec> population_grid();
std::vector<CellSpec> beta_trait_grid();

// All of the above, concatenated — what bench_sweep runs.
std::vector<CellSpec> standard_catalog();

}  // namespace rcr::sweep
