#include "survey/impute.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::survey {

namespace {

// Donor row indices per stratum code, plus a global pool at the back.
struct DonorPools {
  std::vector<std::vector<std::size_t>> by_stratum;
  std::vector<std::size_t> global;
};

template <typename IsMissingFn>
DonorPools build_pools(const data::Table& table,
                       const std::string& stratum_column,
                       const IsMissingFn& target_missing) {
  const auto& strata = table.categorical(stratum_column);
  DonorPools pools;
  pools.by_stratum.resize(strata.category_count());
  for (std::size_t i = 0; i < table.row_count(); ++i) {
    if (target_missing(i)) continue;
    pools.global.push_back(i);
    if (!strata.is_missing(i))
      pools.by_stratum[static_cast<std::size_t>(strata.code_at(i))]
          .push_back(i);
  }
  return pools;
}

// Picks a donor for `row`: same stratum if possible, else the global pool.
// Returns the table row index, or SIZE_MAX if no donor exists anywhere.
std::size_t pick_donor(const DonorPools& pools,
                       const data::CategoricalColumn& strata, std::size_t row,
                       Rng& rng) {
  const std::vector<std::size_t>* pool = &pools.global;
  if (!strata.is_missing(row)) {
    const auto& stratum_pool =
        pools.by_stratum[static_cast<std::size_t>(strata.code_at(row))];
    if (!stratum_pool.empty()) pool = &stratum_pool;
  }
  if (pool->empty()) return static_cast<std::size_t>(-1);
  return (*pool)[rng.next_below(pool->size())];
}

}  // namespace

ImputationReport hot_deck_impute(data::Table& table,
                                 const std::string& target_column,
                                 const std::string& stratum_column,
                                 std::uint64_t seed) {
  table.validate_rectangular();
  const auto& strata = table.categorical(stratum_column);
  Rng rng(seed);
  ImputationReport report;

  switch (table.kind(target_column)) {
    case data::ColumnKind::kNumeric: {
      auto& col = table.numeric(target_column);
      const auto pools = build_pools(table, stratum_column, [&](std::size_t i) {
        return data::NumericColumn::is_missing(col.at(i));
      });
      for (std::size_t i = 0; i < col.size(); ++i) {
        if (!data::NumericColumn::is_missing(col.at(i))) continue;
        const std::size_t donor = pick_donor(pools, strata, i, rng);
        if (donor == static_cast<std::size_t>(-1)) {
          ++report.unimputable_cells;
          continue;
        }
        col.set(i, col.at(donor));
        ++report.imputed_cells;
      }
      break;
    }
    case data::ColumnKind::kCategorical: {
      auto& col = table.categorical(target_column);
      const auto pools = build_pools(
          table, stratum_column,
          [&](std::size_t i) { return col.is_missing(i); });
      for (std::size_t i = 0; i < col.size(); ++i) {
        if (!col.is_missing(i)) continue;
        const std::size_t donor = pick_donor(pools, strata, i, rng);
        if (donor == static_cast<std::size_t>(-1)) {
          ++report.unimputable_cells;
          continue;
        }
        col.set_code(i, col.code_at(donor));
        ++report.imputed_cells;
      }
      break;
    }
    case data::ColumnKind::kMultiSelect: {
      auto& col = table.multiselect(target_column);
      const auto pools = build_pools(
          table, stratum_column,
          [&](std::size_t i) { return col.is_missing(i); });
      for (std::size_t i = 0; i < col.size(); ++i) {
        if (!col.is_missing(i)) continue;
        const std::size_t donor = pick_donor(pools, strata, i, rng);
        if (donor == static_cast<std::size_t>(-1)) {
          ++report.unimputable_cells;
          continue;
        }
        col.set_mask(i, col.mask_at(donor));
        ++report.imputed_cells;
      }
      break;
    }
  }
  return report;
}

std::size_t missing_count(const data::Table& table,
                          const std::string& column) {
  std::size_t missing = 0;
  switch (table.kind(column)) {
    case data::ColumnKind::kNumeric: {
      const auto& col = table.numeric(column);
      for (std::size_t i = 0; i < col.size(); ++i)
        if (data::NumericColumn::is_missing(col.at(i))) ++missing;
      break;
    }
    case data::ColumnKind::kCategorical: {
      const auto& col = table.categorical(column);
      for (std::size_t i = 0; i < col.size(); ++i)
        if (col.is_missing(i)) ++missing;
      break;
    }
    case data::ColumnKind::kMultiSelect: {
      const auto& col = table.multiselect(column);
      for (std::size_t i = 0; i < col.size(); ++i)
        if (col.is_missing(i)) ++missing;
      break;
    }
  }
  return missing;
}

}  // namespace rcr::survey
