#include "survey/schema.hpp"

#include <cmath>

#include "util/error.hpp"

namespace rcr::survey {

Question Question::single_choice(std::string id, std::string text,
                                 std::vector<std::string> choices,
                                 bool required) {
  RCR_CHECK_MSG(choices.size() >= 2, "single-choice needs >= 2 choices");
  Question q;
  q.id = std::move(id);
  q.text = std::move(text);
  q.kind = QuestionKind::kSingleChoice;
  q.choices = std::move(choices);
  q.required = required;
  return q;
}

Question Question::multi_select(std::string id, std::string text,
                                std::vector<std::string> choices) {
  RCR_CHECK_MSG(!choices.empty(), "multi-select needs choices");
  Question q;
  q.id = std::move(id);
  q.text = std::move(text);
  q.kind = QuestionKind::kMultiSelect;
  q.choices = std::move(choices);
  return q;
}

Question Question::likert(std::string id, std::string text, int scale_points) {
  RCR_CHECK_MSG(scale_points >= 2 && scale_points <= 11,
                "Likert scale must have 2..11 points");
  Question q;
  q.id = std::move(id);
  q.text = std::move(text);
  q.kind = QuestionKind::kLikert;
  q.scale_points = scale_points;
  return q;
}

Question Question::numeric(std::string id, std::string text) {
  Question q;
  q.id = std::move(id);
  q.text = std::move(text);
  q.kind = QuestionKind::kNumeric;
  return q;
}

Questionnaire::Questionnaire(std::string name, std::vector<Question> questions)
    : name_(std::move(name)), questions_(std::move(questions)) {
  RCR_CHECK_MSG(!questions_.empty(), "questionnaire must have questions");
  for (std::size_t i = 0; i < questions_.size(); ++i) {
    RCR_CHECK_MSG(!questions_[i].id.empty(), "question id must be non-empty");
    for (std::size_t j = i + 1; j < questions_.size(); ++j)
      RCR_CHECK_MSG(questions_[i].id != questions_[j].id,
                    "duplicate question id '" + questions_[i].id + "'");
  }
}

bool Questionnaire::has_question(const std::string& id) const {
  for (const auto& q : questions_)
    if (q.id == id) return true;
  return false;
}

const Question& Questionnaire::question(const std::string& id) const {
  for (const auto& q : questions_)
    if (q.id == id) return q;
  throw InvalidInputError("no such question '" + id + "'");
}

data::Table Questionnaire::make_table() const {
  data::Table table;
  for (const auto& q : questions_) {
    switch (q.kind) {
      case QuestionKind::kSingleChoice:
        table.add_categorical(q.id, q.choices);
        break;
      case QuestionKind::kMultiSelect:
        table.add_multiselect(q.id, q.choices);
        break;
      case QuestionKind::kLikert:
      case QuestionKind::kNumeric:
        table.add_numeric(q.id);
        break;
    }
  }
  return table;
}

std::string render_codebook(const Questionnaire& questionnaire) {
  std::string out = "# Codebook: " + questionnaire.name() + "\n";
  for (const auto& q : questionnaire.questions()) {
    out += "\n## `" + q.id + "`\n\n" + q.text + "\n\n";
    switch (q.kind) {
      case QuestionKind::kSingleChoice:
        out += "* Type: single choice";
        if (q.required) out += " (required)";
        out += "\n* Choices:";
        for (const auto& c : q.choices) out += " `" + c + "`";
        out += "\n";
        break;
      case QuestionKind::kMultiSelect:
        out += "* Type: multi-select\n* Options:";
        for (const auto& c : q.choices) out += " `" + c + "`";
        out += "\n";
        break;
      case QuestionKind::kLikert:
        out += "* Type: Likert 1.." + std::to_string(q.scale_points) + "\n";
        break;
      case QuestionKind::kNumeric:
        out += "* Type: numeric (non-negative)\n";
        break;
    }
  }
  return out;
}

std::vector<ValidationIssue> validate_responses(const Questionnaire& q,
                                                const data::Table& table) {
  table.validate_rectangular();
  std::vector<ValidationIssue> issues;
  const std::size_t n = table.row_count();

  for (const auto& question : q.questions()) {
    if (!table.has_column(question.id)) {
      issues.push_back({0, question.id, "column missing from table"});
      continue;
    }
    for (std::size_t row = 0; row < n; ++row) {
      switch (question.kind) {
        case QuestionKind::kSingleChoice: {
          const auto& col = table.categorical(question.id);
          if (col.is_missing(row)) {
            if (question.required)
              issues.push_back({row, question.id, "required answer missing"});
          }
          break;
        }
        case QuestionKind::kMultiSelect: {
          const auto& col = table.multiselect(question.id);
          if (question.required && col.is_missing(row))
            issues.push_back({row, question.id, "required answer missing"});
          break;
        }
        case QuestionKind::kLikert: {
          const double v = table.numeric(question.id).at(row);
          if (data::NumericColumn::is_missing(v)) {
            if (question.required)
              issues.push_back({row, question.id, "required answer missing"});
          } else if (v != std::floor(v) || v < 1.0 ||
                     v > question.scale_points) {
            issues.push_back(
                {row, question.id,
                 "Likert answer out of 1.." +
                     std::to_string(question.scale_points)});
          }
          break;
        }
        case QuestionKind::kNumeric: {
          const double v = table.numeric(question.id).at(row);
          if (data::NumericColumn::is_missing(v)) {
            if (question.required)
              issues.push_back({row, question.id, "required answer missing"});
          } else if (!std::isfinite(v) || v < 0.0) {
            issues.push_back(
                {row, question.id, "numeric answer must be finite and >= 0"});
          }
          break;
        }
      }
    }
  }
  return issues;
}

}  // namespace rcr::survey
