// Stratified-sample allocation: how many respondents to recruit per
// stratum — the planning step before fielding a wave.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rcr::survey {

// Proportional allocation: n_h ∝ N_h. Rounded by largest remainder so the
// parts sum exactly to `total_n`; every stratum with N_h > 0 gets >= 1
// when total_n >= number of non-empty strata.
std::vector<std::size_t> proportional_allocation(
    std::span<const double> stratum_sizes, std::size_t total_n);

// Neyman allocation: n_h ∝ N_h * S_h (stratum size times within-stratum
// stddev) — minimizes the variance of the stratified mean at fixed n.
std::vector<std::size_t> neyman_allocation(
    std::span<const double> stratum_sizes,
    std::span<const double> stratum_stddevs, std::size_t total_n);

}  // namespace rcr::survey
