// Missing-data imputation for survey tables.
//
// Hot-deck imputation within strata: a missing answer is filled with the
// answer of a randomly drawn "donor" respondent from the same stratum
// (e.g. same field), preserving the within-stratum answer distribution —
// the standard pragmatic treatment for modest survey nonresponse.
// Imputation is deterministic under the given seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.hpp"

namespace rcr::survey {

struct ImputationReport {
  std::size_t imputed_cells = 0;
  std::size_t unimputable_cells = 0;  // strata with no donor at all
};

// Fills missing values of `target_column` (numeric, categorical, or
// multi-select) in place, drawing donors from rows with the same value of
// `stratum_column` (a categorical column; rows with a missing stratum fall
// back to the global donor pool).
ImputationReport hot_deck_impute(data::Table& table,
                                 const std::string& target_column,
                                 const std::string& stratum_column,
                                 std::uint64_t seed = 1234);

// Count of missing cells in a column of any kind (for reporting).
std::size_t missing_count(const data::Table& table,
                          const std::string& column);

}  // namespace rcr::survey
