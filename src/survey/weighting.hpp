// Post-stratification weighting by iterative proportional fitting (raking).
//
// Survey samples over-represent some strata (a CS department answering a
// computing survey more eagerly than a chemistry one). Raking adjusts each
// respondent's weight so the weighted marginals of chosen categorical
// variables match known population targets, without needing the full joint
// distribution. The F7 methodology figure quantifies the effect.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "data/table.hpp"

namespace rcr::survey {

// Population marginal for one categorical variable: label -> share.
// Shares must be positive and are normalized internally.
struct MarginTarget {
  std::string column;
  std::map<std::string, double> shares;
};

struct RakingOptions {
  std::size_t max_iterations = 100;
  double tolerance = 1e-8;  // max |weighted share - target| to stop
  double min_weight = 0.05; // trimming bounds, as multiples of the mean
  double max_weight = 20.0;
};

struct RakingResult {
  std::vector<double> weights;   // one per table row, mean 1.0
  std::size_t iterations = 0;
  bool converged = false;
  double max_residual = 0.0;     // final worst marginal error
  double design_effect = 1.0;    // 1 + CV²(weights) (Kish approximation)
  double effective_n = 0.0;      // n / design_effect
};

// Computes raking weights so that the weighted marginals of every target
// column match the given shares. Rows with a missing value in any target
// column receive weight 1 and are excluded from calibration.
RakingResult rake_weights(const data::Table& table,
                          const std::vector<MarginTarget>& targets,
                          const RakingOptions& options = {});

// Weighted share of rows where `column == label` (for reporting).
double weighted_category_share(const data::Table& table,
                               const std::string& column,
                               const std::string& label,
                               const std::vector<double>& weights);

}  // namespace rcr::survey
