#include "survey/weighting.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace rcr::survey {

namespace {

struct PreparedTarget {
  const data::CategoricalColumn* column = nullptr;
  std::vector<double> target_share;  // by category code, normalized
};

std::vector<PreparedTarget> prepare_targets(
    const data::Table& table, const std::vector<MarginTarget>& targets) {
  RCR_CHECK_MSG(!targets.empty(), "raking needs at least one margin target");
  std::vector<PreparedTarget> prepared;
  prepared.reserve(targets.size());
  for (const auto& t : targets) {
    PreparedTarget p;
    p.column = &table.categorical(t.column);
    p.target_share.assign(p.column->category_count(), 0.0);
    double total = 0.0;
    for (const auto& [label, share] : t.shares) {
      RCR_CHECK_MSG(share > 0.0, "margin target shares must be positive");
      const std::int32_t code = p.column->find_code(label);
      RCR_CHECK_MSG(code >= 0, "margin target label '" + label +
                                   "' not a category of '" + t.column + "'");
      p.target_share[static_cast<std::size_t>(code)] = share;
      total += share;
    }
    RCR_CHECK_MSG(total > 0.0, "margin target must have positive total");
    for (double& s : p.target_share) s /= total;
    // Every category present in the data must have a target, or its rows
    // could never be calibrated.
    const auto counts = p.column->counts();
    for (std::size_t c = 0; c < counts.size(); ++c) {
      RCR_CHECK_MSG(counts[c] == 0.0 || p.target_share[c] > 0.0,
                    "category '" + p.column->category(c) +
                        "' present in data but absent from targets");
    }
    prepared.push_back(std::move(p));
  }
  return prepared;
}

}  // namespace

RakingResult rake_weights(const data::Table& table,
                          const std::vector<MarginTarget>& targets,
                          const RakingOptions& options) {
  table.validate_rectangular();
  const std::size_t n = table.row_count();
  RCR_CHECK_MSG(n > 0, "raking needs data");
  const auto prepared = prepare_targets(table, targets);

  // Rows eligible for calibration: a value in every target column.
  std::vector<std::size_t> calibrated;
  calibrated.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    bool ok = true;
    for (const auto& p : prepared)
      if (p.column->is_missing(i)) ok = false;
    if (ok) calibrated.push_back(i);
  }
  RCR_CHECK_MSG(!calibrated.empty(), "no rows usable for raking");

  RakingResult result;
  result.weights.assign(n, 1.0);

  const double calibrated_total = static_cast<double>(calibrated.size());
  for (std::size_t iter = 1; iter <= options.max_iterations; ++iter) {
    double max_residual = 0.0;
    for (const auto& p : prepared) {
      // Current weighted distribution over this margin.
      std::vector<double> weighted(p.target_share.size(), 0.0);
      double wsum = 0.0;
      for (std::size_t row : calibrated) {
        const auto code = static_cast<std::size_t>(p.column->code_at(row));
        weighted[code] += result.weights[row];
        wsum += result.weights[row];
      }
      // Multiply weights by target/current per category.
      for (std::size_t row : calibrated) {
        const auto code = static_cast<std::size_t>(p.column->code_at(row));
        const double current = weighted[code] / wsum;
        if (current > 0.0)
          result.weights[row] *= p.target_share[code] / current;
      }
    }
    // Residual after a full pass, measured across every margin.
    for (const auto& p : prepared) {
      std::vector<double> weighted(p.target_share.size(), 0.0);
      double wsum = 0.0;
      for (std::size_t row : calibrated) {
        const auto code = static_cast<std::size_t>(p.column->code_at(row));
        weighted[code] += result.weights[row];
        wsum += result.weights[row];
      }
      for (std::size_t c = 0; c < weighted.size(); ++c) {
        if (p.target_share[c] == 0.0 && weighted[c] == 0.0) continue;
        max_residual = std::max(
            max_residual, std::fabs(weighted[c] / wsum - p.target_share[c]));
      }
    }
    result.iterations = iter;
    result.max_residual = max_residual;
    if (max_residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Normalize calibrated weights to mean 1, then trim.
  double wsum = 0.0;
  for (std::size_t row : calibrated) wsum += result.weights[row];
  const double mean_w = wsum / calibrated_total;
  for (std::size_t row : calibrated) {
    double w = result.weights[row] / mean_w;
    w = std::clamp(w, options.min_weight, options.max_weight);
    result.weights[row] = w;
  }

  // Design effect over the calibrated rows (Kish): 1 + CV².
  double s = 0.0, s2 = 0.0;
  for (std::size_t row : calibrated) {
    s += result.weights[row];
    s2 += result.weights[row] * result.weights[row];
  }
  const double mean = s / calibrated_total;
  const double var = s2 / calibrated_total - mean * mean;
  result.design_effect = 1.0 + (mean > 0.0 ? var / (mean * mean) : 0.0);
  result.effective_n = calibrated_total / result.design_effect;
  return result;
}

double weighted_category_share(const data::Table& table,
                               const std::string& column,
                               const std::string& label,
                               const std::vector<double>& weights) {
  const auto& col = table.categorical(column);
  RCR_CHECK_MSG(weights.size() == col.size(),
                "weight vector does not match table rows");
  const std::int32_t code = col.find_code(label);
  RCR_CHECK_MSG(code >= 0, "unknown label '" + label + "'");
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < col.size(); ++i) {
    if (col.is_missing(i)) continue;
    den += weights[i];
    if (col.code_at(i) == code) num += weights[i];
  }
  RCR_CHECK_MSG(den > 0.0, "no answered rows for weighted share");
  return num / den;
}

}  // namespace rcr::survey
