// Questionnaire schema: the formal definition of what a survey wave asks.
//
// The schema is the single source of truth shared by the synthetic
// generator (which fills it in), the CSV reader (which validates external
// data against it), and the analysis layer (which consumes coded columns).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/table.hpp"

namespace rcr::survey {

enum class QuestionKind {
  kSingleChoice,  // exactly one of `choices` (or missing)
  kMultiSelect,   // any subset of `choices`
  kLikert,        // integer scale 1..scale_points
  kNumeric        // free non-negative number (cores, GB, hours, ...)
};

struct Question {
  std::string id;     // column name, e.g. "primary_language"
  std::string text;   // wording shown to respondents
  QuestionKind kind = QuestionKind::kSingleChoice;
  std::vector<std::string> choices;  // single-choice / multi-select only
  int scale_points = 5;              // Likert only
  bool required = false;             // validation rejects missing answers

  static Question single_choice(std::string id, std::string text,
                                std::vector<std::string> choices,
                                bool required = false);
  static Question multi_select(std::string id, std::string text,
                               std::vector<std::string> choices);
  static Question likert(std::string id, std::string text,
                         int scale_points = 5);
  static Question numeric(std::string id, std::string text);
};

class Questionnaire {
 public:
  Questionnaire(std::string name, std::vector<Question> questions);

  const std::string& name() const { return name_; }
  const std::vector<Question>& questions() const { return questions_; }
  std::size_t size() const { return questions_.size(); }

  bool has_question(const std::string& id) const;
  const Question& question(const std::string& id) const;

  // Builds an empty data::Table whose columns mirror the questionnaire:
  // single-choice -> frozen categorical, multi-select -> multiselect,
  // Likert & numeric -> numeric.
  data::Table make_table() const;

 private:
  std::string name_;
  std::vector<Question> questions_;
};

// Renders the questionnaire as a markdown codebook: one section per
// question with id, wording, type, and answer set — the artifact a survey
// methods appendix publishes.
std::string render_codebook(const Questionnaire& questionnaire);

// One validation problem found in a response table.
struct ValidationIssue {
  std::size_t row = 0;
  std::string question_id;
  std::string message;
};

// Checks a table (typically CSV-ingested) against the questionnaire:
// Likert answers within scale, numeric answers finite and non-negative,
// required questions answered. Returns all issues; empty means valid.
std::vector<ValidationIssue> validate_responses(const Questionnaire& q,
                                                const data::Table& table);

}  // namespace rcr::survey
