#include "survey/likert.hpp"

#include <cmath>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace rcr::survey {

LikertSummary summarize_likert(const data::Table& table,
                               const std::string& column, int scale_points,
                               int top_box_from, double confidence) {
  RCR_CHECK_MSG(scale_points >= 2, "Likert scale needs >= 2 points");
  if (top_box_from < 0) top_box_from = scale_points - 1;
  RCR_CHECK_MSG(top_box_from >= 1 && top_box_from <= scale_points,
                "top_box_from out of scale");

  const auto values = table.numeric(column).present_values();
  RCR_CHECK_MSG(!values.empty(), "no Likert answers in '" + column + "'");

  LikertSummary s;
  s.scale_points = scale_points;
  s.top_box_from = top_box_from;
  s.answered = values.size();
  s.distribution.assign(static_cast<std::size_t>(scale_points), 0.0);

  double top = 0.0;
  for (double v : values) {
    RCR_CHECK_MSG(v == std::floor(v) && v >= 1.0 && v <= scale_points,
                  "unvalidated Likert value in '" + column + "'");
    s.distribution[static_cast<std::size_t>(v) - 1] += 1.0;
    if (v >= top_box_from) top += 1.0;
  }
  const double n = static_cast<double>(values.size());
  for (double& d : s.distribution) d /= n;
  s.mean = stats::mean(values);
  s.median = stats::median(values);
  s.top_box = stats::wilson_ci(top, n, confidence);
  return s;
}

}  // namespace rcr::survey
