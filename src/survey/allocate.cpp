#include "survey/allocate.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace rcr::survey {

namespace {

// Largest-remainder rounding of fractional shares summing to total_n.
std::vector<std::size_t> largest_remainder(std::span<const double> weights,
                                           std::size_t total_n) {
  double wsum = 0.0;
  for (double w : weights) {
    RCR_CHECK_MSG(w >= 0.0, "allocation weights must be non-negative");
    wsum += w;
  }
  RCR_CHECK_MSG(wsum > 0.0, "allocation weights must not all be zero");

  const std::size_t k = weights.size();
  std::vector<std::size_t> out(k, 0);
  std::vector<double> remainder(k, 0.0);
  std::size_t assigned = 0;
  for (std::size_t h = 0; h < k; ++h) {
    const double exact = static_cast<double>(total_n) * weights[h] / wsum;
    out[h] = static_cast<std::size_t>(std::floor(exact));
    remainder[h] = exact - std::floor(exact);
    assigned += out[h];
  }
  // Distribute the leftover units to the largest remainders.
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return remainder[a] > remainder[b];
  });
  for (std::size_t i = 0; assigned < total_n; ++i) {
    ++out[order[i % k]];
    ++assigned;
  }
  return out;
}

}  // namespace

std::vector<std::size_t> proportional_allocation(
    std::span<const double> stratum_sizes, std::size_t total_n) {
  RCR_CHECK_MSG(!stratum_sizes.empty(), "no strata");
  RCR_CHECK_MSG(total_n > 0, "total_n must be positive");
  return largest_remainder(stratum_sizes, total_n);
}

std::vector<std::size_t> neyman_allocation(
    std::span<const double> stratum_sizes,
    std::span<const double> stratum_stddevs, std::size_t total_n) {
  RCR_CHECK_MSG(!stratum_sizes.empty(), "no strata");
  RCR_CHECK_MSG(stratum_sizes.size() == stratum_stddevs.size(),
                "sizes/stddevs length mismatch");
  RCR_CHECK_MSG(total_n > 0, "total_n must be positive");
  std::vector<double> weights(stratum_sizes.size());
  for (std::size_t h = 0; h < weights.size(); ++h) {
    RCR_CHECK_MSG(stratum_stddevs[h] >= 0.0, "stddevs must be non-negative");
    weights[h] = stratum_sizes[h] * stratum_stddevs[h];
  }
  return largest_remainder(weights, total_n);
}

}  // namespace rcr::survey
