// Likert-scale summaries (agreement scales, time-allocation bands).
#pragma once

#include <string>
#include <vector>

#include "data/table.hpp"
#include "stats/ci.hpp"

namespace rcr::survey {

struct LikertSummary {
  int scale_points = 5;
  std::size_t answered = 0;
  double mean = 0.0;
  double median = 0.0;
  std::vector<double> distribution;   // share of answers at each point 1..k
  stats::Interval top_box;            // Wilson CI on share at >= top_box_from
  int top_box_from = 4;               // default: 4..5 on a 5-point scale
};

// Summarizes a Likert numeric column. Values must already be validated
// (integers in 1..scale_points); missing answers are skipped.
LikertSummary summarize_likert(const data::Table& table,
                               const std::string& column, int scale_points,
                               int top_box_from = -1,
                               double confidence = 0.95);

}  // namespace rcr::survey
