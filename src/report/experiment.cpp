#include "report/experiment.hpp"

#include "util/error.hpp"

namespace rcr::report {

void ExperimentRegistry::add(Experiment experiment) {
  RCR_CHECK_MSG(!experiment.id.empty(), "experiment needs an id");
  RCR_CHECK_MSG(!has(experiment.id),
                "duplicate experiment id '" + experiment.id + "'");
  RCR_CHECK_MSG(static_cast<bool>(experiment.run),
                "experiment '" + experiment.id + "' has no runner");
  experiments_.push_back(std::move(experiment));
}

bool ExperimentRegistry::has(const std::string& id) const {
  for (const auto& e : experiments_)
    if (e.id == id) return true;
  return false;
}

const Experiment& ExperimentRegistry::get(const std::string& id) const {
  for (const auto& e : experiments_)
    if (e.id == id) return e;
  throw InvalidInputError("no such experiment '" + id + "'");
}

std::string ExperimentRegistry::run(const std::string& id) const {
  const Experiment& e = get(id);
  std::string out = "== " + e.id + " (" + e.kind + "): " + e.title + " ==\n";
  out += e.run();
  if (out.empty() || out.back() != '\n') out += '\n';
  return out;
}

}  // namespace rcr::report
