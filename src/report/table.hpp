// Fixed-width and markdown table rendering for the bench/report binaries.
#pragma once

#include <string>
#include <vector>

namespace rcr::report {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Cell counts must match the header. Returns *this for chaining.
  TextTable& add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  // Fixed-width ASCII with a header rule, right-padding each column.
  std::string render() const;

  // GitHub-flavored markdown.
  std::string render_markdown() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// "12.3% [10.1, 14.6]" — the standard share-with-CI cell.
std::string share_cell(double estimate, double lo, double hi,
                       int decimals = 1);

// Compact p-value formatting ("<0.001" below the threshold).
std::string p_cell(double p);

}  // namespace rcr::report
