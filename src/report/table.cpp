#include "report/table.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace rcr::report {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  RCR_CHECK_MSG(!headers_.empty(), "table needs headers");
}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  RCR_CHECK_MSG(cells.size() == headers_.size(),
                "row width does not match header");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto emit_row = [&](const std::vector<std::string>& cells,
                            std::string& out) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      if (c + 1 < cells.size())
        out += std::string(width[c] - cells[c].size() + 2, ' ');
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out += std::string(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string TextTable::render_markdown() const {
  std::string out = "|";
  for (const auto& h : headers_) out += " " + h + " |";
  out += "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out += " --- |";
  out += "\n";
  for (const auto& row : rows_) {
    out += "|";
    for (const auto& cell : row) out += " " + cell + " |";
    out += "\n";
  }
  return out;
}

std::string share_cell(double estimate, double lo, double hi, int decimals) {
  return format_percent(estimate, decimals) + " [" +
         rcr::format_double(100.0 * lo, decimals) + ", " +
         rcr::format_double(100.0 * hi, decimals) + "]";
}

std::string p_cell(double p) {
  if (p < 0.001) return "<0.001";
  return rcr::format_double(p, 3);
}

}  // namespace rcr::report
