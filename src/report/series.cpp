#include "report/series.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace rcr::report {

std::string render_series_csv(const std::string& x_label,
                              const std::vector<Series>& series) {
  RCR_CHECK_MSG(!series.empty(), "no series to render");
  const std::size_t n = series.front().points.size();
  for (const auto& s : series)
    RCR_CHECK_MSG(s.points.size() == n, "series lengths differ");

  std::string out = x_label;
  for (const auto& s : series) out += "," + s.name;
  out += '\n';
  for (std::size_t i = 0; i < n; ++i) {
    const double x = series.front().points[i].first;
    for (const auto& s : series)
      RCR_CHECK_MSG(s.points[i].first == x, "series x values differ");
    out += rcr::format_double(x, 6);
    for (const auto& s : series)
      out += "," + rcr::format_double(s.points[i].second, 6);
    out += '\n';
  }
  return out;
}

std::string render_bars(const std::vector<Bar>& bars, double max_value,
                        std::size_t width) {
  RCR_CHECK_MSG(!bars.empty(), "no bars to render");
  RCR_CHECK_MSG(width >= 4, "bar width too small");
  if (max_value <= 0.0) {
    for (const auto& b : bars) max_value = std::max(max_value, b.value);
    if (max_value <= 0.0) max_value = 1.0;
  }
  std::size_t label_width = 0;
  for (const auto& b : bars)
    label_width = std::max(label_width, b.label.size());

  std::string out;
  for (const auto& b : bars) {
    RCR_CHECK_MSG(b.value >= 0.0, "bar values must be non-negative");
    const auto filled = static_cast<std::size_t>(
        std::round(std::min(1.0, b.value / max_value) *
                   static_cast<double>(width)));
    out += b.label;
    out += std::string(label_width - b.label.size() + 2, ' ');
    out += std::string(filled, '#');
    out += std::string(width - filled, '.');
    out += "  " + rcr::format_double(b.value, 3) + '\n';
  }
  return out;
}

}  // namespace rcr::report
