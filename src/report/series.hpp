// Figure emission: named (x, y) series rendered as CSV blocks plus a
// quick ASCII bar view so a terminal run shows the figure's shape.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace rcr::report {

struct Series {
  std::string name;
  std::vector<std::pair<double, double>> points;
};

// CSV with one x column and one column per series (points must share x).
std::string render_series_csv(const std::string& x_label,
                              const std::vector<Series>& series);

// Horizontal ASCII bars for labeled magnitudes (figure previews).
struct Bar {
  std::string label;
  double value = 0.0;
};
std::string render_bars(const std::vector<Bar>& bars, double max_value = 0.0,
                        std::size_t width = 40);

}  // namespace rcr::report
