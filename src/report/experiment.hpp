// Experiment registry: maps the paper's table/figure ids to runnable code.
// Bench binaries and the integration tests both drive experiments through
// this registry, so the printed artifact is identical everywhere.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace rcr::report {

struct Experiment {
  std::string id;      // "T1", "F5", ...
  std::string kind;    // "table" or "figure"
  std::string title;
  // Produces the full printable artifact (table text, CSV series, notes).
  std::function<std::string()> run;
};

class ExperimentRegistry {
 public:
  void add(Experiment experiment);

  bool has(const std::string& id) const;
  const Experiment& get(const std::string& id) const;
  const std::vector<Experiment>& all() const { return experiments_; }

  // Runs one experiment and returns its artifact with a header banner.
  std::string run(const std::string& id) const;

 private:
  std::vector<Experiment> experiments_;
};

}  // namespace rcr::report
