// The reconstructed evaluation: one function per table/figure.
// Each returns the complete printable artifact (tables, CSV series, notes).
// DESIGN.md and EXPERIMENTS.md document what each reconstructs and which
// calibration anchors drive it.
#pragma once

#include <string>

#include "core/study.hpp"
#include "report/experiment.hpp"

namespace rcr::core {

// Tables.
std::string run_t1_demographics(const Study& study);
std::string run_t2_languages_by_field(const Study& study);
std::string run_t3_parallel_models(const Study& study);
std::string run_t4_se_practices(const Study& study);
std::string run_t5_tool_gap(const Study& study);
std::string run_t6_significance(const Study& study);
std::string run_t7_gpu_adoption(const Study& study);
std::string run_t8_field_drilldown(const Study& study);

// Figures.
std::string run_f1_language_trend(const Study& study);
std::string run_f2_parallelism_ladder(const Study& study);
std::string run_f3_cores_cdf(const Study& study);
std::string run_f4_time_programming(const Study& study);
std::string run_f5_scaling(const Study& study);
std::string run_f6_queueing(const Study& study);
std::string run_f7_weighting(const Study& study);
std::string run_f8_dataset_size(const Study& study);
std::string run_f9_nonresponse(const Study& study);
std::string run_f10_panel_transitions(const Study& study);

// Longitudinal extension (registered only for studies with 3+ waves):
// piecewise N-wave trend batteries per indicator family, one Holm family
// spanning every overall chi-square and every adjacent-segment z-test.
std::string run_l1_multiwave_trends(const Study& study);

// Registers all experiments against one shared Study (captured by
// reference; the Study must outlive the registry). Two-wave studies get
// the classic 18 tables/figures; studies with 3+ waves additionally get
// the longitudinal L-series.
void register_all_experiments(report::ExperimentRegistry& registry,
                              const Study& study);

}  // namespace rcr::core
