#include <algorithm>
#include <cmath>

#include "core/experiments.hpp"
#include "data/crosstab.hpp"
#include "kernels/suite.hpp"
#include "query/engine.hpp"
#include "report/series.hpp"
#include "report/table.hpp"
#include "sim/cluster.hpp"
#include "sim/scaling.hpp"
#include "stats/bootstrap.hpp"
#include "stats/contingency.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "survey/likert.hpp"
#include "synth/domain.hpp"
#include "trend/trend.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace rcr::core {

namespace {
using rcr::format_double;
using rcr::format_percent;
}  // namespace

std::string run_f1_language_trend(const Study& study) {
  // Per-option counts from the cached fused scans; one battery, no rescans.
  const auto battery = trend::option_battery_from_shares(
      study.aggregates2011().languages, study.aggregates2024().languages);
  std::string out = "Language usage share by wave (respondents may use "
                    "several languages)\n\n";
  std::vector<report::Bar> bars2011, bars2024;
  for (const auto& t : battery) {
    bars2011.push_back({t.indicator, t.share1.estimate});
    bars2024.push_back({t.indicator, t.share2.estimate});
  }
  out += "2011:\n" + report::render_bars(bars2011, 1.0);
  out += "\n2024:\n" + report::render_bars(bars2024, 1.0);

  out += "\nseries (CSV)\n";
  report::Series s2011{"share_2011", {}}, s2024{"share_2024", {}};
  report::Series lo2011{"lo_2011", {}}, hi2011{"hi_2011", {}};
  report::Series lo2024{"lo_2024", {}}, hi2024{"hi_2024", {}};
  for (std::size_t i = 0; i < battery.size(); ++i) {
    const double x = static_cast<double>(i);
    s2011.points.push_back({x, battery[i].share1.estimate});
    lo2011.points.push_back({x, battery[i].share1.lo});
    hi2011.points.push_back({x, battery[i].share1.hi});
    s2024.points.push_back({x, battery[i].share2.estimate});
    lo2024.points.push_back({x, battery[i].share2.lo});
    hi2024.points.push_back({x, battery[i].share2.hi});
  }
  out += report::render_series_csv("language_index",
                           {s2011, lo2011, hi2011, s2024, lo2024, hi2024});
  out += "\nlanguage_index order:";
  for (std::size_t i = 0; i < battery.size(); ++i)
    out += " " + std::to_string(i) + "=" + battery[i].indicator;
  out += "\n";
  return out;
}

std::string run_f2_parallelism_ladder(const Study& study) {
  std::string out =
      "Highest parallel capability routinely used, share of wave\n\n";
  const ParallelRung rungs[] = {ParallelRung::kSerialOnly,
                                ParallelRung::kMulticore,
                                ParallelRung::kCluster, ParallelRung::kGpu};
  report::TextTable t({"Rung", "2011 share [95% CI]", "2024 share [95% CI]",
                       "Δ (pp)", "p (Holm)", "Trend"});
  std::vector<trend::ShareTrend> trends;
  for (ParallelRung rung : rungs) {
    trends.push_back(trend::compare_predicate(
        study.wave2011(), study.wave2024(), rung_label(rung),
        [rung](const data::Table& table, std::size_t i)
            -> std::optional<bool> {
          const auto& res =
              table.multiselect(synth::col::kParallelResources);
          if (res.is_missing(i)) return std::nullopt;
          return parallel_rung(table, i) == rung;
        }));
  }
  trend::adjust_and_classify(trends);
  for (const auto& tr : trends) {
    t.add_row({tr.indicator,
               report::share_cell(tr.share1.estimate, tr.share1.lo,
                                  tr.share1.hi),
               report::share_cell(tr.share2.estimate, tr.share2.lo,
                                  tr.share2.hi),
               format_double(100.0 * (tr.share2.estimate - tr.share1.estimate),
                             1),
               report::p_cell(tr.p_adjusted),
               trend::direction_label(tr.direction)});
  }
  out += t.render();
  out += "\n2024 ladder:\n";
  std::vector<report::Bar> bars;
  for (std::size_t i = 0; i < trends.size(); ++i)
    bars.push_back({trends[i].indicator, trends[i].share2.estimate});
  out += report::render_bars(bars, 1.0);
  return out;
}

std::string run_f3_cores_cdf(const Study& study) {
  std::string out =
      "CDF of typical job width (cores), log2 x-axis points\n\n";
  const auto cdf_points = [&](const data::Table& wave) {
    const auto values =
        wave.numeric(synth::col::kCoresTypical).present_values();
    return stats::empirical_cdf(values);
  };
  const auto c2011 = cdf_points(study.wave2011());
  const auto c2024 = cdf_points(study.wave2024());
  // Evaluate both CDFs on the union grid of powers of two.
  const auto eval = [](const std::vector<stats::CdfPoint>& cdf, double x) {
    double y = 0.0;
    for (const auto& p : cdf) {
      if (p.value <= x) y = p.cumulative;
      else break;
    }
    return y;
  };
  report::Series s2011{"cdf_2011", {}}, s2024{"cdf_2024", {}};
  report::TextTable t({"Cores ≤", "2011", "2024"});
  for (double x = 1.0; x <= 4096.0; x *= 2.0) {
    s2011.points.push_back({x, eval(c2011, x)});
    s2024.points.push_back({x, eval(c2024, x)});
    t.add_row({format_double(x, 0), format_percent(eval(c2011, x), 0),
               format_percent(eval(c2024, x), 0)});
  }
  out += t.render();
  out += "\nseries (CSV)\n" + report::render_series_csv("cores", {s2011, s2024});
  return out;
}

std::string run_f4_time_programming(const Study& study) {
  std::string out = "Share of research time spent programming "
                    "(Likert 1 = <10% ... 5 = >75%)\n\n";
  report::TextTable t({"Wave", "n", "Mean", "Median", "1", "2", "3", "4", "5",
                       "Top-box (4-5)"});
  for (const auto* wave : {&study.wave2011(), &study.wave2024()}) {
    const auto s = survey::summarize_likert(
        *wave, synth::col::kTimeProgramming, 5);
    std::vector<std::string> row = {
        wave == &study.wave2011() ? "2011" : "2024",
        std::to_string(s.answered), format_double(s.mean, 2),
        format_double(s.median, 1)};
    for (double d : s.distribution) row.push_back(format_percent(d, 0));
    row.push_back(report::share_cell(s.top_box.estimate, s.top_box.lo,
                                     s.top_box.hi));
    t.add_row(std::move(row));
  }
  out += t.render();
  const auto mw = stats::mann_whitney_u(
      study.wave2011().numeric(synth::col::kTimeProgramming).present_values(),
      study.wave2024().numeric(synth::col::kTimeProgramming)
          .present_values());
  out += "\nMann-Whitney 2011 vs 2024: U=" + format_double(mw.u, 0) +
         ", z=" + format_double(mw.z, 2) + ", p=" + report::p_cell(mw.p_value) +
         ", P(2011 < 2024)=" + format_percent(1.0 - mw.effect_size) + "\n";
  return out;
}

std::string run_f5_scaling(const Study& study) {
  (void)study;  // hardware experiment; independent of the survey waves
  std::string out =
      "Strong scaling of the kernel suite: measured single-core run "
      "calibrates the analytic model; the discrete-event simulator "
      "cross-checks it (host has too few cores to measure wide scaling "
      "directly — see DESIGN.md substitutions)\n\n";
  const std::vector<std::size_t> cores = {1, 2, 4, 8, 16, 32, 64, 128, 256,
                                          512, 1024};
  auto suite = kernels::standard_suite();
  rcr::parallel::ThreadPool pool;

  for (auto& k : suite) {
    // Measure the real serial kernel; verify the parallel path agrees.
    Stopwatch sw;
    const double serial_checksum = k.run_serial();
    const double serial_seconds = std::max(1e-6, sw.elapsed_seconds());
    sw.reset();
    const double parallel_checksum = k.run_parallel(pool);
    const double parallel_seconds = std::max(1e-6, sw.elapsed_seconds());

    sim::MachineModel machine;
    machine.core_gflops = k.work_ops / serial_seconds / 1e9;  // calibrated
    sim::WorkloadModel work;
    work.work_ops = k.work_ops;
    work.serial_fraction = k.serial_fraction;
    work.bytes_per_flop = k.bytes_per_flop;

    out += "kernel " + k.name + ": serial " +
           format_double(serial_seconds * 1e3, 1) + " ms, host-parallel " +
           format_double(parallel_seconds * 1e3, 1) + " ms, checksum diff " +
           format_double(std::fabs(serial_checksum - parallel_checksum), 9) +
           "\n";
    report::TextTable t({"Cores", "Model speedup", "DES speedup",
                         "Amdahl ideal", "Efficiency"});
    const auto curve = sim::strong_scaling_curve(machine, work, cores);
    const double des_t1 = sim::simulate_fork_join(
        sim::make_task_durations(machine, work, 4, 0.2), 1,
        work.serial_fraction * work.work_ops / (machine.core_gflops * 1e9));
    for (const auto& pt : curve) {
      const auto tasks = sim::make_task_durations(machine, work,
                                                  4 * pt.cores, 0.2);
      const double des_t = sim::simulate_fork_join(
          tasks, pt.cores,
          work.serial_fraction * work.work_ops / (machine.core_gflops * 1e9),
          machine.barrier_latency_us * 1e-6 *
              std::log2(static_cast<double>(std::max<std::size_t>(
                  2, pt.cores))));
      t.add_row({std::to_string(pt.cores), format_double(pt.speedup, 1),
                 format_double(des_t1 / des_t, 1),
                 format_double(sim::amdahl_speedup(k.serial_fraction,
                                                   pt.cores), 1),
                 format_percent(pt.efficiency, 0)});
    }
    out += t.render() + "\n";
  }
  out += "Memory-bound spmv saturates at the bandwidth ceiling while "
         "compute-bound nbody/matmul track Amdahl — the shape the survey's "
         "\"why we stay serial\" discussion rests on.\n";
  return out;
}

std::string run_f6_queueing(const Study& study) {
  (void)study;
  std::string out =
      "Batch-queue wait vs offered load on a 512-core cluster "
      "(2000 jobs per point)\n\n";
  report::TextTable t({"Load", "Policy", "Utilization", "Mean wait (min)",
                       "P95 wait (min)", "Bounded slowdown"});
  report::Series fcfs{"fcfs_mean_wait_min", {}},
      easy{"easy_mean_wait_min", {}}, sjf{"sjf_mean_wait_min", {}};
  for (double load : {10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0}) {
    for (const auto policy : {sim::SchedulerPolicy::kFcfs,
                              sim::SchedulerPolicy::kEasyBackfill,
                              sim::SchedulerPolicy::kShortestFirst}) {
      sim::JobStreamConfig cfg;
      cfg.jobs = 2000;
      cfg.arrival_rate_per_hour = load;
      cfg.seed = 99;  // same trace for both policies
      auto jobs = sim::generate_job_stream(cfg);
      const auto m = sim::simulate_cluster(jobs, 512, policy);
      t.add_row({format_double(load, 0), sim::scheduler_label(policy),
                 format_percent(m.utilization, 0),
                 format_double(m.mean_wait / 60.0, 1),
                 format_double(m.p95_wait / 60.0, 1),
                 format_double(m.mean_bounded_slowdown, 1)});
      auto& series = policy == sim::SchedulerPolicy::kFcfs
                         ? fcfs
                         : (policy == sim::SchedulerPolicy::kEasyBackfill
                                ? easy
                                : sjf);
      series.points.push_back({load, m.mean_wait / 60.0});
    }
  }
  out += t.render();
  out += "\nseries (CSV)\n" +
         report::render_series_csv("arrivals_per_hour", {fcfs, easy, sjf});
  out += "\nBackfill defers the wait-time knee to higher utilization — the "
         "operational gap between 2011-era FCFS queues and 2024 "
         "backfilling schedulers.\n";
  return out;
}

std::string run_f7_weighting(const Study& study) {
  std::string out =
      "Methodology: raking-weight effect and CI-method agreement "
      "(2024 wave)\n\n";
  const auto& raking = study.weights2024();
  out += "raking: " + std::to_string(raking.iterations) + " iterations, " +
         (raking.converged ? "converged" : "NOT converged") +
         ", max residual " + format_double(raking.max_residual, 6) +
         ", design effect " + format_double(raking.design_effect, 3) +
         ", effective n " + format_double(raking.effective_n, 0) + "\n\n";

  report::TextTable t({"Indicator", "Unweighted", "Weighted",
                       "Wilson 95% CI", "Bootstrap 95% CI (percentile)"});
  const auto& langs = study.wave2024().multiselect(synth::col::kLanguages);
  for (const std::string lang : {"Python", "MATLAB", "C++", "Fortran"}) {
    const auto o = static_cast<std::size_t>(langs.find_option(lang));
    double unweighted_num = 0.0, unweighted_den = 0.0;
    double weighted_num = 0.0, weighted_den = 0.0;
    std::vector<double> binary;
    for (std::size_t i = 0; i < langs.size(); ++i) {
      if (langs.is_missing(i)) continue;
      const double hit = langs.has(i, o) ? 1.0 : 0.0;
      unweighted_num += hit;
      unweighted_den += 1.0;
      weighted_num += hit * raking.weights[i];
      weighted_den += raking.weights[i];
      binary.push_back(hit);
    }
    const auto wilson = stats::wilson_ci(unweighted_num, unweighted_den);
    stats::BootstrapOptions opts;
    opts.replicates = 1000;
    opts.seed = 17;
    // Deterministic under any pool: replicate streams are index-derived.
    opts.pool = study.config().pool;
    const auto boot = stats::bootstrap_proportion(binary, opts);
    t.add_row({lang, format_percent(unweighted_num / unweighted_den),
               format_percent(weighted_num / weighted_den),
               report::share_cell(wilson.estimate, wilson.lo, wilson.hi),
               report::share_cell(boot.estimate, boot.percentile_ci.lo,
                                  boot.percentile_ci.hi)});
  }
  out += t.render();
  out += "\nWilson and bootstrap intervals agree to within a fraction of a "
         "point at this n, and weighting moves shares by at most a couple "
         "of points — the analysis is robust to the sample skew.\n";
  return out;
}

std::string run_f8_dataset_size(const Study& study) {
  std::string out = "Typical dataset size distribution (log2 GB bins)\n\n";
  for (const auto* wave : {&study.wave2011(), &study.wave2024()}) {
    const bool is_2011 = wave == &study.wave2011();
    const auto values =
        wave->numeric(synth::col::kDatasetGb).present_values();
    stats::Log2Histogram h(-6, 14);  // ~15 MB .. 16 TB
    for (double v : values) h.add(v);
    out += std::string("Wave ") + (is_2011 ? "2011" : "2024") + " (n=" +
           std::to_string(values.size()) + ", median " +
           format_double(stats::median(values), 2) + " GB, p90 " +
           format_double(stats::quantile(values, 0.9), 1) + " GB)\n";
    std::vector<report::Bar> bars;
    for (std::size_t b = 0; b < h.bin_count(); ++b)
      bars.push_back({h.bin_label(b), h.fraction(b)});
    out += report::render_bars(bars) + "\n";
  }
  const auto mw = stats::mann_whitney_u(
      study.wave2011().numeric(synth::col::kDatasetGb).present_values(),
      study.wave2024().numeric(synth::col::kDatasetGb).present_values());
  out += "Mann-Whitney 2011 vs 2024: z=" + format_double(mw.z, 2) +
         ", p=" + report::p_cell(mw.p_value) + " — the median dataset grew "
         "by roughly two orders of magnitude.\n";
  return out;
}

std::string run_f9_nonresponse(const Study& study) {
  std::string out =
      "Methodology: nonresponse bias and how much demographic raking "
      "repairs\n\n"
      "Computationally active people answer a computing survey more "
      "readily. This experiment draws a deliberately biased 2024 sample "
      "(response propensity rising with the latent programming-intensity "
      "trait), compares naive estimates against the population truth, and "
      "shows that raking on field x career margins — all a real study can "
      "do — removes only the demographic part of the bias.\n\n";

  const std::uint64_t seed = study.config().seed ^ 0xF9F9F9ULL;
  // Population truth: a large unbiased draw.
  const auto truth = synth::generate_wave(
      {synth::Wave::k2024, 8000, seed, study.config().pool, 0.0});
  // Observed sample: same population, strong trait-driven nonresponse.
  synth::GeneratorConfig biased_cfg{synth::Wave::k2024,
                                    study.config().n_2024, seed,
                                    nullptr, 0.9};
  const auto observed = synth::generate_wave(biased_cfg);

  // Rake the observed sample to the true field/career margins.
  const auto& params = synth::params_for(synth::Wave::k2024);
  survey::MarginTarget field_target{synth::col::kField, {}};
  for (std::size_t f = 0; f < synth::fields().size(); ++f)
    field_target.shares[synth::fields()[f]] = params.field_mix[f];
  survey::MarginTarget career_target{synth::col::kCareerStage, {}};
  for (std::size_t c = 0; c < synth::career_stages().size(); ++c)
    career_target.shares[synth::career_stages()[c]] = params.career_mix[c];
  const auto raking =
      survey::rake_weights(observed, {field_target, career_target});

  struct Indicator {
    const char* column;
    const char* option;
  };
  const Indicator indicators[] = {
      {synth::col::kLanguages, "Python"},
      {synth::col::kLanguages, "C++"},
      {synth::col::kSePractices, "Version control"},
      {synth::col::kSePractices, "Continuous integration"},
      {synth::col::kParallelResources, "GPU"},
      {synth::col::kParallelResources, "Cluster"},
  };
  // One fused scan per table answers all 6 indicators: option shares for
  // the three multi-select columns on each table, plus the six weighted
  // shares on the observed one (weighted variants ride the same pass).
  const char* const share_columns[] = {synth::col::kLanguages,
                                       synth::col::kSePractices,
                                       synth::col::kParallelResources};
  query::QueryEngine truth_engine(truth), observed_engine(observed);
  std::vector<query::QueryId> truth_ids, observed_ids;
  for (const char* column : share_columns) {
    truth_ids.push_back(truth_engine.add_option_shares(column));
    observed_ids.push_back(observed_engine.add_option_shares(column));
  }
  std::vector<query::QueryId> raked_ids;
  for (const auto& ind : indicators)
    raked_ids.push_back(observed_engine.add_weighted_option_share(
        ind.column, ind.option, raking.weights));
  truth_engine.run(study.config().pool);
  observed_engine.run(study.config().pool);

  const auto find_share = [&](const query::QueryEngine& engine,
                              const std::vector<query::QueryId>& ids,
                              const Indicator& ind) {
    for (std::size_t c = 0; c < std::size(share_columns); ++c) {
      if (std::string(share_columns[c]) != ind.column) continue;
      for (const auto& s : engine.shares(ids[c]))
        if (s.label == ind.option) return s.share.estimate;
    }
    throw Error("indicator option missing");
  };

  report::TextTable t({"Indicator", "Truth", "Naive sample", "Raked",
                       "Naive bias (pp)", "Residual bias (pp)"});
  for (std::size_t i = 0; i < std::size(indicators); ++i) {
    const auto& ind = indicators[i];
    const double truth_share = find_share(truth_engine, truth_ids, ind);
    const double naive = find_share(observed_engine, observed_ids, ind);
    const double raked =
        observed_engine.weighted_share(raked_ids[i]).share.estimate;
    t.add_row({std::string(ind.option), format_percent(truth_share, 1),
               format_percent(naive, 1), format_percent(raked, 1),
               format_double(100.0 * (naive - truth_share), 1),
               format_double(100.0 * (raked - truth_share), 1)});
  }
  out += t.render();
  out += "\nraking design effect " +
         format_double(raking.design_effect, 3) + ", effective n " +
         format_double(raking.effective_n, 0) +
         ".\nTrait-correlated indicators (CI, GPU, C++) keep residual bias "
         "after raking: weighting on demographics cannot fix selection on "
         "an unobserved trait. The study's own estimates carry the same "
         "caveat.\n";
  return out;
}

std::string run_f10_panel_transitions(const Study& study) {
  std::string out =
      "Longitudinal panel: the 2011 cohort re-surveyed in 2024 (rows "
      "paired by person). Transitions per indicator with McNemar tests "
      "on the discordant pairs.\n\n";
  // The panel is the 2011 cohort, so it has the 2011 wave's size.
  const auto panel =
      synth::generate_panel(study.config().n_2011,
                            study.config().seed ^ 0xBA5EBA11ULL);

  struct Target {
    const char* column;
    const char* option;
  };
  const Target targets[] = {
      {synth::col::kLanguages, "Python"},
      {synth::col::kLanguages, "MATLAB"},
      {synth::col::kLanguages, "Fortran"},
      {synth::col::kSePractices, "Version control"},
      {synth::col::kParallelResources, "GPU"},
      {synth::col::kParallelResources, "Cluster"},
  };
  report::TextTable t({"Indicator", "2011", "2024", "Kept", "Adopted",
                       "Abandoned", "Never", "McNemar p"});
  for (const auto& target : targets) {
    const auto tr = trend::option_transitions(panel.wave2011, panel.wave2024,
                                              target.column, target.option);
    t.add_row({std::string(target.option),
               format_percent(tr.share_before(), 0),
               format_percent(tr.share_after(), 0),
               format_double(tr.kept, 0), format_double(tr.adopted, 0),
               format_double(tr.abandoned, 0), format_double(tr.never, 0),
               report::p_cell(tr.mcnemar.p_value)});
  }
  out += t.render();
  out += "\nAdoption dominates abandonment for Python/VCS/GPU (one-way "
         "ratchets); MATLAB is the one indicator where abandonment "
         "competes — the attrition channel behind its falling share.\n";

  // Career progression sanity panel.
  const auto ct = data::crosstab(panel.wave2011, synth::col::kCareerStage,
                                 synth::col::kCareerStage);
  (void)ct;
  double still_grad = 0.0;
  const auto& c11 = panel.wave2011.categorical(synth::col::kCareerStage);
  const auto& c24 = panel.wave2024.categorical(synth::col::kCareerStage);
  for (std::size_t i = 0; i < c11.size(); ++i) {
    if (!c11.is_missing(i) && !c24.is_missing(i) &&
        c11.label_at(i) == "Grad student" && c24.label_at(i) == "Grad student")
      still_grad += 1.0;
  }
  out += "panel consistency: " + format_double(still_grad, 0) +
         " respondents remained grad students across 13 years (expected 0)\n";
  return out;
}

std::string run_l1_multiwave_trends(const Study& study) {
  const std::size_t waves = study.wave_count();
  std::string out = "Piecewise longitudinal trends across " +
                    std::to_string(waves) +
                    " waves. Per indicator: one overall chi-square "
                    "(did the share move at all) plus adjacent-wave "
                    "z-tests; every p of the battery is Holm-adjusted "
                    "as ONE family per indicator group.\n";
  std::vector<double> years;
  for (std::size_t w = 0; w < waves; ++w) years.push_back(study.wave_year(w));

  struct Family {
    const char* name;
    const std::vector<data::OptionShare>& (*pick)(const WaveAggregates&);
  };
  const Family families[] = {
      {"Languages",
       [](const WaveAggregates& a) -> const std::vector<data::OptionShare>& {
         return a.languages;
       }},
      {"SE practices",
       [](const WaveAggregates& a) -> const std::vector<data::OptionShare>& {
         return a.se_practices;
       }},
      {"Parallel resources",
       [](const WaveAggregates& a) -> const std::vector<data::OptionShare>& {
         return a.parallel_resources;
       }},
  };
  for (const auto& family : families) {
    std::vector<std::vector<data::OptionShare>> shares;
    for (std::size_t w = 0; w < waves; ++w)
      shares.push_back(family.pick(study.aggregates(w)));
    const auto battery = trend::multi_wave_option_battery(years, shares);

    std::vector<std::string> header{"Indicator"};
    for (double y : years) header.push_back(format_double(y, 0));
    header.insert(header.end(), {"Overall p(adj)", "Direction", "Segments"});
    report::TextTable t(header);
    for (const auto& tr : battery) {
      std::vector<std::string> row{tr.indicator};
      for (std::size_t w = 0; w < waves; ++w)
        row.push_back(format_percent(tr.share(w), 1));
      row.push_back(report::p_cell(tr.overall_p_adjusted));
      row.push_back(trend::direction_label(tr.direction));
      // Compact per-segment view: sign of the move when its adjusted p
      // clears 0.05, '.' otherwise.
      std::string segs;
      for (std::size_t s = 0; s < tr.segments.size(); ++s) {
        if (tr.segment_p_adjusted[s] < 0.05)
          segs += tr.segments[s].diff > 0 ? '+' : '-';
        else
          segs += '.';
      }
      row.push_back(segs);
      t.add_row(row);
    }
    out += "\n" + std::string(family.name) + "\n" + t.render();
  }
  out += "\nSegment key: one glyph per adjacent-wave pair, '+'/'-' = "
         "Holm-significant rise/fall over that segment, '.' = no "
         "adjusted evidence of movement within the segment.\n";
  return out;
}

void register_all_experiments(report::ExperimentRegistry& registry,
                              const Study& study) {
  const auto add = [&](const char* id, const char* kind, const char* title,
                       std::string (*fn)(const Study&)) {
    registry.add({id, kind, title, [fn, &study] { return fn(study); }});
  };
  add("T1", "table", "Respondent demographics by field and career stage",
      run_t1_demographics);
  add("T2", "table", "Programming-language usage by field",
      run_t2_languages_by_field);
  add("T3", "table", "Parallel programming models among parallel users",
      run_t3_parallel_models);
  add("T4", "table", "Software-engineering practice adoption",
      run_t4_se_practices);
  add("T5", "table", "Tool awareness vs usage gap", run_t5_tool_gap);
  add("T6", "table", "Significance battery for all 2011→2024 shifts",
      run_t6_significance);
  add("T7", "table", "GPU adoption by field with logistic curves",
      run_t7_gpu_adoption);
  add("T8", "table", "Per-field drill-down of the headline shifts",
      run_t8_field_drilldown);
  add("F1", "figure", "Language share trend with 95% CIs",
      run_f1_language_trend);
  add("F2", "figure", "Parallelism capability ladder by wave",
      run_f2_parallelism_ladder);
  add("F3", "figure", "CDF of typical job width (cores)", run_f3_cores_cdf);
  add("F4", "figure", "Research time spent programming",
      run_f4_time_programming);
  add("F5", "figure", "Kernel-suite strong scaling: model vs DES",
      run_f5_scaling);
  add("F6", "figure", "Batch-queue wait vs offered load", run_f6_queueing);
  add("F7", "figure", "Weighting and CI methodology checks", run_f7_weighting);
  add("F8", "figure", "Dataset-size distribution shift", run_f8_dataset_size);
  add("F9", "figure", "Nonresponse bias vs raking repair", run_f9_nonresponse);
  add("F10", "figure", "Panel transitions with McNemar tests",
      run_f10_panel_transitions);
  // Longitudinal series: only meaningful (and only registered) when the
  // study actually has intermediate waves; two-wave studies keep the
  // classic 18-experiment registry byte-for-byte.
  if (study.wave_count() >= 3)
    add("L1", "table", "Piecewise N-wave trend batteries per indicator",
        run_l1_multiwave_trends);
}

}  // namespace rcr::core
