// Continuously-ingesting study mode: the full WaveAggregates (the T1-T6
// table inputs) kept live while respondents stream in, refreshed in
// O(block rows) per arriving block by an incr::IncrementalEngine instead
// of a cold per-cut rescan.
//
// Blocks come from synth::generate_blocks (synthetic populations at any
// scale) or from data::for_each_snapshot_block (page-granular reads of an
// on-disk snapshot — peak memory is one block, never the whole table), or
// from caller-supplied tables via ingest(). At every block boundary the
// aggregates are a consistent cut: bitwise-equal to Study's cold fused
// engine scan over all rows ingested so far, for any pool size including
// none (the incremental engine's contract, pinned by
// tests/determinism_test.cpp).
//
// Peak memory is O(block_rows) table rows plus the engine's partial cells
// — a streaming-scale population is analyzed without ever being resident.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/study.hpp"
#include "incr/engine.hpp"
#include "synth/generator.hpp"

namespace rcr::parallel {
class ThreadPool;
}

namespace rcr::core {

struct IncrStudyConfig {
  synth::Wave wave = synth::Wave::k2024;
  std::size_t respondents = 100000;
  std::uint64_t seed = 7;
  // When non-empty, rows stream from this rcr::data snapshot in
  // page-granular blocks (data::for_each_snapshot_block) instead of being
  // synthesized; wave/respondents/seed/nonresponse and block_rows are
  // ignored (the writer's page_rows fixes the block grain).
  std::string snapshot_path;
  // Rows per generated block (the cut grain for synthetic streams).
  std::size_t block_rows = 8192;
  rcr::parallel::ThreadPool* pool = nullptr;
  // Nonresponse bias in [0, 1); forwarded to the generator.
  double nonresponse_strength = 0.0;
};

// The live study: Study's eleven standard aggregates advancing block by
// block. Construction registers the queries; each ingested block costs
// O(block rows); aggregates() rebuilds lazily from the partials (O(cells),
// no row work).
class IncrStudy {
 public:
  // `cut` is valid only during the callback; `rows` counts all rows
  // ingested so far (the cut covers exactly those rows).
  using CutCallback =
      std::function<void(const WaveAggregates& cut, std::size_t rows)>;

  explicit IncrStudy(IncrStudyConfig config = {});

  // Drives the configured stream (snapshot when snapshot_path is set,
  // synthetic otherwise) to completion, invoking `on_cut` (if given) after
  // every block. Returns total rows ingested. Call at most once; ingest()
  // may continue feeding afterwards.
  std::size_t run(const CutCallback& on_cut = {});

  // Manual feed: folds one block (instrument schema) into the aggregates.
  void ingest(const data::Table& block);

  // The aggregates at the current cut — bitwise-equal to a cold fused
  // QueryEngine scan (Study's fused_aggregates) over every ingested row.
  const WaveAggregates& aggregates();

  std::size_t rows() const;
  std::size_t blocks() const { return blocks_; }
  incr::IncrementalEngine& engine() { return *engine_; }

 private:
  IncrStudyConfig config_;
  std::unique_ptr<incr::IncrementalEngine> engine_;
  // Registration ids, in fused_aggregates order.
  query::QueryId ct_career_, ct_langs_, ct_se_;
  query::QueryId sh_langs_, sh_se_, sh_res_, sh_aware_, sh_used_, sh_gpu_;
  query::QueryId ans_langs_, ans_se_;
  WaveAggregates current_;
  std::size_t blocks_ = 0;
  std::size_t built_at_rows_ = 0;
  bool built_ = false;
};

}  // namespace rcr::core
