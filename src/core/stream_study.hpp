// Streaming study mode: the T2/T4-style analyses computed sketch-side over
// a synthetic population that is never resident in memory.
//
// The population [0, n) is split by parallel::chunk_layout(0, n, block_rows)
// — a pure function of (n, block_rows), independent of pool size — and each
// chunk is generated with synth::generate_range, ingested into its own
// stream::TableSketch shard, and merged in chunk-index order. The serial
// (pool == nullptr) path walks the *same* layout and merge order, so the
// final sketch is bitwise identical for any thread count, including none.
// Peak memory is O(block_rows * threads) table rows plus the sketch state.
#pragma once

#include <cstdint>
#include <string>

#include "stream/table_sketch.hpp"
#include "synth/generator.hpp"

namespace rcr::parallel {
class ThreadPool;
}

namespace rcr::core {

struct StreamStudyConfig {
  synth::Wave wave = synth::Wave::k2024;
  std::size_t respondents = 100000;
  std::uint64_t seed = 7;
  // When non-empty, rows are streamed from this CSV file (instrument
  // schema, read in `block_rows` blocks with O(block_rows) memory) instead
  // of being synthesized; wave/respondents/seed/nonresponse are ignored.
  std::string csv_path;
  // When non-empty, rows come from an rcr::data snapshot (data/snapshot.hpp)
  // memory-mapped and sliced into `block_rows` blocks, mirroring the CSV
  // block structure exactly — the sketch sees the same rows at the same
  // first_row offsets, so the report is identical to the CSV-backed run of
  // the same table. Takes precedence over csv_path.
  std::string snapshot_path;
  // Rows generated and ingested per shard; also the chunk grain, so it —
  // not the pool — fixes the shard partition.
  std::size_t block_rows = 8192;
  rcr::parallel::ThreadPool* pool = nullptr;
  // Nonresponse bias > 0 forces the generator's sequential rejection walk:
  // still deterministic, but single-shard (no parallel speedup).
  double nonresponse_strength = 0.0;
  stream::TableSketchOptions sketch = default_stream_options();

  // The analyses run sketch-side by default: the T2 crosstab
  // (field x languages), the T4 crosstab (field x se_practices), a
  // distinct-respondent HLL over all columns, and a reservoir sample of
  // dataset sizes.
  static stream::TableSketchOptions default_stream_options();
};

// Streams the configured population through a TableSketch and returns it.
stream::TableSketch run_stream_study(const StreamStudyConfig& config);

// Renders the T2/T4-style report purely from sketch state: language and
// VCS adoption by field, SE-practice shares with Wilson intervals, numeric
// summaries (mean/sd + GK quantiles), distinct count, heavy hitters, and
// the reservoir sample.
std::string render_stream_report(const stream::TableSketch& sketch);

}  // namespace rcr::core
