#include "core/stream_study.hpp"

#include <cmath>
#include <cstdio>
#include <memory>

#include "data/csv.hpp"
#include "data/snapshot.hpp"
#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"
#include "report/table.hpp"
#include "stats/ci.hpp"
#include "synth/domain.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace rcr::core {

stream::TableSketchOptions StreamStudyConfig::default_stream_options() {
  stream::TableSketchOptions opts;
  opts.crosstabs = {{synth::col::kField, synth::col::kLanguages},
                    {synth::col::kField, synth::col::kSePractices}};
  opts.reservoir_column = synth::col::kDatasetGb;
  return opts;
}

stream::TableSketch run_stream_study(const StreamStudyConfig& config) {
  synth::GeneratorConfig gen;
  gen.wave = config.wave;
  gen.respondents = config.respondents;
  gen.seed = config.seed;
  gen.nonresponse_strength = config.nonresponse_strength;
  gen.pool = nullptr;  // parallelism lives at the shard level, not inside it

  const data::Table schema = synth::instrument().make_table();

  if (!config.snapshot_path.empty()) {
    // Snapshot-backed wave: the table is memory-mapped (zero-copy columns)
    // and sliced into the same block structure the CSV reader would
    // deliver, so the sketch — and therefore the report — is identical to
    // a CSV-backed run over the same rows.
    stream::TableSketch sketch(schema, config.sketch);
    const data::Table table = data::read_snapshot(config.snapshot_path);
    const std::size_t block = std::max<std::size_t>(1, config.block_rows);
    const std::size_t n = table.row_count();
    for (std::size_t lo = 0; lo < n; lo += block)
      sketch.ingest(table.slice(lo, std::min(lo + block, n)), lo);
    sketch.publish_metrics();
    return sketch;
  }

  if (!config.csv_path.empty()) {
    // File-backed wave: the streaming block reader delivers rows in file
    // order with O(block_rows) memory, so a wave export larger than RAM
    // flows through the same sketch pipeline as the generated population.
    stream::TableSketch sketch(schema, config.sketch);
    const std::size_t block = std::max<std::size_t>(1, config.block_rows);
    data::for_each_csv_block_file(
        config.csv_path, schema, block,
        [&](const data::Table& blk, std::size_t first_row) {
          sketch.ingest(blk, first_row);
        });
    sketch.publish_metrics();
    return sketch;
  }

  if (config.nonresponse_strength > 0.0) {
    // Rejection-sampled sequence: inherently serial, one sketch, in-order
    // blocks. Deterministic for a fixed config regardless of pool.
    stream::TableSketch sketch(schema, config.sketch);
    synth::generate_blocks(
        gen, config.block_rows,
        [&](data::Table block, std::size_t first_row) {
          sketch.ingest(block, first_row);
        });
    sketch.publish_metrics();
    return sketch;
  }

  // Unbiased sequence: shard on the pure-function chunk layout and merge
  // shard sketches in index order. The pooled and serial paths build the
  // exact same shards and merge them in the exact same order, so the result
  // is bitwise identical for any thread count.
  const std::size_t block =
      std::max<std::size_t>(1, std::min(config.block_rows, config.respondents));
  auto build_shard = [&](std::size_t lo, std::size_t hi) {
    auto shard = std::make_unique<stream::TableSketch>(schema, config.sketch);
    shard->ingest(synth::generate_range(gen, lo, hi - lo), lo);
    return shard;
  };
  auto combine = [](std::unique_ptr<stream::TableSketch> acc,
                    std::unique_ptr<stream::TableSketch> next) {
    if (!acc) return next;
    acc->merge(*next);
    return acc;
  };

  std::unique_ptr<stream::TableSketch> result;
  if (config.pool != nullptr) {
    parallel::ForOptions opts;
    opts.grain = block;
    result = parallel::parallel_reduce<std::unique_ptr<stream::TableSketch>>(
        *config.pool, 0, config.respondents, nullptr, build_shard, combine,
        opts);
  } else {
    const auto layout =
        parallel::chunk_layout(0, config.respondents, block);
    for (std::size_t k = 0; k < layout.chunks; ++k) {
      const auto [lo, hi] = layout.bounds(k);
      result = combine(std::move(result), build_shard(lo, hi));
    }
  }
  RCR_CHECK_MSG(result != nullptr, "stream study produced no shards");
  result->publish_metrics();
  return std::move(*result);
}

std::string render_stream_report(const stream::TableSketch& sketch) {
  std::string out;
  out += "Streaming study: " + std::to_string(sketch.rows()) + " respondents in " +
         std::to_string(sketch.blocks()) + " blocks, sketch state ~" +
         format_double(static_cast<double>(sketch.approx_bytes()) / 1024.0, 1) +
         " KiB\n";
  out += "distinct respondents (HLL): " +
         format_double(sketch.distinct().estimate(), 0) + "\n";

  // T2-style: language adoption by field, row-conditional shares.
  {
    const auto& xtab =
        sketch.crosstab(synth::col::kField, synth::col::kLanguages);
    const auto labeled = xtab.to_labeled();
    out += "\nLanguage use by field (share of field, streaming T2)\n";
    std::vector<std::string> headers = {"Field"};
    for (const auto& l : labeled.col_labels) headers.push_back(l);
    report::TextTable t(std::move(headers));
    for (std::size_t f = 0; f < labeled.row_labels.size(); ++f) {
      const double denom = sketch.category_counts(synth::col::kField)[f];
      std::vector<std::string> row = {labeled.row_labels[f]};
      for (std::size_t c = 0; c < labeled.col_labels.size(); ++c) {
        row.push_back(denom > 0.0
                          ? format_percent(labeled.counts.at(f, c) / denom, 0)
                          : "-");
      }
      t.add_row(std::move(row));
    }
    out += t.render();
  }

  // T4-style: SE-practice adoption shares with Wilson intervals.
  {
    const auto& counts = sketch.option_counts(synth::col::kSePractices);
    const double total = sketch.answered(synth::col::kSePractices);
    const auto& options =
        sketch.schema().multiselect(synth::col::kSePractices).options();
    out += "\nSoftware-engineering practice adoption (streaming T4)\n";
    report::TextTable t({"Practice", "Share [95% CI]", "n"});
    for (std::size_t o = 0; o < options.size(); ++o) {
      const auto ci = stats::wilson_ci(counts[o], total);
      t.add_row({options[o], report::share_cell(ci.estimate, ci.lo, ci.hi),
                 format_double(counts[o], 0)});
    }
    out += t.render();
  }

  // Numeric summaries straight from the sketches.
  {
    out += "\nNumeric columns (Welford moments + GK quantiles)\n";
    report::TextTable t(
        {"Column", "n", "mean", "sd", "p50", "p90", "p99", "max"});
    for (const char* name :
         {synth::col::kYearsProgramming, synth::col::kCoresTypical,
          synth::col::kDatasetGb}) {
      const auto& m = sketch.moments(name);
      const auto& q = sketch.quantile_sketch(name);
      t.add_row({name, std::to_string(m.count()), format_double(m.mean(), 2),
                 format_double(m.stddev(), 2), format_double(q.quantile(0.5), 1),
                 format_double(q.quantile(0.9), 1),
                 format_double(q.quantile(0.99), 1),
                 format_double(m.max(), 1)});
    }
    out += t.render();
  }

  // Heavy hitters across every (column, label) cell.
  {
    out += "\nHeaviest answer cells (SpaceSaving" +
           std::string(sketch.heavy_hitters().exact() ? ", exact" : "") + ")\n";
    report::TextTable t({"Answer cell", "count", "max err"});
    for (const auto& e : sketch.heavy_hitters().top(10)) {
      std::string cell = e.key;
      // The CMS/SpaceSaving key joins column and label with \x1F; render
      // it readably.
      if (const auto sep = cell.find('\x1F'); sep != std::string::npos) {
        cell.replace(sep, 1, " / ");
      }
      t.add_row({cell, format_double(e.count, 0), format_double(e.error, 0)});
    }
    out += t.render();
  }

  // Reservoir sample of dataset sizes.
  if (!sketch.options().reservoir_column.empty()) {
    const auto& res = sketch.reservoir();
    double mean = 0.0;
    for (const auto& item : res.items()) mean += item.value;
    if (!res.items().empty()) mean /= static_cast<double>(res.items().size());
    out += "\nReservoir sample (" + sketch.options().reservoir_column +
           "): " + std::to_string(res.items().size()) + " of " +
           std::to_string(res.offered()) +
           " offered, sample mean = " + format_double(mean, 2) + "\n";
  }
  return out;
}

}  // namespace rcr::core
