#include "core/incr_study.hpp"

#include <utility>

#include "data/snapshot.hpp"
#include "synth/domain.hpp"
#include "util/error.hpp"

namespace rcr::core {

IncrStudy::IncrStudy(IncrStudyConfig config)
    : config_(std::move(config)),
      engine_(std::make_unique<incr::IncrementalEngine>(
          synth::instrument().make_table())) {
  // The same eleven registrations, in the same order, as Study's fused
  // cold scan (study.cpp fused_aggregates) — the order fixes the cell
  // layout, and matching it keeps every per-cut double bit-comparable.
  ct_career_ =
      engine_->add_crosstab(synth::col::kField, synth::col::kCareerStage);
  ct_langs_ = engine_->add_crosstab_multiselect(synth::col::kField,
                                                synth::col::kLanguages);
  ct_se_ = engine_->add_crosstab_multiselect(synth::col::kField,
                                             synth::col::kSePractices);
  sh_langs_ = engine_->add_option_shares(synth::col::kLanguages);
  sh_se_ = engine_->add_option_shares(synth::col::kSePractices);
  sh_res_ = engine_->add_option_shares(synth::col::kParallelResources);
  sh_aware_ = engine_->add_option_shares(synth::col::kToolsAware);
  sh_used_ = engine_->add_option_shares(synth::col::kToolsUsed);
  sh_gpu_ = engine_->add_category_shares(synth::col::kGpuUsage);
  ans_langs_ =
      engine_->add_group_answered(synth::col::kField, synth::col::kLanguages);
  ans_se_ =
      engine_->add_group_answered(synth::col::kField, synth::col::kSePractices);
}

std::size_t IncrStudy::run(const CutCallback& on_cut) {
  if (!config_.snapshot_path.empty()) {
    data::for_each_snapshot_block(
        config_.snapshot_path,
        [&](const data::Table& block, std::size_t /*first_row*/) {
          ingest(block);
          if (on_cut) on_cut(aggregates(), rows());
        });
  } else {
    synth::generate_blocks(
        {config_.wave, config_.respondents, config_.seed, config_.pool,
         config_.nonresponse_strength},
        config_.block_rows,
        [&](data::Table block, std::size_t /*first_row*/) {
          ingest(block);
          if (on_cut) on_cut(aggregates(), rows());
        });
  }
  return rows();
}

void IncrStudy::ingest(const data::Table& block) {
  engine_->append_block(block, config_.pool);
  ++blocks_;
}

const WaveAggregates& IncrStudy::aggregates() {
  if (!built_ || built_at_rows_ != engine_->row_count()) {
    current_.field_by_career = engine_->result(ct_career_).crosstab;
    current_.field_by_languages = engine_->result(ct_langs_).crosstab;
    current_.field_by_se = engine_->result(ct_se_).crosstab;
    current_.languages = engine_->result(sh_langs_).shares;
    current_.se_practices = engine_->result(sh_se_).shares;
    current_.parallel_resources = engine_->result(sh_res_).shares;
    current_.tools_aware = engine_->result(sh_aware_).shares;
    current_.tools_used = engine_->result(sh_used_).shares;
    current_.gpu_usage = engine_->result(sh_gpu_).shares;
    current_.field_answered_languages = engine_->result(ans_langs_).group_counts;
    current_.field_answered_se = engine_->result(ans_se_).group_counts;
    built_ = true;
    built_at_rows_ = engine_->row_count();
  }
  return current_;
}

std::size_t IncrStudy::rows() const { return engine_->row_count(); }

}  // namespace rcr::core
