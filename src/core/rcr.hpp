// Umbrella header: the public API of the RCR toolkit.
//
// Quickstart:
//   #include "core/rcr.hpp"
//   rcr::core::Study study;                       // both synthetic waves
//   rcr::report::ExperimentRegistry registry;
//   rcr::core::register_all_experiments(registry, study);
//   std::cout << registry.run("F1");              // any table/figure id
//
// Layering (each header is usable on its own):
//   util     — RNG, errors, strings, CLI, stopwatch
//   obs      — metrics registry (counters/gauges/histograms/meters),
//              scoped timers, JSON/table snapshots
//   stats    — descriptive, tests, CIs, histograms, regression, bootstrap
//   parallel — thread pool + parallel_for/reduce
//   data     — columnar tables, CSV, crosstabs
//   query    — fused aggregation engine (one sharded scan per query batch)
//   stream   — mergeable one-pass sketches (moments, quantiles, heavy
//              hitters, distinct counts, reservoir, streaming crosstabs)
//   incr     — incremental delta-merge engine (O(delta) query updates,
//              bitwise-equal to a cold recompute at every cut)
//   serve    — long-lived analytics server (result cache, request
//              coalescing/batching, SLO admission, local + TCP transports)
//   survey   — questionnaire schema, validation, raking, Likert
//   synth    — calibrated synthetic respondent generator
//   trend    — two-wave share trends, adoption curves
//   kernels  — runnable computational-science mini-apps
//   sim      — scaling models and the batch-cluster simulator
//   report   — tables, series, experiment registry
#pragma once

#include "core/experiments.hpp"
#include "core/incr_study.hpp"
#include "core/stream_study.hpp"
#include "core/study.hpp"
#include "incr/engine.hpp"
#include "data/crosstab.hpp"
#include "data/csv.hpp"
#include "data/recode.hpp"
#include "data/summary.hpp"
#include "data/table.hpp"
#include "kernels/suite.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"
#include "query/engine.hpp"
#include "report/experiment.hpp"
#include "report/series.hpp"
#include "report/table.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "sim/cluster.hpp"
#include "sim/network.hpp"
#include "sim/scaling.hpp"
#include "stats/bootstrap.hpp"
#include "stats/ci.hpp"
#include "stats/contingency.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "stats/nonparametric.hpp"
#include "stats/permutation.hpp"
#include "stats/power.hpp"
#include "stats/regression.hpp"
#include "stream/crosstab_stream.hpp"
#include "stream/sketch.hpp"
#include "stream/table_sketch.hpp"
#include "survey/allocate.hpp"
#include "survey/impute.hpp"
#include "survey/likert.hpp"
#include "survey/schema.hpp"
#include "survey/weighting.hpp"
#include "synth/generator.hpp"
#include "trend/trend.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
