// Study: the end-to-end object of the reproduction — both survey waves plus
// the machinery to analyze them. Examples, benches, and integration tests
// all start here.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/crosstab.hpp"
#include "data/table.hpp"
#include "parallel/thread_pool.hpp"
#include "survey/weighting.hpp"
#include "synth/generator.hpp"

namespace rcr::core {

struct StudyConfig {
  std::size_t n_2011 = 120;   // 2011 field study reached ~10^2 researchers
  std::size_t n_2024 = 650;   // the revisit reaches a larger population
  std::uint64_t seed = 7;
  rcr::parallel::ThreadPool* pool = nullptr;
  // When non-empty, the wave is loaded from an rcr::data snapshot
  // (data/snapshot.hpp, memory-mapped zero-copy) instead of being
  // synthesized; n/seed are ignored for that wave. A snapshot written from
  // a generated wave reloads it bitwise, so every downstream aggregate is
  // byte-identical to the synthesized run.
  std::string snapshot_2011;
  std::string snapshot_2024;
};

// Every standard aggregate of one wave that the reproduced tables/figures
// consume, produced by a single fused query::QueryEngine scan of that wave
// (DESIGN.md "query"): the experiments read from here instead of issuing
// one full-table scan per crosstab/share. Numbers are bitwise identical to
// the direct data:: calls they replace.
struct WaveAggregates {
  data::LabeledCrosstab field_by_career;           // T1
  data::LabeledCrosstab field_by_languages;        // T2
  data::LabeledCrosstab field_by_se;               // T4
  std::vector<data::OptionShare> languages;        // T2, T6, F1
  std::vector<data::OptionShare> se_practices;     // T4, T6
  std::vector<data::OptionShare> parallel_resources;  // T6
  std::vector<data::OptionShare> tools_aware;      // T5
  std::vector<data::OptionShare> tools_used;       // T5
  std::vector<data::OptionShare> gpu_usage;        // T6 (category shares)
  // Per-field counts of rows answering the multi-select — the row
  // denominators T2/T4 previously rebuilt with group_rows() walks.
  std::vector<double> field_answered_languages;
  std::vector<double> field_answered_se;
};

class Study {
 public:
  explicit Study(const StudyConfig& config = {});

  const StudyConfig& config() const { return config_; }
  const data::Table& wave2011() const { return wave2011_; }
  const data::Table& wave2024() const { return wave2024_; }

  // Raking weights for the 2024 wave against the calibrated population
  // field/career mix (computed on first use).
  const survey::RakingResult& weights2024() const;

  // Fused per-wave aggregates, computed on first use by one engine scan on
  // the configured pool (results are pool-size invariant).
  const WaveAggregates& aggregates2011() const;
  const WaveAggregates& aggregates2024() const;
  // The cache for whichever of the two waves `wave` is (by identity).
  const WaveAggregates& aggregates_for(const data::Table& wave) const;

 private:
  StudyConfig config_;
  data::Table wave2011_;
  data::Table wave2024_;
  mutable std::unique_ptr<survey::RakingResult> weights2024_;
  mutable std::unique_ptr<WaveAggregates> aggregates2011_;
  mutable std::unique_ptr<WaveAggregates> aggregates2024_;
};

// --- Derived indicators shared by several experiments ----------------------

// Parallelism ladder rungs, ordered by capability.
enum class ParallelRung { kSerialOnly, kMulticore, kCluster, kGpu };
const char* rung_label(ParallelRung r);

// Highest rung a respondent reaches, from the parallel_resources answer.
// GPU outranks cluster (the 2024-defining capability); cloud counts as
// cluster-class capacity.
ParallelRung parallel_rung(const data::Table& table, std::size_t row);

// True if the respondent uses any parallel resource.
bool is_parallel_user(const data::Table& table, std::size_t row);

}  // namespace rcr::core
