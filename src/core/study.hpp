// Study: the end-to-end object of the reproduction — both survey waves plus
// the machinery to analyze them. Examples, benches, and integration tests
// all start here.
#pragma once

#include <cstdint>
#include <memory>

#include "data/table.hpp"
#include "parallel/thread_pool.hpp"
#include "survey/weighting.hpp"
#include "synth/generator.hpp"

namespace rcr::core {

struct StudyConfig {
  std::size_t n_2011 = 120;   // 2011 field study reached ~10^2 researchers
  std::size_t n_2024 = 650;   // the revisit reaches a larger population
  std::uint64_t seed = 7;
  rcr::parallel::ThreadPool* pool = nullptr;
};

class Study {
 public:
  explicit Study(const StudyConfig& config = {});

  const StudyConfig& config() const { return config_; }
  const data::Table& wave2011() const { return wave2011_; }
  const data::Table& wave2024() const { return wave2024_; }

  // Raking weights for the 2024 wave against the calibrated population
  // field/career mix (computed on first use).
  const survey::RakingResult& weights2024() const;

 private:
  StudyConfig config_;
  data::Table wave2011_;
  data::Table wave2024_;
  mutable std::unique_ptr<survey::RakingResult> weights2024_;
};

// --- Derived indicators shared by several experiments ----------------------

// Parallelism ladder rungs, ordered by capability.
enum class ParallelRung { kSerialOnly, kMulticore, kCluster, kGpu };
const char* rung_label(ParallelRung r);

// Highest rung a respondent reaches, from the parallel_resources answer.
// GPU outranks cluster (the 2024-defining capability); cloud counts as
// cluster-class capacity.
ParallelRung parallel_rung(const data::Table& table, std::size_t row);

// True if the respondent uses any parallel resource.
bool is_parallel_user(const data::Table& table, std::size_t row);

}  // namespace rcr::core
