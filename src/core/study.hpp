// Study: the end-to-end object of the reproduction — every survey wave plus
// the machinery to analyze them. Examples, benches, and integration tests
// all start here.
//
// A study holds N >= 2 time-ordered waves described by WaveSpec entries
// (calendar year, size or snapshot path, per-wave raking). The historical
// two-wave 2011→2024 shape is the default configuration, and the legacy
// wave2011()/wave2024()/aggregates2011()/... accessors survive as thin
// shims over wave indices 0 and 1 — their outputs are byte-identical to
// the pre-N-wave code (same generator streams, same seeds, same fused
// aggregate scans).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/crosstab.hpp"
#include "data/table.hpp"
#include "parallel/thread_pool.hpp"
#include "survey/weighting.hpp"
#include "synth/generator.hpp"

namespace rcr::core {

// One wave of a longitudinal study.
struct WaveSpec {
  double year = 2024.0;   // calendar year; waves must be strictly ordered
  std::size_t n = 0;      // respondents to synthesize (ignored with snapshot)
  // When non-empty, the wave is loaded from an rcr::data snapshot
  // (data/snapshot.hpp, memory-mapped zero-copy) instead of being
  // synthesized; n and the seed are ignored for that wave. A snapshot
  // written from a generated wave reloads it bitwise, so every downstream
  // aggregate is byte-identical to the synthesized run.
  std::string snapshot;
  // Whether this wave's estimates should be raked against the calibrated
  // population margins (weights(w) computes lazily either way; the flag
  // records the study design, e.g. "the 2024 revisit is raked").
  bool rake = false;
  // Seed salt XORed into StudyConfig.seed for this wave's generator
  // stream. 0 applies the default rule, which reproduces the legacy
  // streams exactly: wave 0 draws from the seed itself, wave 1 from
  // seed ^ 0xA5A5A5A5, and waves 2+ from a year-derived hash (so every
  // wave is an independent sample).
  std::uint64_t seed_salt = 0;
};

struct StudyConfig {
  std::size_t n_2011 = 120;   // 2011 field study reached ~10^2 researchers
  std::size_t n_2024 = 650;   // the revisit reaches a larger population
  std::uint64_t seed = 7;
  rcr::parallel::ThreadPool* pool = nullptr;
  // Legacy two-wave snapshot paths (see WaveSpec::snapshot).
  std::string snapshot_2011;
  std::string snapshot_2024;
  // N-wave form: when non-empty these specs define the study and the
  // legacy fields above are ignored. Empty (the default) maps to the
  // classic pair {2011, n_2011, snapshot_2011} / {2024, n_2024,
  // snapshot_2024, rake}. Waves at the anchor years synthesize from the
  // calibrated anchor parameters; intermediate years interpolate
  // (synth::interpolated_params), so a 3+-wave study tracks the same
  // secular drift the two anchors pin down.
  std::vector<WaveSpec> waves;
};

// Every standard aggregate of one wave that the reproduced tables/figures
// consume, produced by a single fused query::QueryEngine scan of that wave
// (DESIGN.md "query"): the experiments read from here instead of issuing
// one full-table scan per crosstab/share. Numbers are bitwise identical to
// the direct data:: calls they replace.
struct WaveAggregates {
  data::LabeledCrosstab field_by_career;           // T1
  data::LabeledCrosstab field_by_languages;        // T2
  data::LabeledCrosstab field_by_se;               // T4
  std::vector<data::OptionShare> languages;        // T2, T6, F1
  std::vector<data::OptionShare> se_practices;     // T4, T6
  std::vector<data::OptionShare> parallel_resources;  // T6
  std::vector<data::OptionShare> tools_aware;      // T5
  std::vector<data::OptionShare> tools_used;       // T5
  std::vector<data::OptionShare> gpu_usage;        // T6 (category shares)
  // Per-field counts of rows answering the multi-select — the row
  // denominators T2/T4 previously rebuilt with group_rows() walks.
  std::vector<double> field_answered_languages;
  std::vector<double> field_answered_se;
};

class Study {
 public:
  explicit Study(const StudyConfig& config = {});

  const StudyConfig& config() const { return config_; }

  // --- N-wave surface -------------------------------------------------------
  std::size_t wave_count() const { return waves_.size(); }
  const WaveSpec& wave_spec(std::size_t w) const;
  double wave_year(std::size_t w) const { return wave_spec(w).year; }
  const data::Table& wave(std::size_t w) const;

  // Fused aggregates of wave `w`, computed on first use by one engine scan
  // on the configured pool (results are pool-size invariant).
  const WaveAggregates& aggregates(std::size_t w) const;

  // Raking weights for wave `w` against the calibrated population
  // field/career mix of its calendar year (computed on first use).
  const survey::RakingResult& weights(std::size_t w) const;

  // --- Legacy two-wave shims (wave indices 0 and 1) -------------------------
  const data::Table& wave2011() const { return wave(0); }
  const data::Table& wave2024() const { return wave(1); }
  const survey::RakingResult& weights2024() const { return weights(1); }
  const WaveAggregates& aggregates2011() const { return aggregates(0); }
  const WaveAggregates& aggregates2024() const { return aggregates(1); }
  // The cache for whichever of the study's waves `wave` is (by identity).
  const WaveAggregates& aggregates_for(const data::Table& wave) const;

 private:
  StudyConfig config_;
  std::vector<WaveSpec> specs_;      // resolved (salts applied)
  std::vector<data::Table> waves_;
  mutable std::vector<std::unique_ptr<survey::RakingResult>> weights_;
  mutable std::vector<std::unique_ptr<WaveAggregates>> aggregates_;
};

// --- Derived indicators shared by several experiments ----------------------

// Parallelism ladder rungs, ordered by capability.
enum class ParallelRung { kSerialOnly, kMulticore, kCluster, kGpu };
const char* rung_label(ParallelRung r);

// Highest rung a respondent reaches, from the parallel_resources answer.
// GPU outranks cluster (the 2024-defining capability); cloud counts as
// cluster-class capacity.
ParallelRung parallel_rung(const data::Table& table, std::size_t row);

// True if the respondent uses any parallel resource.
bool is_parallel_user(const data::Table& table, std::size_t row);

}  // namespace rcr::core
