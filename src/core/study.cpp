#include "core/study.hpp"

#include "data/snapshot.hpp"
#include "query/engine.hpp"
#include "synth/calibration.hpp"
#include "synth/domain.hpp"
#include "util/error.hpp"

namespace rcr::core {

namespace {

// One fused scan computes the whole wave's standard aggregates: eleven
// queries, one sharded pass (the direct data:: calls would have scanned the
// wave eleven times).
WaveAggregates fused_aggregates(const data::Table& wave,
                                parallel::ThreadPool* pool) {
  query::QueryEngine engine(wave);
  const auto ct_career =
      engine.add_crosstab(synth::col::kField, synth::col::kCareerStage);
  const auto ct_langs = engine.add_crosstab_multiselect(
      synth::col::kField, synth::col::kLanguages);
  const auto ct_se = engine.add_crosstab_multiselect(synth::col::kField,
                                                     synth::col::kSePractices);
  const auto sh_langs = engine.add_option_shares(synth::col::kLanguages);
  const auto sh_se = engine.add_option_shares(synth::col::kSePractices);
  const auto sh_res =
      engine.add_option_shares(synth::col::kParallelResources);
  const auto sh_aware = engine.add_option_shares(synth::col::kToolsAware);
  const auto sh_used = engine.add_option_shares(synth::col::kToolsUsed);
  const auto sh_gpu = engine.add_category_shares(synth::col::kGpuUsage);
  const auto ans_langs =
      engine.add_group_answered(synth::col::kField, synth::col::kLanguages);
  const auto ans_se =
      engine.add_group_answered(synth::col::kField, synth::col::kSePractices);
  engine.run(pool);

  WaveAggregates a;
  a.field_by_career = engine.crosstab(ct_career);
  a.field_by_languages = engine.crosstab(ct_langs);
  a.field_by_se = engine.crosstab(ct_se);
  a.languages = engine.shares(sh_langs);
  a.se_practices = engine.shares(sh_se);
  a.parallel_resources = engine.shares(sh_res);
  a.tools_aware = engine.shares(sh_aware);
  a.tools_used = engine.shares(sh_used);
  a.gpu_usage = engine.shares(sh_gpu);
  a.field_answered_languages = engine.group_answered(ans_langs);
  a.field_answered_se = engine.group_answered(ans_se);
  return a;
}

}  // namespace

Study::Study(const StudyConfig& config)
    : config_(config),
      wave2011_(config.snapshot_2011.empty()
                    ? synth::generate_wave({synth::Wave::k2011, config.n_2011,
                                            config.seed, config.pool})
                    : data::read_snapshot(config.snapshot_2011)),
      wave2024_(config.snapshot_2024.empty()
                    ? synth::generate_wave(
                          {synth::Wave::k2024, config.n_2024,
                           config.seed ^ 0xA5A5A5A5ULL, config.pool})
                    : data::read_snapshot(config.snapshot_2024)) {}

const survey::RakingResult& Study::weights2024() const {
  if (!weights2024_) {
    // Population targets: the calibrated strata mixes are, by construction,
    // the truth the sample was drawn from.
    const auto& p = synth::params_for(synth::Wave::k2024);
    survey::MarginTarget field_target{synth::col::kField, {}};
    for (std::size_t f = 0; f < synth::fields().size(); ++f)
      field_target.shares[synth::fields()[f]] = p.field_mix[f];
    survey::MarginTarget career_target{synth::col::kCareerStage, {}};
    for (std::size_t c = 0; c < synth::career_stages().size(); ++c)
      career_target.shares[synth::career_stages()[c]] = p.career_mix[c];
    weights2024_ = std::make_unique<survey::RakingResult>(
        survey::rake_weights(wave2024_, {field_target, career_target}));
  }
  return *weights2024_;
}

const WaveAggregates& Study::aggregates2011() const {
  if (!aggregates2011_)
    aggregates2011_ = std::make_unique<WaveAggregates>(
        fused_aggregates(wave2011_, config_.pool));
  return *aggregates2011_;
}

const WaveAggregates& Study::aggregates2024() const {
  if (!aggregates2024_)
    aggregates2024_ = std::make_unique<WaveAggregates>(
        fused_aggregates(wave2024_, config_.pool));
  return *aggregates2024_;
}

const WaveAggregates& Study::aggregates_for(const data::Table& wave) const {
  RCR_CHECK_MSG(&wave == &wave2011_ || &wave == &wave2024_,
                "aggregates_for: not one of the study's waves");
  return &wave == &wave2011_ ? aggregates2011() : aggregates2024();
}

const char* rung_label(ParallelRung r) {
  switch (r) {
    case ParallelRung::kSerialOnly: return "Serial only";
    case ParallelRung::kMulticore: return "Multicore";
    case ParallelRung::kCluster: return "Cluster";
    case ParallelRung::kGpu: return "GPU";
  }
  return "?";
}

ParallelRung parallel_rung(const data::Table& table, std::size_t row) {
  const auto& res = table.multiselect(synth::col::kParallelResources);
  RCR_CHECK_MSG(!res.is_missing(row), "resources answer missing");
  const auto idx_of = [&](const char* label) {
    const std::int32_t i = res.find_option(label);
    RCR_CHECK_MSG(i >= 0, "resource option missing from schema");
    return static_cast<std::size_t>(i);
  };
  if (res.has(row, idx_of("GPU"))) return ParallelRung::kGpu;
  if (res.has(row, idx_of("Cluster")) || res.has(row, idx_of("Cloud")))
    return ParallelRung::kCluster;
  if (res.has(row, idx_of("Multicore node"))) return ParallelRung::kMulticore;
  return ParallelRung::kSerialOnly;
}

bool is_parallel_user(const data::Table& table, std::size_t row) {
  const auto& res = table.multiselect(synth::col::kParallelResources);
  return !res.is_missing(row) && res.mask_at(row) != 0;
}

}  // namespace rcr::core
