#include "core/study.hpp"

#include "synth/calibration.hpp"
#include "synth/domain.hpp"
#include "util/error.hpp"

namespace rcr::core {

Study::Study(const StudyConfig& config)
    : config_(config),
      wave2011_(synth::generate_wave(
          {synth::Wave::k2011, config.n_2011, config.seed, config.pool})),
      wave2024_(synth::generate_wave(
          {synth::Wave::k2024, config.n_2024, config.seed ^ 0xA5A5A5A5ULL,
           config.pool})) {}

const survey::RakingResult& Study::weights2024() const {
  if (!weights2024_) {
    // Population targets: the calibrated strata mixes are, by construction,
    // the truth the sample was drawn from.
    const auto& p = synth::params_for(synth::Wave::k2024);
    survey::MarginTarget field_target{synth::col::kField, {}};
    for (std::size_t f = 0; f < synth::fields().size(); ++f)
      field_target.shares[synth::fields()[f]] = p.field_mix[f];
    survey::MarginTarget career_target{synth::col::kCareerStage, {}};
    for (std::size_t c = 0; c < synth::career_stages().size(); ++c)
      career_target.shares[synth::career_stages()[c]] = p.career_mix[c];
    weights2024_ = std::make_unique<survey::RakingResult>(
        survey::rake_weights(wave2024_, {field_target, career_target}));
  }
  return *weights2024_;
}

const char* rung_label(ParallelRung r) {
  switch (r) {
    case ParallelRung::kSerialOnly: return "Serial only";
    case ParallelRung::kMulticore: return "Multicore";
    case ParallelRung::kCluster: return "Cluster";
    case ParallelRung::kGpu: return "GPU";
  }
  return "?";
}

ParallelRung parallel_rung(const data::Table& table, std::size_t row) {
  const auto& res = table.multiselect(synth::col::kParallelResources);
  RCR_CHECK_MSG(!res.is_missing(row), "resources answer missing");
  const auto idx_of = [&](const char* label) {
    const std::int32_t i = res.find_option(label);
    RCR_CHECK_MSG(i >= 0, "resource option missing from schema");
    return static_cast<std::size_t>(i);
  };
  if (res.has(row, idx_of("GPU"))) return ParallelRung::kGpu;
  if (res.has(row, idx_of("Cluster")) || res.has(row, idx_of("Cloud")))
    return ParallelRung::kCluster;
  if (res.has(row, idx_of("Multicore node"))) return ParallelRung::kMulticore;
  return ParallelRung::kSerialOnly;
}

bool is_parallel_user(const data::Table& table, std::size_t row) {
  const auto& res = table.multiselect(synth::col::kParallelResources);
  return !res.is_missing(row) && res.mask_at(row) != 0;
}

}  // namespace rcr::core
