#include "core/study.hpp"

#include "data/snapshot.hpp"
#include "query/engine.hpp"
#include "synth/calibration.hpp"
#include "synth/domain.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace rcr::core {

namespace {

// One fused scan computes the whole wave's standard aggregates: eleven
// queries, one sharded pass (the direct data:: calls would have scanned the
// wave eleven times).
WaveAggregates fused_aggregates(const data::Table& wave,
                                parallel::ThreadPool* pool) {
  query::QueryEngine engine(wave);
  const auto ct_career =
      engine.add_crosstab(synth::col::kField, synth::col::kCareerStage);
  const auto ct_langs = engine.add_crosstab_multiselect(
      synth::col::kField, synth::col::kLanguages);
  const auto ct_se = engine.add_crosstab_multiselect(synth::col::kField,
                                                     synth::col::kSePractices);
  const auto sh_langs = engine.add_option_shares(synth::col::kLanguages);
  const auto sh_se = engine.add_option_shares(synth::col::kSePractices);
  const auto sh_res =
      engine.add_option_shares(synth::col::kParallelResources);
  const auto sh_aware = engine.add_option_shares(synth::col::kToolsAware);
  const auto sh_used = engine.add_option_shares(synth::col::kToolsUsed);
  const auto sh_gpu = engine.add_category_shares(synth::col::kGpuUsage);
  const auto ans_langs =
      engine.add_group_answered(synth::col::kField, synth::col::kLanguages);
  const auto ans_se =
      engine.add_group_answered(synth::col::kField, synth::col::kSePractices);
  engine.run(pool);

  WaveAggregates a;
  a.field_by_career = engine.crosstab(ct_career);
  a.field_by_languages = engine.crosstab(ct_langs);
  a.field_by_se = engine.crosstab(ct_se);
  a.languages = engine.shares(sh_langs);
  a.se_practices = engine.shares(sh_se);
  a.parallel_resources = engine.shares(sh_res);
  a.tools_aware = engine.shares(sh_aware);
  a.tools_used = engine.shares(sh_used);
  a.gpu_usage = engine.shares(sh_gpu);
  a.field_answered_languages = engine.group_answered(ans_langs);
  a.field_answered_se = engine.group_answered(ans_se);
  return a;
}

// Default per-wave seed salt. Indices 0 and 1 reproduce the legacy
// 2011/2024 generator streams bit-for-bit; later waves derive an
// independent stream from their calendar year.
std::uint64_t default_salt(std::size_t index, double year) {
  if (index == 0) return 0;
  if (index == 1) return 0xA5A5A5A5ULL;
  return xxhash64(&year, sizeof year, 0x5EEDF00DULL + index);
}

// The study's wave list: explicit specs, or the classic 2011→2024 pair
// built from the legacy config fields.
std::vector<WaveSpec> resolve_specs(const StudyConfig& config) {
  std::vector<WaveSpec> specs = config.waves;
  if (specs.empty()) {
    specs.push_back(
        {synth::kYear2011, config.n_2011, config.snapshot_2011, false, 0});
    specs.push_back(
        {synth::kYear2024, config.n_2024, config.snapshot_2024, true, 0});
  }
  RCR_CHECK_MSG(specs.size() >= 2, "a study needs at least two waves");
  for (std::size_t w = 0; w < specs.size(); ++w) {
    WaveSpec& spec = specs[w];
    if (spec.seed_salt == 0) spec.seed_salt = default_salt(w, spec.year);
    RCR_CHECK_MSG(spec.n > 0 || !spec.snapshot.empty(),
                  "wave " + std::to_string(w) +
                      " needs respondents or a snapshot path");
    if (w > 0)
      RCR_CHECK_MSG(spec.year > specs[w - 1].year,
                    "study waves must be strictly time-ordered");
  }
  return specs;
}

data::Table materialize_wave(const WaveSpec& spec, const StudyConfig& config) {
  if (!spec.snapshot.empty()) return data::read_snapshot(spec.snapshot);
  // Anchor years get the calibrated anchor sets verbatim (interpolated_params
  // returns them exactly), so this one code path is byte-identical to the
  // legacy params_for-driven generation for 2011 and 2024 waves.
  const synth::WaveParams params = synth::interpolated_params(spec.year);
  synth::GeneratorConfig gc;
  gc.wave = params.wave;
  gc.respondents = spec.n;
  gc.seed = config.seed ^ spec.seed_salt;
  gc.pool = config.pool;
  gc.params = &params;
  return synth::generate_wave(gc);
}

}  // namespace

Study::Study(const StudyConfig& config)
    : config_(config), specs_(resolve_specs(config)) {
  waves_.reserve(specs_.size());
  for (const WaveSpec& spec : specs_)
    waves_.push_back(materialize_wave(spec, config_));
  weights_.resize(specs_.size());
  aggregates_.resize(specs_.size());
}

const WaveSpec& Study::wave_spec(std::size_t w) const {
  RCR_CHECK_MSG(w < specs_.size(), "wave index out of range");
  return specs_[w];
}

const data::Table& Study::wave(std::size_t w) const {
  RCR_CHECK_MSG(w < waves_.size(), "wave index out of range");
  return waves_[w];
}

const survey::RakingResult& Study::weights(std::size_t w) const {
  RCR_CHECK_MSG(w < waves_.size(), "wave index out of range");
  if (!weights_[w]) {
    // Population targets: the calibrated strata mixes of the wave's year
    // are, by construction, the truth the sample was drawn from.
    const synth::WaveParams p = synth::interpolated_params(specs_[w].year);
    survey::MarginTarget field_target{synth::col::kField, {}};
    for (std::size_t f = 0; f < synth::fields().size(); ++f)
      field_target.shares[synth::fields()[f]] = p.field_mix[f];
    survey::MarginTarget career_target{synth::col::kCareerStage, {}};
    for (std::size_t c = 0; c < synth::career_stages().size(); ++c)
      career_target.shares[synth::career_stages()[c]] = p.career_mix[c];
    weights_[w] = std::make_unique<survey::RakingResult>(
        survey::rake_weights(waves_[w], {field_target, career_target}));
  }
  return *weights_[w];
}

const WaveAggregates& Study::aggregates(std::size_t w) const {
  RCR_CHECK_MSG(w < waves_.size(), "wave index out of range");
  if (!aggregates_[w])
    aggregates_[w] = std::make_unique<WaveAggregates>(
        fused_aggregates(waves_[w], config_.pool));
  return *aggregates_[w];
}

const WaveAggregates& Study::aggregates_for(const data::Table& wave) const {
  for (std::size_t w = 0; w < waves_.size(); ++w)
    if (&wave == &waves_[w]) return aggregates(w);
  throw Error("aggregates_for: not one of the study's waves");
}

const char* rung_label(ParallelRung r) {
  switch (r) {
    case ParallelRung::kSerialOnly: return "Serial only";
    case ParallelRung::kMulticore: return "Multicore";
    case ParallelRung::kCluster: return "Cluster";
    case ParallelRung::kGpu: return "GPU";
  }
  return "?";
}

ParallelRung parallel_rung(const data::Table& table, std::size_t row) {
  const auto& res = table.multiselect(synth::col::kParallelResources);
  RCR_CHECK_MSG(!res.is_missing(row), "resources answer missing");
  const auto idx_of = [&](const char* label) {
    const std::int32_t i = res.find_option(label);
    RCR_CHECK_MSG(i >= 0, "resource option missing from schema");
    return static_cast<std::size_t>(i);
  };
  if (res.has(row, idx_of("GPU"))) return ParallelRung::kGpu;
  if (res.has(row, idx_of("Cluster")) || res.has(row, idx_of("Cloud")))
    return ParallelRung::kCluster;
  if (res.has(row, idx_of("Multicore node"))) return ParallelRung::kMulticore;
  return ParallelRung::kSerialOnly;
}

bool is_parallel_user(const data::Table& table, std::size_t row) {
  const auto& res = table.multiselect(synth::col::kParallelResources);
  return !res.is_missing(row) && res.mask_at(row) != 0;
}

}  // namespace rcr::core
