#include <algorithm>
#include <cmath>

#include "core/experiments.hpp"
#include "data/crosstab.hpp"
#include "query/engine.hpp"
#include "report/series.hpp"
#include "report/table.hpp"
#include "stats/contingency.hpp"
#include "synth/domain.hpp"
#include "trend/trend.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace rcr::core {

namespace {
using rcr::format_double;
using rcr::format_percent;

std::string wave_header(const Study& study) {
  return "2011 wave n=" + std::to_string(study.wave2011().row_count()) +
         ", 2024 wave n=" + std::to_string(study.wave2024().row_count()) +
         "\n";
}

// Renders an option-battery (shares per wave + adjusted significance).
std::string render_battery(const std::vector<trend::ShareTrend>& trends) {
  report::TextTable t({"Indicator", "2011 share [95% CI]",
                       "2024 share [95% CI]", "Δ (pp)", "Odds ratio",
                       "p (Holm)", "Trend"});
  for (const auto& tr : trends) {
    t.add_row({tr.indicator,
               report::share_cell(tr.share1.estimate, tr.share1.lo,
                                  tr.share1.hi),
               report::share_cell(tr.share2.estimate, tr.share2.lo,
                                  tr.share2.hi),
               format_double(100.0 * (tr.share2.estimate - tr.share1.estimate),
                             1),
               format_double(tr.odds_ratio, 2), report::p_cell(tr.p_adjusted),
               trend::direction_label(tr.direction)});
  }
  return t.render();
}
}  // namespace

std::string run_t1_demographics(const Study& study) {
  std::string out = wave_header(study);
  for (const auto* wave : {&study.wave2011(), &study.wave2024()}) {
    const bool is_2011 = wave == &study.wave2011();
    out += std::string("\nWave ") + (is_2011 ? "2011" : "2024") +
           " — respondents by field and career stage\n";
    const auto& ct = study.aggregates_for(*wave).field_by_career;
    std::vector<std::string> headers = {"Field"};
    for (const auto& c : ct.col_labels) headers.push_back(c);
    headers.push_back("Total");
    headers.push_back("Share");
    report::TextTable t(headers);
    const double grand = ct.counts.grand_total();
    for (std::size_t r = 0; r < ct.row_labels.size(); ++r) {
      std::vector<std::string> row = {ct.row_labels[r]};
      for (std::size_t c = 0; c < ct.col_labels.size(); ++c)
        row.push_back(format_double(ct.counts.at(r, c), 0));
      row.push_back(format_double(ct.counts.row_total(r), 0));
      row.push_back(format_percent(ct.counts.row_total(r) / grand));
      t.add_row(std::move(row));
    }
    out += t.render();
  }
  return out;
}

std::string run_t2_languages_by_field(const Study& study) {
  std::string out = wave_header(study);
  out += "\nShare of respondents in each field using each language "
         "(2024 wave; 2011 overall row for contrast)\n";
  // Crosstab and its per-field answered-row denominators come from the same
  // fused scan.
  const auto& agg2024 = study.aggregates2024();
  const auto& ct = agg2024.field_by_languages;

  std::vector<std::string> headers = {"Field"};
  for (const auto& l : ct.col_labels) headers.push_back(l);
  report::TextTable t(headers);
  for (std::size_t f = 0; f < ct.row_labels.size(); ++f) {
    const double denom = agg2024.field_answered_languages[f];
    std::vector<std::string> row = {ct.row_labels[f]};
    for (std::size_t l = 0; l < ct.col_labels.size(); ++l)
      row.push_back(denom > 0.0
                        ? format_percent(ct.counts.at(f, l) / denom, 0)
                        : "-");
    t.add_row(std::move(row));
  }
  // Overall rows for both waves.
  for (const auto* wave : {&study.wave2011(), &study.wave2024()}) {
    const auto& shares = study.aggregates_for(*wave).languages;
    std::vector<std::string> row = {
        wave == &study.wave2011() ? "(all, 2011)" : "(all, 2024)"};
    for (const auto& s : shares)
      row.push_back(format_percent(s.share.estimate, 0));
    t.add_row(std::move(row));
  }
  out += t.render();
  return out;
}

std::string run_t3_parallel_models(const Study& study) {
  std::string out = wave_header(study);
  out += "\nParallel programming model usage among parallel users\n";
  const auto only_parallel = [](const data::Table& t) {
    return t.filter([&t](std::size_t i) { return is_parallel_user(t, i); });
  };
  const data::Table p2011 = only_parallel(study.wave2011());
  const data::Table p2024 = only_parallel(study.wave2024());
  out += "parallel users: 2011 n=" + std::to_string(p2011.row_count()) +
         " (" +
         format_percent(static_cast<double>(p2011.row_count()) /
                        study.wave2011().row_count()) +
         "), 2024 n=" + std::to_string(p2024.row_count()) + " (" +
         format_percent(static_cast<double>(p2024.row_count()) /
                        study.wave2024().row_count()) +
         ")\n";
  // One fused scan per filtered wave, then the battery from the counts.
  query::QueryEngine e2011(p2011), e2024(p2024);
  const auto id2011 = e2011.add_option_shares(synth::col::kParallelModels);
  const auto id2024 = e2024.add_option_shares(synth::col::kParallelModels);
  e2011.run(study.config().pool);
  e2024.run(study.config().pool);
  const auto battery = trend::option_battery_from_shares(
      e2011.shares(id2011), e2024.shares(id2024));
  out += render_battery(battery);
  return out;
}

std::string run_t4_se_practices(const Study& study) {
  std::string out = wave_header(study);
  out += "\nSoftware-engineering practice adoption, 2011 vs 2024\n";
  const auto battery = trend::option_battery_from_shares(
      study.aggregates2011().se_practices, study.aggregates2024().se_practices);
  out += render_battery(battery);

  out += "\nVersion-control adoption by field (2024)\n";
  const auto& agg2024 = study.aggregates2024();
  const auto& ct = agg2024.field_by_se;
  const auto& se = study.wave2024().multiselect(synth::col::kSePractices);
  const std::size_t vcs =
      static_cast<std::size_t>(se.find_option("Version control"));
  report::TextTable t({"Field", "n", "VCS share [95% CI]"});
  for (std::size_t f = 0; f < ct.row_labels.size(); ++f) {
    const double denom = agg2024.field_answered_se[f];
    if (denom == 0.0) continue;
    const auto ci = stats::wilson_ci(ct.counts.at(f, vcs), denom);
    t.add_row({ct.row_labels[f], format_double(denom, 0),
               report::share_cell(ci.estimate, ci.lo, ci.hi)});
  }
  out += t.render();
  return out;
}

std::string run_t5_tool_gap(const Study& study) {
  std::string out = wave_header(study);
  for (const auto* wave : {&study.wave2011(), &study.wave2024()}) {
    const bool is_2011 = wave == &study.wave2011();
    out += std::string("\nWave ") + (is_2011 ? "2011" : "2024") +
           " — tool awareness vs use\n";
    const auto& aware = study.aggregates_for(*wave).tools_aware;
    const auto& used = study.aggregates_for(*wave).tools_used;
    report::TextTable t(
        {"Tool", "Aware", "Use", "Gap (pp)", "Use|Aware"});
    for (std::size_t i = 0; i < aware.size(); ++i) {
      const double a = aware[i].share.estimate;
      const double u = used[i].share.estimate;
      t.add_row({aware[i].label, format_percent(a, 0), format_percent(u, 0),
                 format_double(100.0 * (a - u), 0),
                 a > 0.0 ? format_percent(u / a, 0) : "-"});
    }
    out += t.render();
  }
  out += "\nThe awareness→use gap is the survey's \"tools exist but are not "
         "picked up\" finding; it narrows for build systems and schedulers "
         "by 2024 but persists for profilers.\n";
  return out;
}

std::string run_t6_significance(const Study& study) {
  std::string out = wave_header(study);
  out += "\nAll 2011→2024 shifts, Holm-adjusted within one family\n";
  // Every per-option count below comes from the two cached fused scans —
  // the direct compare_option path would have re-scanned both waves once
  // per indicator (29 scans each).
  std::vector<trend::ShareTrend> all;
  // Validated pairing: the share vectors come from per-wave engine scans,
  // so the labels are checked pairwise instead of trusting raw indices.
  const auto collect = [&](const std::vector<data::OptionShare>& s2011,
                           const std::vector<data::OptionShare>& s2024) {
    trend::append_share_trends(all, s2011, s2024);
  };
  const auto& a2011 = study.aggregates2011();
  const auto& a2024 = study.aggregates2024();
  collect(a2011.languages, a2024.languages);
  collect(a2011.parallel_resources, a2024.parallel_resources);
  collect(a2011.se_practices, a2024.se_practices);
  const auto gpu_of = [](const std::vector<data::OptionShare>& shares) {
    for (const auto& s : shares)
      if (s.label == "Regularly") return s;
    throw Error("gpu_usage category 'Regularly' missing");
  };
  const auto g2011 = gpu_of(a2011.gpu_usage);
  const auto g2024 = gpu_of(a2024.gpu_usage);
  all.push_back(trend::trend_from_counts("Regularly", g2011.count,
                                         g2011.total, g2024.count,
                                         g2024.total));
  // Prefix indicators with their family for readability.
  trend::adjust_and_classify(all);
  std::stable_sort(all.begin(), all.end(),
                   [](const trend::ShareTrend& a, const trend::ShareTrend& b) {
                     return a.p_adjusted < b.p_adjusted;
                   });
  out += render_battery(all);

  const auto shift = trend::distribution_shift_test(
      study.wave2011(), study.wave2024(), synth::col::kPrimaryLanguage);
  out += "\nPrimary-language distribution shift (2 x k chi-square): chi2=" +
         format_double(shift.statistic, 1) +
         ", dof=" + format_double(shift.dof, 0) +
         ", p=" + report::p_cell(shift.p_value) +
         ", Cramer's V=" + format_double(shift.cramers_v, 2) + "\n";
  return out;
}

std::string run_t7_gpu_adoption(const Study& study) {
  std::string out = wave_header(study);
  out += "\nGPU adoption by field with fitted logistic adoption curves\n";
  report::TextTable t({"Field", "2011 share", "2024 share", "Slope/yr",
                       "Midpoint year"});
  const auto& fields = synth::fields();
  for (const auto& field : fields) {
    const data::Table f2011 =
        study.wave2011().filter_equals(synth::col::kField, field);
    const data::Table f2024 =
        study.wave2024().filter_equals(synth::col::kField, field);
    if (f2011.row_count() < 5 || f2024.row_count() < 5) continue;
    const auto tr = trend::compare_option(
        f2011, f2024, synth::col::kParallelResources, "GPU");
    const auto curve = trend::fit_adoption_curve(
        f2011, 2011.0, f2024, 2024.0, synth::col::kParallelResources, "GPU");
    const bool midpoint_sane =
        std::isfinite(curve.midpoint_year) && curve.slope_per_year > 0.0 &&
        curve.midpoint_year > 1990.0 && curve.midpoint_year < 2060.0;
    t.add_row({field, format_percent(tr.share1.estimate, 0),
               format_percent(tr.share2.estimate, 0),
               format_double(curve.slope_per_year, 3),
               midpoint_sane ? format_double(curve.midpoint_year, 1) : "n/a"});
  }
  out += t.render();
  // Pooled curve.
  const auto curve = trend::fit_adoption_curve(
      study.wave2011(), 2011.0, study.wave2024(), 2024.0,
      synth::col::kParallelResources, "GPU");
  out += "\nPooled logistic fit: P(GPU) = sigmoid(" +
         format_double(curve.intercept, 2) + " + " +
         format_double(curve.slope_per_year, 3) + " * (year - 2011)), " +
         "midpoint " + format_double(curve.midpoint_year, 1) + "\n";
  return out;
}

std::string run_t8_field_drilldown(const Study& study) {
  std::string out = wave_header(study);
  out += "\nWhere did the headline shifts happen? Per-field trends, each "
         "family Holm-adjusted.\n";
  struct Target {
    const char* column;
    const char* option;
  };
  const Target targets[] = {
      {synth::col::kLanguages, "Python"},
      {synth::col::kParallelResources, "GPU"},
      {synth::col::kSePractices, "Version control"},
  };
  for (const auto& target : targets) {
    out += std::string("\n") + target.option + " by field\n";
    const auto trends =
        trend::per_group_trend(study.wave2011(), study.wave2024(),
                               synth::col::kField, target.column,
                               target.option);
    report::TextTable t({"Field", "2011", "2024", "Δ (pp)", "p (Holm)",
                         "Trend"});
    for (const auto& tr : trends) {
      t.add_row({tr.indicator, format_percent(tr.share1.estimate, 0),
                 format_percent(tr.share2.estimate, 0),
                 format_double(
                     100.0 * (tr.share2.estimate - tr.share1.estimate), 0),
                 report::p_cell(tr.p_adjusted),
                 trend::direction_label(tr.direction)});
    }
    out += t.render();
  }
  out += "\nThe Python and version-control shifts are broad-based; GPU "
         "adoption concentrates in the simulation- and ML-heavy fields, "
         "with Social Science lagging on every indicator.\n";
  return out;
}

}  // namespace rcr::core
