// The pre-engine serial crosstab/share builders, kept verbatim: one full
// table scan per query, the weight column re-resolved by name on every row
// (Table::find is a linear name scan), and multi-select cells filled by
// probing every option per row. They exist for two reasons:
//   * tests/query_test.cpp uses them as the equivalence oracle — the fused
//     engine must reproduce them bitwise on single-shard tables;
//   * bench/micro_query.cpp times them as the naive sequential baseline the
//     fused scan is measured against.
// Production callers should use data::crosstab et al. (engine-backed) or
// batch into a query::QueryEngine directly.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/crosstab.hpp"
#include "data/table.hpp"

namespace rcr::query::reference {

data::LabeledCrosstab crosstab(
    const data::Table& table, const std::string& row_column,
    const std::string& col_column,
    const std::optional<std::string>& weight_column = {});

data::LabeledCrosstab crosstab_multiselect(
    const data::Table& table, const std::string& row_column,
    const std::string& option_column,
    const std::optional<std::string>& weight_column = {});

std::vector<data::OptionShare> option_shares(const data::Table& table,
                                             const std::string& option_column,
                                             double confidence = 0.95);

data::OptionShare weighted_option_share(const data::Table& table,
                                        const std::string& option_column,
                                        const std::string& option_label,
                                        std::span<const double> weights,
                                        double confidence = 0.95);

std::vector<data::OptionShare> category_shares(const data::Table& table,
                                               const std::string& column,
                                               double confidence = 0.95);

}  // namespace rcr::query::reference
