// Definitions of the data/crosstab.hpp API as thin single-query shims over
// the fused engine. The declarations stay in data/ so every existing caller
// keeps compiling unchanged, but the hot loops now run through the engine's
// hoisted-span kernels (weight column resolved once per scan instead of per
// row; multi-select cells by set-bit iteration instead of option probing).
// Results are bitwise identical to the old serial builders — single-call
// tables are at most one shard deep in practice, and unweighted counts are
// exact at any shard count (see query/engine.hpp).
#include "data/crosstab.hpp"

#include "query/engine.hpp"

namespace rcr::data {

double LabeledCrosstab::row_share(std::size_t r, std::size_t c) const {
  const double total = counts.row_total(r);
  return total > 0.0 ? counts.at(r, c) / total : 0.0;
}

LabeledCrosstab crosstab(const Table& table, const std::string& row_column,
                         const std::string& col_column,
                         const std::optional<std::string>& weight_column) {
  query::QueryEngine engine(table);
  const auto id = engine.add_crosstab(row_column, col_column, weight_column);
  engine.run();
  return engine.crosstab(id);
}

LabeledCrosstab crosstab_multiselect(
    const Table& table, const std::string& row_column,
    const std::string& option_column,
    const std::optional<std::string>& weight_column) {
  query::QueryEngine engine(table);
  const auto id =
      engine.add_crosstab_multiselect(row_column, option_column,
                                      weight_column);
  engine.run();
  return engine.crosstab(id);
}

std::vector<OptionShare> option_shares(const Table& table,
                                       const std::string& option_column,
                                       double confidence) {
  query::QueryEngine engine(table);
  const auto id = engine.add_option_shares(option_column, confidence);
  engine.run();
  return engine.shares(id);
}

OptionShare weighted_option_share(const Table& table,
                                  const std::string& option_column,
                                  const std::string& option_label,
                                  std::span<const double> weights,
                                  double confidence) {
  query::QueryEngine engine(table);
  const auto id = engine.add_weighted_option_share(option_column,
                                                   option_label, weights,
                                                   confidence);
  engine.run();
  return engine.weighted_share(id);
}

std::vector<OptionShare> category_shares(const Table& table,
                                         const std::string& column,
                                         double confidence) {
  query::QueryEngine engine(table);
  const auto id = engine.add_category_shares(column, confidence);
  engine.run();
  return engine.shares(id);
}

}  // namespace rcr::data
