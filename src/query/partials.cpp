#include "query/partials.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "simd/kernels.hpp"
#include "stats/ci.hpp"
#include "util/error.hpp"

namespace rcr::query {

namespace {

double row_weight_or_skip(std::span<const double> weights, std::size_t i,
                          bool& skip) {
  // Matches the direct builders: missing weight drops the row, a negative
  // weight is a hard error (safe to throw here even on a pool worker — the
  // pool rethrows the first task exception on the calling thread).
  const double w = weights[i];
  if (data::NumericColumn::is_missing(w)) {
    skip = true;
    return 0.0;
  }
  RCR_CHECK_MSG(w >= 0.0, "weights must be non-negative");
  skip = false;
  return w;
}

}  // namespace

BatchPlan::BatchPlan(const data::Table& table, std::span<const QuerySpec> specs)
    : table_(table), specs_(specs.begin(), specs.end()) {
  table_.validate_rectangular();
  plan_.reserve(specs_.size());
  for (const QuerySpec& spec : specs_) {
    Resolved q;
    q.kind = spec.kind;
    q.base = total_cells_;
    switch (spec.kind) {
      case SpecKind::kCrosstab: {
        const auto& rows = table_.categorical(spec.a);
        const auto& cols = table_.categorical(spec.b);
        q.codes_a = rows.codes();
        q.codes_b = cols.codes();
        q.cols_dim = cols.category_count();
        q.cells = rows.category_count() * cols.category_count();
        break;
      }
      case SpecKind::kCrosstabMultiselect: {
        const auto& rows = table_.categorical(spec.a);
        const auto& opts = table_.multiselect(spec.b);
        q.codes_a = rows.codes();
        q.masks = opts.masks();
        q.ms_missing = opts.missing_flags();
        q.cols_dim = opts.option_count();
        q.cells = rows.category_count() * opts.option_count();
        break;
      }
      case SpecKind::kCategoryShares: {
        const auto& col = table_.categorical(spec.a);
        q.codes_a = col.codes();
        q.cells = col.category_count() + 1;  // counts..., answered total
        break;
      }
      case SpecKind::kOptionShares: {
        const auto& col = table_.multiselect(spec.a);
        q.masks = col.masks();
        q.ms_missing = col.missing_flags();
        q.cells = col.option_count() + 1;  // counts..., answered total
        break;
      }
      case SpecKind::kWeightedOptionShare: {
        const auto& col = table_.multiselect(spec.a);
        RCR_CHECK_MSG(spec.ext_weights.size() == col.size(),
                      "weight vector does not match table rows");
        const int option = col.find_option(spec.option_label);
        RCR_CHECK_MSG(option >= 0,
                      "unknown option '" + spec.option_label + "'");
        q.masks = col.masks();
        q.ms_missing = col.missing_flags();
        q.values = spec.ext_weights;
        q.option_bit = std::uint64_t{1} << static_cast<std::uint64_t>(option);
        q.cells = 3;  // wnum, wden, wden2
        break;
      }
      case SpecKind::kNumericSummary: {
        q.values = table_.numeric(spec.a).values();
        q.cells = 4;  // count, sum, min, max
        break;
      }
      case SpecKind::kGroupAnswered: {
        const auto& groups = table_.categorical(spec.a);
        q.codes_a = groups.codes();
        q.b_kind = table_.kind(spec.b);
        switch (q.b_kind) {
          case data::ColumnKind::kNumeric:
            q.b_values = table_.numeric(spec.b).values();
            break;
          case data::ColumnKind::kCategorical:
            q.codes_b = table_.categorical(spec.b).codes();
            break;
          case data::ColumnKind::kMultiSelect:
            q.b_ms_missing = table_.multiselect(spec.b).missing_flags();
            break;
        }
        q.cells = groups.category_count();
        break;
      }
    }
    // Weight columns are resolved once per plan and the span shared by every
    // query that names the same column (spans into the same storage).
    if (spec.weight) q.weights = table_.numeric(*spec.weight).values();
    total_cells_ += q.cells;
    ops_.resize(total_cells_, CellOp::kSum);
    if (spec.kind == SpecKind::kNumericSummary) {
      ops_[q.base + 2] = CellOp::kMin;
      ops_[q.base + 3] = CellOp::kMax;
    }
    plan_.push_back(q);
  }
}

void BatchPlan::init_cells(std::span<double> cells) const {
  RCR_CHECK_MSG(cells.size() == total_cells_, "cell buffer size mismatch");
  for (std::size_t i = 0; i < total_cells_; ++i) {
    switch (ops_[i]) {
      case CellOp::kSum: cells[i] = 0.0; break;
      case CellOp::kMin: cells[i] = std::numeric_limits<double>::infinity(); break;
      case CellOp::kMax: cells[i] = -std::numeric_limits<double>::infinity(); break;
    }
  }
}

void BatchPlan::scan(std::size_t lo, std::size_t hi,
                     std::span<double> cells_out) const {
  RCR_CHECK_MSG(cells_out.size() == total_cells_, "cell buffer size mismatch");
  for (const Resolved& q : plan_) {
    double* cells = cells_out.data() + q.base;
    switch (q.kind) {
      case SpecKind::kCrosstab: {
        const bool weighted = !q.weights.empty();
        for (std::size_t i = lo; i < hi; ++i) {
          const std::int32_t r = q.codes_a[i], c = q.codes_b[i];
          if (r < 0 || c < 0) continue;
          double w = 1.0;
          if (weighted) {
            bool skip = false;
            w = row_weight_or_skip(q.weights, i, skip);
            if (skip) continue;
          }
          cells[static_cast<std::size_t>(r) * q.cols_dim +
                static_cast<std::size_t>(c)] += w;
        }
        break;
      }
      // The multi-select kernels lean on the storage invariant that a
      // missing row is an all-zero mask: tallying every option of a zero
      // mask adds nothing, so the per-option loop needs no per-row flag
      // branch. Both forms run through rcr::simd at the dispatched lane
      // width: unweighted cells tally as integers (exact in double below
      // 2^53); weighted cells add a bitwise select of w or +0.0 per
      // option (`w * bit` without the multiply), and += 0.0 on a
      // non-negative accumulator is a bitwise no-op — so every width
      // reproduces the reference builders' per-selection adds bit for
      // bit (pinned by the determinism suite).
      case SpecKind::kCrosstabMultiselect: {
        const bool weighted = !q.weights.empty();
        if (!weighted) {
          std::vector<std::uint64_t> tallies(q.cells, 0);
          simd::tally_multiselect(q.codes_a.data(), q.masks.data(), lo, hi,
                                  q.cols_dim, tallies.data());
          for (std::size_t cell = 0; cell < q.cells; ++cell)
            cells[cell] += static_cast<double>(tallies[cell]);
          break;
        }
        // The kernel inlines row_weight_or_skip's contract: NaN weight
        // drops the row, negative throws.
        simd::add_weighted_multiselect(q.codes_a.data(), q.masks.data(),
                                       q.ms_missing.data(),
                                       q.weights.data(), lo, hi,
                                       q.cols_dim, cells);
        break;
      }
      // Both share kinds tally the answered total as an integer and fold
      // it in once per scan call: the per-row `+= 1.0` it replaces is a
      // serial FP dependency chain the whole scan stalls on, and integer
      // counts below 2^53 are exact in double under any order, so the
      // bits cannot differ.
      case SpecKind::kCategoryShares: {
        std::size_t missing = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          const std::int32_t c = q.codes_a[i];
          if (c < 0) { ++missing; continue; }
          cells[static_cast<std::size_t>(c)] += 1.0;
        }
        cells[q.cells - 1] += static_cast<double>(hi - lo - missing);
        break;
      }
      case SpecKind::kOptionShares: {
        const std::size_t n_opts = q.cells - 1;
        std::uint64_t tallies[data::MultiSelectColumn::kMaxOptions] = {};
        const std::size_t missing = simd::tally_options(
            q.masks.data(), q.ms_missing.data(), lo, hi, n_opts, tallies);
        for (std::size_t o = 0; o < n_opts; ++o)
          cells[o] += static_cast<double>(tallies[o]);
        cells[q.cells - 1] += static_cast<double>(hi - lo - missing);
        break;
      }
      case SpecKind::kWeightedOptionShare: {
        for (std::size_t i = lo; i < hi; ++i) {
          if (q.ms_missing[i] != 0) continue;
          const double w = q.values[i];
          RCR_CHECK_MSG(w >= 0.0, "weights must be non-negative");
          cells[1] += w;
          cells[2] += w * w;
          if ((q.masks[i] & q.option_bit) != 0) cells[0] += w;
        }
        break;
      }
      case SpecKind::kNumericSummary: {
        for (std::size_t i = lo; i < hi; ++i) {
          const double v = q.values[i];
          if (data::NumericColumn::is_missing(v)) continue;
          cells[0] += 1.0;
          cells[1] += v;
          cells[2] = std::min(cells[2], v);
          cells[3] = std::max(cells[3], v);
        }
        break;
      }
      case SpecKind::kGroupAnswered: {
        for (std::size_t i = lo; i < hi; ++i) {
          const std::int32_t g = q.codes_a[i];
          if (g < 0) continue;
          bool answered = true;
          switch (q.b_kind) {
            case data::ColumnKind::kNumeric:
              answered = !data::NumericColumn::is_missing(q.b_values[i]);
              break;
            case data::ColumnKind::kCategorical:
              answered = q.codes_b[i] >= 0;
              break;
            case data::ColumnKind::kMultiSelect:
              answered = q.b_ms_missing[i] == 0;
              break;
          }
          if (answered) cells[static_cast<std::size_t>(g)] += 1.0;
        }
        break;
      }
    }
  }
}

void BatchPlan::merge(std::span<double> into,
                      std::span<const double> part) const {
  RCR_CHECK_MSG(into.size() == total_cells_ && part.size() == total_cells_,
                "cell buffer size mismatch");
  for (std::size_t i = 0; i < total_cells_; ++i) {
    switch (ops_[i]) {
      case CellOp::kSum: into[i] += part[i]; break;
      case CellOp::kMin: into[i] = std::min(into[i], part[i]); break;
      case CellOp::kMax: into[i] = std::max(into[i], part[i]); break;
    }
  }
}

std::vector<QueryResult> BatchPlan::build(std::span<const double> acc) const {
  RCR_CHECK_MSG(acc.size() == total_cells_, "cell buffer size mismatch");
  std::vector<QueryResult> results(specs_.size());
  for (std::size_t qi = 0; qi < specs_.size(); ++qi) {
    const QuerySpec& spec = specs_[qi];
    const Resolved& q = plan_[qi];
    const double* cells = acc.data() + q.base;
    QueryResult& res = results[qi];
    switch (spec.kind) {
      case SpecKind::kCrosstab:
      case SpecKind::kCrosstabMultiselect: {
        const auto& rows = table_.categorical(spec.a);
        res.crosstab.row_labels = rows.categories();
        res.crosstab.col_labels =
            spec.kind == SpecKind::kCrosstab
                ? table_.categorical(spec.b).categories()
                : table_.multiselect(spec.b).options();
        res.crosstab.counts = stats::Contingency(
            res.crosstab.row_labels.size(), res.crosstab.col_labels.size());
        for (std::size_t r = 0; r < res.crosstab.row_labels.size(); ++r)
          for (std::size_t c = 0; c < res.crosstab.col_labels.size(); ++c)
            res.crosstab.counts.at(r, c) = cells[r * q.cols_dim + c];
        break;
      }
      case SpecKind::kCategoryShares:
      case SpecKind::kOptionShares: {
        const double total = cells[q.cells - 1];
        RCR_CHECK_MSG(total > 0.0,
                      spec.kind == SpecKind::kCategoryShares
                          ? "category_shares: no answered rows"
                          : "option_shares: no answered rows");
        res.shares.reserve(q.cells - 1);
        for (std::size_t o = 0; o + 1 < q.cells; ++o) {
          data::OptionShare share;
          share.label = spec.kind == SpecKind::kCategoryShares
                            ? table_.categorical(spec.a).category(o)
                            : table_.multiselect(spec.a).option(o);
          share.count = cells[o];
          share.total = total;
          share.share = stats::wilson_ci(cells[o], total, spec.confidence);
          res.shares.push_back(std::move(share));
        }
        break;
      }
      case SpecKind::kWeightedOptionShare: {
        const double wnum = cells[0], wden = cells[1], wden2 = cells[2];
        RCR_CHECK_MSG(wden > 0.0, "no answered rows with positive weight");
        res.weighted.label = spec.option_label;
        res.weighted.count = wnum;
        res.weighted.total = wden;
        const double effective_n = wden * wden / wden2;
        res.weighted.share = stats::weighted_proportion_ci(
            wnum, wden, effective_n, spec.confidence);
        break;
      }
      case SpecKind::kNumericSummary: {
        res.numeric.count = cells[0];
        res.numeric.sum = cells[1];
        const bool empty = cells[0] == 0.0;
        res.numeric.min = empty ? data::NumericColumn::missing() : cells[2];
        res.numeric.max = empty ? data::NumericColumn::missing() : cells[3];
        break;
      }
      case SpecKind::kGroupAnswered: {
        res.group_counts.assign(cells, cells + q.cells);
        break;
      }
    }
  }
  return results;
}

}  // namespace rcr::query
