#include "query/reference.hpp"

#include "stats/ci.hpp"
#include "util/error.hpp"

namespace rcr::query::reference {

namespace {

// Weight of one row: 1.0 unweighted, else the weight cell (missing -> skip,
// signalled by returning a negative value). Note the per-row name lookup —
// this is exactly the cost the engine's hoisted spans remove.
double row_weight(const data::Table& table,
                  const std::optional<std::string>& weight_column,
                  std::size_t row) {
  if (!weight_column) return 1.0;
  const double w = table.numeric(*weight_column).at(row);
  if (data::NumericColumn::is_missing(w)) return -1.0;
  RCR_CHECK_MSG(w >= 0.0, "weights must be non-negative");
  return w;
}

}  // namespace

data::LabeledCrosstab crosstab(
    const data::Table& table, const std::string& row_column,
    const std::string& col_column,
    const std::optional<std::string>& weight_column) {
  const auto& rows = table.categorical(row_column);
  const auto& cols = table.categorical(col_column);
  RCR_CHECK_MSG(rows.category_count() > 0 && cols.category_count() > 0,
                "crosstab needs non-empty category sets");

  data::LabeledCrosstab out;
  out.row_labels = rows.categories();
  out.col_labels = cols.categories();
  out.counts = stats::Contingency(rows.category_count(), cols.category_count());

  table.validate_rectangular();
  for (std::size_t i = 0; i < table.row_count(); ++i) {
    if (rows.is_missing(i) || cols.is_missing(i)) continue;
    const double w = row_weight(table, weight_column, i);
    if (w < 0.0) continue;
    out.counts.add(static_cast<std::size_t>(rows.code_at(i)),
                   static_cast<std::size_t>(cols.code_at(i)), w);
  }
  return out;
}

data::LabeledCrosstab crosstab_multiselect(
    const data::Table& table, const std::string& row_column,
    const std::string& option_column,
    const std::optional<std::string>& weight_column) {
  const auto& rows = table.categorical(row_column);
  const auto& opts = table.multiselect(option_column);
  RCR_CHECK_MSG(rows.category_count() > 0 && opts.option_count() > 0,
                "crosstab needs non-empty category/option sets");

  data::LabeledCrosstab out;
  out.row_labels = rows.categories();
  out.col_labels = opts.options();
  out.counts = stats::Contingency(rows.category_count(), opts.option_count());

  table.validate_rectangular();
  for (std::size_t i = 0; i < table.row_count(); ++i) {
    if (rows.is_missing(i) || opts.is_missing(i)) continue;
    const double w = row_weight(table, weight_column, i);
    if (w < 0.0) continue;
    for (std::size_t o = 0; o < opts.option_count(); ++o) {
      if (opts.has(i, o))
        out.counts.add(static_cast<std::size_t>(rows.code_at(i)), o, w);
    }
  }
  return out;
}

std::vector<data::OptionShare> option_shares(const data::Table& table,
                                             const std::string& option_column,
                                             double confidence) {
  const auto& col = table.multiselect(option_column);
  double total = 0.0;
  for (std::size_t i = 0; i < col.size(); ++i)
    if (!col.is_missing(i)) total += 1.0;
  RCR_CHECK_MSG(total > 0.0, "option_shares: no answered rows");

  std::vector<data::OptionShare> out;
  const auto counts = col.option_counts();
  out.reserve(counts.size());
  for (std::size_t o = 0; o < counts.size(); ++o) {
    data::OptionShare share;
    share.label = col.option(o);
    share.count = counts[o];
    share.total = total;
    share.share = stats::wilson_ci(counts[o], total, confidence);
    out.push_back(std::move(share));
  }
  return out;
}

data::OptionShare weighted_option_share(const data::Table& table,
                                        const std::string& option_column,
                                        const std::string& option_label,
                                        std::span<const double> weights,
                                        double confidence) {
  const auto& col = table.multiselect(option_column);
  RCR_CHECK_MSG(weights.size() == col.size(),
                "weight vector does not match table rows");
  const std::int32_t o = col.find_option(option_label);
  RCR_CHECK_MSG(o >= 0, "unknown option '" + option_label + "'");
  double wnum = 0.0, wden = 0.0, wden2 = 0.0;
  for (std::size_t i = 0; i < col.size(); ++i) {
    if (col.is_missing(i)) continue;
    RCR_CHECK_MSG(weights[i] >= 0.0, "weights must be non-negative");
    wden += weights[i];
    wden2 += weights[i] * weights[i];
    if (col.has(i, static_cast<std::size_t>(o))) wnum += weights[i];
  }
  RCR_CHECK_MSG(wden > 0.0, "no answered rows with positive weight");
  data::OptionShare share;
  share.label = option_label;
  share.count = wnum;
  share.total = wden;
  const double effective_n = wden * wden / wden2;
  share.share =
      stats::weighted_proportion_ci(wnum, wden, effective_n, confidence);
  return share;
}

std::vector<data::OptionShare> category_shares(const data::Table& table,
                                               const std::string& column,
                                               double confidence) {
  const auto& col = table.categorical(column);
  double total = 0.0;
  for (std::size_t i = 0; i < col.size(); ++i)
    if (!col.is_missing(i)) total += 1.0;
  RCR_CHECK_MSG(total > 0.0, "category_shares: no answered rows");

  std::vector<data::OptionShare> out;
  const auto counts = col.counts();
  out.reserve(counts.size());
  for (std::size_t c = 0; c < counts.size(); ++c) {
    data::OptionShare share;
    share.label = col.category(c);
    share.count = counts[c];
    share.total = total;
    share.share = stats::wilson_ci(counts[c], total, confidence);
    out.push_back(std::move(share));
  }
  return out;
}

}  // namespace rcr::query::reference
