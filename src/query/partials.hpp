// The query engine's partial-aggregation layer, exposed as a public API.
//
// A batch of registered queries compiles into a BatchPlan: one flat vector
// of accumulator cells (every query owns a contiguous slice) plus the fused
// per-row kernels that fold rows into those cells. The plan factors the
// engine's single run() into four composable steps —
//
//   BatchPlan plan(table, specs);
//   std::vector<double> cells(plan.cell_count());
//   plan.init_cells(cells);            // identity: 0 for sums, ±inf min/max
//   plan.scan(lo, hi, cells);          // fold rows [lo, hi) INTO cells
//   plan.merge(into, part);            // cell-wise combine, caller-ordered
//   auto results = plan.build(cells);  // typed results + CIs from raw cells
//
// so callers other than QueryEngine::run() can own the scan/merge schedule.
// The incremental engine (rcr::incr) keeps a prefix of merged shard
// partials plus an open tail and extends the tail block by block; the
// snapshot page walker scans pages without materializing the table.
//
// Resumability contract: scan() ACCUMULATES — calling
//   scan(a, b, cells); scan(b, c, cells);
// executes the exact per-row instruction sequence of scan(a, c, cells), so
// splitting a shard across calls cannot change a single bit. The kernels
// preserve this by construction: counts tally as integers and fold in once
// per call (exact in double below 2^53 under any split), weighted kernels
// add per row into the live cells, and min/max are order-preserving folds
// from the ±inf identity.
//
// Shard layout: every consumer shards rows at the fixed kShardRows stride —
// shard k covers [k·kShardRows, min(n, (k+1)·kShardRows)). Unlike a layout
// derived from the total row count, appending rows only ever extends the
// ragged tail shard; all completed shard boundaries are append-invariant,
// which is what lets incremental partials match a cold recompute bitwise.
//
// Two plans over tables with identical schemas (same column names, kinds,
// category/option label vectors, in order) lay out identical cells, so a
// partial scanned from a delta block merges directly into an accumulator
// built against the base table.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/crosstab.hpp"
#include "data/table.hpp"

namespace rcr::query {

// Fixed shard stride (rows) for partial-merge layouts. Tables at or below
// this row count run as one shard, which reproduces the serial builders'
// left-to-right association bit-for-bit, weights included.
inline constexpr std::size_t kShardRows = 4096;

// Index of a registered query within its batch (registration order).
using QueryId = std::size_t;

// The query shapes the fused scan answers.
enum class SpecKind {
  kCrosstab,
  kCrosstabMultiselect,
  kCategoryShares,
  kOptionShares,
  kWeightedOptionShare,
  kNumericSummary,
  kGroupAnswered,
};

// A registered query. Field meanings follow QueryEngine's add_* methods;
// `ext_weights` (weighted option shares only) must outlive the plan.
struct QuerySpec {
  SpecKind kind;
  std::string a;                      // primary column
  std::string b;                      // secondary column (crosstabs, denominators)
  std::optional<std::string> weight;  // weight column (crosstabs)
  std::string option_label;           // weighted option share
  std::span<const double> ext_weights;
  double confidence = 0.95;
};

// One-pass summary of a numeric column (missing = NaN rows are skipped).
struct NumericSummary {
  double count = 0.0;  // non-missing rows (integer-valued)
  double sum = 0.0;
  double min = 0.0;    // NaN when count == 0
  double max = 0.0;    // NaN when count == 0

  double mean() const { return count > 0.0 ? sum / count : 0.0; }
};

// The typed result of one query; which member is populated depends on the
// spec's kind (crosstab serves both crosstab kinds).
struct QueryResult {
  data::LabeledCrosstab crosstab;
  std::vector<data::OptionShare> shares;
  data::OptionShare weighted;
  NumericSummary numeric;
  std::vector<double> group_counts;
};

// How one accumulator cell combines across partials.
enum class CellOp : std::uint8_t { kSum, kMin, kMax };

// A compiled batch: specs resolved to raw column spans and slices of one
// flat accumulator. The table and every spec's ext_weights must outlive the
// plan; the specs themselves are copied.
class BatchPlan {
 public:
  BatchPlan(const data::Table& table, std::span<const QuerySpec> specs);

  std::size_t cell_count() const { return total_cells_; }
  std::size_t query_count() const { return specs_.size(); }

  // Writes the merge identity: 0 for sum cells, +inf/-inf for min/max.
  void init_cells(std::span<double> cells) const;

  // Folds rows [lo, hi) into `cells` (must hold cell_count() values,
  // initialized via init_cells or holding a prior scan's state — see the
  // resumability contract above).
  void scan(std::size_t lo, std::size_t hi, std::span<double> cells) const;

  // Cell-wise combine of `part` into `into`. Callers order merges by shard
  // index to keep fractional weighted sums reproducible.
  void merge(std::span<double> into, std::span<const double> part) const;

  // Typed results from fully-merged cells. Labels come from the plan's
  // table; share kinds throw when a query saw no answered rows.
  std::vector<QueryResult> build(std::span<const double> cells) const;

 private:
  // A spec resolved to raw spans and its accumulator slice. Resolution
  // happens once at plan build — zero per-row name or map lookups after.
  struct Resolved {
    SpecKind kind = SpecKind::kCrosstab;
    std::span<const std::int32_t> codes_a;    // categorical primary
    std::span<const std::int32_t> codes_b;    // categorical secondary
    std::span<const std::uint64_t> masks;     // multi-select masks
    std::span<const std::uint8_t> ms_missing; // multi-select missing flags
    std::span<const double> values;           // numeric values / ext weights
    std::span<const double> weights;          // hoisted weight column (may be empty)
    std::span<const double> b_values;         // numeric answered column
    std::span<const std::uint8_t> b_ms_missing;
    data::ColumnKind b_kind = data::ColumnKind::kNumeric;
    std::uint64_t option_bit = 0;             // weighted option share
    std::size_t base = 0;                     // offset into the flat accumulator
    std::size_t cells = 0;
    std::size_t cols_dim = 0;                 // crosstab column count
  };

  const data::Table& table_;
  std::vector<QuerySpec> specs_;
  std::vector<Resolved> plan_;
  std::vector<CellOp> ops_;
  std::size_t total_cells_ = 0;
};

}  // namespace rcr::query
