#include "query/engine.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "parallel/algorithms.hpp"
#include "util/error.hpp"

namespace rcr::query {

namespace {

struct EngineMetrics {
  obs::Counter& runs = obs::registry().counter("query.runs");
  obs::Counter& queries = obs::registry().counter("query.queries");
  obs::Counter& rows = obs::registry().counter("query.rows");
  obs::Counter& fused_scans = obs::registry().counter("query.scan.fused");
  obs::Counter& naive_equivalent =
      obs::registry().counter("query.scan.naive_equivalent");
  obs::Histogram& run_ms = obs::registry().histogram("query.run.ms");
  obs::Histogram& merge_ms = obs::registry().histogram("query.merge.ms");
};

EngineMetrics& metrics() {
  static EngineMetrics m;
  return m;
}

}  // namespace

QueryEngine::QueryEngine(const data::Table& table) : table_(table) {}

QueryId QueryEngine::push_spec(QuerySpec spec) {
  specs_.push_back(std::move(spec));
  ran_ = false;
  return specs_.size() - 1;
}

QueryId QueryEngine::add_crosstab(
    const std::string& row_column, const std::string& col_column,
    const std::optional<std::string>& weight_column) {
  const auto& rows = table_.categorical(row_column);
  const auto& cols = table_.categorical(col_column);
  RCR_CHECK_MSG(rows.category_count() > 0 && cols.category_count() > 0,
                "crosstab needs non-empty category sets");
  if (weight_column) table_.numeric(*weight_column);  // validate name + kind
  return push_spec({SpecKind::kCrosstab, row_column, col_column, weight_column,
                    {}, {}, 0.95});
}

QueryId QueryEngine::add_crosstab_multiselect(
    const std::string& row_column, const std::string& option_column,
    const std::optional<std::string>& weight_column) {
  const auto& rows = table_.categorical(row_column);
  const auto& opts = table_.multiselect(option_column);
  RCR_CHECK_MSG(rows.category_count() > 0 && opts.option_count() > 0,
                "crosstab needs non-empty category/option sets");
  if (weight_column) table_.numeric(*weight_column);
  return push_spec({SpecKind::kCrosstabMultiselect, row_column, option_column,
                    weight_column, {}, {}, 0.95});
}

QueryId QueryEngine::add_category_shares(const std::string& column,
                                         double confidence) {
  table_.categorical(column);
  return push_spec(
      {SpecKind::kCategoryShares, column, {}, {}, {}, {}, confidence});
}

QueryId QueryEngine::add_option_shares(const std::string& option_column,
                                       double confidence) {
  table_.multiselect(option_column);
  return push_spec(
      {SpecKind::kOptionShares, option_column, {}, {}, {}, {}, confidence});
}

QueryId QueryEngine::add_weighted_option_share(
    const std::string& option_column, const std::string& option_label,
    std::span<const double> weights, double confidence) {
  const auto& col = table_.multiselect(option_column);
  RCR_CHECK_MSG(weights.size() == col.size(),
                "weight vector does not match table rows");
  RCR_CHECK_MSG(col.find_option(option_label) >= 0,
                "unknown option '" + option_label + "'");
  return push_spec({SpecKind::kWeightedOptionShare, option_column, {}, {},
                    option_label, weights, confidence});
}

QueryId QueryEngine::add_numeric_summary(const std::string& column) {
  table_.numeric(column);
  return push_spec(
      {SpecKind::kNumericSummary, column, {}, {}, {}, {}, 0.95});
}

QueryId QueryEngine::add_group_answered(const std::string& group_column,
                                        const std::string& answered_column) {
  const auto& groups = table_.categorical(group_column);
  RCR_CHECK_MSG(groups.category_count() > 0,
                "group_answered needs a non-empty category set");
  table_.kind(answered_column);  // validates the column exists
  return push_spec({SpecKind::kGroupAnswered, group_column, answered_column,
                    {}, {}, {}, 0.95});
}

void QueryEngine::run(parallel::ThreadPool* pool) {
  obs::ScopedTimer run_timer(metrics().run_ms);
  const std::size_t n = table_.row_count();

  const BatchPlan plan(table_, specs_);
  const std::size_t cell_count = plan.cell_count();

  // --- Execute: fixed-stride shard layout; pooled and serial paths walk
  // --- identical shards and merge in identical index order.
  const std::size_t shards = (n + kShardRows - 1) / kShardRows;
  std::vector<std::vector<double>> partials(shards);
  const auto scan_shard = [&](std::size_t k) {
    std::vector<double> part(cell_count);
    plan.init_cells(part);
    plan.scan(k * kShardRows, std::min(n, (k + 1) * kShardRows), part);
    partials[k] = std::move(part);
  };
  if (pool != nullptr && shards > 1) {
    parallel::parallel_for(*pool, 0, shards,
                           [&](std::size_t k) { scan_shard(k); });
  } else {
    for (std::size_t k = 0; k < shards; ++k) scan_shard(k);
  }

  std::vector<double> acc(cell_count);
  plan.init_cells(acc);
  {
    obs::ScopedTimer merge_timer(metrics().merge_ms);
    for (const std::vector<double>& part : partials) plan.merge(acc, part);
  }

  results_ = plan.build(acc);
  ran_ = true;

  metrics().runs.add(1);
  metrics().queries.add(specs_.size());
  metrics().rows.add(n);
  metrics().fused_scans.add(1);
  metrics().naive_equivalent.add(specs_.size());
}

const QueryResult& QueryEngine::result_of(QueryId id, SpecKind kind) const {
  RCR_CHECK_MSG(ran_, "QueryEngine::run() has not been called");
  RCR_CHECK_MSG(id < specs_.size(), "unknown query id");
  RCR_CHECK_MSG(specs_[id].kind == kind, "query id refers to another kind");
  return results_[id];
}

const data::LabeledCrosstab& QueryEngine::crosstab(QueryId id) const {
  RCR_CHECK_MSG(ran_, "QueryEngine::run() has not been called");
  RCR_CHECK_MSG(id < specs_.size(), "unknown query id");
  RCR_CHECK_MSG(specs_[id].kind == SpecKind::kCrosstab ||
                    specs_[id].kind == SpecKind::kCrosstabMultiselect,
                "query id refers to another kind");
  return results_[id].crosstab;
}

const std::vector<data::OptionShare>& QueryEngine::shares(QueryId id) const {
  RCR_CHECK_MSG(ran_, "QueryEngine::run() has not been called");
  RCR_CHECK_MSG(id < specs_.size(), "unknown query id");
  RCR_CHECK_MSG(specs_[id].kind == SpecKind::kCategoryShares ||
                    specs_[id].kind == SpecKind::kOptionShares,
                "query id refers to another kind");
  return results_[id].shares;
}

const data::OptionShare& QueryEngine::weighted_share(QueryId id) const {
  return result_of(id, SpecKind::kWeightedOptionShare).weighted;
}

const NumericSummary& QueryEngine::numeric(QueryId id) const {
  return result_of(id, SpecKind::kNumericSummary).numeric;
}

const std::vector<double>& QueryEngine::group_answered(QueryId id) const {
  return result_of(id, SpecKind::kGroupAnswered).group_counts;
}

const QueryResult& QueryEngine::raw_result(QueryId id) const {
  RCR_CHECK_MSG(ran_, "QueryEngine::run() has not been called");
  RCR_CHECK_MSG(id < specs_.size(), "unknown query id");
  return results_[id];
}

SpecKind QueryEngine::kind_of(QueryId id) const {
  RCR_CHECK_MSG(id < specs_.size(), "unknown query id");
  return specs_[id].kind;
}

}  // namespace rcr::query
