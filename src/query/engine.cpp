#include "query/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "parallel/algorithms.hpp"
#include "simd/kernels.hpp"
#include "stats/ci.hpp"
#include "util/error.hpp"

namespace rcr::query {

namespace {

struct EngineMetrics {
  obs::Counter& runs = obs::registry().counter("query.runs");
  obs::Counter& queries = obs::registry().counter("query.queries");
  obs::Counter& rows = obs::registry().counter("query.rows");
  obs::Counter& fused_scans = obs::registry().counter("query.scan.fused");
  obs::Counter& naive_equivalent =
      obs::registry().counter("query.scan.naive_equivalent");
  obs::Histogram& run_ms = obs::registry().histogram("query.run.ms");
  obs::Histogram& merge_ms = obs::registry().histogram("query.merge.ms");
};

EngineMetrics& metrics() {
  static EngineMetrics m;
  return m;
}

// How each accumulator cell combines across shards. Sum cells start at 0,
// min/max cells at ±inf; both merge order-insensitively cell-wise, and the
// merge still runs in shard-index order so every cell is reproducible.
enum class CellOp : std::uint8_t { kSum, kMin, kMax };

// A registered query with its columns resolved to raw spans and its slice
// of the flat accumulator. Resolution happens once per run() — zero per-row
// name or map lookups afterwards.
struct Resolved {
  // Mirrors QueryEngine::Kind (kept as int to stay private to the engine).
  int kind = 0;
  std::span<const std::int32_t> codes_a;    // categorical primary
  std::span<const std::int32_t> codes_b;    // categorical secondary
  std::span<const std::uint64_t> masks;     // multi-select masks
  std::span<const std::uint8_t> ms_missing; // multi-select missing flags
  std::span<const double> values;           // numeric values / ext weights
  std::span<const double> weights;          // hoisted weight column (may be empty)
  std::span<const double> b_values;         // numeric answered column
  std::span<const std::uint8_t> b_ms_missing;
  data::ColumnKind b_kind = data::ColumnKind::kNumeric;
  std::uint64_t option_bit = 0;             // weighted option share
  std::size_t base = 0;                     // offset into the flat accumulator
  std::size_t cells = 0;
  std::size_t cols_dim = 0;                 // crosstab column count
};

double row_weight_or_skip(std::span<const double> weights, std::size_t i,
                          bool& skip) {
  // Matches the direct builders: missing weight drops the row, a negative
  // weight is a hard error (safe to throw here even on a pool worker — the
  // pool rethrows the first task exception on the calling thread).
  const double w = weights[i];
  if (data::NumericColumn::is_missing(w)) {
    skip = true;
    return 0.0;
  }
  RCR_CHECK_MSG(w >= 0.0, "weights must be non-negative");
  skip = false;
  return w;
}

}  // namespace

QueryEngine::QueryEngine(const data::Table& table) : table_(table) {}

QueryId QueryEngine::push_spec(Spec spec) {
  specs_.push_back(std::move(spec));
  ran_ = false;
  return specs_.size() - 1;
}

QueryId QueryEngine::add_crosstab(
    const std::string& row_column, const std::string& col_column,
    const std::optional<std::string>& weight_column) {
  const auto& rows = table_.categorical(row_column);
  const auto& cols = table_.categorical(col_column);
  RCR_CHECK_MSG(rows.category_count() > 0 && cols.category_count() > 0,
                "crosstab needs non-empty category sets");
  if (weight_column) table_.numeric(*weight_column);  // validate name + kind
  return push_spec({Kind::kCrosstab, row_column, col_column, weight_column,
                    {}, {}, 0.95});
}

QueryId QueryEngine::add_crosstab_multiselect(
    const std::string& row_column, const std::string& option_column,
    const std::optional<std::string>& weight_column) {
  const auto& rows = table_.categorical(row_column);
  const auto& opts = table_.multiselect(option_column);
  RCR_CHECK_MSG(rows.category_count() > 0 && opts.option_count() > 0,
                "crosstab needs non-empty category/option sets");
  if (weight_column) table_.numeric(*weight_column);
  return push_spec({Kind::kCrosstabMultiselect, row_column, option_column,
                    weight_column, {}, {}, 0.95});
}

QueryId QueryEngine::add_category_shares(const std::string& column,
                                         double confidence) {
  table_.categorical(column);
  return push_spec({Kind::kCategoryShares, column, {}, {}, {}, {}, confidence});
}

QueryId QueryEngine::add_option_shares(const std::string& option_column,
                                       double confidence) {
  table_.multiselect(option_column);
  return push_spec(
      {Kind::kOptionShares, option_column, {}, {}, {}, {}, confidence});
}

QueryId QueryEngine::add_weighted_option_share(
    const std::string& option_column, const std::string& option_label,
    std::span<const double> weights, double confidence) {
  const auto& col = table_.multiselect(option_column);
  RCR_CHECK_MSG(weights.size() == col.size(),
                "weight vector does not match table rows");
  RCR_CHECK_MSG(col.find_option(option_label) >= 0,
                "unknown option '" + option_label + "'");
  return push_spec({Kind::kWeightedOptionShare, option_column, {}, {},
                    option_label, weights, confidence});
}

QueryId QueryEngine::add_numeric_summary(const std::string& column) {
  table_.numeric(column);
  return push_spec({Kind::kNumericSummary, column, {}, {}, {}, {}, 0.95});
}

QueryId QueryEngine::add_group_answered(const std::string& group_column,
                                        const std::string& answered_column) {
  const auto& groups = table_.categorical(group_column);
  RCR_CHECK_MSG(groups.category_count() > 0,
                "group_answered needs a non-empty category set");
  table_.kind(answered_column);  // validates the column exists
  return push_spec({Kind::kGroupAnswered, group_column, answered_column, {},
                    {}, {}, 0.95});
}

void QueryEngine::run(parallel::ThreadPool* pool) {
  obs::ScopedTimer run_timer(metrics().run_ms);
  table_.validate_rectangular();
  const std::size_t n = table_.row_count();

  // --- Plan: resolve every query to raw spans and a flat-accumulator slice.
  std::vector<Resolved> plan;
  plan.reserve(specs_.size());
  std::vector<CellOp> ops;
  std::size_t total_cells = 0;
  for (const Spec& spec : specs_) {
    Resolved q;
    q.kind = static_cast<int>(spec.kind);
    q.base = total_cells;
    switch (spec.kind) {
      case Kind::kCrosstab: {
        const auto& rows = table_.categorical(spec.a);
        const auto& cols = table_.categorical(spec.b);
        q.codes_a = rows.codes();
        q.codes_b = cols.codes();
        q.cols_dim = cols.category_count();
        q.cells = rows.category_count() * cols.category_count();
        break;
      }
      case Kind::kCrosstabMultiselect: {
        const auto& rows = table_.categorical(spec.a);
        const auto& opts = table_.multiselect(spec.b);
        q.codes_a = rows.codes();
        q.masks = opts.masks();
        q.ms_missing = opts.missing_flags();
        q.cols_dim = opts.option_count();
        q.cells = rows.category_count() * opts.option_count();
        break;
      }
      case Kind::kCategoryShares: {
        const auto& col = table_.categorical(spec.a);
        q.codes_a = col.codes();
        q.cells = col.category_count() + 1;  // counts..., answered total
        break;
      }
      case Kind::kOptionShares: {
        const auto& col = table_.multiselect(spec.a);
        q.masks = col.masks();
        q.ms_missing = col.missing_flags();
        q.cells = col.option_count() + 1;  // counts..., answered total
        break;
      }
      case Kind::kWeightedOptionShare: {
        const auto& col = table_.multiselect(spec.a);
        q.masks = col.masks();
        q.ms_missing = col.missing_flags();
        q.values = spec.ext_weights;
        q.option_bit = std::uint64_t{1} << static_cast<std::uint64_t>(
                           col.find_option(spec.option_label));
        q.cells = 3;  // wnum, wden, wden2
        break;
      }
      case Kind::kNumericSummary: {
        q.values = table_.numeric(spec.a).values();
        q.cells = 4;  // count, sum, min, max
        break;
      }
      case Kind::kGroupAnswered: {
        const auto& groups = table_.categorical(spec.a);
        q.codes_a = groups.codes();
        q.b_kind = table_.kind(spec.b);
        switch (q.b_kind) {
          case data::ColumnKind::kNumeric:
            q.b_values = table_.numeric(spec.b).values();
            break;
          case data::ColumnKind::kCategorical:
            q.codes_b = table_.categorical(spec.b).codes();
            break;
          case data::ColumnKind::kMultiSelect:
            q.b_ms_missing = table_.multiselect(spec.b).missing_flags();
            break;
        }
        q.cells = groups.category_count();
        break;
      }
    }
    // Weight columns are resolved once per run and the span shared by every
    // query that names the same column (spans into the same storage).
    if (spec.weight) q.weights = table_.numeric(*spec.weight).values();
    total_cells += q.cells;
    ops.resize(total_cells, CellOp::kSum);
    if (spec.kind == Kind::kNumericSummary) {
      ops[q.base + 2] = CellOp::kMin;
      ops[q.base + 3] = CellOp::kMax;
    }
    plan.push_back(q);
  }

  const auto make_identity = [&] {
    std::vector<double> acc(total_cells, 0.0);
    for (std::size_t i = 0; i < total_cells; ++i) {
      if (ops[i] == CellOp::kMin)
        acc[i] = std::numeric_limits<double>::infinity();
      else if (ops[i] == CellOp::kMax)
        acc[i] = -std::numeric_limits<double>::infinity();
    }
    return acc;
  };

  // One shard's pass: every query's kernel sweeps [lo, hi) while those rows
  // are cache-resident — the fused scan.
  const auto scan_shard = [&](std::size_t lo, std::size_t hi) {
    std::vector<double> acc = make_identity();
    for (const Resolved& q : plan) {
      double* cells = acc.data() + q.base;
      switch (static_cast<Kind>(q.kind)) {
        case Kind::kCrosstab: {
          const bool weighted = !q.weights.empty();
          for (std::size_t i = lo; i < hi; ++i) {
            const std::int32_t r = q.codes_a[i], c = q.codes_b[i];
            if (r < 0 || c < 0) continue;
            double w = 1.0;
            if (weighted) {
              bool skip = false;
              w = row_weight_or_skip(q.weights, i, skip);
              if (skip) continue;
            }
            cells[static_cast<std::size_t>(r) * q.cols_dim +
                  static_cast<std::size_t>(c)] += w;
          }
          break;
        }
        // The multi-select kernels lean on the storage invariant that a
        // missing row is an all-zero mask: tallying every option of a zero
        // mask adds nothing, so the per-option loop needs no per-row flag
        // branch. Both forms run through rcr::simd at the dispatched lane
        // width: unweighted cells tally as integers (exact in double below
        // 2^53); weighted cells add a bitwise select of w or +0.0 per
        // option (`w * bit` without the multiply), and += 0.0 on a
        // non-negative accumulator is a bitwise no-op — so every width
        // reproduces the reference builders' per-selection adds bit for
        // bit (pinned by the determinism suite).
        case Kind::kCrosstabMultiselect: {
          const bool weighted = !q.weights.empty();
          if (!weighted) {
            std::vector<std::uint64_t> tallies(q.cells, 0);
            simd::tally_multiselect(q.codes_a.data(), q.masks.data(), lo, hi,
                                    q.cols_dim, tallies.data());
            for (std::size_t cell = 0; cell < q.cells; ++cell)
              cells[cell] += static_cast<double>(tallies[cell]);
            break;
          }
          // The kernel inlines row_weight_or_skip's contract: NaN weight
          // drops the row, negative throws.
          simd::add_weighted_multiselect(q.codes_a.data(), q.masks.data(),
                                         q.ms_missing.data(),
                                         q.weights.data(), lo, hi,
                                         q.cols_dim, cells);
          break;
        }
        // Both share kinds tally the answered total as an integer and fold
        // it in once per shard: the per-row `+= 1.0` it replaces is a
        // serial FP dependency chain the whole scan stalls on, and integer
        // counts below 2^53 are exact in double under any order, so the
        // bits cannot differ.
        case Kind::kCategoryShares: {
          std::size_t missing = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            const std::int32_t c = q.codes_a[i];
            if (c < 0) { ++missing; continue; }
            cells[static_cast<std::size_t>(c)] += 1.0;
          }
          cells[q.cells - 1] += static_cast<double>(hi - lo - missing);
          break;
        }
        case Kind::kOptionShares: {
          const std::size_t n_opts = q.cells - 1;
          std::uint64_t tallies[data::MultiSelectColumn::kMaxOptions] = {};
          const std::size_t missing = simd::tally_options(
              q.masks.data(), q.ms_missing.data(), lo, hi, n_opts, tallies);
          for (std::size_t o = 0; o < n_opts; ++o)
            cells[o] += static_cast<double>(tallies[o]);
          cells[q.cells - 1] += static_cast<double>(hi - lo - missing);
          break;
        }
        case Kind::kWeightedOptionShare: {
          for (std::size_t i = lo; i < hi; ++i) {
            if (q.ms_missing[i] != 0) continue;
            const double w = q.values[i];
            RCR_CHECK_MSG(w >= 0.0, "weights must be non-negative");
            cells[1] += w;
            cells[2] += w * w;
            if ((q.masks[i] & q.option_bit) != 0) cells[0] += w;
          }
          break;
        }
        case Kind::kNumericSummary: {
          for (std::size_t i = lo; i < hi; ++i) {
            const double v = q.values[i];
            if (data::NumericColumn::is_missing(v)) continue;
            cells[0] += 1.0;
            cells[1] += v;
            cells[2] = std::min(cells[2], v);
            cells[3] = std::max(cells[3], v);
          }
          break;
        }
        case Kind::kGroupAnswered: {
          for (std::size_t i = lo; i < hi; ++i) {
            const std::int32_t g = q.codes_a[i];
            if (g < 0) continue;
            bool answered = true;
            switch (q.b_kind) {
              case data::ColumnKind::kNumeric:
                answered = !data::NumericColumn::is_missing(q.b_values[i]);
                break;
              case data::ColumnKind::kCategorical:
                answered = q.codes_b[i] >= 0;
                break;
              case data::ColumnKind::kMultiSelect:
                answered = q.b_ms_missing[i] == 0;
                break;
            }
            if (answered) cells[static_cast<std::size_t>(g)] += 1.0;
          }
          break;
        }
      }
    }
    return acc;
  };

  // --- Execute: pure-function shard layout; pooled and serial paths walk
  // --- identical shards and merge in identical index order.
  const std::size_t grain = std::max(
      kMinShardRows, (n + parallel::kReduceChunkTarget - 1) /
                         parallel::kReduceChunkTarget);
  const auto layout = parallel::chunk_layout(0, n, grain);
  std::vector<std::vector<double>> partials(layout.chunks);
  if (pool != nullptr && layout.chunks > 1) {
    parallel::parallel_for_chunks(
        *pool, 0, n,
        [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
          partials[chunk] = scan_shard(lo, hi);
        },
        {parallel::Schedule::kStatic, grain});
  } else {
    for (std::size_t k = 0; k < layout.chunks; ++k) {
      const auto [lo, hi] = layout.bounds(k);
      partials[k] = scan_shard(lo, hi);
    }
  }

  std::vector<double> acc = make_identity();
  {
    obs::ScopedTimer merge_timer(metrics().merge_ms);
    for (const std::vector<double>& part : partials) {
      for (std::size_t i = 0; i < total_cells; ++i) {
        switch (ops[i]) {
          case CellOp::kSum: acc[i] += part[i]; break;
          case CellOp::kMin: acc[i] = std::min(acc[i], part[i]); break;
          case CellOp::kMax: acc[i] = std::max(acc[i], part[i]); break;
        }
      }
    }
  }

  // --- Build the typed results from the merged cells.
  results_.assign(specs_.size(), Result{});
  for (std::size_t qi = 0; qi < specs_.size(); ++qi) {
    const Spec& spec = specs_[qi];
    const Resolved& q = plan[qi];
    const double* cells = acc.data() + q.base;
    Result& res = results_[qi];
    switch (spec.kind) {
      case Kind::kCrosstab:
      case Kind::kCrosstabMultiselect: {
        const auto& rows = table_.categorical(spec.a);
        res.crosstab.row_labels = rows.categories();
        res.crosstab.col_labels = spec.kind == Kind::kCrosstab
                                      ? table_.categorical(spec.b).categories()
                                      : table_.multiselect(spec.b).options();
        res.crosstab.counts = stats::Contingency(
            res.crosstab.row_labels.size(), res.crosstab.col_labels.size());
        for (std::size_t r = 0; r < res.crosstab.row_labels.size(); ++r)
          for (std::size_t c = 0; c < res.crosstab.col_labels.size(); ++c)
            res.crosstab.counts.at(r, c) = cells[r * q.cols_dim + c];
        break;
      }
      case Kind::kCategoryShares:
      case Kind::kOptionShares: {
        const double total = cells[q.cells - 1];
        RCR_CHECK_MSG(total > 0.0,
                      spec.kind == Kind::kCategoryShares
                          ? "category_shares: no answered rows"
                          : "option_shares: no answered rows");
        res.shares.reserve(q.cells - 1);
        for (std::size_t o = 0; o + 1 < q.cells; ++o) {
          data::OptionShare share;
          share.label = spec.kind == Kind::kCategoryShares
                            ? table_.categorical(spec.a).category(o)
                            : table_.multiselect(spec.a).option(o);
          share.count = cells[o];
          share.total = total;
          share.share = stats::wilson_ci(cells[o], total, spec.confidence);
          res.shares.push_back(std::move(share));
        }
        break;
      }
      case Kind::kWeightedOptionShare: {
        const double wnum = cells[0], wden = cells[1], wden2 = cells[2];
        RCR_CHECK_MSG(wden > 0.0, "no answered rows with positive weight");
        res.weighted.label = spec.option_label;
        res.weighted.count = wnum;
        res.weighted.total = wden;
        const double effective_n = wden * wden / wden2;
        res.weighted.share = stats::weighted_proportion_ci(
            wnum, wden, effective_n, spec.confidence);
        break;
      }
      case Kind::kNumericSummary: {
        res.numeric.count = cells[0];
        res.numeric.sum = cells[1];
        const bool empty = cells[0] == 0.0;
        res.numeric.min = empty ? data::NumericColumn::missing() : cells[2];
        res.numeric.max = empty ? data::NumericColumn::missing() : cells[3];
        break;
      }
      case Kind::kGroupAnswered: {
        res.group_counts.assign(cells, cells + q.cells);
        break;
      }
    }
  }
  ran_ = true;

  metrics().runs.add(1);
  metrics().queries.add(specs_.size());
  metrics().rows.add(n);
  metrics().fused_scans.add(1);
  metrics().naive_equivalent.add(specs_.size());
}

const QueryEngine::Result& QueryEngine::result_of(QueryId id,
                                                  Kind kind) const {
  RCR_CHECK_MSG(ran_, "QueryEngine::run() has not been called");
  RCR_CHECK_MSG(id < specs_.size(), "unknown query id");
  RCR_CHECK_MSG(specs_[id].kind == kind, "query id refers to another kind");
  return results_[id];
}

const data::LabeledCrosstab& QueryEngine::crosstab(QueryId id) const {
  RCR_CHECK_MSG(ran_, "QueryEngine::run() has not been called");
  RCR_CHECK_MSG(id < specs_.size(), "unknown query id");
  RCR_CHECK_MSG(specs_[id].kind == Kind::kCrosstab ||
                    specs_[id].kind == Kind::kCrosstabMultiselect,
                "query id refers to another kind");
  return results_[id].crosstab;
}

const std::vector<data::OptionShare>& QueryEngine::shares(QueryId id) const {
  RCR_CHECK_MSG(ran_, "QueryEngine::run() has not been called");
  RCR_CHECK_MSG(id < specs_.size(), "unknown query id");
  RCR_CHECK_MSG(specs_[id].kind == Kind::kCategoryShares ||
                    specs_[id].kind == Kind::kOptionShares,
                "query id refers to another kind");
  return results_[id].shares;
}

const data::OptionShare& QueryEngine::weighted_share(QueryId id) const {
  return result_of(id, Kind::kWeightedOptionShare).weighted;
}

const NumericSummary& QueryEngine::numeric(QueryId id) const {
  return result_of(id, Kind::kNumericSummary).numeric;
}

const std::vector<double>& QueryEngine::group_answered(QueryId id) const {
  return result_of(id, Kind::kGroupAnswered).group_counts;
}

}  // namespace rcr::query
