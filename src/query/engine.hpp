// Fused aggregation engine: one sharded scan answers a whole batch of
// table queries.
//
// Every reproduced table/figure asks the same shapes of question — crosstab
// two columns, share of each multi-select option, weighted share of one
// option, summarize a numeric column — and the direct data:: builders each
// answer with their own serial full-table scan. QueryEngine instead lets a
// caller register the whole batch up front and executes it in ONE pass:
//
//   query::QueryEngine engine(table);
//   const auto ct = engine.add_crosstab("field", "career_stage");
//   const auto ls = engine.add_option_shares("languages");
//   engine.run(pool);                     // one sharded scan, all queries
//   engine.crosstab(ct); engine.shares(ls);
//
// Execution model. The row range splits via parallel::chunk_layout with a
// grain that is a pure function of the row count (never the pool), and each
// shard accumulates every query's cells into one flat partial vector while
// the shard's rows are cache-resident. Partials merge cell-wise in shard
// index order, so results are bitwise identical run-to-run and across
// thread counts — the serial (pool == nullptr) path walks the exact same
// layout. Tables at or below kMinShardRows run as a single shard, which
// makes every query — including arbitrarily-weighted sums — carry exactly
// the serial builders' left-to-right association; above that, count-style
// accumulators stay exact (integer counts are associative in double below
// 2^53) while fractional weighted sums reassociate at shard boundaries,
// deterministically (same caveat StreamingCrosstab documents).
//
// Per-query kernels read hoisted raw spans (codes/masks/values): no per-row
// name lookup, no per-row virtual dispatch. Multi-select cells tally with
// fixed-trip branchless per-option loops over the raw bitmasks (missing
// rows are all-zero masks, so no per-row flag branch is needed) instead of
// the builders' per-option has() probing; integer tallies and w·bit adds
// keep the results bit-identical to per-selection accumulation. Queries
// naming the same weight column share one name→span resolution.
//
// Instrumented through rcr::obs: query.runs / query.queries / query.rows,
// query.run.ms / query.merge.ms, and the fused-vs-naive scan counters
// query.scan.fused (sharded passes actually executed) vs
// query.scan.naive_equivalent (full-table scans the per-query builders
// would have made for the same batch).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/crosstab.hpp"
#include "data/table.hpp"
#include "parallel/thread_pool.hpp"

namespace rcr::query {

// Tables at or below this row count run as one shard: every result then
// reproduces the serial builders' association bit-for-bit, weights included.
inline constexpr std::size_t kMinShardRows = 4096;

// One-pass summary of a numeric column (missing = NaN rows are skipped).
struct NumericSummary {
  double count = 0.0;  // non-missing rows (integer-valued)
  double sum = 0.0;
  double min = 0.0;    // NaN when count == 0
  double max = 0.0;    // NaN when count == 0

  double mean() const { return count > 0.0 ? sum / count : 0.0; }
};

using QueryId = std::size_t;

class QueryEngine {
 public:
  explicit QueryEngine(const data::Table& table);

  // --- Registration (validates columns; same errors, same messages, as the
  // --- direct data:: builders). Returns the id to fetch the result with.
  QueryId add_crosstab(const std::string& row_column,
                       const std::string& col_column,
                       const std::optional<std::string>& weight_column = {});
  QueryId add_crosstab_multiselect(
      const std::string& row_column, const std::string& option_column,
      const std::optional<std::string>& weight_column = {});
  QueryId add_category_shares(const std::string& column,
                              double confidence = 0.95);
  QueryId add_option_shares(const std::string& option_column,
                            double confidence = 0.95);
  // `weights` must outlive run(); one entry per table row.
  QueryId add_weighted_option_share(const std::string& option_column,
                                    const std::string& option_label,
                                    std::span<const double> weights,
                                    double confidence = 0.95);
  QueryId add_numeric_summary(const std::string& column);
  // Rows per category of `group_column` that answered `answered_column`
  // (any column kind) — the denominator the per-field share tables need.
  QueryId add_group_answered(const std::string& group_column,
                             const std::string& answered_column);

  // Executes every registered query in one sharded pass. pool == nullptr
  // walks the same shard layout serially (bitwise-identical results).
  // May be called again after registering more queries; recomputes all.
  void run(parallel::ThreadPool* pool = nullptr);

  bool ran() const { return ran_; }
  std::size_t query_count() const { return specs_.size(); }

  // --- Results (valid after run(); checked against the query's kind).
  const data::LabeledCrosstab& crosstab(QueryId id) const;
  const std::vector<data::OptionShare>& shares(QueryId id) const;
  const data::OptionShare& weighted_share(QueryId id) const;
  const NumericSummary& numeric(QueryId id) const;
  const std::vector<double>& group_answered(QueryId id) const;

 private:
  enum class Kind {
    kCrosstab,
    kCrosstabMultiselect,
    kCategoryShares,
    kOptionShares,
    kWeightedOptionShare,
    kNumericSummary,
    kGroupAnswered,
  };

  struct Spec {
    Kind kind;
    std::string a;                      // primary column
    std::string b;                      // secondary column (crosstabs, denominators)
    std::optional<std::string> weight;  // weight column (crosstabs)
    std::string option_label;           // weighted option share
    std::span<const double> ext_weights;
    double confidence = 0.95;
  };

  struct Result {
    data::LabeledCrosstab crosstab;
    std::vector<data::OptionShare> shares;
    data::OptionShare weighted;
    NumericSummary numeric;
    std::vector<double> group_counts;
  };

  QueryId push_spec(Spec spec);
  const Result& result_of(QueryId id, Kind kind) const;

  const data::Table& table_;
  std::vector<Spec> specs_;
  std::vector<Result> results_;
  bool ran_ = false;
};

}  // namespace rcr::query
