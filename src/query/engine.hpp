// Fused aggregation engine: one sharded scan answers a whole batch of
// table queries.
//
// Every reproduced table/figure asks the same shapes of question — crosstab
// two columns, share of each multi-select option, weighted share of one
// option, summarize a numeric column — and the direct data:: builders each
// answer with their own serial full-table scan. QueryEngine instead lets a
// caller register the whole batch up front and executes it in ONE pass:
//
//   query::QueryEngine engine(table);
//   const auto ct = engine.add_crosstab("field", "career_stage");
//   const auto ls = engine.add_option_shares("languages");
//   engine.run(pool);                     // one sharded scan, all queries
//   engine.crosstab(ct); engine.shares(ls);
//
// Execution model. Rows shard at the fixed kShardRows stride (shard k is
// [k·kShardRows, min(n, (k+1)·kShardRows)) — a pure function of the row
// index, never of the row count or the pool), and each shard accumulates
// every query's cells into one flat partial vector while the shard's rows
// are cache-resident. Partials merge cell-wise in shard index order, so
// results are bitwise identical run-to-run and across thread counts — the
// serial (pool == nullptr) path walks the exact same layout. Because the
// stride is append-invariant (new rows only ever extend the ragged tail
// shard), the incremental engine (rcr::incr) reproduces these exact bits
// by extending partials block by block. Tables at or below kShardRows run
// as a single shard, which makes every query — including arbitrarily-
// weighted sums — carry exactly the serial builders' left-to-right
// association; above that, count-style accumulators stay exact (integer
// counts are associative in double below 2^53) while fractional weighted
// sums reassociate at shard boundaries, deterministically (same caveat
// StreamingCrosstab documents).
//
// The plan/scan/merge/build machinery itself lives in query/partials.hpp
// (BatchPlan) so other schedulers — the incremental engine, the snapshot
// page walker — can drive the same kernels; this class owns registration,
// validation, the shard schedule, and result storage.
//
// Instrumented through rcr::obs: query.runs / query.queries / query.rows,
// query.run.ms / query.merge.ms, and the fused-vs-naive scan counters
// query.scan.fused (sharded passes actually executed) vs
// query.scan.naive_equivalent (full-table scans the per-query builders
// would have made for the same batch).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/crosstab.hpp"
#include "data/table.hpp"
#include "parallel/thread_pool.hpp"
#include "query/partials.hpp"

namespace rcr::query {

// Historical name for the single-shard threshold; the stride now lives in
// partials.hpp as kShardRows (the two are one constant).
inline constexpr std::size_t kMinShardRows = kShardRows;

class QueryEngine {
 public:
  explicit QueryEngine(const data::Table& table);

  // --- Registration (validates columns; same errors, same messages, as the
  // --- direct data:: builders). Returns the id to fetch the result with.
  QueryId add_crosstab(const std::string& row_column,
                       const std::string& col_column,
                       const std::optional<std::string>& weight_column = {});
  QueryId add_crosstab_multiselect(
      const std::string& row_column, const std::string& option_column,
      const std::optional<std::string>& weight_column = {});
  QueryId add_category_shares(const std::string& column,
                              double confidence = 0.95);
  QueryId add_option_shares(const std::string& option_column,
                            double confidence = 0.95);
  // `weights` must outlive run(); one entry per table row.
  QueryId add_weighted_option_share(const std::string& option_column,
                                    const std::string& option_label,
                                    std::span<const double> weights,
                                    double confidence = 0.95);
  QueryId add_numeric_summary(const std::string& column);
  // Rows per category of `group_column` that answered `answered_column`
  // (any column kind) — the denominator the per-field share tables need.
  QueryId add_group_answered(const std::string& group_column,
                             const std::string& answered_column);

  // Executes every registered query in one sharded pass. pool == nullptr
  // walks the same shard layout serially (bitwise-identical results).
  // May be called again after registering more queries; recomputes all.
  void run(parallel::ThreadPool* pool = nullptr);

  bool ran() const { return ran_; }
  std::size_t query_count() const { return specs_.size(); }

  // --- Results (valid after run(); checked against the query's kind).
  const data::LabeledCrosstab& crosstab(QueryId id) const;
  const std::vector<data::OptionShare>& shares(QueryId id) const;
  const data::OptionShare& weighted_share(QueryId id) const;
  const NumericSummary& numeric(QueryId id) const;
  const std::vector<double>& group_answered(QueryId id) const;
  // The untyped result record (all kinds) — what serve's encoders and the
  // incremental engine's equivalence tests compare against.
  const QueryResult& raw_result(QueryId id) const;
  SpecKind kind_of(QueryId id) const;

 private:
  QueryId push_spec(QuerySpec spec);
  const QueryResult& result_of(QueryId id, SpecKind kind) const;

  const data::Table& table_;
  std::vector<QuerySpec> specs_;
  std::vector<QueryResult> results_;
  bool ran_ = false;
};

}  // namespace rcr::query
