#include "synth/domain.hpp"

namespace rcr::synth {

const std::vector<std::string>& fields() {
  static const std::vector<std::string> v = {
      "Physics",      "Chemistry",   "Biology",        "Engineering",
      "Computer Sci", "Mathematics", "Earth/Climate",  "Social Sci"};
  return v;
}

const std::vector<std::string>& career_stages() {
  static const std::vector<std::string> v = {
      "Grad student", "Postdoc", "Faculty", "Research staff"};
  return v;
}

const std::vector<std::string>& languages() {
  static const std::vector<std::string> v = {
      "MATLAB", "C",  "C++",   "Fortran", "Python", "R",
      "Julia",  "Java", "Shell", "Rust"};
  return v;
}

const std::vector<std::string>& parallel_resources() {
  static const std::vector<std::string> v = {
      "Multicore node", "Cluster", "GPU", "Cloud"};
  return v;
}

const std::vector<std::string>& parallel_models() {
  static const std::vector<std::string> v = {
      "OpenMP",        "MPI",  "CUDA/HIP", "Threads",
      "Task framework", "SIMD"};
  return v;
}

const std::vector<std::string>& se_practices() {
  static const std::vector<std::string> v = {
      "Version control", "Unit tests",     "Continuous integration",
      "Code review",     "Issue tracking", "Documentation"};
  return v;
}

const std::vector<std::string>& dev_tools() {
  static const std::vector<std::string> v = {
      "Debugger", "Profiler", "Build system", "Job scheduler", "Containers"};
  return v;
}

const std::vector<std::string>& gpu_usage_levels() {
  static const std::vector<std::string> v = {"Never", "Occasionally",
                                             "Regularly"};
  return v;
}

const survey::Questionnaire& instrument() {
  using survey::Question;
  static const survey::Questionnaire q(
      "computation-for-research",
      {
          Question::single_choice(col::kField, "Primary research field",
                                  fields(), /*required=*/true),
          Question::single_choice(col::kCareerStage, "Career stage",
                                  career_stages(), /*required=*/true),
          Question::numeric(col::kYearsProgramming,
                            "Years of programming experience"),
          Question::likert(col::kTimeProgramming,
                           "Share of research time spent programming "
                           "(1 = <10% ... 5 = >75%)"),
          Question::multi_select(col::kLanguages,
                                 "Programming languages used in research",
                                 languages()),
          Question::single_choice(col::kPrimaryLanguage,
                                  "Primary programming language", languages()),
          Question::multi_select(col::kParallelResources,
                                 "Parallel compute resources routinely used",
                                 parallel_resources()),
          Question::multi_select(col::kParallelModels,
                                 "Parallel programming models used",
                                 parallel_models()),
          Question::numeric(col::kCoresTypical,
                            "Typical number of cores used by one job"),
          Question::single_choice(col::kGpuUsage,
                                  "How often do you use GPUs?",
                                  gpu_usage_levels()),
          Question::multi_select(col::kSePractices,
                                 "Software engineering practices used",
                                 se_practices()),
          Question::multi_select(col::kToolsAware,
                                 "Developer tools you are aware of",
                                 dev_tools()),
          Question::multi_select(col::kToolsUsed,
                                 "Developer tools you actually use",
                                 dev_tools()),
          Question::numeric(col::kDatasetGb,
                            "Typical dataset size (GB)"),
          Question::likert(col::kExpertise,
                           "Self-rated programming expertise (1..5)"),
      });
  return q;
}

}  // namespace rcr::synth
