#include "synth/generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/philox.hpp"
#include "util/rng.hpp"

namespace rcr::synth {

namespace {

constexpr std::size_t kLangMatlab = 0;
constexpr std::size_t kResMulticore = 0;
constexpr std::size_t kResCluster = 1;
constexpr std::size_t kResGpu = 2;
constexpr std::size_t kModelMpi = 1;
constexpr std::size_t kModelCuda = 2;

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

std::uint64_t respondent_seed(std::uint64_t master, std::size_t index) {
  std::uint64_t z = master + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Candidate c's response coin: one draw from simd::Philox substream c of
// the coin-masked master seed — counter-based splitting in place of a
// per-candidate hash reseed. Same degenerate-p contract as Rng::bernoulli
// (propensities at the clamp rails consume no draw). generate_wave and
// generate_blocks flip coins through this one helper, so their row
// sequences stay byte-identical.
bool responds(std::uint64_t master, std::size_t candidate, double propensity) {
  if (propensity <= 0.0) return false;
  if (propensity >= 1.0) return true;
  simd::Philox coin(master ^ 0xC0FFEEULL,
                    static_cast<std::uint64_t>(candidate));
  return coin.next_double() < propensity;
}

// Plain-value form of one generated respondent; appended to the table
// serially after the (optionally parallel) generation pass.
struct Raw {
  double intensity = 0.0;  // latent trait, kept for the nonresponse model
  std::int32_t field = 0;
  std::int32_t career = 0;
  double years = 0.0;          // NaN = missing
  double time_prog = 0.0;      // NaN = missing
  std::uint64_t languages = 0;
  std::int32_t primary = 0;
  std::uint64_t resources = 0;
  std::uint64_t models = 0;
  bool models_missing = false;
  double cores = 1.0;          // NaN = missing
  std::int32_t gpu_usage = 0;  // -1 = missing
  std::uint64_t se = 0;
  bool se_missing = false;
  std::uint64_t tools_aware = 0;
  std::uint64_t tools_used = 0;
  bool tools_missing = false;
  double dataset_gb = 1.0;     // NaN = missing
  double expertise = 3.0;      // NaN = missing
};

double likert_draw(Rng& rng, double mean) {
  const double v = std::round(rng.normal(mean, 0.9));
  return std::clamp(v, 1.0, 5.0);
}

Raw generate_one(const WaveParams& p, std::uint64_t seed) {
  Rng rng(seed);
  Raw r;
  const double nan = data::NumericColumn::missing();

  r.field = static_cast<std::int32_t>(rng.categorical(p.field_mix));
  r.career = static_cast<std::int32_t>(rng.categorical(p.career_mix));
  const auto f = static_cast<std::size_t>(r.field);

  // Latent traits. The era boost is a calibrated parameter (0 in 2011,
  // 0.06 in 2024, blended for interpolated years), not a wave branch.
  const double wave_boost = p.trait_boost;
  const double intensity =
      clamp01(rng.beta(2.2, 2.2) + field_intensity_shift(f) + wave_boost);
  r.intensity = intensity;
  const double hpc =
      clamp01(0.75 * rng.beta(2.0, 3.0) + 0.35 * intensity + wave_boost);
  const double se_maturity =
      clamp01(0.55 * rng.beta(2.0, 2.0) + 0.45 * intensity + wave_boost);

  // Per-item probabilities for the mask-valued questions are staged here and
  // drawn in one bernoulli_mask call per question (index order and draw
  // consumption identical to a per-item bernoulli loop, so the output is
  // unchanged bitwise).
  std::array<double, 64> probs;

  // Languages: Bernoulli per language with field- and trait-modulated odds.
  const std::size_t n_lang = languages().size();
  std::vector<double> lang_p(n_lang);
  for (std::size_t l = 0; l < n_lang; ++l) {
    lang_p[l] = clamp01(p.language_base[l] * field_language_multiplier(f, l) *
                        (0.55 + 0.9 * intensity));
  }
  r.languages = rng.bernoulli_mask(std::span<const double>(lang_p));
  if (r.languages == 0) {
    // Everyone in this study programs something: fall back to the single
    // most likely language for this respondent (MATLAB if all zero).
    std::size_t best = kLangMatlab;
    for (std::size_t l = 1; l < n_lang; ++l)
      if (lang_p[l] > lang_p[best]) best = l;
    r.languages = std::uint64_t{1} << best;
  }
  {
    // Primary language: weighted choice among the used ones.
    std::vector<double> w;
    std::vector<std::size_t> idx;
    for (std::size_t l = 0; l < n_lang; ++l) {
      if ((r.languages >> l) & 1u) {
        idx.push_back(l);
        w.push_back(std::max(1e-3, lang_p[l]));
      }
    }
    r.primary = static_cast<std::int32_t>(idx[rng.categorical(w)]);
  }

  // Parallel resources.
  const std::size_t n_res = parallel_resources().size();
  for (std::size_t res = 0; res < n_res; ++res) {
    probs[res] = clamp01(p.resource_base[res] *
                         field_resource_multiplier(f, res) *
                         (0.40 + 1.2 * hpc));
  }
  r.resources = rng.bernoulli_mask(std::span<const double>(probs.data(), n_res));

  // Parallel models, gated on resources. Gated-out models get probability
  // 0.0, which bernoulli_mask answers without a draw — exactly what the
  // former `continue` did.
  const bool any_parallel = r.resources != 0;
  const bool has_cluster = (r.resources >> kResCluster) & 1u;
  const bool has_gpu = (r.resources >> kResGpu) & 1u;
  if (any_parallel) {
    const std::size_t n_models = parallel_models().size();
    for (std::size_t m = 0; m < n_models; ++m) {
      const bool gated = (m == kModelMpi && !has_cluster) ||
                         (m == kModelCuda && !has_gpu);
      probs[m] = gated ? 0.0 : clamp01(p.model_base[m] * (0.5 + intensity));
    }
    r.models =
        rng.bernoulli_mask(std::span<const double>(probs.data(), n_models));
  }
  r.models_missing = any_parallel && rng.bernoulli(p.missing_rate);

  // Typical job width.
  if (rng.bernoulli(p.missing_rate)) {
    r.cores = nan;
  } else if (has_cluster) {
    const double log2_cores = rng.normal(p.cores_log2_mu, p.cores_log2_sd);
    r.cores = std::pow(2.0, std::clamp(std::round(log2_cores), 0.0, 12.0));
  } else if ((r.resources >> kResMulticore) & 1u || has_gpu) {
    r.cores = static_cast<double>(std::uint64_t{1} << rng.uniform_int(1, 5));
  } else {
    r.cores = 1.0;
  }

  // GPU usage frequency, consistent with the GPU resource answer.
  if (rng.bernoulli(p.missing_rate)) {
    r.gpu_usage = -1;
  } else if (has_gpu) {
    r.gpu_usage = rng.bernoulli(0.45 + 0.4 * hpc) ? 2 : 1;  // Regularly : Occ.
  } else {
    // Some non-owners still borrow a GPU occasionally; scaled to the era.
    r.gpu_usage = rng.bernoulli(0.5 * p.resource_base[kResGpu]) ? 1 : 0;
  }

  // Software-engineering practices.
  const std::size_t n_se = se_practices().size();
  for (std::size_t s = 0; s < n_se; ++s) {
    probs[s] =
        clamp01(p.se_base[s] * (0.45 + 0.75 * se_maturity + 0.35 * intensity));
  }
  r.se = rng.bernoulli_mask(std::span<const double>(probs.data(), n_se));
  r.se_missing = rng.bernoulli(p.missing_rate);

  // Tools: used ⊆ aware by construction. Stays a scalar loop — the `used`
  // coin for tool t is drawn between the aware coins for t and t+1, so the
  // draws cannot be batched per question without reordering the stream.
  for (std::size_t t = 0; t < dev_tools().size(); ++t) {
    const double aware =
        clamp01(p.tool_aware_base[t] * (0.55 + 0.7 * intensity));
    if (!rng.bernoulli(aware)) continue;
    r.tools_aware |= std::uint64_t{1} << t;
    const double used =
        clamp01(p.tool_used_given_aware[t] * (0.5 + 0.8 * intensity));
    if (rng.bernoulli(used)) r.tools_used |= std::uint64_t{1} << t;
  }
  r.tools_missing = rng.bernoulli(p.missing_rate);

  // Scalars.
  r.dataset_gb =
      rng.bernoulli(p.missing_rate)
          ? nan
          : rng.lognormal(p.dataset_log_gb_mu, p.dataset_log_gb_sigma);
  r.time_prog = rng.bernoulli(p.missing_rate)
                    ? nan
                    : likert_draw(rng, p.time_programming_mean +
                                           1.6 * (intensity - 0.5));
  r.expertise = rng.bernoulli(p.missing_rate)
                    ? nan
                    : likert_draw(rng, p.expertise_mean +
                                           2.0 * (intensity - 0.5));
  {
    static const double kCareerYearShift[4] = {-0.25, 0.10, 0.60, 0.50};
    const double mu =
        p.years_mu + kCareerYearShift[static_cast<std::size_t>(r.career)];
    r.years = rng.bernoulli(p.missing_rate)
                  ? nan
                  : std::min(45.0, rng.lognormal(mu, p.years_sigma));
  }
  return r;
}

// Materializes generated respondents as an instrument-conformant table.
data::Table table_from_raws(const std::vector<Raw>& raws) {
  data::Table table = instrument().make_table();
  auto& field = table.categorical(col::kField);
  auto& career = table.categorical(col::kCareerStage);
  auto& years = table.numeric(col::kYearsProgramming);
  auto& time_prog = table.numeric(col::kTimeProgramming);
  auto& langs = table.multiselect(col::kLanguages);
  auto& primary = table.categorical(col::kPrimaryLanguage);
  auto& resources = table.multiselect(col::kParallelResources);
  auto& models = table.multiselect(col::kParallelModels);
  auto& cores = table.numeric(col::kCoresTypical);
  auto& gpu = table.categorical(col::kGpuUsage);
  auto& se = table.multiselect(col::kSePractices);
  auto& aware = table.multiselect(col::kToolsAware);
  auto& used = table.multiselect(col::kToolsUsed);
  auto& dataset = table.numeric(col::kDatasetGb);
  auto& expertise = table.numeric(col::kExpertise);

  for (const Raw& r : raws) {
    field.push_code(r.field);
    career.push_code(r.career);
    years.push(r.years);
    time_prog.push(r.time_prog);
    langs.push_mask(r.languages);
    primary.push_code(r.primary);
    resources.push_mask(r.resources);
    if (r.models_missing) {
      models.push_missing();
    } else {
      models.push_mask(r.models);
    }
    cores.push(r.cores);
    gpu.push_code(r.gpu_usage);
    if (r.se_missing) {
      se.push_missing();
    } else {
      se.push_mask(r.se);
    }
    if (r.tools_missing) {
      aware.push_missing();
      used.push_missing();
    } else {
      aware.push_mask(r.tools_aware);
      used.push_mask(r.tools_used);
    }
    dataset.push(r.dataset_gb);
    expertise.push(r.expertise);
  }
  table.validate_rectangular();
  return table;
}

// Respondents [first, first + count) of the unbiased sequence, optionally
// in parallel. Respondent i depends only on hash(seed, i), never on the
// range bounds, so shards concatenate into the one-shot sequence.
std::vector<Raw> fill_raws(const WaveParams& p, std::uint64_t seed,
                           std::size_t first, std::size_t count,
                           rcr::parallel::ThreadPool* pool) {
  std::vector<Raw> raws(count);
  const auto fill = [&](std::size_t i) {
    raws[i] = generate_one(p, respondent_seed(seed, first + i));
  };
  if (pool != nullptr) {
    rcr::parallel::parallel_for(*pool, 0, raws.size(), fill);
  } else {
    for (std::size_t i = 0; i < raws.size(); ++i) fill(i);
  }
  return raws;
}

void check_config(const GeneratorConfig& config) {
  RCR_CHECK_MSG(config.respondents > 0, "cannot generate an empty wave");
  RCR_CHECK_MSG(config.nonresponse_strength >= 0.0 &&
                    config.nonresponse_strength < 1.0,
                "nonresponse_strength must lie in [0, 1)");
}

// The parameter set generation runs under: an explicit override (N-wave
// studies at interpolated years) or the wave's calibrated anchors.
const WaveParams& resolved_params(const GeneratorConfig& config) {
  return config.params != nullptr ? *config.params : params_for(config.wave);
}

}  // namespace

data::Table generate_wave(const GeneratorConfig& config) {
  check_config(config);
  const WaveParams& p = resolved_params(config);

  std::vector<Raw> raws;
  if (config.nonresponse_strength == 0.0) {
    raws = fill_raws(p, config.seed, 0, config.respondents, config.pool);
  } else {
    // Draw candidates from the population and keep each with a propensity
    // that rises with programming intensity. Deterministic: candidate c's
    // traits and response coin both derive from hash(seed, c).
    raws.reserve(config.respondents);
    const std::size_t cap = 200 * config.respondents + 1000;
    for (std::size_t c = 0; raws.size() < config.respondents; ++c) {
      RCR_CHECK_MSG(c < cap, "nonresponse rejection loop did not terminate");
      Raw candidate = generate_one(p, respondent_seed(config.seed, c));
      const double propensity =
          clamp01(0.6 + config.nonresponse_strength *
                            1.6 * (candidate.intensity - 0.5));
      if (responds(config.seed, c, propensity))
        raws.push_back(std::move(candidate));
    }
  }

  return table_from_raws(raws);
}

data::Table generate_range(const GeneratorConfig& config, std::size_t first,
                           std::size_t count) {
  check_config(config);
  RCR_CHECK_MSG(config.nonresponse_strength == 0.0,
                "generate_range requires the unbiased (nonresponse == 0) "
                "sequence; use generate_blocks for biased sampling");
  RCR_CHECK_MSG(first + count <= config.respondents,
                "generate_range beyond the configured population");
  const WaveParams& p = resolved_params(config);
  return table_from_raws(
      fill_raws(p, config.seed, first, count, config.pool));
}

void generate_blocks(
    const GeneratorConfig& config, std::size_t block_rows,
    const std::function<void(data::Table block, std::size_t first_row)>&
        emit) {
  check_config(config);
  RCR_CHECK_MSG(block_rows > 0, "generate_blocks needs a positive block size");

  if (config.nonresponse_strength == 0.0) {
    for (std::size_t first = 0; first < config.respondents;
         first += block_rows) {
      const std::size_t count =
          std::min(block_rows, config.respondents - first);
      emit(generate_range(config, first, count), first);
    }
    return;
  }

  // Biased sampling: the same sequential rejection walk generate_wave runs
  // (same candidate order, same cap), emitting every block_rows acceptances.
  const WaveParams& p = resolved_params(config);
  std::vector<Raw> raws;
  raws.reserve(std::min(block_rows, config.respondents));
  const std::size_t cap = 200 * config.respondents + 1000;
  std::size_t accepted = 0;
  for (std::size_t c = 0; accepted < config.respondents; ++c) {
    RCR_CHECK_MSG(c < cap, "nonresponse rejection loop did not terminate");
    Raw candidate = generate_one(p, respondent_seed(config.seed, c));
    const double propensity = clamp01(
        0.6 + config.nonresponse_strength * 1.6 * (candidate.intensity - 0.5));
    if (!responds(config.seed, c, propensity)) continue;
    raws.push_back(std::move(candidate));
    ++accepted;
    if (raws.size() == block_rows || accepted == config.respondents) {
      emit(table_from_raws(raws), accepted - raws.size());
      raws.clear();
    }
  }
}

namespace {

// Drops each set bit of `mask` with probability 1-p (independent coins).
std::uint64_t thin_mask(Rng& rng, std::uint64_t mask, double keep_p) {
  std::uint64_t out = 0;
  for (std::uint64_t bit = mask; bit;) {
    const std::uint64_t lsb = bit & (~bit + 1);
    if (rng.bernoulli(keep_p)) out |= lsb;
    bit ^= lsb;
  }
  return out;
}

}  // namespace

Panel generate_panel(std::size_t n, std::uint64_t seed) {
  RCR_CHECK_MSG(n > 0, "cannot generate an empty panel");
  const WaveParams& p11 = params_for(Wave::k2011);
  const WaveParams& p24 = params_for(Wave::k2024);

  std::vector<Raw> raws11(n), raws24(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t s = respondent_seed(seed, i);
    Raw r11 = generate_one(p11, s);
    // The same person's 2024-era tendencies: an independent draw that the
    // evolution step reconciles with their 2011 self.
    Raw r24 = generate_one(p24, respondent_seed(seed ^ 0x2024ULL, i));
    Rng evo(respondent_seed(seed ^ 0xE7011E7ULL, i));

    // Identity: field stable; career advances over 13 years.
    r24.field = r11.field;
    switch (r11.career) {
      case 0:  // grad student -> postdoc / faculty / staff
        r24.career = evo.bernoulli(0.15) ? 1 : (evo.bernoulli(0.7) ? 3 : 2);
        break;
      case 1:  // postdoc -> faculty / staff
        r24.career = evo.bernoulli(0.6) ? 2 : 3;
        break;
      case 2:  // faculty stay faculty
        r24.career = 2;
        break;
      default:  // staff mostly stay staff
        r24.career = evo.bernoulli(0.8) ? 3 : 2;
        break;
    }

    // Languages: mostly keep the old ones (MATLAB attrition is the
    // exception); pick up new ones with a propensity scaled by the
    // language's era trajectory — mid-career researchers rarely adopt a
    // declining language, readily adopt a rising one.
    std::uint64_t final_langs = 0;
    for (std::size_t l = 0; l < languages().size(); ++l) {
      const bool had = (r11.languages >> l) & 1u;
      const bool draws = (r24.languages >> l) & 1u;
      if (had) {
        const double keep_p = languages()[l] == "MATLAB" ? 0.55 : 0.85;
        if (evo.bernoulli(keep_p) || (draws && evo.bernoulli(0.5)))
          final_langs |= std::uint64_t{1} << l;
      } else if (draws) {
        const double b11 = std::max(0.05, p11.language_base[l]);
        const double ratio =
            p24.language_base[l] > 0.0 ? p24.language_base[l] / b11 : 0.0;
        const double adopt_p =
            clamp01(0.25 + 0.75 * std::min(1.0, ratio / 2.0));
        if (evo.bernoulli(adopt_p)) final_langs |= std::uint64_t{1} << l;
      }
    }
    if (final_langs == 0) final_langs = r24.languages;  // never language-less
    r24.languages = final_langs;
    // Primary must remain among the used languages after the evolution.
    if (!((r24.languages >> r24.primary) & 1u)) {
      for (std::size_t l = 0; l < languages().size(); ++l) {
        if ((r24.languages >> l) & 1u) {
          r24.primary = static_cast<std::int32_t>(l);
          break;
        }
      }
    }
    // Primary: sometimes loyal to the old primary when still in use.
    if (((r24.languages >> r11.primary) & 1u) && evo.bernoulli(0.4)) {
      r24.primary = r11.primary;
    }
    RCR_CHECK((r24.languages >> r24.primary) & 1u);

    // Resources ratchet upward; models re-gated on the final resources.
    r24.resources |= thin_mask(evo, r11.resources, 0.7);
    r24.models |= thin_mask(evo, r11.models, 0.7);
    const bool has_cluster = (r24.resources >> kResCluster) & 1u;
    const bool has_gpu = (r24.resources >> kResGpu) & 1u;
    if (!has_cluster) r24.models &= ~(std::uint64_t{1} << kModelMpi);
    if (!has_gpu) r24.models &= ~(std::uint64_t{1} << kModelCuda);
    if (r24.resources == 0) {
      r24.models = 0;
      r24.models_missing = false;
      if (!data::NumericColumn::is_missing(r24.cores)) r24.cores = 1.0;
    }
    // GPU-usage answer consistent with the final resource set.
    if (r24.gpu_usage == 0 && has_gpu) r24.gpu_usage = 1;
    if (r24.gpu_usage == 2 && !has_gpu) r24.gpu_usage = 1;

    // Practices and tool awareness ratchet; use stays within awareness.
    r24.se |= thin_mask(evo, r11.se, 0.8);
    r24.tools_aware |= thin_mask(evo, r11.tools_aware, 0.9);
    r24.tools_used |= thin_mask(evo, r11.tools_used, 0.7);
    r24.tools_used &= r24.tools_aware;

    // Thirteen more years of experience.
    if (!data::NumericColumn::is_missing(r11.years)) {
      r24.years = std::min(58.0, r11.years + 13.0);
    }

    raws11[i] = std::move(r11);
    raws24[i] = std::move(r24);
  }
  Panel panel;
  panel.wave2011 = table_from_raws(raws11);
  panel.wave2024 = table_from_raws(raws24);
  return panel;
}

data::Table generate_2011(std::size_t n, std::uint64_t seed,
                          rcr::parallel::ThreadPool* pool) {
  return generate_wave({Wave::k2011, n, seed, pool});
}

data::Table generate_2024(std::size_t n, std::uint64_t seed,
                          rcr::parallel::ThreadPool* pool) {
  // Distinct default seed stream so the waves are independent samples.
  return generate_wave({Wave::k2024, n, seed ^ 0xA5A5A5A5ULL, pool});
}

}  // namespace rcr::synth
