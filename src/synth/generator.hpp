// Synthetic respondent generator.
//
// Produces a survey wave as a data::Table conforming to synth::instrument().
// Each respondent is drawn independently from a latent-trait model:
//
//   strata  : field, career stage            (calibrated mixes)
//   traits  : programming intensity, HPC exposure, SE maturity  (Betas,
//             shifted by field and correlated with each other)
//   answers : conditional on strata + traits via the WaveParams baselines
//             and the field multiplier tables in calibration.cpp
//
// Hard consistency rules the generator guarantees (and tests assert):
//   * primary_language is one of the languages the respondent uses;
//   * parallel_models is empty unless some parallel resource is used;
//   * MPI requires Cluster, CUDA/HIP requires GPU;
//   * tools_used is a subset of tools_aware;
//   * cores_typical is 1 for serial respondents.
//
// Generation is deterministic for a given (wave, n, seed) regardless of
// thread count: respondent i draws from an RNG seeded by hash(seed, i).
#pragma once

#include <cstdint>
#include <functional>

#include "data/table.hpp"
#include "synth/calibration.hpp"
#include "synth/domain.hpp"

namespace rcr::parallel {
class ThreadPool;
}

namespace rcr::synth {

struct GeneratorConfig {
  Wave wave = Wave::k2024;
  std::size_t respondents = 1000;
  std::uint64_t seed = 7;
  // When non-null, respondents are generated in parallel on this pool.
  rcr::parallel::ThreadPool* pool = nullptr;
  // Nonresponse bias strength in [0, 1). 0 = every drawn person answers
  // (an unbiased sample of the population). Above 0, response propensity
  // rises with the latent programming-intensity trait — computationally
  // active people answer a computing survey more readily — so the observed
  // sample over-represents heavy programmers. The F9 methodology
  // experiment quantifies the resulting bias and how much raking repairs.
  double nonresponse_strength = 0.0;
  // When non-null, this parameter set drives generation instead of
  // params_for(wave) — how N-wave studies synthesize a wave at an
  // interpolated calendar year (calibration.hpp interpolated_params).
  // The pointee must outlive the call. `wave` is ignored for generation
  // when set (trait drift is a calibrated parameter, not a wave branch).
  const WaveParams* params = nullptr;
};

// Generates one wave. The returned table validates cleanly against
// synth::instrument().
data::Table generate_wave(const GeneratorConfig& config);

// --- Chunked emission (streaming-scale populations) -------------------------
//
// generate_blocks emits the *same* row sequence generate_wave would build —
// byte-identical, pinned by tests — as a series of tables of at most
// `block_rows` rows, so a population of millions is analyzed without ever
// being resident. `emit(block, first_row)` receives each block in order
// together with the global index of its first row; the block is a fresh
// table the callback may keep or move from. config.pool parallelizes
// generation *within* each zero-nonresponse block.
void generate_blocks(
    const GeneratorConfig& config, std::size_t block_rows,
    const std::function<void(data::Table block, std::size_t first_row)>& emit);

// Rows [first, first + count) of the unbiased respondent sequence for this
// config — the random-access form generate_blocks and the streaming engine
// shard on. Respondent i draws from hash(seed, i) regardless of the range
// it is generated in, so any partition of [0, n) concatenates to exactly
// generate_wave's table. Requires config.nonresponse_strength == 0 (the
// rejection-sampled sequence is inherently serial; use generate_blocks).
data::Table generate_range(const GeneratorConfig& config, std::size_t first,
                           std::size_t count);

// Convenience for the common two-wave study: wave-specific default sizes
// (the 2024 revisit reached a larger population than the 2011 study).
data::Table generate_2011(std::size_t n = 120, std::uint64_t seed = 7,
                          rcr::parallel::ThreadPool* pool = nullptr);
data::Table generate_2024(std::size_t n = 650, std::uint64_t seed = 7,
                          rcr::parallel::ThreadPool* pool = nullptr);

// Longitudinal panel: the same n people answering in 2011 and again in
// 2024 (rows paired by index). The 2024 self evolves from the 2011 self:
//   * field is stable; career stage advances (no one stays a grad student
//     for 13 years);
//   * languages and SE practices ratchet — mostly kept, with 2024-era
//     additions drawn from the wave model; a small abandonment rate (the
//     MATLAB attrition channel);
//   * parallel resources ratchet upward; models stay gated (MPI needs a
//     cluster, CUDA a GPU); all generator invariants hold in both waves.
struct Panel {
  data::Table wave2011;
  data::Table wave2024;
};
Panel generate_panel(std::size_t n, std::uint64_t seed = 7);

}  // namespace rcr::synth
