// Calibration targets for the synthetic respondent population.
//
// Every number here is an explicit modeling assumption, standing in for the
// unavailable human-subject data. Anchors:
//   * 2011 wave — published findings of "A Survey of the Practice of
//     Computational Science" (Prabhu et al., SC 2011): MATLAB-centric
//     scripting, C/C++/Fortran for performance, majority of researchers
//     effectively serial, scarce software-engineering practice adoption,
//     GPU use nascent.
//   * 2024 wave — well-documented ecosystem shifts a revisit would find:
//     Python dominance, MATLAB/Fortran decline, Julia/Rust entry, broad
//     version-control adoption, mainstream GPU + cluster/cloud use, larger
//     datasets.
// EXPERIMENTS.md lists, per experiment, which of these anchors drive it.
#pragma once

#include <cstddef>
#include <vector>

#include "synth/domain.hpp"

namespace rcr::synth {

// All probabilities are baselines for an average respondent; the generator
// modulates them by field multipliers and per-respondent latent traits.
struct WaveParams {
  Wave wave = Wave::k2011;

  // Population strata (normalized by the generator).
  std::vector<double> field_mix;   // over fields()
  std::vector<double> career_mix;  // over career_stages()

  // P(uses language l) baseline, over languages().
  std::vector<double> language_base;

  // P(routinely uses resource r) baseline, over parallel_resources().
  std::vector<double> resource_base;

  // P(uses model m | has a matching resource), over parallel_models().
  std::vector<double> model_base;

  // P(practice p) baseline, over se_practices().
  std::vector<double> se_base;

  // P(aware of tool t) baseline and P(uses | aware), over dev_tools().
  std::vector<double> tool_aware_base;
  std::vector<double> tool_used_given_aware;

  // Typical dataset size: lognormal over GB.
  double dataset_log_gb_mu = 0.0;
  double dataset_log_gb_sigma = 1.0;

  // Cluster job width: cores = 2^round(N(mu, sd)) for cluster users.
  double cores_log2_mu = 3.0;
  double cores_log2_sd = 1.5;

  // Likert means (1..5): research time spent programming, self expertise.
  double time_programming_mean = 3.0;
  double expertise_mean = 3.0;

  // Years programming: lognormal parameters.
  double years_mu = 1.6;
  double years_sigma = 0.6;

  // Probability an optional question is left unanswered.
  double missing_rate = 0.03;

  // Additive boost on the latent traits (intensity / HPC exposure / SE
  // maturity), encoding era-wide computational drift. 0.0 for the 2011
  // anchor, 0.06 for 2024; interpolated waves blend it like every other
  // parameter. The generator reads this field instead of branching on
  // `wave`, so a mid-year parameter set needs no wave enum of its own.
  double trait_boost = 0.0;
};

// Immutable parameters for each wave.
const WaveParams& params_for(Wave wave);

// Calendar years of the two anchor waves.
inline constexpr double kYear2011 = 2011.0;
inline constexpr double kYear2024 = 2024.0;

// Parameters for an arbitrary calendar year: linear interpolation of every
// calibrated quantity between the 2011 and 2024 anchors, clamped outside
// [2011, 2024]. At the anchor years this returns params_for's values
// EXACTLY (no a + t*(b-a) float round-trip), so a study wave pinned to
// 2011 or 2024 synthesizes byte-identically to the two-wave legacy path.
WaveParams interpolated_params(double year);

// Field-specific multiplier applied to language_base[lang] for respondents
// in fields()[field]. Encodes e.g. "Social Sci leans R, CS leans C++".
double field_language_multiplier(std::size_t field, std::size_t lang);

// Field-specific multiplier on resource_base[resource] ("Physics and
// Engineering lean on clusters; Social Sci rarely does").
double field_resource_multiplier(std::size_t field, std::size_t resource);

// Field-specific multiplier on the latent programming-intensity trait mean.
double field_intensity_shift(std::size_t field);

}  // namespace rcr::synth
