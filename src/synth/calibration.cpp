#include "synth/calibration.hpp"

#include <cmath>

#include "util/error.hpp"

namespace rcr::synth {

namespace {

// Index helpers documenting the order of the label vectors in domain.cpp.
// Languages: MATLAB, C, C++, Fortran, Python, R, Julia, Java, Shell, Rust.
// Resources: Multicore, Cluster, GPU, Cloud.
// Fields: Physics, Chemistry, Biology, Engineering, CS, Math,
//         Earth/Climate, Social Sci.

WaveParams make_2011() {
  WaveParams p;
  p.wave = Wave::k2011;
  // A 2011 campus sample skews toward the computationally active sciences.
  p.field_mix = {0.16, 0.12, 0.14, 0.18, 0.14, 0.08, 0.10, 0.08};
  p.career_mix = {0.52, 0.18, 0.18, 0.12};  // grad-heavy, as in 2011

  // 2011 anchor: MATLAB the most common research language; C/C++ strong;
  // Fortran alive in simulation fields; Python rising but not dominant;
  // Julia/Rust effectively nonexistent.
  p.language_base = {
      0.48,  // MATLAB
      0.30,  // C
      0.32,  // C++
      0.18,  // Fortran
      0.30,  // Python
      0.18,  // R
      0.00,  // Julia (pre-release in 2011)
      0.16,  // Java
      0.22,  // Shell
      0.00,  // Rust (pre-release in 2011)
  };

  // 2011 anchor: most researchers run serial or single-node jobs; cluster
  // use a strong minority; GPU nascent; cloud rare.
  p.resource_base = {0.42, 0.28, 0.08, 0.04};

  // Models among parallel users: OpenMP, MPI, CUDA/HIP, Threads,
  // Task framework, SIMD.
  p.model_base = {0.38, 0.45, 0.30, 0.30, 0.08, 0.10};

  // 2011 anchor: weak software-engineering practice adoption — VCS usage
  // was far from universal, testing/CI/review rare.
  // Version control, Unit tests, CI, Code review, Issue tracking, Docs.
  p.se_base = {0.42, 0.18, 0.04, 0.10, 0.12, 0.30};

  // Tools: Debugger, Profiler, Build system, Job scheduler, Containers.
  p.tool_aware_base = {0.80, 0.55, 0.60, 0.45, 0.02};
  p.tool_used_given_aware = {0.55, 0.30, 0.55, 0.60, 0.30};

  // Median dataset well under a few GB in 2011.
  p.dataset_log_gb_mu = -0.7;   // median ~0.5 GB
  p.dataset_log_gb_sigma = 2.2; // heavy tail into the TB range

  p.cores_log2_mu = 4.0;  // cluster jobs around 16 cores
  p.cores_log2_sd = 1.6;

  p.time_programming_mean = 3.1;  // ~35% of research time programming
  p.expertise_mean = 2.9;
  p.years_mu = 1.6;   // median ~5 years
  p.years_sigma = 0.7;
  p.missing_rate = 0.04;
  return p;
}

WaveParams make_2024() {
  WaveParams p;
  p.wave = Wave::k2024;
  // 2024: computational work has spread; CS/ML and data-heavy bio grow.
  p.field_mix = {0.14, 0.10, 0.16, 0.17, 0.17, 0.07, 0.10, 0.09};
  p.career_mix = {0.48, 0.20, 0.18, 0.14};

  // 2024 anchor: Python dominant; MATLAB and Fortran receding; R steady in
  // data-heavy fields; Julia and Rust present but niche.
  p.language_base = {
      0.26,  // MATLAB
      0.20,  // C
      0.28,  // C++
      0.08,  // Fortran
      0.82,  // Python
      0.26,  // R
      0.07,  // Julia
      0.10,  // Java
      0.38,  // Shell
      0.04,  // Rust
  };

  // 2024 anchor: multicore ubiquitous, cluster use mainstream, GPU heavily
  // adopted (ML), cloud a real option.
  p.resource_base = {0.68, 0.46, 0.38, 0.22};

  // OpenMP steady, MPI slightly diluted by frameworks, CUDA way up,
  // task frameworks (Dask/Spark/Ray-style) mainstream.
  p.model_base = {0.35, 0.38, 0.55, 0.35, 0.30, 0.12};

  // 2024 anchor: version control near-universal; tests/CI/review normal
  // practice in larger groups though far from complete.
  p.se_base = {0.88, 0.45, 0.30, 0.35, 0.42, 0.45};

  p.tool_aware_base = {0.85, 0.65, 0.75, 0.70, 0.65};
  p.tool_used_given_aware = {0.55, 0.35, 0.70, 0.70, 0.55};

  // Datasets grew by ~2 orders of magnitude at the median.
  p.dataset_log_gb_mu = 2.3;   // median ~10 GB
  p.dataset_log_gb_sigma = 2.5;

  p.cores_log2_mu = 5.5;  // cluster jobs around 32–64 cores
  p.cores_log2_sd = 1.8;

  p.time_programming_mean = 3.5;
  p.expertise_mean = 3.2;
  p.years_mu = 1.8;
  p.years_sigma = 0.7;
  p.missing_rate = 0.03;
  p.trait_boost = 0.06;
  return p;
}

void validate(const WaveParams& p) {
  RCR_CHECK(p.field_mix.size() == fields().size());
  RCR_CHECK(p.career_mix.size() == career_stages().size());
  RCR_CHECK(p.language_base.size() == languages().size());
  RCR_CHECK(p.resource_base.size() == parallel_resources().size());
  RCR_CHECK(p.model_base.size() == parallel_models().size());
  RCR_CHECK(p.se_base.size() == se_practices().size());
  RCR_CHECK(p.tool_aware_base.size() == dev_tools().size());
  RCR_CHECK(p.tool_used_given_aware.size() == dev_tools().size());
}

}  // namespace

const WaveParams& params_for(Wave wave) {
  static const WaveParams w2011 = [] {
    auto p = make_2011();
    validate(p);
    return p;
  }();
  static const WaveParams w2024 = [] {
    auto p = make_2024();
    validate(p);
    return p;
  }();
  return wave == Wave::k2011 ? w2011 : w2024;
}

WaveParams interpolated_params(double year) {
  RCR_CHECK_MSG(std::isfinite(year), "wave year must be finite");
  // Anchor years return the calibrated sets verbatim: interpolation at the
  // endpoints must not introduce a+t*(b-a) rounding, or a wave pinned to an
  // anchor year would drift bitwise from the legacy two-wave path.
  if (year <= kYear2011) return params_for(Wave::k2011);
  if (year >= kYear2024) return params_for(Wave::k2024);

  const WaveParams& a = params_for(Wave::k2011);
  const WaveParams& b = params_for(Wave::k2024);
  const double t = (year - kYear2011) / (kYear2024 - kYear2011);
  const auto lerp = [t](double x, double y) { return x + t * (y - x); };
  const auto lerp_vec = [&](const std::vector<double>& x,
                            const std::vector<double>& y) {
    std::vector<double> out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = lerp(x[i], y[i]);
    return out;
  };

  WaveParams p;
  p.wave = t < 0.5 ? Wave::k2011 : Wave::k2024;  // nearest anchor, for labels
  p.field_mix = lerp_vec(a.field_mix, b.field_mix);
  p.career_mix = lerp_vec(a.career_mix, b.career_mix);
  p.language_base = lerp_vec(a.language_base, b.language_base);
  p.resource_base = lerp_vec(a.resource_base, b.resource_base);
  p.model_base = lerp_vec(a.model_base, b.model_base);
  p.se_base = lerp_vec(a.se_base, b.se_base);
  p.tool_aware_base = lerp_vec(a.tool_aware_base, b.tool_aware_base);
  p.tool_used_given_aware =
      lerp_vec(a.tool_used_given_aware, b.tool_used_given_aware);
  p.dataset_log_gb_mu = lerp(a.dataset_log_gb_mu, b.dataset_log_gb_mu);
  p.dataset_log_gb_sigma =
      lerp(a.dataset_log_gb_sigma, b.dataset_log_gb_sigma);
  p.cores_log2_mu = lerp(a.cores_log2_mu, b.cores_log2_mu);
  p.cores_log2_sd = lerp(a.cores_log2_sd, b.cores_log2_sd);
  p.time_programming_mean =
      lerp(a.time_programming_mean, b.time_programming_mean);
  p.expertise_mean = lerp(a.expertise_mean, b.expertise_mean);
  p.years_mu = lerp(a.years_mu, b.years_mu);
  p.years_sigma = lerp(a.years_sigma, b.years_sigma);
  p.missing_rate = lerp(a.missing_rate, b.missing_rate);
  p.trait_boost = lerp(a.trait_boost, b.trait_boost);
  validate(p);
  return p;
}

double field_language_multiplier(std::size_t field, std::size_t lang) {
  // Rows: fields (Physics, Chemistry, Biology, Engineering, CS, Math,
  // Earth/Climate, Social Sci). Columns: languages (MATLAB, C, C++,
  // Fortran, Python, R, Julia, Java, Shell, Rust).
  static const double kMult[8][10] = {
      // Physics: Fortran/C++ simulation culture, little R.
      {0.9, 1.3, 1.3, 2.2, 1.0, 0.3, 1.3, 0.6, 1.2, 0.8},
      // Chemistry: Fortran packages, MATLAB analysis.
      {1.1, 1.0, 1.0, 1.8, 1.0, 0.6, 0.8, 0.6, 1.0, 0.5},
      // Biology: R/Python pipelines, little Fortran.
      {0.7, 0.5, 0.5, 0.2, 1.1, 2.2, 0.6, 0.7, 1.2, 0.5},
      // Engineering: MATLAB stronghold, C/C++ embedded work.
      {1.6, 1.2, 1.2, 0.9, 0.9, 0.3, 0.8, 0.9, 0.9, 1.0},
      // Computer Sci: systems languages, no MATLAB culture.
      {0.4, 1.5, 1.7, 0.3, 1.1, 0.4, 1.0, 1.5, 1.3, 2.5},
      // Mathematics: MATLAB/Julia lean, modest everything else.
      {1.3, 0.7, 0.8, 0.8, 0.9, 0.7, 2.2, 0.5, 0.7, 0.6},
      // Earth/Climate: Fortran models, Python analysis.
      {0.8, 0.8, 0.8, 2.5, 1.1, 1.0, 0.7, 0.4, 1.2, 0.4},
      // Social Sci: R/Stata-style statistics, little systems code.
      {0.6, 0.3, 0.3, 0.1, 0.9, 2.8, 0.4, 0.5, 0.6, 0.2},
  };
  RCR_DCHECK(field < 8 && lang < 10);
  return kMult[field][lang];
}

double field_resource_multiplier(std::size_t field, std::size_t resource) {
  // Columns: Multicore, Cluster, GPU, Cloud.
  static const double kMult[8][4] = {
      {1.1, 1.5, 1.1, 0.8},  // Physics
      {1.0, 1.3, 0.9, 0.7},  // Chemistry
      {1.0, 1.0, 0.9, 1.2},  // Biology (pipelines, cloud genomics)
      {1.1, 1.1, 1.1, 0.9},  // Engineering
      {1.1, 1.0, 1.5, 1.5},  // Computer Sci (ML, cloud-native)
      {0.9, 0.8, 0.7, 0.6},  // Mathematics
      {1.0, 1.6, 0.9, 0.9},  // Earth/Climate (big simulations)
      {0.7, 0.3, 0.3, 0.8},  // Social Sci
  };
  RCR_DCHECK(field < 8 && resource < 4);
  return kMult[field][resource];
}

double field_intensity_shift(std::size_t field) {
  // Additive shift on the latent programming-intensity mean (in [0,1]).
  static const double kShift[8] = {0.05,  0.0,  -0.02, 0.04,
                                   0.18, 0.02, 0.05,  -0.12};
  RCR_DCHECK(field < 8);
  return kShift[field];
}

}  // namespace rcr::synth
