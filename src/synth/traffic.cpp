#include "synth/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "stats/special.hpp"
#include "util/error.hpp"

namespace rcr::synth {

ZipfSampler::ZipfSampler(std::size_t n, double s) : skew_(s) {
  RCR_CHECK_MSG(n >= 1, "ZipfSampler requires at least one item");
  RCR_CHECK_MSG(s >= 0.0 && std::isfinite(s),
                "ZipfSampler skew must be finite and non-negative");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -s);
    cdf_[k] = total;
  }
  // Normalize in place; force the last entry to exactly 1 so u < 1 can
  // never fall past the table.
  for (std::size_t k = 0; k < n; ++k) cdf_[k] /= total;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::sample(double u01) const {
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u01);
  const std::size_t k = static_cast<std::size_t>(it - cdf_.begin());
  return k < cdf_.size() ? k : cdf_.size() - 1;
}

double ZipfSampler::probability(std::size_t k) const {
  RCR_CHECK_MSG(k < cdf_.size(), "ZipfSampler::probability rank out of range");
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

double ZipfSampler::mean_rank() const {
  double mean = 0.0;
  for (std::size_t k = 1; k < cdf_.size(); ++k)
    mean += static_cast<double>(k) * (cdf_[k] - cdf_[k - 1]);
  return mean;
}

double exponential_interarrival(double lambda, double u01) {
  RCR_CHECK_MSG(lambda > 0.0 && std::isfinite(lambda),
                "exponential_interarrival requires a positive finite rate");
  return -std::log1p(-u01) / lambda;
}

PoissonSampler::PoissonSampler(double lambda)
    : lambda_(lambda), p0_(std::exp(-lambda)) {
  RCR_CHECK_MSG(lambda > 0.0 && std::isfinite(lambda),
                "PoissonSampler requires a positive finite rate");
  RCR_CHECK_MSG(p0_ > 0.0,
                "PoissonSampler rate too large for the inverse-CDF walk");
}

std::size_t PoissonSampler::sample(double u01) const {
  double p = p0_;
  double cum = p;
  std::size_t k = 0;
  // u < 1 and the cumulative sum approaches 1 from below, so the walk
  // terminates; the cap only guards pathological draws at the double
  // grid's edge.
  const std::size_t cap =
      static_cast<std::size_t>(lambda_ + 40.0 * std::sqrt(lambda_) + 64.0);
  while (u01 >= cum && k < cap) {
    ++k;
    p *= lambda_ / static_cast<double>(k);
    cum += p;
  }
  return k;
}

double PoissonSampler::probability(std::size_t k) const {
  double p = p0_;
  for (std::size_t i = 1; i <= k; ++i) p *= lambda_ / static_cast<double>(i);
  return p;
}

BetaSampler::BetaSampler(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  RCR_CHECK_MSG(alpha > 0.0 && std::isfinite(alpha) && beta > 0.0 &&
                    std::isfinite(beta),
                "BetaSampler requires positive finite shape parameters");
}

double BetaSampler::sample(double u01) const {
  RCR_CHECK_MSG(u01 >= 0.0 && u01 < 1.0,
                "BetaSampler draw must lie in [0, 1)");
  if (u01 == 0.0) return 0.0;
  // Bisection on the strictly increasing CDF: 64 halvings of [0, 1]
  // exhaust the double mantissa, so the result is draw-deterministic and
  // platform-independent (beta_inc itself is pure arithmetic).
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 64; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (stats::beta_inc(alpha_, beta_, mid) < u01)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

double BetaSampler::cdf(double x) const {
  return stats::beta_inc(alpha_, beta_, x);
}

double log_uniform(double lo, double hi, double u01) {
  RCR_CHECK_MSG(lo > 0.0 && lo < hi && std::isfinite(lo) && std::isfinite(hi),
                "log_uniform requires 0 < lo < hi, finite");
  return std::exp(std::log(lo) + (std::log(hi) - std::log(lo)) * u01);
}

}  // namespace rcr::synth
