// Domain vocabulary of the two-wave study: strata, answer sets, and the
// shared questionnaire. Every label here is a column/category name used
// consistently by the generator, the analysis layer, and the reports.
#pragma once

#include <string>
#include <vector>

#include "survey/schema.hpp"

namespace rcr::synth {

enum class Wave { k2011, k2024 };

inline const char* wave_label(Wave w) {
  return w == Wave::k2011 ? "2011" : "2024";
}

// Research fields (strata). Mirrors the departments the 2011 field study
// drew from, with the additions a 2024 revisit would need.
const std::vector<std::string>& fields();

// Career stages.
const std::vector<std::string>& career_stages();

// Programming languages asked about. The union of both waves' lists; Julia
// and Rust simply have ~zero share in 2011.
const std::vector<std::string>& languages();

// Parallel computing resources ("which do you routinely use?").
const std::vector<std::string>& parallel_resources();

// Parallel programming models (asked of parallel users).
const std::vector<std::string>& parallel_models();

// Software-engineering practices.
const std::vector<std::string>& se_practices();

// Developer tools (asked twice: aware-of and actually-use).
const std::vector<std::string>& dev_tools();

// GPU usage frequency scale.
const std::vector<std::string>& gpu_usage_levels();

// Column ids used throughout the toolkit.
namespace col {
inline constexpr const char* kField = "field";
inline constexpr const char* kCareerStage = "career_stage";
inline constexpr const char* kYearsProgramming = "years_programming";
inline constexpr const char* kTimeProgramming = "time_programming";  // Likert 5
inline constexpr const char* kLanguages = "languages";
inline constexpr const char* kPrimaryLanguage = "primary_language";
inline constexpr const char* kParallelResources = "parallel_resources";
inline constexpr const char* kParallelModels = "parallel_models";
inline constexpr const char* kCoresTypical = "cores_typical";
inline constexpr const char* kGpuUsage = "gpu_usage";
inline constexpr const char* kSePractices = "se_practices";
inline constexpr const char* kToolsAware = "tools_aware";
inline constexpr const char* kToolsUsed = "tools_used";
inline constexpr const char* kDatasetGb = "dataset_size_gb";
inline constexpr const char* kExpertise = "self_rated_expertise";  // Likert 5
}  // namespace col

// The questionnaire both waves share (the 2024 revisit re-asked the 2011
// instrument so trends are comparable; that is what this models).
const survey::Questionnaire& instrument();

}  // namespace rcr::synth
