// Traffic-shaped distributions for synthetic workloads.
//
// The serving layer's load generator (bench_serve) and the simulator's
// arrival processes need two classic heavy-traffic primitives that the
// respondent generator never did:
//
//   * Zipf(s) over a finite catalog — request popularity in real serving
//     workloads is heavy-tailed, so a result cache's hit curve is only
//     realistic under Zipfian query popularity;
//   * exponential inter-arrival gaps — a Poisson arrival process is the
//     standard open-loop traffic model (and the memoryless assumption the
//     queueing figures in rcr::sim already lean on).
//
// Both are written as pure functions of a caller-supplied uniform draw in
// [0, 1) rather than over a concrete generator type, so the same code is
// driven by rcr::Rng (sequential studies) and simd::Philox substreams
// (one O(1) stream per synthetic client in the load generator) without a
// dependency on either. Inversion keeps them deterministic: one draw in,
// one value out, no rejection loops, identical across platforms for a
// given draw sequence.
#pragma once

#include <cstddef>
#include <vector>

namespace rcr::synth {

// Zipf-distributed ranks over a finite catalog of n items:
//   P(rank = k) = (k+1)^-s / H_{n,s},   k in [0, n),
// sampled by inverse CDF over the precomputed cumulative table (binary
// search, O(log n) per draw). s = 0 degenerates to uniform; larger s
// concentrates mass on the head (s around 1 is the classic web-request
// popularity curve).
class ZipfSampler {
 public:
  // n >= 1 items, skew s >= 0.
  ZipfSampler(std::size_t n, double s);

  // Maps one uniform draw u in [0, 1) to a rank in [0, n); monotone in u
  // (rank 0, the most popular item, owns the lowest slice of [0, 1)).
  std::size_t sample(double u01) const;

  std::size_t size() const { return cdf_.size(); }
  double skew() const { return skew_; }

  // Normalized P(rank = k); closed-form check target for the tests.
  double probability(std::size_t k) const;

  // E[rank] under the normalized pmf — the moment the unit tests pin the
  // empirical mean against.
  double mean_rank() const;

 private:
  double skew_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k); back() == 1.0
};

// One exponential inter-arrival gap with rate `lambda` (> 0 arrivals per
// unit time) from one uniform draw: -log1p(-u) / lambda. Mean 1/lambda,
// variance 1/lambda^2. log1p keeps precision for small u and u -> 1 is
// safe because next_double() style draws never reach 1.0 exactly.
double exponential_interarrival(double lambda, double u01);

// Poisson(lambda) counts by inverse-CDF walk: start at P(0) = e^-lambda
// and step the cumulative sum (p *= lambda / k) until it passes the draw.
// One uniform draw in, one count out — no rejection, so a load generator's
// per-tick arrival counts stay one-draw-per-tick deterministic. O(lambda)
// per draw; intended for the small-to-moderate rates batch arrival
// modeling uses (the walk is capped well past any mass the double grid can
// represent). Mean lambda, variance lambda.
class PoissonSampler {
 public:
  // lambda > 0, finite.
  explicit PoissonSampler(double lambda);

  // Maps one uniform draw u in [0, 1) to a count; monotone in u.
  std::size_t sample(double u01) const;

  // P(count = k) = e^-lambda lambda^k / k!; closed-form test target.
  double probability(std::size_t k) const;

  double mean() const { return lambda_; }
  double variance() const { return lambda_; }

 private:
  double lambda_;
  double p0_;  // e^-lambda, the walk's starting mass
};

// Beta(alpha, beta) values in [0, 1] by inverse CDF: the draw u is mapped
// to the x with I_x(alpha, beta) = u, where I is the regularized
// incomplete beta function (stats::beta_inc), found by bisection — the
// CDF is continuous and strictly increasing on (0, 1), so ~64 halvings
// pin x to one double ulp. One draw in, one value out, monotone in u, no
// rejection loops. This is the population-heterogeneity workhorse the
// roadmap's distribution checklist closes on: per-respondent adoption
// propensities, latent trait mixes, and sweep-cell prevalence variants
// all want a bounded two-parameter shape.
class BetaSampler {
 public:
  // alpha > 0, beta > 0, finite.
  BetaSampler(double alpha, double beta);

  // Maps one uniform draw u in [0, 1) to a value in [0, 1]; monotone in u.
  double sample(double u01) const;

  // CDF at x — I_x(alpha, beta); closed-form check target for the tests
  // (sample() inverts exactly this).
  double cdf(double x) const;

  // Closed moments the unit tests pin the empirical ones against.
  double mean() const { return alpha_ / (alpha_ + beta_); }
  double variance() const {
    const double s = alpha_ + beta_;
    return alpha_ * beta_ / (s * s * (s + 1.0));
  }

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

 private:
  double alpha_;
  double beta_;
};

// Log-uniform value in [lo, hi) from one uniform draw:
//   exp(log lo + (log hi - log lo) * u).
// The scale-free spread for quantities whose order of magnitude, not
// value, is uniform — dataset sizes, job durations, catalog sizes. Closed
// moments for the tests: mean (hi - lo) / log(hi / lo). Requires
// 0 < lo < hi, finite; monotone in u (u = 0 gives lo).
double log_uniform(double lo, double hi, double u01);

}  // namespace rcr::synth
