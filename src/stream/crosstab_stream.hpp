// StreamingCrosstab — data::crosstab / data::crosstab_multiselect computed
// one block at a time.
//
// Semantics mirror the materialized builders cell for cell: labels come
// from the schema's category/option order, a row missing either variable
// is dropped, and an optional non-negative weight column contributes w per
// observation (missing weight drops the row). With unit weights every cell
// is an integer count, so shard-and-merge equals the materialized crosstab
// *exactly* (integer addition in double is associative below 2^53); with
// fractional weights the per-cell sums agree up to floating-point
// reassociation across block boundaries.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "data/crosstab.hpp"
#include "data/table.hpp"

namespace rcr::stream {

class StreamingCrosstab {
 public:
  // `schema` fixes the label sets (its category/option order is the output
  // order, exactly as the materialized builders use). col_column may name a
  // categorical column (classic crosstab) or a multi-select column
  // (crosstab_multiselect).
  StreamingCrosstab(const data::Table& schema, std::string row_column,
                    std::string col_column,
                    std::optional<std::string> weight_column = {});

  // Folds every row of `block` in. Blocks must share the schema's category
  // sets (checked); rows are processed in order, so ingesting the blocks of
  // a stream in sequence reproduces the materialized builder's walk.
  void ingest(const data::Table& block);

  void merge(const StreamingCrosstab& other);

  double at(std::size_t r, std::size_t c) const {
    return cells_[r * col_labels_.size() + c];
  }
  const std::vector<std::string>& row_labels() const { return row_labels_; }
  const std::vector<std::string>& col_labels() const { return col_labels_; }
  std::uint64_t rows_ingested() const { return rows_ingested_; }

  // Materializes the same struct data::crosstab would have returned.
  data::LabeledCrosstab to_labeled() const;

  std::size_t approx_bytes() const;

 private:
  std::string row_column_;
  std::string col_column_;
  std::optional<std::string> weight_column_;
  bool multiselect_ = false;
  std::vector<std::string> row_labels_;
  std::vector<std::string> col_labels_;
  std::vector<double> cells_;  // row-major, row_labels x col_labels
  std::uint64_t rows_ingested_ = 0;
};

}  // namespace rcr::stream
