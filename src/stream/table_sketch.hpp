// TableSketch — every sketch in this subsystem wired to a data::Table
// schema, so a stream of table blocks is analyzed column-by-column in one
// pass with bounded memory:
//
//   numeric columns      -> Moments + GKQuantile
//   categorical columns  -> exact per-label counts (+ answered total)
//   multi-select columns -> exact per-option counts (+ answered total)
//   all labels           -> one CountMinSketch + one SpaceSaving over
//                           "column\x1Flabel" keys (cross-validates the
//                           exact counts and demonstrates the approximate
//                           path the exact one would take at larger
//                           domains)
//   whole rows           -> HyperLogLog distinct count of the composite
//                           key over `distinct_columns`
//   one numeric column   -> WeightedReservoir sample (optional)
//   configured pairs     -> StreamingCrosstab (exact data::crosstab)
//
// ingest() takes the block plus the global index of its first row (the
// reservoir's shard-invariant priorities need it); merge() folds a shard's
// sketch in. Both are instrumented through rcr::obs: counters stream.rows /
// stream.blocks / stream.merges, histogram stream.merge.ms, and
// publish_metrics() exports sketch-size gauges.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "data/table.hpp"
#include "stream/crosstab_stream.hpp"
#include "stream/sketch.hpp"

namespace rcr::stream {

struct TableSketchOptions {
  double quantile_eps = 0.005;
  std::size_t cms_depth = 4;
  std::size_t cms_width = 2048;
  std::uint8_t hll_precision = 12;
  // Default sized above the survey's full (column, label) domain (~72
  // cells), so SpaceSaving stays exact on the standard instrument.
  std::size_t heavy_hitter_capacity = 128;
  std::size_t reservoir_capacity = 64;
  std::uint64_t seed = 0x5EED5EEDULL;
  // (row_column, col_column) pairs; col may be categorical or multi-select.
  std::vector<std::pair<std::string, std::string>> crosstabs;
  // Columns forming the distinct-count key; empty = all schema columns.
  std::vector<std::string> distinct_columns;
  // Numeric column to reservoir-sample; empty disables the reservoir.
  std::string reservoir_column;
};

class TableSketch {
 public:
  explicit TableSketch(const data::Table& schema,
                       TableSketchOptions options = {});

  // Folds `block` in; `first_row` is the global stream index of its first
  // row. Blocks must arrive with disjoint index ranges (any order — the
  // sketches are mergeable — though in-order ingest keeps floating-point
  // accumulations identical to the single-stream build).
  void ingest(const data::Table& block, std::size_t first_row);

  // Tail-append convenience: ingest `block` as the rows immediately after
  // everything seen so far (first_row = rows()). This is the form the
  // incremental query engine uses, so one append advances the exact
  // partials and the sketches in lockstep.
  void ingest(const data::Table& block) {
    ingest(block, static_cast<std::size_t>(rows_));
  }

  // Folds a shard's sketch into this one. Options must match.
  void merge(const TableSketch& other);

  std::uint64_t rows() const { return rows_; }
  std::uint64_t blocks() const { return blocks_; }
  const TableSketchOptions& options() const { return options_; }
  const data::Table& schema() const { return schema_; }

  const Moments& moments(const std::string& column) const;
  const GKQuantile& quantile_sketch(const std::string& column) const;
  // Per-category / per-option exact counts in schema label order, plus the
  // number of rows answering the question at all.
  const std::vector<double>& category_counts(const std::string& column) const;
  const std::vector<double>& option_counts(const std::string& column) const;
  double answered(const std::string& column) const;

  const StreamingCrosstab& crosstab(const std::string& row_column,
                                    const std::string& col_column) const;
  const CountMinSketch& label_cms() const { return label_cms_; }
  const SpaceSaving& heavy_hitters() const { return heavy_hitters_; }
  const HyperLogLog& distinct() const { return distinct_; }
  const WeightedReservoir& reservoir() const;

  // The CMS key for a (column, label) cell — what label_cms()/heavy_hitters()
  // were fed, exposed so callers can query estimates for exact comparison.
  static std::string label_key(const std::string& column,
                               const std::string& label);

  // The composite distinct-count key of one row (what distinct() is fed).
  // Public so exact-reference validation can count true distincts the same
  // way the HLL saw them.
  std::uint64_t row_key(const data::Table& block, std::size_t row) const;

  std::size_t approx_bytes() const;
  // Exports stream.sketch.bytes / stream.quantile.tuples gauges.
  void publish_metrics() const;

 private:
  struct NumericState {
    Moments moments;
    GKQuantile quantile;
    NumericState() : quantile(0.01) {}
    explicit NumericState(double eps) : quantile(eps) {}
  };
  struct CountState {
    std::vector<double> counts;
    double answered = 0.0;
  };

  TableSketchOptions options_;
  data::Table schema_;
  std::uint64_t rows_ = 0;
  std::uint64_t blocks_ = 0;
  // std::map: deterministic iteration order for merges and reports.
  std::map<std::string, NumericState> numeric_;
  std::map<std::string, CountState> categorical_;
  std::map<std::string, CountState> multiselect_;
  std::map<std::pair<std::string, std::string>, StreamingCrosstab> crosstabs_;
  CountMinSketch label_cms_;
  SpaceSaving heavy_hitters_;
  HyperLogLog distinct_;
  WeightedReservoir reservoir_;
};

}  // namespace rcr::stream
