#include "stream/crosstab_stream.hpp"

#include "util/error.hpp"

namespace rcr::stream {

namespace {

// Same contract as the materialized builders: 1.0 unweighted, the weight
// cell otherwise, negative = drop the row (missing weight).
double row_weight(const data::Table& block,
                  const std::optional<std::string>& weight_column,
                  std::size_t row) {
  if (!weight_column) return 1.0;
  const double w = block.numeric(*weight_column).at(row);
  if (data::NumericColumn::is_missing(w)) return -1.0;
  RCR_CHECK_MSG(w >= 0.0, "weights must be non-negative");
  return w;
}

}  // namespace

StreamingCrosstab::StreamingCrosstab(const data::Table& schema,
                                     std::string row_column,
                                     std::string col_column,
                                     std::optional<std::string> weight_column)
    : row_column_(std::move(row_column)),
      col_column_(std::move(col_column)),
      weight_column_(std::move(weight_column)) {
  row_labels_ = schema.categorical(row_column_).categories();
  if (schema.kind(col_column_) == data::ColumnKind::kMultiSelect) {
    multiselect_ = true;
    col_labels_ = schema.multiselect(col_column_).options();
  } else {
    col_labels_ = schema.categorical(col_column_).categories();
  }
  RCR_CHECK_MSG(!row_labels_.empty() && !col_labels_.empty(),
                "crosstab needs non-empty category sets");
  cells_.assign(row_labels_.size() * col_labels_.size(), 0.0);
}

void StreamingCrosstab::ingest(const data::Table& block) {
  block.validate_rectangular();
  const auto& rows = block.categorical(row_column_);
  RCR_CHECK_MSG(rows.categories() == row_labels_,
                "block row categories diverge from the crosstab schema");
  const std::size_t cols_n = col_labels_.size();

  if (multiselect_) {
    const auto& opts = block.multiselect(col_column_);
    RCR_CHECK_MSG(opts.options() == col_labels_,
                  "block options diverge from the crosstab schema");
    for (std::size_t i = 0; i < block.row_count(); ++i) {
      if (rows.is_missing(i) || opts.is_missing(i)) continue;
      const double w = row_weight(block, weight_column_, i);
      if (w < 0.0) continue;
      const std::size_t r = static_cast<std::size_t>(rows.code_at(i));
      for (std::size_t o = 0; o < cols_n; ++o) {
        if (opts.has(i, o)) cells_[r * cols_n + o] += w;
      }
    }
  } else {
    const auto& cols = block.categorical(col_column_);
    RCR_CHECK_MSG(cols.categories() == col_labels_,
                  "block col categories diverge from the crosstab schema");
    for (std::size_t i = 0; i < block.row_count(); ++i) {
      if (rows.is_missing(i) || cols.is_missing(i)) continue;
      const double w = row_weight(block, weight_column_, i);
      if (w < 0.0) continue;
      cells_[static_cast<std::size_t>(rows.code_at(i)) * cols_n +
             static_cast<std::size_t>(cols.code_at(i))] += w;
    }
  }
  rows_ingested_ += block.row_count();
}

void StreamingCrosstab::merge(const StreamingCrosstab& other) {
  RCR_CHECK_MSG(row_labels_ == other.row_labels_ &&
                    col_labels_ == other.col_labels_ &&
                    multiselect_ == other.multiselect_,
                "StreamingCrosstab merge requires identical shape");
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  rows_ingested_ += other.rows_ingested_;
}

data::LabeledCrosstab StreamingCrosstab::to_labeled() const {
  data::LabeledCrosstab out;
  out.row_labels = row_labels_;
  out.col_labels = col_labels_;
  out.counts = stats::Contingency(row_labels_.size(), col_labels_.size());
  for (std::size_t r = 0; r < row_labels_.size(); ++r) {
    for (std::size_t c = 0; c < col_labels_.size(); ++c) {
      out.counts.add(r, c, at(r, c));
    }
  }
  return out;
}

std::size_t StreamingCrosstab::approx_bytes() const {
  return cells_.capacity() * sizeof(double);
}

}  // namespace rcr::stream
