#include "stream/sketch.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "simd/kernels.hpp"
#include "util/error.hpp"

namespace rcr::stream {

std::uint64_t hash_bytes(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return mix64(h ^ mix64(seed));
}

// --- Moments ----------------------------------------------------------------

void Moments::add(double x, double w) {
  if (w <= 0.0) return;
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  weight_ += w;
  const double delta = x - mean_;
  mean_ += (w / weight_) * delta;
  m2_ += w * delta * (x - mean_);
}

void Moments::merge(const Moments& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  const double w = weight_ + other.weight_;
  const double delta = other.mean_ - mean_;
  mean_ += delta * (other.weight_ / w);
  m2_ += other.m2_ + delta * delta * (weight_ * other.weight_ / w);
  weight_ = w;
  count_ += other.count_;
}

double Moments::variance() const {
  if (weight_ <= 1.0) return 0.0;
  return m2_ / (weight_ - 1.0);
}

double Moments::stddev() const { return std::sqrt(variance()); }

double Moments::min() const {
  return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double Moments::max() const {
  return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
}

// --- GKQuantile -------------------------------------------------------------

namespace {
// Buffered inserts amortize the linear merge pass: one flush folds up to
// kGkBufferCap sorted values into the summary in a single sweep.
constexpr std::size_t kGkBufferCap = 512;
}  // namespace

GKQuantile::GKQuantile(double eps) : eps_(eps) {
  RCR_CHECK_MSG(eps > 0.0 && eps < 0.5, "GKQuantile eps must be in (0, 0.5)");
  buffer_.reserve(kGkBufferCap);
}

void GKQuantile::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  buffer_.push_back(x);
  if (buffer_.size() >= kGkBufferCap) {
    flush();
    compress();
  }
}

// Folds the buffer into the summary with one linear merge pass. Inserted
// tuples get g = 1 and delta = floor(2*eps*n) - 1 (0 at the extremes and
// while the summary is still in its exact phase), which preserves the GK
// invariant g + delta <= floor(2*eps*n) + 1 for the current count.
void GKQuantile::flush() const {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());

  const std::uint64_t cap = static_cast<std::uint64_t>(2.0 * eps_ * count_);
  const std::uint64_t delta_new = cap > 0 ? cap - 1 : 0;

  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + buffer_.size());
  std::size_t ti = 0;
  for (std::size_t bi = 0; bi < buffer_.size(); ++bi) {
    const double v = buffer_[bi];
    while (ti < tuples_.size() && tuples_[ti].value <= v) {
      merged.push_back(tuples_[ti++]);
    }
    // Values landing before the first or after the last summary tuple carry
    // exact rank information (delta = 0) so min/max quantiles stay sharp.
    const bool extreme = merged.empty() || ti >= tuples_.size();
    merged.push_back({v, 1, extreme ? 0 : delta_new});
  }
  while (ti < tuples_.size()) merged.push_back(tuples_[ti++]);
  tuples_ = std::move(merged);
  buffer_.clear();
}

// Standard GK compress: absorb tuple i into its successor whenever the
// combined g + delta stays within the 2*eps*n budget. The first and last
// tuples are never absorbed, keeping the extremes exact.
void GKQuantile::compress() const {
  if (tuples_.size() < 3) return;
  const std::uint64_t cap = static_cast<std::uint64_t>(2.0 * eps_ * count_);
  if (cap < 2) return;
  std::size_t w = tuples_.size() - 1;  // write cursor, moving left
  for (std::size_t i = tuples_.size() - 1; i-- > 1;) {
    Tuple& succ = tuples_[w];
    const Tuple& cur = tuples_[i];
    if (cur.g + succ.g + succ.delta < cap) {
      succ.g += cur.g;
    } else {
      tuples_[--w] = cur;
    }
  }
  tuples_[--w] = tuples_.front();
  tuples_.erase(tuples_.begin(), tuples_.begin() + static_cast<std::ptrdiff_t>(w));
}

void GKQuantile::merge(const GKQuantile& other) {
  RCR_CHECK_MSG(eps_ == other.eps_, "GKQuantile merge requires matching eps");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  flush();
  other.flush();
  // Merge-sort the two summaries. Prefix g-sums already account for the
  // other summary's predecessors, but each tuple's upper rank bound in the
  // combined stream is rmax_self + rmax_other(successor) - 1, so its delta
  // must widen by the successor-in-the-other-summary's g + delta - 1.
  // Widened deltas stay within the combined floor(2*eps*n) budget, which
  // keeps the rank bounds honest under any merge tree and bounds query
  // error by the documented 2*eps*n.
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  const std::vector<Tuple>& a = tuples_;
  const std::vector<Tuple>& b = other.tuples_;
  std::size_t ia = 0, ib = 0;
  while (ia < a.size() || ib < b.size()) {
    const bool take_a =
        ib >= b.size() || (ia < a.size() && a[ia].value <= b[ib].value);
    Tuple t = take_a ? a[ia] : b[ib];
    const std::vector<Tuple>& o = take_a ? b : a;
    const std::size_t succ = take_a ? ib : ia;
    if (succ < o.size()) t.delta += o[succ].g + o[succ].delta - 1;
    merged.push_back(t);
    ++(take_a ? ia : ib);
  }
  tuples_ = std::move(merged);
  count_ += other.count_;
  compress();
}

double GKQuantile::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  flush();
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
  // Return the tuple whose certain rank interval [rmin, rmax] deviates
  // least from the target. Single-stream, the GK invariant guarantees a
  // tuple within eps*n; after merges the minimum stays within 2*eps*n.
  std::uint64_t rmin = 0;
  std::uint64_t best_err = std::numeric_limits<std::uint64_t>::max();
  double best = tuples_.front().value;
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    const std::uint64_t rmax = rmin + t.delta;
    const std::uint64_t err =
        std::max(target > rmin ? target - rmin : 0,
                 rmax > target ? rmax - target : 0);
    if (err < best_err) {
      best_err = err;
      best = t.value;
    }
  }
  return std::clamp(best, min_, max_);
}

double GKQuantile::min() const {
  return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double GKQuantile::max() const {
  return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
}

std::size_t GKQuantile::tuple_count() const {
  flush();
  return tuples_.size();
}

std::size_t GKQuantile::approx_bytes() const {
  return tuples_.capacity() * sizeof(Tuple) +
         buffer_.capacity() * sizeof(double);
}

// --- CountMinSketch ---------------------------------------------------------

CountMinSketch::CountMinSketch(std::size_t depth, std::size_t width,
                               std::uint64_t seed)
    : depth_(depth), width_(std::bit_ceil(std::max<std::size_t>(2, width))),
      seed_(seed) {
  RCR_CHECK_MSG(depth > 0, "CountMinSketch depth must be positive");
  cells_.assign(depth_ * width_, 0.0);
}

std::size_t CountMinSketch::row_index(std::size_t d,
                                      std::uint64_t key_hash) const {
  // Each row gets an independent permutation of the key hash; width_ is a
  // power of two so the mask keeps all mixed bits in play.
  return static_cast<std::size_t>(mix64(key_hash ^ mix64(seed_ + d + 1))) &
         (width_ - 1);
}

void CountMinSketch::add(std::uint64_t key_hash, double w) {
  if (w <= 0.0) return;
  total_ += w;
  for (std::size_t d = 0; d < depth_; ++d) {
    cells_[d * width_ + row_index(d, key_hash)] += w;
  }
}

void CountMinSketch::add_batch(std::span<const std::uint64_t> key_hashes,
                               double w) {
  if (w <= 0.0 || key_hashes.empty()) return;
  scratch_.resize(key_hashes.size());
  // Depth-outer: one vectorized mix64 sweep per row, then a scalar
  // scatter. Reordering the adds across depths is invisible — each cell's
  // += sequence still follows key order, and total_ below replays the
  // exact per-key sequential sum — so this is bitwise add()-equivalent.
  for (std::size_t d = 0; d < depth_; ++d) {
    simd::mix64_map(key_hashes.data(), key_hashes.size(),
                    mix64(seed_ + d + 1), scratch_.data());
    double* row = cells_.data() + d * width_;
    const std::uint64_t mask = width_ - 1;
    for (const std::uint64_t h : scratch_) row[h & mask] += w;
  }
  for (std::size_t i = 0; i < key_hashes.size(); ++i) total_ += w;
}

double CountMinSketch::estimate(std::uint64_t key_hash) const {
  double est = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d < depth_; ++d) {
    est = std::min(est, cells_[d * width_ + row_index(d, key_hash)]);
  }
  return est == std::numeric_limits<double>::infinity() ? 0.0 : est;
}

void CountMinSketch::merge(const CountMinSketch& other) {
  RCR_CHECK_MSG(depth_ == other.depth_ && width_ == other.width_ &&
                seed_ == other.seed_,
            "CountMinSketch merge requires matching dims and seed");
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  total_ += other.total_;
}

double CountMinSketch::error_bound() const {
  return std::exp(1.0) / static_cast<double>(width_) * total_;
}

std::size_t CountMinSketch::approx_bytes() const {
  return cells_.capacity() * sizeof(double);
}

// --- SpaceSaving ------------------------------------------------------------

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(capacity) {
  RCR_CHECK_MSG(capacity > 0, "SpaceSaving capacity must be positive");
  entries_.reserve(capacity);
}

double SpaceSaving::min_count() const {
  double m = std::numeric_limits<double>::infinity();
  for (const Entry& e : entries_) m = std::min(m, e.count);
  return entries_.empty() ? 0.0 : m;
}

void SpaceSaving::add(std::string_view key, double w) {
  if (w <= 0.0) return;
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, std::string_view k) { return e.key < k; });
  if (it != entries_.end() && it->key == key) {
    it->count += w;
    return;
  }
  if (entries_.size() < capacity_) {
    entries_.insert(it, {std::string(key), w, 0.0});
    return;
  }
  // Evict the minimum-count entry; among ties the smallest key goes (the
  // scan order is the key order, so the rule is deterministic).
  auto victim = entries_.begin();
  for (auto e = entries_.begin() + 1; e != entries_.end(); ++e) {
    if (e->count < victim->count) victim = e;
  }
  const double floor_count = victim->count;
  entries_.erase(victim);
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, std::string_view k) { return e.key < k; });
  entries_.insert(pos, {std::string(key), floor_count + w, floor_count});
  exact_ = false;
}

void SpaceSaving::merge(const SpaceSaving& other) {
  RCR_CHECK_MSG(capacity_ == other.capacity_,
                "SpaceSaving merge requires matching capacity");
  // Union by key (both sides are key-sorted). A key absent from one side
  // could have been evicted there, so when that side is inexact its
  // minimum count is added as additional error (standard mergeable-summary
  // treatment); when both sides are exact the merge is exact addition.
  const double my_floor = exact_ ? 0.0 : min_count();
  const double other_floor = other.exact_ ? 0.0 : other.min_count();
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  std::size_t i = 0, j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (j >= other.entries_.size() ||
        (i < entries_.size() && entries_[i].key < other.entries_[j].key)) {
      Entry e = entries_[i++];
      e.count += other_floor;
      e.error += other_floor;
      merged.push_back(std::move(e));
    } else if (i >= entries_.size() ||
               other.entries_[j].key < entries_[i].key) {
      Entry e = other.entries_[j++];
      e.count += my_floor;
      e.error += my_floor;
      merged.push_back(std::move(e));
    } else {
      Entry e = entries_[i++];
      const Entry& o = other.entries_[j++];
      e.count += o.count;
      e.error += o.error;
      merged.push_back(std::move(e));
    }
  }
  exact_ = exact_ && other.exact_ && merged.size() <= capacity_;
  if (merged.size() > capacity_) {
    // Keep the top-capacity counts (ties: smaller key wins a slot).
    std::vector<Entry> by_count = merged;
    std::nth_element(by_count.begin(),
                     by_count.begin() + static_cast<std::ptrdiff_t>(capacity_ - 1),
                     by_count.end(), [](const Entry& a, const Entry& b) {
                       if (a.count != b.count) return a.count > b.count;
                       return a.key < b.key;
                     });
    const Entry& cut = by_count[capacity_ - 1];
    std::vector<Entry> kept;
    kept.reserve(capacity_);
    for (Entry& e : merged) {
      const bool keep = e.count > cut.count ||
                        (e.count == cut.count && e.key <= cut.key);
      if (keep && kept.size() < capacity_) kept.push_back(std::move(e));
    }
    merged = std::move(kept);
  }
  entries_ = std::move(merged);
}

std::vector<SpaceSaving::Entry> SpaceSaving::top(std::size_t k) const {
  std::vector<Entry> out = entries_;
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::size_t SpaceSaving::approx_bytes() const {
  std::size_t bytes = entries_.capacity() * sizeof(Entry);
  for (const Entry& e : entries_) bytes += e.key.capacity();
  return bytes;
}

// --- HyperLogLog ------------------------------------------------------------

HyperLogLog::HyperLogLog(std::uint8_t precision, std::uint64_t seed)
    : precision_(precision), seed_(seed) {
  RCR_CHECK_MSG(precision >= 4 && precision <= 16,
                "HyperLogLog precision must be in [4, 16]");
  registers_.assign(std::size_t{1} << precision, 0);
}

void HyperLogLog::add(std::uint64_t key_hash) {
  const std::uint64_t h = mix64(key_hash ^ mix64(seed_));
  const std::size_t reg = static_cast<std::size_t>(h >> (64 - precision_));
  const std::uint64_t rest = h << precision_;
  // Rank of the leading one in the remaining bits, 1-based; all-zero rest
  // (probability 2^-(64-p)) saturates at 64 - precision + 1.
  const std::uint8_t rank = static_cast<std::uint8_t>(
      rest == 0 ? 64 - precision_ + 1 : std::countl_zero(rest) + 1);
  registers_[reg] = std::max(registers_[reg], rank);
}

void HyperLogLog::add_batch(std::span<const std::uint64_t> key_hashes) {
  if (key_hashes.empty()) return;
  scratch_.resize(key_hashes.size());
  simd::mix64_map(key_hashes.data(), key_hashes.size(), mix64(seed_),
                  scratch_.data());
  for (const std::uint64_t h : scratch_) {
    const std::size_t reg = static_cast<std::size_t>(h >> (64 - precision_));
    const std::uint64_t rest = h << precision_;
    const std::uint8_t rank = static_cast<std::uint8_t>(
        rest == 0 ? 64 - precision_ + 1 : std::countl_zero(rest) + 1);
    registers_[reg] = std::max(registers_[reg], rank);
  }
}

double HyperLogLog::estimate() const {
  const double m = static_cast<double>(registers_.size());
  // Bias-correction constant alpha_m for m >= 128 (we only allow p >= 4,
  // and p in {4,5,6} uses the tabulated constants).
  double alpha;
  if (registers_.size() == 16) alpha = 0.673;
  else if (registers_.size() == 32) alpha = 0.697;
  else if (registers_.size() == 64) alpha = 0.709;
  else alpha = 0.7213 / (1.0 + 1.079 / m);

  double inv_sum = 0.0;
  std::size_t zeros = 0;
  for (std::uint8_t r : registers_) {
    inv_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  const double raw = alpha * m * m / inv_sum;
  if (raw <= 2.5 * m && zeros > 0) {
    // Small-range correction: linear counting on the empty registers.
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

void HyperLogLog::merge(const HyperLogLog& other) {
  RCR_CHECK_MSG(precision_ == other.precision_ && seed_ == other.seed_,
                "HyperLogLog merge requires matching precision and seed");
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

// --- WeightedReservoir ------------------------------------------------------

WeightedReservoir::WeightedReservoir(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), seed_(seed) {
  RCR_CHECK_MSG(capacity > 0, "WeightedReservoir capacity must be positive");
  items_.reserve(capacity);
}

void WeightedReservoir::offer(std::uint64_t index, double value, double w) {
  ++offered_;
  if (w <= 0.0) return;
  // u in (0, 1], a pure function of (seed, index): the +1 keeps log finite.
  const std::uint64_t h = mix64(seed_ ^ mix64(index + 1));
  const double u = static_cast<double>((h >> 11) + 1) * 0x1.0p-53;
  const double priority = std::log(u) / w;
  if (items_.size() == capacity_ && priority <= items_.back().priority) {
    return;  // common case: rejected in O(1)
  }
  insert({priority, index, value, w});
}

void WeightedReservoir::insert(const Item& item) {
  const auto pos = std::lower_bound(
      items_.begin(), items_.end(), item, [](const Item& a, const Item& b) {
        if (a.priority != b.priority) return a.priority > b.priority;
        return a.index < b.index;
      });
  if (pos != items_.end() && pos->index == item.index) return;  // merge dup
  items_.insert(pos, item);
  if (items_.size() > capacity_) items_.pop_back();
}

void WeightedReservoir::merge(const WeightedReservoir& other) {
  RCR_CHECK_MSG(capacity_ == other.capacity_ && seed_ == other.seed_,
                "WeightedReservoir merge requires matching capacity and seed");
  offered_ += other.offered_;
  for (const Item& item : other.items_) {
    if (items_.size() == capacity_ &&
        item.priority <= items_.back().priority &&
        !(item.priority == items_.back().priority &&
          item.index < items_.back().index)) {
      continue;
    }
    insert(item);
  }
}

std::size_t WeightedReservoir::approx_bytes() const {
  return items_.capacity() * sizeof(Item);
}

}  // namespace rcr::stream
