// rcr::stream — mergeable one-pass sketches for populations that do not
// fit in RAM.
//
// Every accumulator here obeys the same three-part contract:
//
//   * one pass   — add()/offer() sees each observation exactly once and
//                  keeps state bounded (O(1) or O(poly(1/eps)) in the
//                  stream length);
//   * mergeable  — merge(other) folds a shard built from a disjoint slice
//                  of the stream into *this; shard-and-merge equals
//                  single-stream ingestion exactly (Moments, counts,
//                  CountMin, HyperLogLog, WeightedReservoir) or within the
//                  documented error bound (GKQuantile, SpaceSaving);
//   * deterministic — no hidden global state: hashed sketches derive every
//                  hash from an explicit seed, and the only order
//                  sensitivity left (floating-point merge order in Moments
//                  and GK summary structure) is fixed by the engine's
//                  index-ordered combine (parallel_reduce contract), so
//                  results are bitwise identical across thread counts.
//
// Error bounds (n = stream length, documented per sketch below):
//   Moments          exact (floating point; merge order fixed by contract)
//   GKQuantile       rank error <= eps*n single-stream; <= 2*eps*n after
//                    arbitrary shard merges (conservative)
//   CountMinSketch   overestimate only; err <= e/width * total weight with
//                    probability 1 - exp(-depth) per query
//   SpaceSaving      exact while distinct keys <= capacity (our categorical
//                    domains); otherwise count in [true, true + error]
//   HyperLogLog      relative std error ~= 1.04 / sqrt(2^precision)
//   WeightedReservoir exact A-ES sample: priorities are a pure function of
//                    (seed, global index, weight), so any shard split
//                    selects the same k items
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rcr::stream {

// SplitMix64 finalizer: the mixing primitive every hashed sketch uses.
inline std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// FNV-1a over the bytes, folded through mix64 with the sketch seed.
std::uint64_t hash_bytes(std::string_view bytes, std::uint64_t seed);

// --- Moments ----------------------------------------------------------------
// Streaming weighted mean/variance (West's update) with Chan's pairwise
// merge, plus exact sum/min/max. With unit weights, mean() and variance()
// reproduce stats::mean / stats::variance (n-1 denominator).
class Moments {
 public:
  void add(double x, double w = 1.0);
  void merge(const Moments& other);

  std::uint64_t count() const { return count_; }
  double weight() const { return weight_; }
  double mean() const { return mean_; }
  // Sample variance (n-1 style: M2 / (weight - 1)); 0 until weight > 1.
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * weight_; }
  double min() const;
  double max() const;

 private:
  std::uint64_t count_ = 0;
  double weight_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// --- GKQuantile -------------------------------------------------------------
// Greenwald–Khanna epsilon-approximate quantile summary with buffered bulk
// inserts. quantile(q) returns a stream value whose rank is within eps*n
// of ceil(q*n) for a single-stream build, and within 2*eps*n after any
// sequence of shard merges (conservative bound; merges concatenate the
// summaries and recompress against the combined n). Space is
// O((1/eps) * log(eps*n)) tuples. min/max are tracked exactly.
class GKQuantile {
 public:
  explicit GKQuantile(double eps = 0.01);

  void add(double x);
  void merge(const GKQuantile& other);  // eps must match

  // q in [0, 1]. Returns 0 on an empty sketch.
  double quantile(double q) const;

  std::uint64_t count() const { return count_; }
  double eps() const { return eps_; }
  double min() const;
  double max() const;

  std::size_t tuple_count() const;
  std::size_t approx_bytes() const;

 private:
  struct Tuple {
    double value;
    std::uint64_t g;      // rmin(i) - rmin(i-1)
    std::uint64_t delta;  // rmax(i) - rmin(i)
  };

  void flush() const;
  void compress() const;

  double eps_;
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  // Buffered inserts are folded into the summary lazily; queries flush
  // first, so the buffer is an internal detail (hence mutable).
  mutable std::vector<Tuple> tuples_;
  mutable std::vector<double> buffer_;
};

// --- CountMinSketch ---------------------------------------------------------
// Conservative point-frequency sketch over hashed keys: depth rows of
// `width` (rounded up to a power of two) double counters. estimate() never
// underestimates; the overestimate exceeds e/width * total_weight() with
// probability at most exp(-depth). merge() adds counters elementwise and is
// exact (shard-and-merge == single stream); dims and seed must match.
class CountMinSketch {
 public:
  CountMinSketch(std::size_t depth, std::size_t width, std::uint64_t seed);

  void add(std::uint64_t key_hash, double w = 1.0);
  void add(std::string_view key, double w = 1.0) {
    add(hash_bytes(key, seed_), w);
  }
  // Batched form of add(): identical cells and total to the equivalent
  // loop of add(key_hashes[i], w) calls (each cell's += sequence keeps key
  // order; the depth loop is hoisted outward and the row hashing runs
  // through the rcr::simd mix64 kernel, L keys at a time).
  void add_batch(std::span<const std::uint64_t> key_hashes, double w = 1.0);

  double estimate(std::uint64_t key_hash) const;
  double estimate(std::string_view key) const {
    return estimate(hash_bytes(key, seed_));
  }

  void merge(const CountMinSketch& other);

  double total_weight() const { return total_; }
  std::size_t depth() const { return depth_; }
  std::size_t width() const { return width_; }
  // e/width * total_weight — the per-query error scale.
  double error_bound() const;
  std::size_t approx_bytes() const;

 private:
  std::size_t row_index(std::size_t d, std::uint64_t key_hash) const;

  std::size_t depth_;
  std::size_t width_;  // power of two
  std::uint64_t seed_;
  double total_ = 0.0;
  std::vector<double> cells_;  // depth_ * width_
  std::vector<std::uint64_t> scratch_;  // add_batch row hashes (reused)
};

// --- SpaceSaving ------------------------------------------------------------
// Metwally et al. heavy hitters over string keys with at most `capacity`
// tracked entries. While the distinct-key count stays within capacity
// (every categorical answer set in this toolkit) the counts are exact and
// exact() stays true; beyond it, each reported count lies in
// [true, true + error]. Eviction and merge tie-breaks are by (count, key),
// so the structure is a pure function of the input stream.
class SpaceSaving {
 public:
  explicit SpaceSaving(std::size_t capacity);

  void add(std::string_view key, double w = 1.0);
  void merge(const SpaceSaving& other);

  struct Entry {
    std::string key;
    double count = 0.0;  // estimate (upper bound)
    double error = 0.0;  // count - error <= true count <= count
  };
  // Entries sorted by descending count (ties: ascending key).
  std::vector<Entry> top(std::size_t k) const;

  bool exact() const { return exact_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t tracked() const { return entries_.size(); }
  std::size_t approx_bytes() const;

 private:
  double min_count() const;

  std::size_t capacity_;
  bool exact_ = true;
  // Sorted by key so every walk (eviction scan, merge) is deterministic.
  std::vector<Entry> entries_;
};

// --- HyperLogLog ------------------------------------------------------------
// Flajolet et al. distinct counting: 2^precision one-byte registers,
// register-wise max merge (exact under sharding). estimate() applies the
// standard small-range linear-counting correction. Relative standard error
// ~= 1.04 / sqrt(2^precision) (~1.6% at the default precision 12).
class HyperLogLog {
 public:
  explicit HyperLogLog(std::uint8_t precision = 12, std::uint64_t seed = 0);

  void add(std::uint64_t key_hash);
  void add(std::string_view key) { add(hash_bytes(key, seed_)); }
  // Batched add(): register-wise max is order-insensitive, and the hash
  // runs through the rcr::simd mix64 kernel — identical registers to the
  // equivalent add() loop.
  void add_batch(std::span<const std::uint64_t> key_hashes);

  double estimate() const;
  void merge(const HyperLogLog& other);  // precision and seed must match

  std::uint8_t precision() const { return precision_; }
  std::size_t approx_bytes() const { return registers_.size(); }

 private:
  std::uint8_t precision_;
  std::uint64_t seed_;
  std::vector<std::uint8_t> registers_;
  std::vector<std::uint64_t> scratch_;  // add_batch hashes (reused)
};

// --- WeightedReservoir ------------------------------------------------------
// Weighted sampling without replacement (Efraimidis–Spirakis A-ES) made
// shard-proof: item i's priority is ln(u_i)/w_i with u_i derived from
// mix64(seed, global index) — a pure function of the item, not of arrival
// order — and the reservoir is simply the top-`capacity` priorities. Any
// partition of the stream therefore merges to exactly the single-stream
// sample, and a fixed (priority, index) order makes ties impossible.
class WeightedReservoir {
 public:
  WeightedReservoir(std::size_t capacity, std::uint64_t seed);

  // `index` is the item's global stream position (must be unique);
  // w <= 0 excludes the item.
  void offer(std::uint64_t index, double value, double w = 1.0);
  void merge(const WeightedReservoir& other);  // seed must match

  struct Item {
    double priority = 0.0;  // ln(u)/w, in (-inf, 0]
    std::uint64_t index = 0;
    double value = 0.0;
    double weight = 1.0;
  };
  // Sorted by descending (priority, index).
  const std::vector<Item>& items() const { return items_; }

  std::uint64_t offered() const { return offered_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t approx_bytes() const;

 private:
  void insert(const Item& item);

  std::size_t capacity_;
  std::uint64_t seed_;
  std::uint64_t offered_ = 0;
  std::vector<Item> items_;  // sorted descending, size <= capacity_
};

}  // namespace rcr::stream
