#include "stream/table_sketch.hpp"

#include <bit>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "simd/kernels.hpp"
#include "util/error.hpp"

namespace rcr::stream {

namespace {

// Handles resolved once; registration takes the registry mutex.
struct StreamObs {
  obs::Counter& rows = obs::registry().counter("stream.rows");
  obs::Counter& blocks = obs::registry().counter("stream.blocks");
  obs::Counter& merges = obs::registry().counter("stream.merges");
  obs::Histogram& merge_ms = obs::registry().histogram("stream.merge.ms");
  obs::Gauge& sketch_bytes = obs::registry().gauge("stream.sketch.bytes");
  obs::Gauge& quantile_tuples =
      obs::registry().gauge("stream.quantile.tuples");
};

StreamObs& stream_obs() {
  static StreamObs o;
  return o;
}

std::uint64_t hash_double(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

}  // namespace

std::string TableSketch::label_key(const std::string& column,
                                   const std::string& label) {
  return column + '\x1F' + label;
}

TableSketch::TableSketch(const data::Table& schema, TableSketchOptions options)
    : options_(std::move(options)),
      schema_(schema.clone_empty()),
      label_cms_(options_.cms_depth, options_.cms_width, options_.seed),
      heavy_hitters_(options_.heavy_hitter_capacity),
      distinct_(options_.hll_precision, options_.seed),
      reservoir_(options_.reservoir_capacity, options_.seed) {
  for (const std::string& name : schema_.column_names()) {
    switch (schema_.kind(name)) {
      case data::ColumnKind::kNumeric:
        numeric_.emplace(name, NumericState(options_.quantile_eps));
        break;
      case data::ColumnKind::kCategorical: {
        CountState s;
        s.counts.assign(schema_.categorical(name).category_count(), 0.0);
        categorical_.emplace(name, std::move(s));
        break;
      }
      case data::ColumnKind::kMultiSelect: {
        CountState s;
        s.counts.assign(schema_.multiselect(name).option_count(), 0.0);
        multiselect_.emplace(name, std::move(s));
        break;
      }
    }
  }
  if (options_.distinct_columns.empty()) {
    options_.distinct_columns = schema_.column_names();
  }
  for (const std::string& name : options_.distinct_columns) {
    RCR_CHECK_MSG(schema_.has_column(name),
                  "distinct column '" + name + "' not in schema");
  }
  if (!options_.reservoir_column.empty()) {
    RCR_CHECK_MSG(numeric_.count(options_.reservoir_column) > 0,
                  "reservoir column must be numeric");
  }
  for (const auto& [row_col, col_col] : options_.crosstabs) {
    crosstabs_.emplace(std::make_pair(row_col, col_col),
                       StreamingCrosstab(schema_, row_col, col_col));
  }
}

// Composite hash of one row over the distinct-key columns. Missing cells
// hash a per-kind sentinel, so "missing" is a distinct value, not a skip.
std::uint64_t TableSketch::row_key(const data::Table& block,
                                   std::size_t row) const {
  std::uint64_t h = mix64(options_.seed);
  for (const std::string& name : options_.distinct_columns) {
    std::uint64_t cell = 0;
    switch (schema_.kind(name)) {
      case data::ColumnKind::kNumeric: {
        const double v = block.numeric(name).at(row);
        cell = data::NumericColumn::is_missing(v) ? 0x4D495353ULL
                                                  : hash_double(v);
        break;
      }
      case data::ColumnKind::kCategorical: {
        const auto& col = block.categorical(name);
        cell = col.is_missing(row)
                   ? 0x4D495353ULL
                   : static_cast<std::uint64_t>(col.code_at(row)) + 1;
        break;
      }
      case data::ColumnKind::kMultiSelect: {
        const auto& col = block.multiselect(name);
        cell = col.is_missing(row) ? 0x4D495353ULL : col.mask_at(row) + 1;
        break;
      }
    }
    h = mix64(h ^ cell);
  }
  return h;
}

void TableSketch::ingest(const data::Table& block, std::size_t first_row) {
  block.validate_rectangular();
  const std::size_t n = block.row_count();

  // Column-major passes keep the inner loops tight.
  for (auto& [name, state] : numeric_) {
    const auto& col = block.numeric(name);
    for (std::size_t i = 0; i < n; ++i) {
      const double v = col.at(i);
      if (data::NumericColumn::is_missing(v)) continue;
      state.moments.add(v);
      state.quantile.add(v);
    }
  }
  // The label domains are tiny (category/option sets), so the per-row key
  // strings and their CMS hashes are built once per block and reused; the
  // count-min inserts batch through add_batch (all unit weight, so the
  // grouping cannot change any cell — see CountMinSketch::add_batch).
  // SpaceSaving sees the same keys in the same row order as before.
  std::vector<std::string> keys;
  std::vector<std::uint64_t> key_hashes;
  std::vector<std::uint64_t> cms_batch;
  for (auto& [name, state] : categorical_) {
    const auto& col = block.categorical(name);
    RCR_CHECK_MSG(col.category_count() == state.counts.size(),
                  "block categories diverge from the sketch schema");
    keys.clear();
    key_hashes.clear();
    for (std::size_t c = 0; c < state.counts.size(); ++c) {
      keys.push_back(label_key(name, col.category(c)));
      key_hashes.push_back(hash_bytes(keys.back(), options_.seed));
    }
    cms_batch.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (col.is_missing(i)) continue;
      const std::size_t code = static_cast<std::size_t>(col.code_at(i));
      state.counts[code] += 1.0;
      state.answered += 1.0;
      cms_batch.push_back(key_hashes[code]);
      heavy_hitters_.add(keys[code]);
    }
    label_cms_.add_batch(cms_batch);
  }
  for (auto& [name, state] : multiselect_) {
    const auto& col = block.multiselect(name);
    RCR_CHECK_MSG(col.option_count() == state.counts.size(),
                  "block options diverge from the sketch schema");
    keys.clear();
    key_hashes.clear();
    for (std::size_t o = 0; o < state.counts.size(); ++o) {
      keys.push_back(label_key(name, col.option(o)));
      key_hashes.push_back(hash_bytes(keys.back(), options_.seed));
    }
    cms_batch.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (col.is_missing(i)) continue;
      state.answered += 1.0;
      for (std::size_t o = 0; o < state.counts.size(); ++o) {
        if (!col.has(i, o)) continue;
        state.counts[o] += 1.0;
        cms_batch.push_back(key_hashes[o]);
        heavy_hitters_.add(keys[o]);
      }
    }
    label_cms_.add_batch(cms_batch);
  }

  for (auto& [pair, xtab] : crosstabs_) xtab.ingest(block);

  // Distinct counting: the composite row key is a per-column chain of
  // mix64(h ^ cell). Running it column-major over the whole block turns n
  // sequential chains into one vectorized mix64_combine sweep per column
  // — the same function of the same inputs per row as row_key(), which
  // stays as the one-row reference the tests pin this path against.
  {
    std::vector<std::uint64_t> row_keys(n, mix64(options_.seed));
    std::vector<std::uint64_t> cell(n);
    for (const std::string& name : options_.distinct_columns) {
      switch (schema_.kind(name)) {
        case data::ColumnKind::kNumeric: {
          const auto& col = block.numeric(name);
          for (std::size_t i = 0; i < n; ++i) {
            const double v = col.at(i);
            cell[i] = data::NumericColumn::is_missing(v) ? 0x4D495353ULL
                                                         : hash_double(v);
          }
          break;
        }
        case data::ColumnKind::kCategorical: {
          const auto& col = block.categorical(name);
          for (std::size_t i = 0; i < n; ++i) {
            cell[i] = col.is_missing(i)
                          ? 0x4D495353ULL
                          : static_cast<std::uint64_t>(col.code_at(i)) + 1;
          }
          break;
        }
        case data::ColumnKind::kMultiSelect: {
          const auto& col = block.multiselect(name);
          for (std::size_t i = 0; i < n; ++i) {
            cell[i] =
                col.is_missing(i) ? 0x4D495353ULL : col.mask_at(i) + 1;
          }
          break;
        }
      }
      simd::mix64_combine(row_keys.data(), cell.data(), n);
    }
    distinct_.add_batch(row_keys);
  }

  if (!options_.reservoir_column.empty()) {
    const auto& col = block.numeric(options_.reservoir_column);
    for (std::size_t i = 0; i < n; ++i) {
      const double v = col.at(i);
      if (data::NumericColumn::is_missing(v)) continue;
      reservoir_.offer(first_row + i, v);
    }
  }

  rows_ += n;
  ++blocks_;
  stream_obs().rows.add(n);
  stream_obs().blocks.add(1);
}

void TableSketch::merge(const TableSketch& other) {
  obs::ScopedTimer timer(stream_obs().merge_ms);
  RCR_CHECK_MSG(schema_.column_names() == other.schema_.column_names(),
                "TableSketch merge requires identical schemas");
  for (auto& [name, state] : numeric_) {
    const NumericState& o = other.numeric_.at(name);
    state.moments.merge(o.moments);
    state.quantile.merge(o.quantile);
  }
  for (auto& [name, state] : categorical_) {
    const CountState& o = other.categorical_.at(name);
    for (std::size_t c = 0; c < state.counts.size(); ++c)
      state.counts[c] += o.counts[c];
    state.answered += o.answered;
  }
  for (auto& [name, state] : multiselect_) {
    const CountState& o = other.multiselect_.at(name);
    for (std::size_t c = 0; c < state.counts.size(); ++c)
      state.counts[c] += o.counts[c];
    state.answered += o.answered;
  }
  for (auto& [pair, xtab] : crosstabs_) xtab.merge(other.crosstabs_.at(pair));
  label_cms_.merge(other.label_cms_);
  heavy_hitters_.merge(other.heavy_hitters_);
  distinct_.merge(other.distinct_);
  reservoir_.merge(other.reservoir_);
  rows_ += other.rows_;
  blocks_ += other.blocks_;
  stream_obs().merges.add(1);
}

const Moments& TableSketch::moments(const std::string& column) const {
  return numeric_.at(column).moments;
}

const GKQuantile& TableSketch::quantile_sketch(
    const std::string& column) const {
  return numeric_.at(column).quantile;
}

const std::vector<double>& TableSketch::category_counts(
    const std::string& column) const {
  return categorical_.at(column).counts;
}

const std::vector<double>& TableSketch::option_counts(
    const std::string& column) const {
  return multiselect_.at(column).counts;
}

double TableSketch::answered(const std::string& column) const {
  if (const auto it = categorical_.find(column); it != categorical_.end())
    return it->second.answered;
  return multiselect_.at(column).answered;
}

const StreamingCrosstab& TableSketch::crosstab(
    const std::string& row_column, const std::string& col_column) const {
  return crosstabs_.at(std::make_pair(row_column, col_column));
}

const WeightedReservoir& TableSketch::reservoir() const {
  RCR_CHECK_MSG(!options_.reservoir_column.empty(),
                "reservoir was not configured");
  return reservoir_;
}

std::size_t TableSketch::approx_bytes() const {
  std::size_t bytes = label_cms_.approx_bytes() +
                      heavy_hitters_.approx_bytes() +
                      distinct_.approx_bytes() + reservoir_.approx_bytes();
  for (const auto& [name, state] : numeric_)
    bytes += sizeof(Moments) + state.quantile.approx_bytes();
  for (const auto& [name, state] : categorical_)
    bytes += state.counts.capacity() * sizeof(double);
  for (const auto& [name, state] : multiselect_)
    bytes += state.counts.capacity() * sizeof(double);
  for (const auto& [pair, xtab] : crosstabs_) bytes += xtab.approx_bytes();
  return bytes;
}

void TableSketch::publish_metrics() const {
  stream_obs().sketch_bytes.set(static_cast<std::int64_t>(approx_bytes()));
  std::size_t tuples = 0;
  for (const auto& [name, state] : numeric_)
    tuples += state.quantile.tuple_count();
  stream_obs().quantile_tuples.set(static_cast<std::int64_t>(tuples));
}

}  // namespace rcr::stream
