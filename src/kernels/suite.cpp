#include "kernels/suite.hpp"

#include "kernels/matmul.hpp"
#include "kernels/montecarlo.hpp"
#include "kernels/nbody.hpp"
#include "kernels/reduction.hpp"
#include "kernels/spmv.hpp"
#include "kernels/stencil.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"

namespace rcr::kernels {

std::vector<KernelCase> standard_suite(std::size_t scale) {
  RCR_CHECK_MSG(scale >= 1, "suite scale must be >= 1");
  std::vector<KernelCase> suite;

  {
    KernelCase k;
    k.name = "heat-stencil";
    k.serial_fraction = 0.02;   // halo bookkeeping + buffer swap
    k.bytes_per_flop = 4.0;     // streaming 5-point stencil
    const std::size_t n = 192 * scale;
    const std::size_t steps = 20;
    k.work_ops = static_cast<double>(n * n * steps) * 6.0;
    k.run_serial = [n, steps] {
      HeatGrid g(n, n);
      for (std::size_t s = 0; s < steps; ++s) g.step_serial(0.2);
      return g.interior_sum();
    };
    k.run_parallel = [n, steps](rcr::parallel::ThreadPool& pool) {
      HeatGrid g(n, n);
      for (std::size_t s = 0; s < steps; ++s) g.step_parallel(pool, 0.2);
      return g.interior_sum();
    };
    suite.push_back(std::move(k));
  }

  {
    KernelCase k;
    k.name = "dense-matmul";
    k.serial_fraction = 0.005;  // near-perfectly parallel
    k.bytes_per_flop = 0.3;     // cache-friendly compute-bound
    const std::size_t n = 96 * scale;
    k.work_ops = 2.0 * static_cast<double>(n) * n * n;
    k.run_serial = [n] {
      const Dense a = random_matrix(n, 1);
      const Dense b = random_matrix(n, 2);
      Dense c(n * n);
      matmul_serial(a, b, c, n);
      double s = 0.0;
      for (double v : c) s += v;
      return s;
    };
    k.run_parallel = [n](rcr::parallel::ThreadPool& pool) {
      const Dense a = random_matrix(n, 1);
      const Dense b = random_matrix(n, 2);
      Dense c(n * n);
      matmul_parallel(pool, a, b, c, n);
      double s = 0.0;
      for (double v : c) s += v;
      return s;
    };
    suite.push_back(std::move(k));
  }

  {
    KernelCase k;
    k.name = "nbody";
    k.serial_fraction = 0.01;  // integration step is serial-ish but tiny
    k.bytes_per_flop = 0.05;   // strongly compute-bound
    const std::size_t n = 384 * scale;
    const std::size_t steps = 3;
    k.work_ops = static_cast<double>(n) * n * steps * 20.0;
    k.run_serial = [n, steps] {
      Bodies b = random_bodies(n, 3);
      for (std::size_t s = 0; s < steps; ++s) nbody_step_serial(b, 1e-3);
      return total_energy(b);
    };
    k.run_parallel = [n, steps](rcr::parallel::ThreadPool& pool) {
      Bodies b = random_bodies(n, 3);
      for (std::size_t s = 0; s < steps; ++s)
        nbody_step_parallel(pool, b, 1e-3);
      return total_energy(b);
    };
    suite.push_back(std::move(k));
  }

  {
    KernelCase k;
    k.name = "monte-carlo";
    k.serial_fraction = 0.001;  // embarrassingly parallel
    k.bytes_per_flop = 0.0;
    const std::size_t samples = 400000 * scale;
    k.work_ops = static_cast<double>(samples) * 8.0;
    k.run_serial = [samples] { return mc_pi_serial(samples, 11); };
    k.run_parallel = [samples](rcr::parallel::ThreadPool& pool) {
      return mc_pi_parallel(pool, samples, 11);
    };
    suite.push_back(std::move(k));
  }

  {
    KernelCase k;
    k.name = "spmv";
    k.serial_fraction = 0.02;
    k.bytes_per_flop = 10.0;  // memory-bound: index + value traffic
    const std::size_t rows = 60000 * scale;
    const std::size_t nnz = 12;
    const std::size_t iters = 8;
    k.work_ops = static_cast<double>(rows * nnz * iters) * 2.0;
    const auto checksum = [](const std::vector<double>& y) {
      double s = 0.0;
      for (double v : y) s += v;
      return s;
    };
    k.run_serial = [rows, iters, checksum] {
      const Csr a = random_csr(rows, rows, 12, 5);
      std::vector<double> x(rows, 1.0), y;
      for (std::size_t i = 0; i < iters; ++i) {
        spmv_serial(a, x, y);
        x.swap(y);
      }
      return checksum(x);
    };
    k.run_parallel = [rows, iters, checksum](rcr::parallel::ThreadPool& pool) {
      const Csr a = random_csr(rows, rows, 12, 5);
      std::vector<double> x(rows, 1.0), y;
      for (std::size_t i = 0; i < iters; ++i) {
        spmv_parallel(pool, a, x, y);
        x.swap(y);
      }
      return checksum(x);
    };
    suite.push_back(std::move(k));
  }

  {
    KernelCase k;
    k.name = "data-reduction";
    k.serial_fraction = 0.03;  // partial-histogram merge
    k.bytes_per_flop = 6.0;    // streaming, memory-bound
    const std::size_t count = 500000 * scale;
    k.work_ops = static_cast<double>(count) * 10.0;
    k.run_serial = [count] {
      return reduce_stream_serial(count, 23).checksum();
    };
    k.run_parallel = [count](rcr::parallel::ThreadPool& pool) {
      return reduce_stream_parallel(pool, count, 23).checksum();
    };
    suite.push_back(std::move(k));
  }

  // Every run reports its wall time into a per-kernel latency histogram
  // ("kernels.<name>.{serial,parallel}_ms").
  for (auto& k : suite) {
    obs::Histogram* serial_ms =
        &obs::registry().histogram("kernels." + k.name + ".serial_ms");
    obs::Histogram* parallel_ms =
        &obs::registry().histogram("kernels." + k.name + ".parallel_ms");
    k.run_serial = [serial_ms, inner = std::move(k.run_serial)] {
      obs::ScopedTimer timer(*serial_ms);
      return inner();
    };
    k.run_parallel = [parallel_ms, inner = std::move(k.run_parallel)](
                         rcr::parallel::ThreadPool& pool) {
      obs::ScopedTimer timer(*parallel_ms);
      return inner(pool);
    };
  }

  return suite;
}

}  // namespace rcr::kernels
