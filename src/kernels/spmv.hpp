// Sparse matrix–vector product (CSR) — the memory-bound workhorse of
// iterative solvers. Its poor parallel scaling on bandwidth-limited
// machines is exactly the effect the simulator's bandwidth ceiling models.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace rcr::kernels {

// Compressed sparse row matrix.
struct Csr {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::size_t> row_ptr;  // rows + 1 entries
  std::vector<std::uint32_t> col_idx;
  std::vector<double> values;

  std::size_t nnz() const { return values.size(); }
};

// Random sparse matrix with ~nnz_per_row entries per row (at least one),
// values in [-1, 1]. Column indices are sorted within each row.
Csr random_csr(std::size_t rows, std::size_t cols, std::size_t nnz_per_row,
               std::uint64_t seed);

// y = A x.
void spmv_serial(const Csr& a, const std::vector<double>& x,
                 std::vector<double>& y);
void spmv_parallel(rcr::parallel::ThreadPool& pool, const Csr& a,
                   const std::vector<double>& x, std::vector<double>& y);

}  // namespace rcr::kernels
