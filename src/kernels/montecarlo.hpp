// Monte-Carlo kernels: π estimation and generic 1-D integration.
// Deterministic under parallelism: sample i always comes from the stream
// hash(seed, i / block), independent of thread assignment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "parallel/thread_pool.hpp"

namespace rcr::kernels {

// Estimates π by dart throwing with `samples` points.
double mc_pi_serial(std::size_t samples, std::uint64_t seed);
double mc_pi_parallel(rcr::parallel::ThreadPool& pool, std::size_t samples,
                      std::uint64_t seed);

// Integrates f over [a, b] with `samples` uniform points.
double mc_integrate_serial(const std::function<double(double)>& f, double a,
                           double b, std::size_t samples, std::uint64_t seed);
double mc_integrate_parallel(rcr::parallel::ThreadPool& pool,
                             const std::function<double(double)>& f, double a,
                             double b, std::size_t samples,
                             std::uint64_t seed);

}  // namespace rcr::kernels
