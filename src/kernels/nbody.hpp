// Direct-summation N-body kernel (softened gravity, leapfrog integration).
// The irregular O(n²) force loop is the classic motivation for dynamic
// scheduling; the micro benches compare static vs dynamic on it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace rcr::kernels {

struct Bodies {
  std::vector<double> x, y, z;     // positions
  std::vector<double> vx, vy, vz;  // velocities
  std::vector<double> mass;

  std::size_t size() const { return x.size(); }
};

// Random cluster of n bodies in the unit cube, small random velocities.
Bodies random_bodies(std::size_t n, std::uint64_t seed);

// One leapfrog step with timestep dt and softening eps.
void nbody_step_serial(Bodies& b, double dt, double eps = 1e-3);
void nbody_step_parallel(rcr::parallel::ThreadPool& pool, Bodies& b,
                         double dt, double eps = 1e-3);

// Total energy (kinetic + potential); conserved to O(dt²) by leapfrog,
// and the serial/parallel agreement check.
double total_energy(const Bodies& b, double eps = 1e-3);

}  // namespace rcr::kernels
