// The standard kernel suite: one entry per computational-science archetype,
// with the modeling constants the simulator needs (serial fraction and
// memory intensity). F5 uses the suite both ways: running the real kernels
// to calibrate single-core cost, and feeding the constants to the simulator
// to predict scaling beyond the host's core count.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace rcr::kernels {

struct KernelCase {
  std::string name;
  // Modeled Amdahl serial fraction of one run (setup, reductions, I/O).
  double serial_fraction = 0.0;
  // Modeled memory intensity in bytes moved per arithmetic op; drives the
  // simulator's bandwidth ceiling. ~0 for compute-bound kernels.
  double bytes_per_flop = 0.0;
  // Approximate arithmetic operations per run (work units for the sim).
  double work_ops = 0.0;
  // Runs the kernel once and returns a verification checksum.
  std::function<double()> run_serial;
  std::function<double(rcr::parallel::ThreadPool&)> run_parallel;
};

// Standard problem sizes multiplied by `scale` (>=1). The defaults complete
// in well under a second each so the suite is usable inside tests.
std::vector<KernelCase> standard_suite(std::size_t scale = 1);

}  // namespace rcr::kernels
