// Dense matrix multiplication kernels: naive, cache-blocked, and parallel.
// Used by the micro benchmarks and to calibrate the simulator's per-core
// throughput constant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace rcr::kernels {

// Row-major n×n matrices stored as flat vectors.
using Dense = std::vector<double>;

Dense random_matrix(std::size_t n, std::uint64_t seed);

// c = a * b, classic triple loop (i, k, j order for streaming stores).
void matmul_serial(const Dense& a, const Dense& b, Dense& c, std::size_t n);

// Cache-blocked variant.
void matmul_blocked(const Dense& a, const Dense& b, Dense& c, std::size_t n,
                    std::size_t block = 64);

// Rows of C distributed over the pool.
void matmul_parallel(rcr::parallel::ThreadPool& pool, const Dense& a,
                     const Dense& b, Dense& c, std::size_t n);

// Frobenius-norm difference, for verification.
double frobenius_diff(const Dense& x, const Dense& y);

}  // namespace rcr::kernels
