#include "kernels/spmv.hpp"

#include <algorithm>

#include "parallel/algorithms.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::kernels {

Csr random_csr(std::size_t rows, std::size_t cols, std::size_t nnz_per_row,
               std::uint64_t seed) {
  RCR_CHECK_MSG(rows > 0 && cols > 0, "csr must be non-empty");
  RCR_CHECK_MSG(nnz_per_row >= 1 && nnz_per_row <= cols,
                "nnz_per_row out of range");
  Rng rng(seed);
  Csr a;
  a.rows = rows;
  a.cols = cols;
  a.row_ptr.resize(rows + 1, 0);

  std::vector<std::uint32_t> row_cols;
  for (std::size_t r = 0; r < rows; ++r) {
    // Poisson-ish variation around the target density, at least 1.
    std::size_t k = nnz_per_row;
    if (nnz_per_row > 1) {
      const std::int64_t jitter =
          rng.uniform_int(-static_cast<std::int64_t>(nnz_per_row / 2),
                          static_cast<std::int64_t>(nnz_per_row / 2));
      k = static_cast<std::size_t>(
          std::max<std::int64_t>(1, static_cast<std::int64_t>(nnz_per_row) +
                                        jitter));
      k = std::min(k, cols);
    }
    const auto picks = rng.sample_without_replacement(cols, k);
    row_cols.assign(picks.begin(), picks.end());
    std::sort(row_cols.begin(), row_cols.end());
    for (std::uint32_t c : row_cols) {
      a.col_idx.push_back(c);
      a.values.push_back(rng.uniform(-1.0, 1.0));
    }
    a.row_ptr[r + 1] = a.col_idx.size();
  }
  return a;
}

namespace {
void spmv_rows(const Csr& a, const double* x, double* y, std::size_t lo,
               std::size_t hi) {
  for (std::size_t r = lo; r < hi; ++r) {
    double sum = 0.0;
    for (std::size_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k)
      sum += a.values[k] * x[a.col_idx[k]];
    y[r] = sum;
  }
}
}  // namespace

void spmv_serial(const Csr& a, const std::vector<double>& x,
                 std::vector<double>& y) {
  RCR_CHECK_MSG(x.size() == a.cols, "spmv x size mismatch");
  y.resize(a.rows);
  spmv_rows(a, x.data(), y.data(), 0, a.rows);
}

void spmv_parallel(rcr::parallel::ThreadPool& pool, const Csr& a,
                   const std::vector<double>& x, std::vector<double>& y) {
  RCR_CHECK_MSG(x.size() == a.cols, "spmv x size mismatch");
  y.resize(a.rows);
  rcr::parallel::parallel_for_range(
      pool, 0, a.rows, [&](std::size_t lo, std::size_t hi) {
        spmv_rows(a, x.data(), y.data(), lo, hi);
      });
}

}  // namespace rcr::kernels
