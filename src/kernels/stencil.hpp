// 2-D heat diffusion (5-point Jacobi stencil) — the canonical PDE kernel of
// computational science. Serial and thread-pool-parallel versions produce
// bit-identical grids, which the tests assert.
#pragma once

#include <cstddef>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace rcr::kernels {

class HeatGrid {
 public:
  // Interior nx×ny cells plus a fixed boundary ring. The boundary holds
  // `boundary_temp`; the interior starts at `initial_temp`.
  HeatGrid(std::size_t nx, std::size_t ny, double initial_temp = 0.0,
           double boundary_temp = 100.0);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }

  double at(std::size_t x, std::size_t y) const;  // includes boundary ring
  double& at(std::size_t x, std::size_t y);

  // One Jacobi sweep with diffusion coefficient alpha in (0, 0.25];
  // u' = u + alpha * (sum of 4 neighbours - 4u).
  void step_serial(double alpha);
  void step_parallel(rcr::parallel::ThreadPool& pool, double alpha);

  // Sum of interior temperatures; the verification checksum.
  double interior_sum() const;

  // Max |cell - other.cell| over the full grid.
  double max_abs_diff(const HeatGrid& other) const;

 private:
  void apply_step(std::size_t row_lo, std::size_t row_hi, double alpha);
  void swap_buffers();

  std::size_t nx_, ny_;       // interior size
  std::size_t stride_;        // nx_ + 2
  std::vector<double> cells_;  // (nx+2) x (ny+2), row-major
  std::vector<double> next_;
};

}  // namespace rcr::kernels
