#include "kernels/nbody.hpp"

#include <cmath>

#include "parallel/algorithms.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::kernels {

Bodies random_bodies(std::size_t n, std::uint64_t seed) {
  RCR_CHECK_MSG(n >= 2, "n-body needs at least two bodies");
  Rng rng(seed);
  Bodies b;
  b.x.resize(n);
  b.y.resize(n);
  b.z.resize(n);
  b.vx.resize(n);
  b.vy.resize(n);
  b.vz.resize(n);
  b.mass.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.x[i] = rng.next_double();
    b.y[i] = rng.next_double();
    b.z[i] = rng.next_double();
    b.vx[i] = rng.uniform(-0.01, 0.01);
    b.vy[i] = rng.uniform(-0.01, 0.01);
    b.vz[i] = rng.uniform(-0.01, 0.01);
    b.mass[i] = rng.uniform(0.5, 1.5) / static_cast<double>(n);
  }
  return b;
}

namespace {

// Accumulates accelerations for bodies [lo, hi) against all bodies.
void accumulate_accel(const Bodies& b, double eps, std::size_t lo,
                      std::size_t hi, double* ax, double* ay, double* az) {
  const std::size_t n = b.size();
  const double eps2 = eps * eps;
  for (std::size_t i = lo; i < hi; ++i) {
    double axi = 0.0, ayi = 0.0, azi = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double dx = b.x[j] - b.x[i];
      const double dy = b.y[j] - b.y[i];
      const double dz = b.z[j] - b.z[i];
      const double r2 = dx * dx + dy * dy + dz * dz + eps2;
      const double inv_r = 1.0 / std::sqrt(r2);
      const double f = b.mass[j] * inv_r * inv_r * inv_r;
      axi += f * dx;
      ayi += f * dy;
      azi += f * dz;
    }
    ax[i] = axi;
    ay[i] = ayi;
    az[i] = azi;
  }
}

void integrate(Bodies& b, const std::vector<double>& ax,
               const std::vector<double>& ay, const std::vector<double>& az,
               double dt) {
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.vx[i] += ax[i] * dt;
    b.vy[i] += ay[i] * dt;
    b.vz[i] += az[i] * dt;
    b.x[i] += b.vx[i] * dt;
    b.y[i] += b.vy[i] * dt;
    b.z[i] += b.vz[i] * dt;
  }
}

}  // namespace

void nbody_step_serial(Bodies& b, double dt, double eps) {
  const std::size_t n = b.size();
  std::vector<double> ax(n), ay(n), az(n);
  accumulate_accel(b, eps, 0, n, ax.data(), ay.data(), az.data());
  integrate(b, ax, ay, az, dt);
}

void nbody_step_parallel(rcr::parallel::ThreadPool& pool, Bodies& b,
                         double dt, double eps) {
  const std::size_t n = b.size();
  std::vector<double> ax(n), ay(n), az(n);
  rcr::parallel::parallel_for_range(
      pool, 0, n,
      [&](std::size_t lo, std::size_t hi) {
        accumulate_accel(b, eps, lo, hi, ax.data(), ay.data(), az.data());
      },
      {rcr::parallel::Schedule::kDynamic, 0});
  integrate(b, ax, ay, az, dt);
}

double total_energy(const Bodies& b, double eps) {
  const std::size_t n = b.size();
  const double eps2 = eps * eps;
  double kinetic = 0.0, potential = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    kinetic += 0.5 * b.mass[i] *
               (b.vx[i] * b.vx[i] + b.vy[i] * b.vy[i] + b.vz[i] * b.vz[i]);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = b.x[j] - b.x[i];
      const double dy = b.y[j] - b.y[i];
      const double dz = b.z[j] - b.z[i];
      const double r = std::sqrt(dx * dx + dy * dy + dz * dz + eps2);
      potential -= b.mass[i] * b.mass[j] / r;
    }
  }
  return kinetic + potential;
}

}  // namespace rcr::kernels
