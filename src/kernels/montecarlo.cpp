#include "kernels/montecarlo.hpp"

#include <algorithm>
#include <span>

#include "parallel/algorithms.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::kernels {

namespace {

// Samples are processed in fixed blocks, each with a seed derived from the
// block index, so serial and parallel runs visit identical streams.
constexpr std::size_t kBlock = 4096;

std::uint64_t block_seed(std::uint64_t master, std::size_t block) {
  std::uint64_t z = master + 0x9E3779B97F4A7C15ULL * (block + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Cache-resident staging buffer for batched draws: 2048 doubles = 16 KiB,
// well inside L1d. fill_double emits exactly the next_double sequence, so
// consuming the buffer in order is bitwise-identical to per-sample draws.
constexpr std::size_t kChunkDoubles = 2048;

std::size_t pi_hits_in_block(std::uint64_t master, std::size_t block,
                             std::size_t samples_total) {
  Rng rng(block_seed(master, block));
  const std::size_t lo = block * kBlock;
  const std::size_t hi = std::min(samples_total, lo + kBlock);
  double draws[kChunkDoubles];
  std::size_t hits = 0;
  std::size_t remaining = hi - lo;
  while (remaining > 0) {
    // Two draws per sample: (x, y) pairs laid out consecutively, same
    // order the scalar loop consumed them.
    const std::size_t batch = std::min(remaining, kChunkDoubles / 2);
    rng.fill_double(std::span<double>(draws, 2 * batch));
    for (std::size_t j = 0; j < batch; ++j) {
      const double x = draws[2 * j];
      const double y = draws[2 * j + 1];
      if (x * x + y * y <= 1.0) ++hits;
    }
    remaining -= batch;
  }
  return hits;
}

double integral_block(const std::function<double(double)>& f, double a,
                      double b, std::uint64_t master, std::size_t block,
                      std::size_t samples_total) {
  Rng rng(block_seed(master, block));
  const std::size_t lo = block * kBlock;
  const std::size_t hi = std::min(samples_total, lo + kBlock);
  double draws[kChunkDoubles];
  double sum = 0.0;
  std::size_t remaining = hi - lo;
  while (remaining > 0) {
    const std::size_t batch = std::min(remaining, kChunkDoubles);
    rng.fill_double(std::span<double>(draws, batch));
    // uniform(a, b) is lo + (hi - lo) * next_double(); replay it exactly.
    for (std::size_t j = 0; j < batch; ++j)
      sum += f(a + (b - a) * draws[j]);
    remaining -= batch;
  }
  return sum;
}

std::size_t block_count(std::size_t samples) {
  return (samples + kBlock - 1) / kBlock;
}

}  // namespace

double mc_pi_serial(std::size_t samples, std::uint64_t seed) {
  RCR_CHECK_MSG(samples > 0, "mc_pi needs samples");
  std::size_t hits = 0;
  for (std::size_t blk = 0; blk < block_count(samples); ++blk)
    hits += pi_hits_in_block(seed, blk, samples);
  return 4.0 * static_cast<double>(hits) / static_cast<double>(samples);
}

double mc_pi_parallel(rcr::parallel::ThreadPool& pool, std::size_t samples,
                      std::uint64_t seed) {
  RCR_CHECK_MSG(samples > 0, "mc_pi needs samples");
  const std::size_t hits = rcr::parallel::parallel_reduce<std::size_t>(
      pool, 0, block_count(samples), 0,
      [&](std::size_t lo, std::size_t hi) {
        std::size_t local = 0;
        for (std::size_t blk = lo; blk < hi; ++blk)
          local += pi_hits_in_block(seed, blk, samples);
        return local;
      },
      [](std::size_t a, std::size_t b) { return a + b; });
  return 4.0 * static_cast<double>(hits) / static_cast<double>(samples);
}

double mc_integrate_serial(const std::function<double(double)>& f, double a,
                           double b, std::size_t samples, std::uint64_t seed) {
  RCR_CHECK_MSG(samples > 0 && b > a, "bad mc_integrate arguments");
  double sum = 0.0;
  for (std::size_t blk = 0; blk < block_count(samples); ++blk)
    sum += integral_block(f, a, b, seed, blk, samples);
  return (b - a) * sum / static_cast<double>(samples);
}

double mc_integrate_parallel(rcr::parallel::ThreadPool& pool,
                             const std::function<double(double)>& f, double a,
                             double b, std::size_t samples,
                             std::uint64_t seed) {
  RCR_CHECK_MSG(samples > 0 && b > a, "bad mc_integrate arguments");
  const double sum = rcr::parallel::parallel_reduce<double>(
      pool, 0, block_count(samples), 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double local = 0.0;
        for (std::size_t blk = lo; blk < hi; ++blk)
          local += integral_block(f, a, b, seed, blk, samples);
        return local;
      },
      [](double x, double y) { return x + y; });
  return (b - a) * sum / static_cast<double>(samples);
}

}  // namespace rcr::kernels
