// Data-reduction kernel: streaming histogram + moments over a synthetic
// data stream — the "analyze a pile of measurements" archetype that
// dominates data-heavy fields. Parallel version merges per-chunk partial
// histograms, the canonical reduction pattern.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "parallel/thread_pool.hpp"

namespace rcr::kernels {

struct ReductionResult {
  static constexpr std::size_t kBins = 64;
  std::array<std::uint64_t, kBins> histogram{};
  double sum = 0.0;
  double sum_squares = 0.0;
  std::uint64_t count = 0;

  // Scalar checksum combining the pieces (for suite verification).
  double checksum() const;
};

// Reduces `count` deterministic pseudo-random values in [0, 1): values are
// generated block-wise from `seed`, so serial and parallel runs see the
// same stream and produce identical histograms.
ReductionResult reduce_stream_serial(std::size_t count, std::uint64_t seed);
ReductionResult reduce_stream_parallel(rcr::parallel::ThreadPool& pool,
                                       std::size_t count, std::uint64_t seed);

}  // namespace rcr::kernels
