#include "kernels/stencil.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/algorithms.hpp"
#include "util/error.hpp"

namespace rcr::kernels {

HeatGrid::HeatGrid(std::size_t nx, std::size_t ny, double initial_temp,
                   double boundary_temp)
    : nx_(nx), ny_(ny), stride_(nx + 2) {
  RCR_CHECK_MSG(nx > 0 && ny > 0, "heat grid must be non-empty");
  cells_.assign((nx + 2) * (ny + 2), boundary_temp);
  next_ = cells_;
  for (std::size_t y = 1; y <= ny_; ++y)
    for (std::size_t x = 1; x <= nx_; ++x)
      cells_[y * stride_ + x] = initial_temp;
}

double HeatGrid::at(std::size_t x, std::size_t y) const {
  RCR_DCHECK(x < nx_ + 2 && y < ny_ + 2);
  return cells_[y * stride_ + x];
}

double& HeatGrid::at(std::size_t x, std::size_t y) {
  RCR_DCHECK(x < nx_ + 2 && y < ny_ + 2);
  return cells_[y * stride_ + x];
}

void HeatGrid::apply_step(std::size_t row_lo, std::size_t row_hi,
                          double alpha) {
  // Rows are 1-based interior indices; reads from cells_, writes to next_.
  for (std::size_t y = row_lo; y < row_hi; ++y) {
    const double* up = &cells_[(y - 1) * stride_];
    const double* mid = &cells_[y * stride_];
    const double* down = &cells_[(y + 1) * stride_];
    double* out = &next_[y * stride_];
    for (std::size_t x = 1; x <= nx_; ++x) {
      const double u = mid[x];
      out[x] = u + alpha * (up[x] + down[x] + mid[x - 1] + mid[x + 1] -
                            4.0 * u);
    }
  }
}

void HeatGrid::swap_buffers() {
  cells_.swap(next_);
  // Boundary ring in the new current buffer must stay the boundary value;
  // it was copied at construction and apply_step never writes it.
}

void HeatGrid::step_serial(double alpha) {
  RCR_CHECK_MSG(alpha > 0.0 && alpha <= 0.25, "unstable alpha");
  apply_step(1, ny_ + 1, alpha);
  swap_buffers();
}

void HeatGrid::step_parallel(rcr::parallel::ThreadPool& pool, double alpha) {
  RCR_CHECK_MSG(alpha > 0.0 && alpha <= 0.25, "unstable alpha");
  rcr::parallel::parallel_for_range(
      pool, 1, ny_ + 1,
      [this, alpha](std::size_t lo, std::size_t hi) {
        apply_step(lo, hi, alpha);
      });
  swap_buffers();
}

double HeatGrid::interior_sum() const {
  double s = 0.0;
  for (std::size_t y = 1; y <= ny_; ++y)
    for (std::size_t x = 1; x <= nx_; ++x) s += cells_[y * stride_ + x];
  return s;
}

double HeatGrid::max_abs_diff(const HeatGrid& other) const {
  RCR_CHECK_MSG(nx_ == other.nx_ && ny_ == other.ny_,
                "grid shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < cells_.size(); ++i)
    m = std::max(m, std::fabs(cells_[i] - other.cells_[i]));
  return m;
}

}  // namespace rcr::kernels
