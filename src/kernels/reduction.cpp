#include "kernels/reduction.hpp"

#include <algorithm>

#include "parallel/algorithms.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::kernels {

namespace {

constexpr std::size_t kBlock = 8192;

std::uint64_t block_seed(std::uint64_t master, std::size_t block) {
  std::uint64_t z = master + 0x9E3779B97F4A7C15ULL * (block + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void reduce_block(std::uint64_t master, std::size_t block, std::size_t total,
                  ReductionResult& acc) {
  Rng rng(block_seed(master, block));
  const std::size_t lo = block * kBlock;
  const std::size_t hi = std::min(total, lo + kBlock);
  for (std::size_t i = lo; i < hi; ++i) {
    const double v = rng.next_double();
    const auto bin = static_cast<std::size_t>(
        v * static_cast<double>(ReductionResult::kBins));
    ++acc.histogram[std::min(bin, ReductionResult::kBins - 1)];
    acc.sum += v;
    acc.sum_squares += v * v;
    ++acc.count;
  }
}

void merge(ReductionResult& into, const ReductionResult& from) {
  for (std::size_t b = 0; b < ReductionResult::kBins; ++b)
    into.histogram[b] += from.histogram[b];
  into.sum += from.sum;
  into.sum_squares += from.sum_squares;
  into.count += from.count;
}

std::size_t block_count(std::size_t n) { return (n + kBlock - 1) / kBlock; }

}  // namespace

double ReductionResult::checksum() const {
  double h = 0.0;
  for (std::size_t b = 0; b < kBins; ++b)
    h += static_cast<double>(histogram[b]) * static_cast<double>(b + 1);
  return h + sum + 2.0 * sum_squares + static_cast<double>(count);
}

ReductionResult reduce_stream_serial(std::size_t count, std::uint64_t seed) {
  RCR_CHECK_MSG(count > 0, "reduce_stream needs data");
  ReductionResult acc;
  for (std::size_t blk = 0; blk < block_count(count); ++blk)
    reduce_block(seed, blk, count, acc);
  return acc;
}

ReductionResult reduce_stream_parallel(rcr::parallel::ThreadPool& pool,
                                       std::size_t count,
                                       std::uint64_t seed) {
  RCR_CHECK_MSG(count > 0, "reduce_stream needs data");
  return rcr::parallel::parallel_reduce<ReductionResult>(
      pool, 0, block_count(count), ReductionResult{},
      [&](std::size_t lo, std::size_t hi) {
        ReductionResult local;
        for (std::size_t blk = lo; blk < hi; ++blk)
          reduce_block(seed, blk, count, local);
        return local;
      },
      [](ReductionResult a, ReductionResult b) {
        merge(a, b);
        return a;
      });
}

}  // namespace rcr::kernels
