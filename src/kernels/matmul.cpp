#include "kernels/matmul.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/algorithms.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::kernels {

Dense random_matrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dense m(n * n);
  for (double& v : m) v = rng.uniform(-1.0, 1.0);
  return m;
}

namespace {
void check_shapes(const Dense& a, const Dense& b, const Dense& c,
                  std::size_t n) {
  RCR_CHECK_MSG(a.size() == n * n && b.size() == n * n && c.size() == n * n,
                "matmul shape mismatch");
}

// Multiplies rows [row_lo, row_hi) of C.
void matmul_rows(const double* a, const double* b, double* c, std::size_t n,
                 std::size_t row_lo, std::size_t row_hi) {
  for (std::size_t i = row_lo; i < row_hi; ++i) {
    double* ci = c + i * n;
    std::fill(ci, ci + n, 0.0);
    for (std::size_t k = 0; k < n; ++k) {
      const double aik = a[i * n + k];
      const double* bk = b + k * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}
}  // namespace

void matmul_serial(const Dense& a, const Dense& b, Dense& c, std::size_t n) {
  check_shapes(a, b, c, n);
  matmul_rows(a.data(), b.data(), c.data(), n, 0, n);
}

void matmul_blocked(const Dense& a, const Dense& b, Dense& c, std::size_t n,
                    std::size_t block) {
  check_shapes(a, b, c, n);
  RCR_CHECK_MSG(block > 0, "block size must be positive");
  std::fill(c.begin(), c.end(), 0.0);
  for (std::size_t ii = 0; ii < n; ii += block) {
    const std::size_t i_hi = std::min(n, ii + block);
    for (std::size_t kk = 0; kk < n; kk += block) {
      const std::size_t k_hi = std::min(n, kk + block);
      for (std::size_t jj = 0; jj < n; jj += block) {
        const std::size_t j_hi = std::min(n, jj + block);
        for (std::size_t i = ii; i < i_hi; ++i) {
          for (std::size_t k = kk; k < k_hi; ++k) {
            const double aik = a[i * n + k];
            const double* bk = b.data() + k * n;
            double* ci = c.data() + i * n;
            for (std::size_t j = jj; j < j_hi; ++j) ci[j] += aik * bk[j];
          }
        }
      }
    }
  }
}

void matmul_parallel(rcr::parallel::ThreadPool& pool, const Dense& a,
                     const Dense& b, Dense& c, std::size_t n) {
  check_shapes(a, b, c, n);
  rcr::parallel::parallel_for_range(
      pool, 0, n, [&](std::size_t lo, std::size_t hi) {
        matmul_rows(a.data(), b.data(), c.data(), n, lo, hi);
      });
}

double frobenius_diff(const Dense& x, const Dense& y) {
  RCR_CHECK_MSG(x.size() == y.size(), "frobenius_diff size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    s += (x[i] - y[i]) * (x[i] - y[i]);
  return std::sqrt(s);
}

}  // namespace rcr::kernels
