#include "stats/contingency.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.hpp"
#include "stats/special.hpp"
#include "util/error.hpp"

namespace rcr::stats {

Contingency::Contingency(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), cells_(rows * cols, 0.0) {
  RCR_CHECK_MSG(rows > 0 && cols > 0, "Contingency must be non-empty");
}

Contingency::Contingency(
    std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.begin()->size()) {
  RCR_CHECK_MSG(rows_ > 0 && cols_ > 0, "Contingency must be non-empty");
  cells_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    RCR_CHECK_MSG(row.size() == cols_, "ragged contingency initializer");
    for (double v : row) {
      RCR_CHECK_MSG(v >= 0.0, "contingency counts must be non-negative");
      cells_.push_back(v);
    }
  }
}

double& Contingency::at(std::size_t r, std::size_t c) {
  RCR_DCHECK(r < rows_ && c < cols_);
  return cells_[r * cols_ + c];
}

double Contingency::at(std::size_t r, std::size_t c) const {
  RCR_DCHECK(r < rows_ && c < cols_);
  return cells_[r * cols_ + c];
}

void Contingency::add(std::size_t r, std::size_t c, double count) {
  RCR_CHECK_MSG(count >= 0.0, "cannot add negative counts");
  at(r, c) += count;
}

double Contingency::row_total(std::size_t r) const {
  double t = 0.0;
  for (std::size_t c = 0; c < cols_; ++c) t += at(r, c);
  return t;
}

double Contingency::col_total(std::size_t c) const {
  double t = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) t += at(r, c);
  return t;
}

double Contingency::grand_total() const {
  double t = 0.0;
  for (double v : cells_) t += v;
  return t;
}

double Contingency::expected(std::size_t r, std::size_t c) const {
  const double grand = grand_total();
  RCR_CHECK_MSG(grand > 0.0, "expected counts need a non-empty table");
  return row_total(r) * col_total(c) / grand;
}

Contingency Contingency::without_empty_margins() const {
  std::vector<std::size_t> keep_rows, keep_cols;
  for (std::size_t r = 0; r < rows_; ++r)
    if (row_total(r) > 0.0) keep_rows.push_back(r);
  for (std::size_t c = 0; c < cols_; ++c)
    if (col_total(c) > 0.0) keep_cols.push_back(c);
  RCR_CHECK_MSG(!keep_rows.empty() && !keep_cols.empty(),
                "contingency table is entirely zero");
  Contingency out(keep_rows.size(), keep_cols.size());
  for (std::size_t i = 0; i < keep_rows.size(); ++i)
    for (std::size_t j = 0; j < keep_cols.size(); ++j)
      out.at(i, j) = at(keep_rows[i], keep_cols[j]);
  return out;
}

namespace {

ChiSquareResult finish_chi2(const Contingency& t, double statistic) {
  ChiSquareResult r;
  r.statistic = statistic;
  r.dof = static_cast<double>((t.rows() - 1) * (t.cols() - 1));
  r.p_value = r.dof > 0.0 ? chi2_sf(statistic, r.dof) : 1.0;
  const double n = t.grand_total();
  const double k = static_cast<double>(std::min(t.rows(), t.cols()));
  r.cramers_v = (n > 0.0 && k > 1.0)
                    ? std::sqrt(statistic / (n * (k - 1.0)))
                    : 0.0;
  r.min_expected = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < t.rows(); ++i)
    for (std::size_t j = 0; j < t.cols(); ++j)
      r.min_expected = std::min(r.min_expected, t.expected(i, j));
  return r;
}

void validate_for_independence(const Contingency& t) {
  RCR_CHECK_MSG(t.rows() >= 2 && t.cols() >= 2,
                "independence test needs at least a 2x2 table");
  for (std::size_t r = 0; r < t.rows(); ++r)
    RCR_CHECK_MSG(t.row_total(r) > 0.0,
                  "zero row margin; call without_empty_margins() first");
  for (std::size_t c = 0; c < t.cols(); ++c)
    RCR_CHECK_MSG(t.col_total(c) > 0.0,
                  "zero column margin; call without_empty_margins() first");
}

}  // namespace

ChiSquareResult chi_square_independence(const Contingency& table) {
  validate_for_independence(table);
  double stat = 0.0;
  for (std::size_t r = 0; r < table.rows(); ++r) {
    for (std::size_t c = 0; c < table.cols(); ++c) {
      const double e = table.expected(r, c);
      const double d = table.at(r, c) - e;
      stat += d * d / e;
    }
  }
  return finish_chi2(table, stat);
}

ChiSquareResult g_test_independence(const Contingency& table) {
  validate_for_independence(table);
  double stat = 0.0;
  for (std::size_t r = 0; r < table.rows(); ++r) {
    for (std::size_t c = 0; c < table.cols(); ++c) {
      const double o = table.at(r, c);
      if (o > 0.0) stat += 2.0 * o * std::log(o / table.expected(r, c));
    }
  }
  return finish_chi2(table, stat);
}

ChiSquareResult chi_square_goodness_of_fit(
    std::span<const double> observed, std::span<const double> expected_p) {
  RCR_CHECK_MSG(observed.size() == expected_p.size(),
                "goodness-of-fit size mismatch");
  RCR_CHECK_MSG(observed.size() >= 2, "goodness-of-fit needs >= 2 cells");
  double n = 0.0, psum = 0.0;
  for (double o : observed) {
    RCR_CHECK_MSG(o >= 0.0, "observed counts must be non-negative");
    n += o;
  }
  for (double p : expected_p) {
    RCR_CHECK_MSG(p > 0.0, "expected proportions must be positive");
    psum += p;
  }
  RCR_CHECK_MSG(n > 0.0, "goodness-of-fit needs data");
  ChiSquareResult r;
  r.min_expected = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double e = n * expected_p[i] / psum;
    const double d = observed[i] - e;
    r.statistic += d * d / e;
    r.min_expected = std::min(r.min_expected, e);
  }
  r.dof = static_cast<double>(observed.size() - 1);
  r.p_value = chi2_sf(r.statistic, r.dof);
  r.cramers_v = 0.0;  // not defined for goodness-of-fit
  return r;
}

FisherResult fisher_exact(double a, double b, double c, double d) {
  for (double v : {a, b, c, d}) {
    RCR_CHECK_MSG(v >= 0.0 && v == std::floor(v),
                  "fisher_exact needs non-negative integer counts");
  }
  const double r1 = a + b, r2 = c + d, c1 = a + c, c2 = b + d;
  const double n = r1 + r2;
  RCR_CHECK_MSG(n > 0.0, "fisher_exact on an empty table");

  FisherResult out;
  out.odds_ratio = odds_ratio(a, b, c, d);
  if (r1 == 0.0 || r2 == 0.0 || c1 == 0.0 || c2 == 0.0) {
    return out;  // degenerate margin: only one table possible, p = 1
  }

  // Hypergeometric log-pmf of cell 'a' given fixed margins.
  const auto log_pmf = [&](double x) {
    return log_choose(r1, x) + log_choose(r2, c1 - x) - log_choose(n, c1);
  };
  const double a_min = std::max(0.0, c1 - r2);
  const double a_max = std::min(r1, c1);
  const double log_p_obs = log_pmf(a);

  double p_less = 0.0, p_greater = 0.0, p_two = 0.0;
  // Relative tolerance mirrors R's fisher.test handling of FP noise.
  const double thresh = log_p_obs + 1e-7;
  for (double x = a_min; x <= a_max; x += 1.0) {
    const double lp = log_pmf(x);
    const double p = std::exp(lp);
    if (x <= a) p_less += p;
    if (x >= a) p_greater += p;
    if (lp <= thresh) p_two += p;
  }
  out.p_less = std::min(1.0, p_less);
  out.p_greater = std::min(1.0, p_greater);
  out.p_two_sided = std::min(1.0, p_two);
  return out;
}

TwoProportionResult two_proportion_test(double success1, double n1,
                                        double success2, double n2,
                                        double confidence) {
  RCR_CHECK_MSG(n1 > 0.0 && n2 > 0.0, "two_proportion_test needs trials");
  RCR_CHECK_MSG(success1 >= 0.0 && success1 <= n1, "successes1 out of range");
  RCR_CHECK_MSG(success2 >= 0.0 && success2 <= n2, "successes2 out of range");
  RCR_CHECK_MSG(confidence > 0.0 && confidence < 1.0, "bad confidence");
  TwoProportionResult r;
  r.p1 = success1 / n1;
  r.p2 = success2 / n2;
  r.diff = r.p1 - r.p2;
  const double pooled = (success1 + success2) / (n1 + n2);
  const double se_pooled =
      std::sqrt(pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2));
  if (se_pooled > 0.0) {
    r.z = r.diff / se_pooled;
    r.p_value = 2.0 * normal_sf(std::fabs(r.z));
  } else {
    r.z = 0.0;
    r.p_value = 1.0;
  }
  const double se_unpooled = std::sqrt(r.p1 * (1.0 - r.p1) / n1 +
                                       r.p2 * (1.0 - r.p2) / n2);
  const double zcrit = normal_quantile(0.5 + 0.5 * confidence);
  r.diff_ci_lo = r.diff - zcrit * se_unpooled;
  r.diff_ci_hi = r.diff + zcrit * se_unpooled;
  return r;
}

double odds_ratio(double a, double b, double c, double d) {
  if (a == 0.0 || b == 0.0 || c == 0.0 || d == 0.0) {
    a += 0.5;
    b += 0.5;
    c += 0.5;
    d += 0.5;
  }
  return (a * d) / (b * c);
}

MannWhitneyResult mann_whitney_u(std::span<const double> x,
                                 std::span<const double> y) {
  RCR_CHECK_MSG(!x.empty() && !y.empty(), "mann_whitney_u needs both samples");
  const double nx = static_cast<double>(x.size());
  const double ny = static_cast<double>(y.size());
  std::vector<double> pooled;
  pooled.reserve(x.size() + y.size());
  pooled.insert(pooled.end(), x.begin(), x.end());
  pooled.insert(pooled.end(), y.begin(), y.end());
  const auto r = ranks(pooled);
  double rank_sum_x = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) rank_sum_x += r[i];

  MannWhitneyResult out;
  out.u = rank_sum_x - nx * (nx + 1.0) / 2.0;
  out.effect_size = out.u / (nx * ny);

  // Tie-corrected normal approximation.
  const double n = nx + ny;
  double tie_term = 0.0;
  {
    std::vector<double> sorted(pooled);
    std::sort(sorted.begin(), sorted.end());
    std::size_t i = 0;
    while (i < sorted.size()) {
      std::size_t j = i;
      while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
      const double t = static_cast<double>(j - i + 1);
      tie_term += t * t * t - t;
      i = j + 1;
    }
  }
  const double mu = nx * ny / 2.0;
  const double sigma2 =
      nx * ny / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (sigma2 > 0.0) {
    // Continuity correction of 0.5 toward the mean.
    const double num = out.u - mu;
    const double corrected =
        num > 0.5 ? num - 0.5 : (num < -0.5 ? num + 0.5 : 0.0);
    out.z = corrected / std::sqrt(sigma2);
    out.p_value = 2.0 * normal_sf(std::fabs(out.z));
  }
  return out;
}

std::vector<double> holm_adjust(std::span<const double> p_values) {
  const std::size_t m = p_values.size();
  std::vector<std::size_t> order(m);
  for (std::size_t i = 0; i < m; ++i) {
    RCR_CHECK_MSG(p_values[i] >= 0.0 && p_values[i] <= 1.0,
                  "p-values must lie in [0,1]");
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return p_values[a] < p_values[b];
  });
  std::vector<double> adjusted(m, 0.0);
  double running_max = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    const double scaled =
        std::min(1.0, static_cast<double>(m - k) * p_values[order[k]]);
    running_max = std::max(running_max, scaled);
    adjusted[order[k]] = running_max;
  }
  return adjusted;
}

std::vector<double> benjamini_hochberg_adjust(
    std::span<const double> p_values) {
  const std::size_t m = p_values.size();
  std::vector<std::size_t> order(m);
  for (std::size_t i = 0; i < m; ++i) {
    RCR_CHECK_MSG(p_values[i] >= 0.0 && p_values[i] <= 1.0,
                  "p-values must lie in [0,1]");
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return p_values[a] < p_values[b];
  });
  std::vector<double> adjusted(m, 0.0);
  double running_min = 1.0;
  for (std::size_t k = m; k-- > 0;) {
    const double scaled = std::min(
        1.0, p_values[order[k]] * static_cast<double>(m) /
                 static_cast<double>(k + 1));
    running_min = std::min(running_min, scaled);
    adjusted[order[k]] = running_min;
  }
  return adjusted;
}

McNemarResult mcnemar_test(double b, double c) {
  RCR_CHECK_MSG(b >= 0.0 && c >= 0.0 && b == std::floor(b) &&
                    c == std::floor(c),
                "mcnemar needs non-negative integer discordant counts");
  McNemarResult r;
  const double n = b + c;
  if (n == 0.0) return r;  // no discordant pairs: no evidence, p = 1
  if (n < 26.0) {
    // Exact binomial: under H0 each discordant pair is a fair coin.
    r.exact = true;
    const double k = std::min(b, c);
    double tail = 0.0;
    for (double i = 0.0; i <= k; i += 1.0)
      tail += std::exp(log_choose(n, i) - n * std::log(2.0));
    r.p_value = std::min(1.0, 2.0 * tail);
    // Report the uncorrected statistic for reference.
    r.statistic = (b - c) * (b - c) / n;
    return r;
  }
  // Edwards continuity correction.
  const double d = std::fabs(b - c);
  r.statistic = d >= 1.0 ? (d - 1.0) * (d - 1.0) / n : 0.0;
  r.p_value = chi2_sf(r.statistic, 1.0);
  return r;
}

TrendTestResult cochran_armitage_trend(std::span<const double> successes,
                                       std::span<const double> trials,
                                       std::span<const double> scores) {
  const std::size_t k = successes.size();
  RCR_CHECK_MSG(k >= 2, "trend test needs >= 2 groups");
  RCR_CHECK_MSG(trials.size() == k && scores.size() == k,
                "trend test size mismatch");
  double total_n = 0.0, total_s = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    RCR_CHECK_MSG(trials[i] > 0.0, "trend test needs positive trials");
    RCR_CHECK_MSG(successes[i] >= 0.0 && successes[i] <= trials[i],
                  "trend test successes out of range");
    total_n += trials[i];
    total_s += successes[i];
  }
  const double p_bar = total_s / total_n;
  const double s_bar = [&] {
    double acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) acc += trials[i] * scores[i];
    return acc / total_n;
  }();

  // T = Σ s_i (x_i - n_i p̄); Var(T) = p̄(1-p̄) Σ n_i (s_i - s̄)².
  double t_stat = 0.0, var = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    t_stat += scores[i] * (successes[i] - trials[i] * p_bar);
    var += trials[i] * (scores[i] - s_bar) * (scores[i] - s_bar);
  }
  var *= p_bar * (1.0 - p_bar);

  TrendTestResult r;
  if (var > 0.0) {
    r.z = t_stat / std::sqrt(var);
    r.p_value = 2.0 * normal_sf(std::fabs(r.z));
  }
  return r;
}

}  // namespace rcr::stats
