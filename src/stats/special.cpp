#include "stats/special.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace rcr::stats {

namespace {

constexpr double kEps = 1e-15;
constexpr int kMaxIter = 500;

// Continued-fraction evaluation of Q(a,x) (Numerical Recipes "gcf").
double gamma_q_cf(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / 1e-300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) <= kEps) break;
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}

// Series evaluation of P(a,x) (Numerical Recipes "gser").
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIter; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Continued fraction for the incomplete beta (Lentz's algorithm).
double beta_cf(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < 1e-300) d = 1e-300;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = 1.0 + aa / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = 1.0 + aa / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) <= kEps) break;
  }
  return h;
}

}  // namespace

double log_gamma(double x) {
  RCR_CHECK_MSG(x > 0.0, "log_gamma requires x > 0");
  // Lanczos, g = 7, 9 coefficients (Godfrey's set).
  static const double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula keeps accuracy for small x.
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoef[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoef[i] / (x + i);
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

double gamma_p(double a, double x) {
  RCR_CHECK_MSG(a > 0.0 && x >= 0.0, "gamma_p domain error");
  if (x == 0.0) return 0.0;
  return x < a + 1.0 ? gamma_p_series(a, x) : 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  RCR_CHECK_MSG(a > 0.0 && x >= 0.0, "gamma_q domain error");
  if (x == 0.0) return 1.0;
  return x < a + 1.0 ? 1.0 - gamma_p_series(a, x) : gamma_q_cf(a, x);
}

double beta_inc(double a, double b, double x) {
  RCR_CHECK_MSG(a > 0.0 && b > 0.0, "beta_inc parameters must be > 0");
  RCR_CHECK_MSG(x >= 0.0 && x <= 1.0, "beta_inc x out of [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_sf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

double normal_quantile(double p) {
  RCR_CHECK_MSG(p > 0.0 && p < 1.0, "normal_quantile requires p in (0,1)");
  // Acklam's approximation.
  static const double a[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                              -2.759285104469687e+02, 1.383577518672690e+02,
                              -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                              -1.556989798598866e+02, 6.680131188771972e+01,
                              -1.328068155288572e+01};
  static const double c[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                              -2.400758277161838e+00, -2.549732539343734e+00,
                              4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                              2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double chi2_sf(double x, double k) {
  RCR_CHECK_MSG(k > 0.0, "chi2_sf requires positive d.o.f.");
  if (x <= 0.0) return 1.0;
  return gamma_q(0.5 * k, 0.5 * x);
}

double student_t_sf(double t, double nu) {
  RCR_CHECK_MSG(nu > 0.0, "student_t_sf requires positive d.o.f.");
  const double x = nu / (nu + t * t);
  const double half_tail = 0.5 * beta_inc(0.5 * nu, 0.5, x);
  return t >= 0.0 ? half_tail : 1.0 - half_tail;
}

double log_choose(double n, double k) {
  RCR_CHECK_MSG(n >= 0.0 && k >= 0.0 && k <= n, "log_choose domain error");
  return log_gamma(n + 1.0) - log_gamma(k + 1.0) - log_gamma(n - k + 1.0);
}

}  // namespace rcr::stats
