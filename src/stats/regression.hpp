// Regression models used by the trend analysis:
//  * OLS for linear fits (Amdahl-model calibration, time-allocation trends);
//  * logistic regression for adoption curves (GPU uptake vs. wave/field).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/matrix.hpp"

namespace rcr::stats {

struct OlsResult {
  std::vector<double> coefficients;  // [intercept, b1, b2, ...]
  std::vector<double> std_errors;    // same order
  double r_squared = 0.0;
  double adjusted_r_squared = 0.0;
  double residual_stddev = 0.0;
  std::size_t n = 0;

  double predict(std::span<const double> x) const;
};

// Multiple linear regression with intercept. `xs` holds one row of
// predictor values per observation (all rows the same length).
OlsResult ols_fit(const std::vector<std::vector<double>>& xs,
                  std::span<const double> y);

// Convenience simple regression y = a + b x.
OlsResult ols_fit_simple(std::span<const double> x, std::span<const double> y);

struct LogisticResult {
  std::vector<double> coefficients;  // [intercept, b1, ...]
  std::vector<double> std_errors;
  double log_likelihood = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
  std::size_t n = 0;

  // P(y = 1 | x) under the fitted model.
  double predict(std::span<const double> x) const;
};

// Binary logistic regression via Newton–Raphson with a small ridge term
// (lambda) for stability on separable data. `y` entries must be 0 or 1.
// Optional per-observation weights support the raking pipeline.
LogisticResult logistic_fit(const std::vector<std::vector<double>>& xs,
                            std::span<const double> y,
                            std::span<const double> weights = {},
                            double ridge_lambda = 1e-6,
                            std::size_t max_iter = 100, double tol = 1e-10);

// Logistic sigmoid, exposed because adoption-curve code reuses it.
double sigmoid(double z);

}  // namespace rcr::stats
