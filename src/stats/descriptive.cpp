#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace rcr::stats {

double sum(std::span<const double> x) {
  // Neumaier compensated summation: survey weights and bootstrap sums can
  // mix magnitudes, and unlike plain Kahan this stays accurate when a new
  // term is larger than the running sum.
  double s = 0.0, c = 0.0;
  for (double v : x) {
    const double t = s + v;
    if (std::fabs(s) >= std::fabs(v)) {
      c += (s - t) + v;
    } else {
      c += (v - t) + s;
    }
    s = t;
  }
  return s + c;
}

double mean(std::span<const double> x) {
  RCR_CHECK_MSG(!x.empty(), "mean of empty data");
  return sum(x) / static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  RCR_CHECK_MSG(x.size() >= 2, "sample variance needs n >= 2");
  const double m = mean(x);
  double ss = 0.0;
  for (double v : x) ss += (v - m) * (v - m);
  return ss / static_cast<double>(x.size() - 1);
}

double stddev(std::span<const double> x) { return std::sqrt(variance(x)); }

double variance_population(std::span<const double> x) {
  RCR_CHECK_MSG(!x.empty(), "population variance of empty data");
  const double m = mean(x);
  double ss = 0.0;
  for (double v : x) ss += (v - m) * (v - m);
  return ss / static_cast<double>(x.size());
}

double min(std::span<const double> x) {
  RCR_CHECK_MSG(!x.empty(), "min of empty data");
  return *std::min_element(x.begin(), x.end());
}

double max(std::span<const double> x) {
  RCR_CHECK_MSG(!x.empty(), "max of empty data");
  return *std::max_element(x.begin(), x.end());
}

double geomean(std::span<const double> x) {
  RCR_CHECK_MSG(!x.empty(), "geomean of empty data");
  double log_sum = 0.0;
  for (double v : x) {
    RCR_CHECK_MSG(v > 0.0, "geomean requires strictly positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(x.size()));
}

double weighted_mean(std::span<const double> x, std::span<const double> w) {
  RCR_CHECK_MSG(x.size() == w.size(), "weighted_mean size mismatch");
  RCR_CHECK_MSG(!x.empty(), "weighted_mean of empty data");
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    RCR_CHECK_MSG(w[i] >= 0.0, "weights must be non-negative");
    num += w[i] * x[i];
    den += w[i];
  }
  RCR_CHECK_MSG(den > 0.0, "weights must not all be zero");
  return num / den;
}

double effective_sample_size(std::span<const double> w) {
  RCR_CHECK_MSG(!w.empty(), "effective_sample_size of empty weights");
  double s = 0.0, s2 = 0.0;
  for (double v : w) {
    RCR_CHECK_MSG(v >= 0.0, "weights must be non-negative");
    s += v;
    s2 += v * v;
  }
  RCR_CHECK_MSG(s2 > 0.0, "weights must not all be zero");
  return s * s / s2;
}

double weighted_variance(std::span<const double> x,
                         std::span<const double> w) {
  RCR_CHECK_MSG(x.size() == w.size(), "weighted_variance size mismatch");
  const double mu = weighted_mean(x, w);
  double wsum = 0.0, w2sum = 0.0, ss = 0.0;
  std::size_t positive = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (w[i] > 0.0) ++positive;
    wsum += w[i];
    w2sum += w[i] * w[i];
    ss += w[i] * (x[i] - mu) * (x[i] - mu);
  }
  RCR_CHECK_MSG(positive >= 2, "weighted_variance needs >= 2 positive weights");
  const double denom = wsum - w2sum / wsum;
  RCR_CHECK_MSG(denom > 0.0, "weighted_variance degenerate weights");
  return ss / denom;
}

double weighted_quantile(std::span<const double> x,
                         std::span<const double> w, double q) {
  RCR_CHECK_MSG(x.size() == w.size(), "weighted_quantile size mismatch");
  RCR_CHECK_MSG(!x.empty(), "weighted_quantile of empty data");
  RCR_CHECK_MSG(q >= 0.0 && q <= 1.0, "weighted_quantile q out of [0,1]");
  std::vector<std::size_t> order(x.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });
  double total = 0.0;
  for (double v : w) {
    RCR_CHECK_MSG(v >= 0.0, "weights must be non-negative");
    total += v;
  }
  RCR_CHECK_MSG(total > 0.0, "weights must not all be zero");
  const double target = q * total;
  double cum = 0.0;
  for (std::size_t idx : order) {
    cum += w[idx];
    if (cum >= target && w[idx] > 0.0) return x[idx];
  }
  // Fall through only on floating-point shortfall: return the largest
  // positively weighted value.
  for (std::size_t k = order.size(); k-- > 0;)
    if (w[order[k]] > 0.0) return x[order[k]];
  return x[order.back()];
}

double weighted_median(std::span<const double> x, std::span<const double> w) {
  return weighted_quantile(x, w, 0.5);
}

double quantile_sorted(std::span<const double> sorted_x, double q) {
  RCR_CHECK_MSG(!sorted_x.empty(), "quantile of empty data");
  RCR_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
  const double idx = q * static_cast<double>(sorted_x.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const double frac = idx - static_cast<double>(lo);
  if (lo + 1 >= sorted_x.size()) return sorted_x.back();
  return sorted_x[lo] * (1.0 - frac) + sorted_x[lo + 1] * frac;
}

double quantile(std::span<const double> x, double q) {
  std::vector<double> copy(x.begin(), x.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

double median(std::span<const double> x) { return quantile(x, 0.5); }

double skewness(std::span<const double> x) {
  const double n = static_cast<double>(x.size());
  RCR_CHECK_MSG(x.size() >= 3, "skewness needs n >= 3");
  const double m = mean(x);
  double m2 = 0.0, m3 = 0.0;
  for (double v : x) {
    const double d = v - m;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= n;
  m3 /= n;
  RCR_CHECK_MSG(m2 > 0.0, "skewness undefined for zero variance");
  const double g1 = m3 / std::pow(m2, 1.5);
  return std::sqrt(n * (n - 1.0)) / (n - 2.0) * g1;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  RCR_CHECK_MSG(x.size() == y.size(), "pearson size mismatch");
  RCR_CHECK_MSG(x.size() >= 2, "pearson needs n >= 2");
  const double mx = mean(x), my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  RCR_CHECK_MSG(sxx > 0.0 && syy > 0.0, "pearson undefined for zero variance");
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> x) {
  const std::size_t n = x.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });
  std::vector<double> r(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && x[order[j + 1]] == x[order[i]]) ++j;
    // Average rank for the tie group [i, j]; ranks are 1-based.
    const double avg = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg;
    i = j + 1;
  }
  return r;
}

double spearman(std::span<const double> x, std::span<const double> y) {
  RCR_CHECK_MSG(x.size() == y.size(), "spearman size mismatch");
  const auto rx = ranks(x);
  const auto ry = ranks(y);
  return pearson(rx, ry);
}

Summary summarize(std::span<const double> x) {
  RCR_CHECK_MSG(!x.empty(), "summarize of empty data");
  Summary s;
  s.n = x.size();
  s.mean = mean(x);
  s.stddev = x.size() >= 2 ? stddev(x) : 0.0;
  std::vector<double> copy(x.begin(), x.end());
  std::sort(copy.begin(), copy.end());
  s.min = copy.front();
  s.max = copy.back();
  s.median = quantile_sorted(copy, 0.5);
  s.p25 = quantile_sorted(copy, 0.25);
  s.p75 = quantile_sorted(copy, 0.75);
  return s;
}

}  // namespace rcr::stats
