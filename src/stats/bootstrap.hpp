// Nonparametric bootstrap engine.
//
// Resampling is embarrassingly parallel, so the engine optionally fans the
// replicates out over a ThreadPool; replicate b draws from simd::Philox
// substream b of the master seed (counter-based splitting — no hash
// reseeding), making results identical whether run serially or on any
// thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "stats/ci.hpp"

namespace rcr::parallel {
class ThreadPool;
}

namespace rcr::stats {

// A statistic computed from one (re)sample of the data.
using Statistic = std::function<double(std::span<const double>)>;

struct BootstrapOptions {
  std::size_t replicates = 2000;
  double confidence = 0.95;
  std::uint64_t seed = 42;
  // When non-null the replicates run on this pool.
  rcr::parallel::ThreadPool* pool = nullptr;
  // Also compute the BCa interval (adds an O(n) jackknife pass over the
  // statistic; worthwhile for skewed statistics like medians or ratios).
  bool compute_bca = false;
};

struct BootstrapResult {
  double estimate = 0.0;       // statistic on the original sample
  double bias = 0.0;           // mean(replicates) - estimate
  double std_error = 0.0;      // stddev of replicates
  Interval percentile_ci;      // percentile method
  Interval basic_ci;           // basic (reflected) method
  Interval normal_ci;          // normal approximation using bootstrap SE
  Interval bca_ci;             // BCa (only when options.compute_bca)
  double bca_acceleration = 0.0;   // jackknife acceleration estimate
  double bca_bias_z0 = 0.0;        // median-bias correction
  std::vector<double> replicates;  // sorted replicate values
};

// Bootstraps `statistic` over `data` by resampling with replacement.
BootstrapResult bootstrap(std::span<const double> data,
                          const Statistic& statistic,
                          const BootstrapOptions& options = {});

// Bootstrap of the sample mean through the allocation-free fast path: each
// replicate draws its resample indices in one batch and accumulates the
// mean directly from them, never materializing the resample or dispatching
// through a std::function. Bit-identical to
// bootstrap(data, mean-lambda, options) — same replicate streams, same
// compensated summation order — just faster.
BootstrapResult bootstrap_mean(std::span<const double> data,
                               const BootstrapOptions& options = {});

// Convenience: bootstrap CI for a proportion given binary 0/1 data (runs
// the bootstrap_mean fast path after validating the input).
BootstrapResult bootstrap_proportion(std::span<const double> binary_data,
                                     const BootstrapOptions& options = {});

}  // namespace rcr::stats
