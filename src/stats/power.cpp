#include "stats/power.hpp"

#include <algorithm>
#include <cmath>

#include "stats/special.hpp"
#include "util/error.hpp"

namespace rcr::stats {

namespace {
void validate_p(double p) {
  RCR_CHECK_MSG(p > 0.0 && p < 1.0, "proportions must lie in (0,1)");
}
}  // namespace

double two_proportion_power(double p1, double p2, double n, double alpha) {
  validate_p(p1);
  validate_p(p2);
  RCR_CHECK_MSG(n > 1.0, "power needs n > 1");
  RCR_CHECK_MSG(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0,1)");
  const double z_alpha = normal_quantile(1.0 - alpha / 2.0);
  const double p_bar = 0.5 * (p1 + p2);
  const double se0 = std::sqrt(2.0 * p_bar * (1.0 - p_bar) / n);
  const double se1 =
      std::sqrt(p1 * (1.0 - p1) / n + p2 * (1.0 - p2) / n);
  const double delta = std::fabs(p2 - p1);
  // P(reject) under the alternative, both tails (the far tail is
  // negligible except for tiny effects, where it matters for correctness).
  const double upper = (delta - z_alpha * se0) / se1;
  const double lower = (-delta - z_alpha * se0) / se1;
  return normal_cdf(upper) + normal_cdf(lower);
}

std::size_t two_proportion_sample_size(double p1, double p2, double power,
                                       double alpha) {
  validate_p(p1);
  validate_p(p2);
  RCR_CHECK_MSG(p1 != p2, "effect size is zero: no finite sample suffices");
  RCR_CHECK_MSG(power > 0.0 && power < 1.0, "power must lie in (0,1)");
  // Closed-form start, then step to the exact requirement.
  const double z_a = normal_quantile(1.0 - alpha / 2.0);
  const double z_b = normal_quantile(power);
  const double p_bar = 0.5 * (p1 + p2);
  const double delta = std::fabs(p2 - p1);
  const double approx =
      std::pow(z_a * std::sqrt(2.0 * p_bar * (1.0 - p_bar)) +
                   z_b * std::sqrt(p1 * (1.0 - p1) + p2 * (1.0 - p2)),
               2.0) /
      (delta * delta);
  auto n = static_cast<std::size_t>(std::max(2.0, std::floor(approx)));
  while (two_proportion_power(p1, p2, static_cast<double>(n), alpha) < power)
    ++n;
  while (n > 2 && two_proportion_power(p1, p2, static_cast<double>(n - 1),
                                       alpha) >= power)
    --n;
  return n;
}

double minimum_detectable_difference(double p1, double n1, double n2,
                                     double power, double alpha) {
  validate_p(p1);
  RCR_CHECK_MSG(n1 > 1.0 && n2 > 1.0, "needs n > 1 in both groups");
  RCR_CHECK_MSG(power > 0.0 && power < 1.0, "power must lie in (0,1)");
  // Unequal-n power for a shift to p2 = p1 + d.
  const auto power_at = [&](double d) {
    const double p2 = std::min(1.0 - 1e-9, p1 + d);
    const double z_alpha = normal_quantile(1.0 - alpha / 2.0);
    const double p_bar = (n1 * p1 + n2 * p2) / (n1 + n2);
    const double se0 =
        std::sqrt(p_bar * (1.0 - p_bar) * (1.0 / n1 + 1.0 / n2));
    const double se1 =
        std::sqrt(p1 * (1.0 - p1) / n1 + p2 * (1.0 - p2) / n2);
    return normal_cdf((d - z_alpha * se0) / se1) +
           normal_cdf((-d - z_alpha * se0) / se1);
  };
  double lo = 0.0, hi = 1.0 - p1 - 1e-9;
  RCR_CHECK_MSG(power_at(hi) >= power,
                "requested power unreachable within (p1, 1)");
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (power_at(mid) >= power ? hi : lo) = mid;
  }
  return hi;
}

}  // namespace rcr::stats
