#include "stats/matrix.hpp"

#include <cmath>

#include "util/error.hpp"

namespace rcr::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  RCR_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  RCR_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  RCR_CHECK_MSG(cols_ == other.rows_, "matrix multiply shape mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j)
        out.at(i, j) += a * other.at(k, j);
    }
  }
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> v) const {
  RCR_CHECK_MSG(cols_ == v.size(), "matrix-vector shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out[i] += at(i, j) * v[j];
  return out;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = i; j < cols_; ++j) {
      double s = 0.0;
      for (std::size_t r = 0; r < rows_; ++r) s += at(r, i) * at(r, j);
      g.at(i, j) = s;
      g.at(j, i) = s;
    }
  }
  return g;
}

std::vector<double> Matrix::transpose_multiply(
    std::span<const double> v) const {
  RCR_CHECK_MSG(rows_ == v.size(), "transpose_multiply shape mismatch");
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[c] += at(r, c) * v[r];
  return out;
}

std::vector<double> cholesky_solve(const Matrix& a,
                                   std::span<const double> b) {
  const std::size_t n = a.rows();
  RCR_CHECK_MSG(a.cols() == n, "cholesky_solve needs a square matrix");
  RCR_CHECK_MSG(b.size() == n, "cholesky_solve rhs size mismatch");

  // Lower-triangular factor L with A = L L^T.
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a.at(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l.at(j, k) * l.at(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag))
      throw ComputeError("cholesky_solve: matrix is not positive definite");
    l.at(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l.at(i, k) * l.at(j, k);
      l.at(i, j) = s / l.at(j, j);
    }
  }
  // Forward solve L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l.at(i, k) * y[k];
    y[i] = s / l.at(i, i);
  }
  // Back solve L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l.at(k, ii) * x[k];
    x[ii] = s / l.at(ii, ii);
  }
  return x;
}

std::vector<double> lu_solve(const Matrix& a, std::span<const double> b) {
  const std::size_t n = a.rows();
  RCR_CHECK_MSG(a.cols() == n, "lu_solve needs a square matrix");
  RCR_CHECK_MSG(b.size() == n, "lu_solve rhs size mismatch");

  Matrix m = a;  // factor in place on a copy
  std::vector<double> x(b.begin(), b.end());
  std::vector<std::size_t> piv(n);
  for (std::size_t i = 0; i < n; ++i) piv[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    std::size_t best = col;
    double best_abs = std::fabs(m.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(m.at(r, col));
      if (v > best_abs) {
        best = r;
        best_abs = v;
      }
    }
    if (best_abs < 1e-12)
      throw ComputeError("lu_solve: singular or near-singular matrix");
    if (best != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(m.at(best, c), m.at(col, c));
      std::swap(x[best], x[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = m.at(r, col) / m.at(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) m.at(r, c) -= f * m.at(col, c);
      x[r] -= f * x[col];
    }
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t c = ii + 1; c < n; ++c) s -= m.at(ii, c) * x[c];
    x[ii] = s / m.at(ii, ii);
  }
  return x;
}

}  // namespace rcr::stats
