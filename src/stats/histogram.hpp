// Histograms and empirical CDFs used by the distribution figures
// (core-count CDF F3, dataset-size log histogram F8).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace rcr::stats {

// Fixed-width binning over [lo, hi); values outside are clamped into the
// first/last bin so survey outliers stay visible rather than vanishing.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value, double weight = 1.0);
  void add_all(std::span<const double> values);

  std::size_t bin_count() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }
  double fraction(std::size_t i) const;

 private:
  double lo_, hi_, width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

// Log2-binned histogram for heavy-tailed positive data (dataset sizes,
// core counts). Bin i covers [2^(min_exp+i), 2^(min_exp+i+1)).
class Log2Histogram {
 public:
  Log2Histogram(int min_exp, int max_exp);

  void add(double value, double weight = 1.0);

  std::size_t bin_count() const { return counts_.size(); }
  int bin_exp(std::size_t i) const { return min_exp_ + static_cast<int>(i); }
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }
  double fraction(std::size_t i) const;
  std::string bin_label(std::size_t i) const;  // e.g. "[2^10, 2^11)"

 private:
  int min_exp_, max_exp_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double cumulative = 0.0;  // P(X <= value)
};

// Weighted empirical CDF evaluated at each distinct data value.
std::vector<CdfPoint> empirical_cdf(std::span<const double> values,
                                    std::span<const double> weights = {});

}  // namespace rcr::stats
