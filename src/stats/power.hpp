// Power analysis for two-proportion comparisons — the calculation that
// justifies wave sizes before fielding a survey ("how many respondents do
// we need to detect a 10-point shift?").
#pragma once

#include <cstddef>

namespace rcr::stats {

// Power of the two-sided two-proportion z-test when the true proportions
// are p1 and p2 and each group has n observations.
double two_proportion_power(double p1, double p2, double n,
                            double alpha = 0.05);

// Smallest per-group n achieving the requested power for detecting
// p1 vs p2 with a two-sided z-test. Throws if p1 == p2.
std::size_t two_proportion_sample_size(double p1, double p2,
                                       double power = 0.8,
                                       double alpha = 0.05);

// Minimum detectable difference |p2 - p1| around baseline p1 at the given
// per-group sample sizes and power (solved by bisection on the upward
// shift; symmetric for small effects).
double minimum_detectable_difference(double p1, double n1, double n2,
                                     double power = 0.8,
                                     double alpha = 0.05);

}  // namespace rcr::stats
