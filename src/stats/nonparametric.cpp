#include "stats/nonparametric.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "stats/special.hpp"
#include "util/error.hpp"

namespace rcr::stats {

KruskalWallisResult kruskal_wallis(
    const std::vector<std::vector<double>>& groups) {
  RCR_CHECK_MSG(groups.size() >= 2, "kruskal_wallis needs >= 2 groups");
  std::vector<double> pooled;
  for (const auto& g : groups) {
    RCR_CHECK_MSG(!g.empty(), "kruskal_wallis groups must be non-empty");
    pooled.insert(pooled.end(), g.begin(), g.end());
  }
  const double n = static_cast<double>(pooled.size());
  RCR_CHECK_MSG(pooled.size() >= 3, "kruskal_wallis needs >= 3 observations");

  const auto r = ranks(pooled);
  double h = 0.0;
  std::size_t offset = 0;
  for (const auto& g : groups) {
    double rank_sum = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i) rank_sum += r[offset + i];
    h += rank_sum * rank_sum / static_cast<double>(g.size());
    offset += g.size();
  }
  h = 12.0 / (n * (n + 1.0)) * h - 3.0 * (n + 1.0);

  // Tie correction: divide by 1 - sum(t³ - t) / (n³ - n).
  std::vector<double> sorted(pooled);
  std::sort(sorted.begin(), sorted.end());
  double tie_term = 0.0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
    const double t = static_cast<double>(j - i + 1);
    tie_term += t * t * t - t;
    i = j + 1;
  }
  const double correction = 1.0 - tie_term / (n * n * n - n);
  RCR_CHECK_MSG(correction > 0.0,
                "kruskal_wallis degenerate: all observations tie");
  h /= correction;

  KruskalWallisResult result;
  result.h = h;
  result.dof = static_cast<double>(groups.size() - 1);
  result.p_value = chi2_sf(h, result.dof);
  result.epsilon_squared = h / (n - 1.0);
  return result;
}

WilcoxonResult wilcoxon_signed_rank(std::span<const double> x,
                                    std::span<const double> y) {
  RCR_CHECK_MSG(x.size() == y.size(), "wilcoxon needs paired samples");
  RCR_CHECK_MSG(!x.empty(), "wilcoxon of empty data");

  std::vector<double> abs_diff;
  std::vector<int> sign;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    if (d == 0.0) continue;
    abs_diff.push_back(std::fabs(d));
    sign.push_back(d > 0.0 ? 1 : -1);
  }
  WilcoxonResult result;
  result.n_nonzero = abs_diff.size();
  if (abs_diff.empty()) return result;  // all ties: no evidence, p = 1

  const auto r = ranks(abs_diff);
  double w_plus = 0.0, w_minus = 0.0;
  for (std::size_t i = 0; i < r.size(); ++i) {
    (sign[i] > 0 ? w_plus : w_minus) += r[i];
  }
  result.w = std::min(w_plus, w_minus);

  const double n = static_cast<double>(abs_diff.size());
  const double mu = n * (n + 1.0) / 4.0;
  // Tie correction on the variance.
  std::vector<double> sorted(abs_diff);
  std::sort(sorted.begin(), sorted.end());
  double tie_term = 0.0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
    const double t = static_cast<double>(j - i + 1);
    tie_term += t * t * t - t;
    i = j + 1;
  }
  const double sigma2 =
      n * (n + 1.0) * (2.0 * n + 1.0) / 24.0 - tie_term / 48.0;
  if (sigma2 > 0.0) {
    const double num = w_plus - mu;  // use W+ so sign is meaningful
    const double corrected =
        num > 0.5 ? num - 0.5 : (num < -0.5 ? num + 0.5 : 0.0);
    result.z = corrected / std::sqrt(sigma2);
    result.p_value = 2.0 * normal_sf(std::fabs(result.z));
  }
  return result;
}

double kendall_tau_b(std::span<const double> x, std::span<const double> y) {
  RCR_CHECK_MSG(x.size() == y.size(), "kendall size mismatch");
  RCR_CHECK_MSG(x.size() >= 2, "kendall needs n >= 2");
  const std::size_t n = x.size();
  double concordant = 0.0, discordant = 0.0;
  double ties_x = 0.0, ties_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) continue;  // joint tie: excluded from all
      if (dx == 0.0) {
        ties_x += 1.0;
      } else if (dy == 0.0) {
        ties_y += 1.0;
      } else if (dx * dy > 0.0) {
        concordant += 1.0;
      } else {
        discordant += 1.0;
      }
    }
  }
  const double denom = std::sqrt((concordant + discordant + ties_x) *
                                 (concordant + discordant + ties_y));
  RCR_CHECK_MSG(denom > 0.0, "kendall undefined: a variable is constant");
  return (concordant - discordant) / denom;
}

}  // namespace rcr::stats
