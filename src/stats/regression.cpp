#include "stats/regression.hpp"

#include <cmath>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace rcr::stats {

namespace {

// Builds the design matrix with a leading intercept column.
Matrix design_matrix(const std::vector<std::vector<double>>& xs) {
  RCR_CHECK_MSG(!xs.empty(), "regression needs observations");
  const std::size_t p = xs.front().size();
  Matrix x(xs.size(), p + 1);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    RCR_CHECK_MSG(xs[i].size() == p, "ragged predictor rows");
    x.at(i, 0) = 1.0;
    for (std::size_t j = 0; j < p; ++j) x.at(i, j + 1) = xs[i][j];
  }
  return x;
}

double linear_predictor(std::span<const double> coef,
                        std::span<const double> x) {
  RCR_CHECK_MSG(coef.size() == x.size() + 1,
                "predictor length does not match fitted coefficients");
  double z = coef[0];
  for (std::size_t j = 0; j < x.size(); ++j) z += coef[j + 1] * x[j];
  return z;
}

}  // namespace

double OlsResult::predict(std::span<const double> x) const {
  return linear_predictor(coefficients, x);
}

OlsResult ols_fit(const std::vector<std::vector<double>>& xs,
                  std::span<const double> y) {
  RCR_CHECK_MSG(xs.size() == y.size(), "OLS x/y size mismatch");
  const Matrix x = design_matrix(xs);
  const std::size_t n = x.rows();
  const std::size_t k = x.cols();
  RCR_CHECK_MSG(n > k, "OLS needs more observations than parameters");

  const Matrix xtx = x.gram();
  const std::vector<double> xty = x.transpose_multiply(y);
  OlsResult r;
  r.n = n;
  r.coefficients = cholesky_solve(xtx, xty);

  // Residual diagnostics.
  double ss_res = 0.0;
  const double y_mean = mean(y);
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double yhat = 0.0;
    for (std::size_t j = 0; j < k; ++j) yhat += x.at(i, j) * r.coefficients[j];
    ss_res += (y[i] - yhat) * (y[i] - yhat);
    ss_tot += (y[i] - y_mean) * (y[i] - y_mean);
  }
  r.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  const double dof = static_cast<double>(n - k);
  r.adjusted_r_squared =
      ss_tot > 0.0
          ? 1.0 - (ss_res / dof) / (ss_tot / static_cast<double>(n - 1))
          : 1.0;
  const double sigma2 = ss_res / dof;
  r.residual_stddev = std::sqrt(sigma2);

  // Var(beta) = sigma^2 (X^T X)^{-1}; solve column by column.
  r.std_errors.resize(k);
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<double> e(k, 0.0);
    e[j] = 1.0;
    const auto col = cholesky_solve(xtx, e);
    r.std_errors[j] = std::sqrt(sigma2 * col[j]);
  }
  return r;
}

OlsResult ols_fit_simple(std::span<const double> x,
                         std::span<const double> y) {
  std::vector<std::vector<double>> xs(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) xs[i] = {x[i]};
  return ols_fit(xs, y);
}

double sigmoid(double z) {
  // Branch keeps exp() argument non-positive: no overflow either direction.
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double LogisticResult::predict(std::span<const double> x) const {
  return sigmoid(linear_predictor(coefficients, x));
}

LogisticResult logistic_fit(const std::vector<std::vector<double>>& xs,
                            std::span<const double> y,
                            std::span<const double> weights,
                            double ridge_lambda, std::size_t max_iter,
                            double tol) {
  RCR_CHECK_MSG(xs.size() == y.size(), "logistic x/y size mismatch");
  const bool weighted = !weights.empty();
  if (weighted)
    RCR_CHECK_MSG(weights.size() == y.size(), "logistic weight size mismatch");
  for (double v : y)
    RCR_CHECK_MSG(v == 0.0 || v == 1.0, "logistic labels must be 0/1");

  const Matrix x = design_matrix(xs);
  const std::size_t n = x.rows();
  const std::size_t k = x.cols();
  RCR_CHECK_MSG(n >= k, "logistic needs at least as many rows as parameters");

  LogisticResult r;
  r.n = n;
  r.coefficients.assign(k, 0.0);

  std::vector<double> eta(n), mu(n);
  Matrix hessian(k, k);
  std::vector<double> gradient(k);

  for (std::size_t iter = 1; iter <= max_iter; ++iter) {
    // eta = X beta; mu = sigmoid(eta).
    for (std::size_t i = 0; i < n; ++i) {
      double z = 0.0;
      for (std::size_t j = 0; j < k; ++j) z += x.at(i, j) * r.coefficients[j];
      eta[i] = z;
      mu[i] = sigmoid(z);
    }
    // Gradient = X^T W (y - mu) - lambda beta; Hessian = X^T W S X + lambda I
    // with S = mu(1-mu).
    for (std::size_t j = 0; j < k; ++j) {
      gradient[j] = -ridge_lambda * r.coefficients[j];
      for (std::size_t jj = 0; jj < k; ++jj)
        hessian.at(j, jj) = (j == jj) ? ridge_lambda : 0.0;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const double w = weighted ? weights[i] : 1.0;
      const double resid = w * (y[i] - mu[i]);
      const double s = w * mu[i] * (1.0 - mu[i]);
      for (std::size_t j = 0; j < k; ++j) {
        gradient[j] += x.at(i, j) * resid;
        for (std::size_t jj = j; jj < k; ++jj)
          hessian.at(j, jj) += s * x.at(i, j) * x.at(i, jj);
      }
    }
    for (std::size_t j = 0; j < k; ++j)
      for (std::size_t jj = 0; jj < j; ++jj)
        hessian.at(j, jj) = hessian.at(jj, j);

    const auto step = cholesky_solve(hessian, gradient);
    double max_step = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      r.coefficients[j] += step[j];
      max_step = std::max(max_step, std::fabs(step[j]));
    }
    r.iterations = iter;
    if (max_step < tol) {
      r.converged = true;
      break;
    }
  }

  // Log-likelihood and standard errors at the final estimate.
  r.log_likelihood = 0.0;
  Matrix info(k, k);
  for (std::size_t j = 0; j < k; ++j) info.at(j, j) = ridge_lambda;
  for (std::size_t i = 0; i < n; ++i) {
    double z = 0.0;
    for (std::size_t j = 0; j < k; ++j) z += x.at(i, j) * r.coefficients[j];
    const double p = sigmoid(z);
    const double w = weighted ? weights[i] : 1.0;
    // Clamp avoids log(0) on perfectly separated points.
    const double pc = std::min(1.0 - 1e-15, std::max(1e-15, p));
    r.log_likelihood +=
        w * (y[i] * std::log(pc) + (1.0 - y[i]) * std::log1p(-pc));
    const double s = w * p * (1.0 - p);
    for (std::size_t j = 0; j < k; ++j)
      for (std::size_t jj = j; jj < k; ++jj)
        info.at(j, jj) += s * x.at(i, j) * x.at(i, jj);
  }
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t jj = 0; jj < j; ++jj) info.at(j, jj) = info.at(jj, j);

  r.std_errors.resize(k);
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<double> e(k, 0.0);
    e[j] = 1.0;
    const auto col = cholesky_solve(info, e);
    r.std_errors[j] = std::sqrt(std::max(0.0, col[j]));
  }
  return r;
}

}  // namespace rcr::stats
