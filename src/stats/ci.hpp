// Confidence intervals for proportions and means.
//
// The survey reports nearly everything as a proportion with an interval, so
// these are the workhorses of every table. Wilson is the default (good
// coverage at the small per-stratum n this kind of study has); Wald and
// Agresti–Coull are provided for comparison (F7 methodology figure).
#pragma once

#include <span>

namespace rcr::stats {

struct Interval {
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;

  double width() const { return hi - lo; }
  bool contains(double v) const { return v >= lo && v <= hi; }
};

// Wilson score interval for a binomial proportion.
Interval wilson_ci(double successes, double n, double confidence = 0.95);

// Agresti–Coull "add z²/2" interval.
Interval agresti_coull_ci(double successes, double n,
                          double confidence = 0.95);

// Wald (normal approximation) interval; clamped to [0,1].
Interval wald_ci(double successes, double n, double confidence = 0.95);

// Normal-theory interval for a mean (z critical value; survey n is large
// enough that the t correction is negligible, see tests for the bound).
Interval mean_ci(std::span<const double> x, double confidence = 0.95);

// Interval for a weighted proportion using Kish effective sample size.
Interval weighted_proportion_ci(double weighted_successes,
                                double weighted_total,
                                double effective_n,
                                double confidence = 0.95);

}  // namespace rcr::stats
