// Contingency tables and the categorical association tests the survey
// analysis runs on them (χ², G-test, Fisher exact, effect sizes).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace rcr::stats {

// Dense r×c table of non-negative counts. Counts are doubles so weighted
// (fractional) counts from the raking step flow through unchanged.
class Contingency {
 public:
  Contingency(std::size_t rows, std::size_t cols);
  Contingency(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  void add(std::size_t r, std::size_t c, double count = 1.0);

  double row_total(std::size_t r) const;
  double col_total(std::size_t c) const;
  double grand_total() const;

  // Expected count under independence: row_total * col_total / grand.
  double expected(std::size_t r, std::size_t c) const;

  // Drops all-zero rows and columns (degenerate categories break the tests).
  Contingency without_empty_margins() const;

 private:
  std::size_t rows_, cols_;
  std::vector<double> cells_;
};

struct ChiSquareResult {
  double statistic = 0.0;
  double dof = 0.0;
  double p_value = 1.0;
  double cramers_v = 0.0;   // bias-uncorrected Cramér's V
  double min_expected = 0.0;  // smallest expected cell, for validity warnings
};

// Pearson χ² test of independence. Requires at least a 2×2 table with
// positive margins everywhere (call without_empty_margins() first if needed).
ChiSquareResult chi_square_independence(const Contingency& table);

// Likelihood-ratio G-test of independence (same asymptotics as χ²).
ChiSquareResult g_test_independence(const Contingency& table);

// χ² goodness-of-fit of observed counts against expected proportions.
ChiSquareResult chi_square_goodness_of_fit(std::span<const double> observed,
                                           std::span<const double> expected_p);

struct FisherResult {
  double p_two_sided = 1.0;
  double p_less = 1.0;     // P(table at least this extreme toward small a)
  double p_greater = 1.0;  // toward large a
  double odds_ratio = 1.0;  // conditional sample OR (ad/bc, inf-safe)
};

// Fisher's exact test on a 2×2 table of integer counts [[a,b],[c,d]].
FisherResult fisher_exact(double a, double b, double c, double d);

struct TwoProportionResult {
  double p1 = 0.0, p2 = 0.0;
  double diff = 0.0;       // p1 - p2
  double z = 0.0;          // pooled z statistic
  double p_value = 1.0;    // two-sided
  double diff_ci_lo = 0.0; // unpooled Wald CI for the difference
  double diff_ci_hi = 0.0;
};

// Two-sample proportion z-test: successes/trials per wave.
TwoProportionResult two_proportion_test(double success1, double n1,
                                        double success2, double n2,
                                        double confidence = 0.95);

// Sample odds ratio of a 2×2 table with Haldane–Anscombe 0.5 correction
// applied only when a zero cell is present.
double odds_ratio(double a, double b, double c, double d);

struct MannWhitneyResult {
  double u = 0.0;
  double z = 0.0;       // normal approximation with tie correction
  double p_value = 1.0; // two-sided
  // Common-language effect size: P(X > Y) + 0.5 P(X == Y).
  double effect_size = 0.5;
};

MannWhitneyResult mann_whitney_u(std::span<const double> x,
                                 std::span<const double> y);

// Holm–Bonferroni step-down adjustment; returns adjusted p-values in the
// original order, each clamped to [0, 1] and enforced monotone.
std::vector<double> holm_adjust(std::span<const double> p_values);

// Benjamini–Hochberg FDR adjustment (step-up); returns adjusted p-values
// ("q-values") in the original order, monotone and clamped to [0, 1].
std::vector<double> benjamini_hochberg_adjust(
    std::span<const double> p_values);

struct McNemarResult {
  double statistic = 0.0;  // continuity-corrected chi-squared (large samples)
  double p_value = 1.0;    // exact binomial when discordant pairs < 26
  bool exact = false;      // which method produced p_value
};

// McNemar's test for paired binary outcomes: `b` pairs changed 0→1 and
// `c` pairs changed 1→0 (concordant pairs are irrelevant). Two-sided.
McNemarResult mcnemar_test(double b, double c);

struct TrendTestResult {
  double z = 0.0;        // standardized Cochran–Armitage statistic
  double p_value = 1.0;  // two-sided
};

// Cochran–Armitage test for a linear trend in proportions across ordered
// groups. `successes[k]` / `trials[k]` are binomial counts at `scores[k]`
// (e.g. years). Requires >= 2 groups with positive trials.
TrendTestResult cochran_armitage_trend(std::span<const double> successes,
                                       std::span<const double> trials,
                                       std::span<const double> scores);

}  // namespace rcr::stats
