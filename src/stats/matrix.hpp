// Small dense matrix support for the regression routines.
//
// The survey fits are tiny (a handful of predictors), so a simple
// row-major dense matrix with Cholesky and partially pivoted LU solvers is
// all the linear algebra this project needs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rcr::stats {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  Matrix transpose() const;
  Matrix multiply(const Matrix& other) const;
  std::vector<double> multiply(std::span<const double> v) const;

  // A^T A and A^T b, the normal-equation building blocks.
  Matrix gram() const;
  std::vector<double> transpose_multiply(std::span<const double> v) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

// Solves A x = b for symmetric positive-definite A via Cholesky.
// Throws ComputeError if A is not SPD (within tolerance).
std::vector<double> cholesky_solve(const Matrix& a, std::span<const double> b);

// Solves A x = b for general square A via LU with partial pivoting.
// Throws ComputeError on (near-)singular A.
std::vector<double> lu_solve(const Matrix& a, std::span<const double> b);

}  // namespace rcr::stats
