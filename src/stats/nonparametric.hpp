// Additional nonparametric machinery: k-sample location test, paired test,
// and rank correlation with proper tie handling. Used by the drill-down
// analyses (per-field comparisons) and available to downstream users.
#pragma once

#include <span>
#include <vector>

namespace rcr::stats {

struct KruskalWallisResult {
  double h = 0.0;        // tie-corrected H statistic
  double dof = 0.0;
  double p_value = 1.0;  // chi-squared approximation
  // Epsilon-squared effect size: H / (n - 1).
  double epsilon_squared = 0.0;
};

// Kruskal–Wallis test that k independent groups share a location.
// Requires >= 2 non-empty groups and a total of >= 3 observations.
KruskalWallisResult kruskal_wallis(
    const std::vector<std::vector<double>>& groups);

struct WilcoxonResult {
  double w = 0.0;         // signed-rank statistic (min of W+ / W-)
  double z = 0.0;         // normal approximation with tie correction
  double p_value = 1.0;   // two-sided
  std::size_t n_nonzero = 0;  // pairs with a nonzero difference
};

// Wilcoxon signed-rank test for paired samples (x[i] vs y[i]).
// Zero differences are dropped (the standard treatment).
WilcoxonResult wilcoxon_signed_rank(std::span<const double> x,
                                    std::span<const double> y);

// Kendall's tau-b rank correlation (tie-corrected), O(n²) — fine for
// survey-sized data.
double kendall_tau_b(std::span<const double> x, std::span<const double> y);

}  // namespace rcr::stats
