#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/philox.hpp"
#include "stats/descriptive.hpp"
#include "stats/special.hpp"
#include "util/error.hpp"

namespace rcr::stats {

namespace {

// Replicate b resamples from Philox substream b of the master seed —
// counter-based splitting gives every replicate an independent, order-free
// stream by construction (no per-replicate hash reseeding, no sequential
// state to fork), which is what makes the fan-out identical whether the
// replicates run serially or sharded across a pool.
//
// Lemire unbiased reduction over the substream: the raw draws fill in one
// vectorized batch, then the rare rejected lanes redraw scalar from the
// stream's tail. Both replicate paths (generic and fast-mean) draw indices
// through this one helper, so bootstrap(data, mean-lambda) stays
// bit-identical to bootstrap_mean(data).
void fill_indices(std::uint64_t master, std::size_t replicate,
                  std::uint64_t bound, std::span<std::uint64_t> out) {
  simd::Philox rng(master, static_cast<std::uint64_t>(replicate));
  rng.fill_u64(out);
  const std::uint64_t threshold = (0 - bound) % bound;
  for (std::uint64_t& o : out) {
    std::uint64_t x = o;
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    while (static_cast<std::uint64_t>(m) < threshold)
      m = static_cast<__uint128_t>(rng.next_u64()) * bound;
    o = static_cast<std::uint64_t>(m >> 64);
  }
}

// Reusable per-worker buffers; which ones a replicate touches depends on
// the path (the fast paths never materialize `values`).
struct Workspace {
  std::vector<std::uint64_t> indices;
  std::vector<double> values;
};

// Generic path: resample indices in one batch (identical stream to the
// former one-draw-per-element loop), materialize the resample, and hand it
// to the arbitrary statistic.
double generic_replicate(std::span<const double> data,
                         const Statistic& statistic, std::uint64_t master,
                         std::size_t replicate, Workspace& ws) {
  const std::size_t n = data.size();
  ws.indices.resize(n);
  fill_indices(master, replicate, n, ws.indices);
  ws.values.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    ws.values[i] = data[ws.indices[i]];
  return statistic(ws.values);
}

// Fast path for the mean (and therefore proportions): accumulate straight
// from the index batch. The accumulation replays stats::mean exactly —
// Neumaier compensated summation over the resample in index order, then one
// divide — so the replicate value is bit-identical to the generic path's
// statistic(resample) without ever materializing the resample.
double mean_replicate(std::span<const double> data, std::uint64_t master,
                      std::size_t replicate, Workspace& ws) {
  const std::size_t n = data.size();
  ws.indices.resize(n);
  fill_indices(master, replicate, n, ws.indices);
  double s = 0.0, c = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = data[ws.indices[i]];
    const double t = s + v;
    if (std::fabs(s) >= std::fabs(v)) {
      c += (s - t) + v;
    } else {
      c += (v - t) + s;
    }
    s = t;
  }
  return (s + c) / static_cast<double>(n);
}

// Shared engine: replicate generation is pluggable (generic vs. fast
// accumulators); estimate, CIs, and the BCa jackknife always go through
// `statistic` so every interval is computed identically on both paths.
template <typename ReplicateFn>
BootstrapResult bootstrap_core(std::span<const double> data,
                               const Statistic& statistic,
                               const BootstrapOptions& options,
                               ReplicateFn&& replicate) {
  RCR_CHECK_MSG(!data.empty(), "bootstrap of empty data");
  RCR_CHECK_MSG(options.replicates >= 2, "bootstrap needs >= 2 replicates");
  RCR_CHECK_MSG(options.confidence > 0.0 && options.confidence < 1.0,
                "bootstrap confidence must lie in (0,1)");

  BootstrapResult result;
  result.estimate = statistic(data);
  result.replicates.resize(options.replicates);

  {
    // Throughput meter: replicates/sec over the resampling phase only.
    obs::MeterScope meter(obs::registry().meter("stats.bootstrap.replicates"),
                          options.replicates);
    if (options.pool != nullptr) {
      rcr::parallel::parallel_for_range(
          *options.pool, 0, options.replicates,
          [&](std::size_t lo, std::size_t hi) {
            Workspace ws;
            for (std::size_t b = lo; b < hi; ++b) {
              result.replicates[b] = replicate(options.seed, b, ws);
            }
          });
    } else {
      Workspace ws;
      for (std::size_t b = 0; b < options.replicates; ++b) {
        result.replicates[b] = replicate(options.seed, b, ws);
      }
    }
  }

  std::sort(result.replicates.begin(), result.replicates.end());
  const double rep_mean = mean(result.replicates);
  result.bias = rep_mean - result.estimate;
  result.std_error = result.replicates.size() >= 2
                         ? stddev(result.replicates)
                         : 0.0;

  const double alpha = 1.0 - options.confidence;
  const double lo_q = alpha / 2.0;
  const double hi_q = 1.0 - alpha / 2.0;
  const double q_lo = quantile_sorted(result.replicates, lo_q);
  const double q_hi = quantile_sorted(result.replicates, hi_q);

  result.percentile_ci = {result.estimate, q_lo, q_hi};
  result.basic_ci = {result.estimate, 2.0 * result.estimate - q_hi,
                     2.0 * result.estimate - q_lo};
  const double z = normal_quantile(0.5 + 0.5 * options.confidence);
  result.normal_ci = {result.estimate,
                      result.estimate - z * result.std_error,
                      result.estimate + z * result.std_error};

  if (options.compute_bca) {
    // Bias correction z0 from the share of replicates below the estimate.
    std::size_t below = 0;
    for (double r : result.replicates)
      if (r < result.estimate) ++below;
    double frac = static_cast<double>(below) /
                  static_cast<double>(result.replicates.size());
    // Clamp away from {0,1}: fully degenerate replicate sets fall back to
    // the percentile interval.
    frac = std::min(1.0 - 1e-9, std::max(1e-9, frac));
    const double z0 = normal_quantile(frac);
    result.bca_bias_z0 = z0;

    // Jackknife acceleration over one scratch buffer, updated incrementally:
    // after evaluating leave-one-out sample i, writing data[i] into slot i
    // turns it into leave-one-out sample i+1 (same element order the old
    // per-iteration rebuild produced, at O(1) instead of O(n) per step).
    const std::size_t n = data.size();
    std::vector<double> jack(n);
    std::vector<double> loo(data.begin() + 1, data.end());
    for (std::size_t i = 0; i < n; ++i) {
      jack[i] = n > 1 ? statistic(loo) : result.estimate;
      if (i + 1 < n) loo[i] = data[i];
    }
    const double jack_mean = mean(jack);
    double num = 0.0, den = 0.0;
    for (double v : jack) {
      const double d = jack_mean - v;
      num += d * d * d;
      den += d * d;
    }
    const double a =
        den > 0.0 ? num / (6.0 * std::pow(den, 1.5)) : 0.0;
    result.bca_acceleration = a;

    const auto adjusted_quantile = [&](double z_alpha) {
      const double w = z0 + z_alpha;
      const double adj = z0 + w / (1.0 - a * w);
      return normal_cdf(adj);
    };
    const double z_lo = normal_quantile(lo_q);
    const double z_hi = normal_quantile(hi_q);
    result.bca_ci = {result.estimate,
                     quantile_sorted(result.replicates,
                                     adjusted_quantile(z_lo)),
                     quantile_sorted(result.replicates,
                                     adjusted_quantile(z_hi))};
  }
  return result;
}

}  // namespace

BootstrapResult bootstrap(std::span<const double> data,
                          const Statistic& statistic,
                          const BootstrapOptions& options) {
  return bootstrap_core(
      data, statistic, options,
      [&](std::uint64_t master, std::size_t b, Workspace& ws) {
        return generic_replicate(data, statistic, master, b, ws);
      });
}

BootstrapResult bootstrap_mean(std::span<const double> data,
                               const BootstrapOptions& options) {
  return bootstrap_core(
      data, [](std::span<const double> x) { return mean(x); }, options,
      [&](std::uint64_t master, std::size_t b, Workspace& ws) {
        return mean_replicate(data, master, b, ws);
      });
}

BootstrapResult bootstrap_proportion(std::span<const double> binary_data,
                                     const BootstrapOptions& options) {
  for (double v : binary_data)
    RCR_CHECK_MSG(v == 0.0 || v == 1.0,
                  "bootstrap_proportion expects 0/1 data");
  return bootstrap_mean(binary_data, options);
}

}  // namespace rcr::stats
