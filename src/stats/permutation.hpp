// Permutation (randomization) tests: exact-in-the-limit p-values with no
// distributional assumptions — the robustness companion to the z/χ² tests
// for the survey's small-stratum comparisons. Embarrassingly parallel and
// deterministic under a seed, like the bootstrap engine.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

namespace rcr::parallel {
class ThreadPool;
}

namespace rcr::stats {

struct PermutationOptions {
  std::size_t permutations = 5000;
  std::uint64_t seed = 7;
  rcr::parallel::ThreadPool* pool = nullptr;
};

struct PermutationResult {
  double observed = 0.0;   // statistic on the real labeling
  double p_value = 1.0;    // two-sided: P(|T*| >= |T|), +1 correction
  double p_greater = 1.0;  // one-sided upper
  double p_less = 1.0;     // one-sided lower
  std::size_t permutations = 0;
};

// Generic two-sample permutation test. `statistic` maps (group_x, group_y)
// to a scalar; labels are shuffled `permutations` times.
using TwoSampleStatistic = std::function<double(
    std::span<const double>, std::span<const double>)>;

PermutationResult permutation_test(std::span<const double> x,
                                   std::span<const double> y,
                                   const TwoSampleStatistic& statistic,
                                   const PermutationOptions& options = {});

// Difference in means, mean(x) - mean(y).
PermutationResult permutation_test_mean_diff(
    std::span<const double> x, std::span<const double> y,
    const PermutationOptions& options = {});

// Difference in proportions for 0/1 data.
PermutationResult permutation_test_proportion_diff(
    std::span<const double> x, std::span<const double> y,
    const PermutationOptions& options = {});

}  // namespace rcr::stats
