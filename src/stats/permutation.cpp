#include "stats/permutation.hpp"

#include <cmath>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::stats {

namespace {

std::uint64_t permutation_seed(std::uint64_t master, std::size_t index) {
  std::uint64_t z = master ^ (0xD1B54A32D192ED03ULL * (index + 1));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// k-of-n split via partial Fisher–Yates: only the first nx slots need to be
// a uniform sample of the pool, the remainder is the complement, so the
// shuffle stops after nx swaps instead of walking the whole array. The
// swap randomness is prefetched in one batch (BufferedDraws consumes the
// same underlying stream as per-swap next_below calls, so the permutation
// — and every statistic computed from it — is unchanged bitwise).
void partial_split_shuffle(std::vector<double>& values, std::size_t nx,
                           Rng& rng) {
  BufferedDraws draws(rng, nx);
  const std::size_t n = values.size();
  for (std::size_t i = 0; i < nx; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(draws.take_below(n - i));
    std::swap(values[i], values[j]);
  }
}

// One shuffled replicate: pooled data partitioned into |x| and |y|.
double one_replicate(std::span<const double> pooled, std::size_t nx,
                     const TwoSampleStatistic& statistic, std::uint64_t seed,
                     std::vector<double>& scratch) {
  Rng rng(seed);
  scratch.assign(pooled.begin(), pooled.end());
  partial_split_shuffle(scratch, nx, rng);
  return statistic(std::span<const double>(scratch.data(), nx),
                   std::span<const double>(scratch.data() + nx,
                                           scratch.size() - nx));
}

// Neumaier sum over a contiguous run — stats::mean's exact arithmetic,
// inlined so the fast path below reproduces mean(a) - mean(b) bitwise.
double neumaier_mean(const double* v, std::size_t n) {
  double s = 0.0, c = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = s + v[i];
    if (std::fabs(s) >= std::fabs(v[i])) {
      c += (s - t) + v[i];
    } else {
      c += (v[i] - t) + s;
    }
    s = t;
  }
  return (s + c) / static_cast<double>(n);
}

// Fast path for the mean/proportion difference: same shuffle, but the
// group means accumulate straight off the scratch buffer with no
// std::function dispatch and no span plumbing per replicate.
double mean_diff_replicate(std::span<const double> pooled, std::size_t nx,
                           std::uint64_t seed, std::vector<double>& scratch) {
  Rng rng(seed);
  scratch.assign(pooled.begin(), pooled.end());
  partial_split_shuffle(scratch, nx, rng);
  return neumaier_mean(scratch.data(), nx) -
         neumaier_mean(scratch.data() + nx, scratch.size() - nx);
}

template <typename ReplicateFn>
PermutationResult permutation_core(std::span<const double> x,
                                   std::span<const double> y,
                                   double observed,
                                   const PermutationOptions& options,
                                   ReplicateFn&& replicate) {
  RCR_CHECK_MSG(!x.empty() && !y.empty(),
                "permutation test needs both samples");
  RCR_CHECK_MSG(options.permutations >= 10,
                "permutation test needs >= 10 permutations");

  PermutationResult result;
  result.observed = observed;
  result.permutations = options.permutations;

  std::vector<double> pooled;
  pooled.reserve(x.size() + y.size());
  pooled.insert(pooled.end(), x.begin(), x.end());
  pooled.insert(pooled.end(), y.begin(), y.end());

  std::vector<double> replicates(options.permutations);
  {
    // Throughput meter: shuffles/sec over the resampling phase only.
    obs::MeterScope meter(
        obs::registry().meter("stats.permutation.replicates"),
        options.permutations);
    if (options.pool != nullptr) {
      rcr::parallel::parallel_for_range(
          *options.pool, 0, options.permutations,
          [&](std::size_t lo, std::size_t hi) {
            std::vector<double> scratch;
            for (std::size_t b = lo; b < hi; ++b) {
              replicates[b] = replicate(
                  pooled, permutation_seed(options.seed, b), scratch);
            }
          });
    } else {
      std::vector<double> scratch;
      for (std::size_t b = 0; b < options.permutations; ++b) {
        replicates[b] =
            replicate(pooled, permutation_seed(options.seed, b), scratch);
      }
    }
  }

  // "+1" correction keeps p-values in (0, 1] and unbiased.
  std::size_t ge = 0, le = 0, extreme = 0;
  const double abs_obs = std::fabs(result.observed);
  for (double r : replicates) {
    if (r >= result.observed) ++ge;
    if (r <= result.observed) ++le;
    if (std::fabs(r) >= abs_obs) ++extreme;
  }
  const double denom = static_cast<double>(options.permutations + 1);
  result.p_greater = static_cast<double>(ge + 1) / denom;
  result.p_less = static_cast<double>(le + 1) / denom;
  result.p_value = std::min(1.0, static_cast<double>(extreme + 1) / denom);
  return result;
}

}  // namespace

PermutationResult permutation_test(std::span<const double> x,
                                   std::span<const double> y,
                                   const TwoSampleStatistic& statistic,
                                   const PermutationOptions& options) {
  RCR_CHECK_MSG(!x.empty() && !y.empty(),
                "permutation test needs both samples");
  const std::size_t nx = x.size();
  return permutation_core(
      x, y, statistic(x, y), options,
      [&](std::span<const double> pooled, std::uint64_t seed,
          std::vector<double>& scratch) {
        return one_replicate(pooled, nx, statistic, seed, scratch);
      });
}

PermutationResult permutation_test_mean_diff(
    std::span<const double> x, std::span<const double> y,
    const PermutationOptions& options) {
  RCR_CHECK_MSG(!x.empty() && !y.empty(),
                "permutation test needs both samples");
  const std::size_t nx = x.size();
  return permutation_core(
      x, y, mean(x) - mean(y), options,
      [nx](std::span<const double> pooled, std::uint64_t seed,
           std::vector<double>& scratch) {
        return mean_diff_replicate(pooled, nx, seed, scratch);
      });
}

PermutationResult permutation_test_proportion_diff(
    std::span<const double> x, std::span<const double> y,
    const PermutationOptions& options) {
  for (std::span<const double> s : {x, y})
    for (double v : s)
      RCR_CHECK_MSG(v == 0.0 || v == 1.0,
                    "proportion permutation test expects 0/1 data");
  return permutation_test_mean_diff(x, y, options);
}

}  // namespace rcr::stats
