// Descriptive statistics over contiguous numeric data.
//
// All functions take std::span<const double> so they work on raw vectors,
// table columns, and bootstrap resamples alike without copies.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rcr::stats {

double sum(std::span<const double> x);
double mean(std::span<const double> x);

// Sample variance / stddev (n-1 denominator); requires n >= 2.
double variance(std::span<const double> x);
double stddev(std::span<const double> x);

// Population variance (n denominator); requires n >= 1.
double variance_population(std::span<const double> x);

double min(std::span<const double> x);
double max(std::span<const double> x);

// Geometric mean; requires all values > 0.
double geomean(std::span<const double> x);

// Weighted mean; weights non-negative, positive total.
double weighted_mean(std::span<const double> x, std::span<const double> w);

// Effective sample size under weighting: (Σw)² / Σw² (Kish).
double effective_sample_size(std::span<const double> w);

// Weighted sample variance with reliability (frequency-normalized) weights:
// Σw(x-μ)² / (Σw - Σw²/Σw). Requires at least two positive weights.
double weighted_variance(std::span<const double> x,
                         std::span<const double> w);

// Weighted quantile: smallest x whose cumulative normalized weight
// reaches q. Equal weights reproduce the empirical CDF inverse.
double weighted_quantile(std::span<const double> x,
                         std::span<const double> w, double q);
double weighted_median(std::span<const double> x, std::span<const double> w);

// Quantile with linear interpolation (type-7, the R/numpy default).
// q in [0,1]. Sorts a copy; for repeated use sort once and call _sorted.
double quantile(std::span<const double> x, double q);
double quantile_sorted(std::span<const double> sorted_x, double q);
double median(std::span<const double> x);

// Adjusted Fisher–Pearson skewness; requires n >= 3 and nonzero variance.
double skewness(std::span<const double> x);

// Pearson product-moment correlation; requires n >= 2, nonzero variances.
double pearson(std::span<const double> x, std::span<const double> y);

// Spearman rank correlation (average ranks for ties).
double spearman(std::span<const double> x, std::span<const double> y);

// Midranks (1-based, ties averaged) — shared by Spearman and Mann–Whitney.
std::vector<double> ranks(std::span<const double> x);

// One-pass summary used by report tables.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample stddev; 0 when n < 2
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
};

Summary summarize(std::span<const double> x);

}  // namespace rcr::stats
