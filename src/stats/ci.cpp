#include "stats/ci.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "stats/special.hpp"
#include "util/error.hpp"

namespace rcr::stats {

namespace {
double z_critical(double confidence) {
  RCR_CHECK_MSG(confidence > 0.0 && confidence < 1.0,
                "confidence must lie in (0,1)");
  return normal_quantile(0.5 + 0.5 * confidence);
}

void validate_binomial(double successes, double n) {
  RCR_CHECK_MSG(n > 0.0, "proportion CI needs n > 0");
  RCR_CHECK_MSG(successes >= 0.0 && successes <= n,
                "successes out of [0, n]");
}
}  // namespace

Interval wilson_ci(double successes, double n, double confidence) {
  validate_binomial(successes, n);
  const double z = z_critical(confidence);
  const double p = successes / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {p, std::max(0.0, center - half), std::min(1.0, center + half)};
}

Interval agresti_coull_ci(double successes, double n, double confidence) {
  validate_binomial(successes, n);
  const double z = z_critical(confidence);
  const double z2 = z * z;
  const double n_tilde = n + z2;
  const double p_tilde = (successes + z2 / 2.0) / n_tilde;
  const double half = z * std::sqrt(p_tilde * (1.0 - p_tilde) / n_tilde);
  return {successes / n, std::max(0.0, p_tilde - half),
          std::min(1.0, p_tilde + half)};
}

Interval wald_ci(double successes, double n, double confidence) {
  validate_binomial(successes, n);
  const double z = z_critical(confidence);
  const double p = successes / n;
  const double half = z * std::sqrt(p * (1.0 - p) / n);
  return {p, std::max(0.0, p - half), std::min(1.0, p + half)};
}

Interval mean_ci(std::span<const double> x, double confidence) {
  RCR_CHECK_MSG(x.size() >= 2, "mean CI needs n >= 2");
  const double m = mean(x);
  const double se = stddev(x) / std::sqrt(static_cast<double>(x.size()));
  const double z = z_critical(confidence);
  return {m, m - z * se, m + z * se};
}

Interval weighted_proportion_ci(double weighted_successes,
                                double weighted_total, double effective_n,
                                double confidence) {
  RCR_CHECK_MSG(weighted_total > 0.0, "weighted CI needs positive total");
  RCR_CHECK_MSG(effective_n > 0.0, "weighted CI needs positive effective n");
  const double p = weighted_successes / weighted_total;
  RCR_CHECK_MSG(p >= 0.0 && p <= 1.0, "weighted proportion out of [0,1]");
  // Wilson on the effective sample size; standard design-effect treatment.
  return wilson_ci(p * effective_n, effective_n, confidence);
}

}  // namespace rcr::stats
