#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace rcr::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  RCR_CHECK_MSG(bins > 0, "histogram needs at least one bin");
  RCR_CHECK_MSG(hi > lo, "histogram range must be non-empty");
}

void Histogram::add(double value, double weight) {
  RCR_CHECK_MSG(weight >= 0.0, "histogram weight must be non-negative");
  std::size_t bin;
  if (value < lo_) {
    bin = 0;
  } else if (value >= hi_) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((value - lo_) / width_);
    bin = std::min(bin, counts_.size() - 1);  // guard fp edge at hi
  }
  counts_[bin] += weight;
  total_ += weight;
}

void Histogram::add_all(std::span<const double> values) {
  for (double v : values) add(v);
}

double Histogram::bin_lo(std::size_t i) const {
  RCR_DCHECK(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::fraction(std::size_t i) const {
  RCR_DCHECK(i < counts_.size());
  return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

Log2Histogram::Log2Histogram(int min_exp, int max_exp)
    : min_exp_(min_exp), max_exp_(max_exp),
      counts_(static_cast<std::size_t>(max_exp - min_exp), 0.0) {
  RCR_CHECK_MSG(max_exp > min_exp, "log2 histogram range must be non-empty");
}

void Log2Histogram::add(double value, double weight) {
  RCR_CHECK_MSG(value > 0.0, "log2 histogram needs positive values");
  RCR_CHECK_MSG(weight >= 0.0, "histogram weight must be non-negative");
  const double e = std::log2(value);
  int bin = static_cast<int>(std::floor(e)) - min_exp_;
  bin = std::clamp(bin, 0, static_cast<int>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

double Log2Histogram::fraction(std::size_t i) const {
  RCR_DCHECK(i < counts_.size());
  return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

std::string Log2Histogram::bin_label(std::size_t i) const {
  return "[2^" + std::to_string(bin_exp(i)) + ", 2^" +
         std::to_string(bin_exp(i) + 1) + ")";
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> values,
                                    std::span<const double> weights) {
  RCR_CHECK_MSG(!values.empty(), "empirical_cdf of empty data");
  const bool weighted = !weights.empty();
  if (weighted)
    RCR_CHECK_MSG(weights.size() == values.size(), "cdf weight size mismatch");

  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });

  double total = 0.0;
  if (weighted) {
    for (double w : weights) {
      RCR_CHECK_MSG(w >= 0.0, "cdf weights must be non-negative");
      total += w;
    }
    RCR_CHECK_MSG(total > 0.0, "cdf weights must not all be zero");
  } else {
    total = static_cast<double>(values.size());
  }

  std::vector<CdfPoint> out;
  double cum = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    const double v = values[order[i]];
    double mass = 0.0;
    while (i < order.size() && values[order[i]] == v) {
      mass += weighted ? weights[order[i]] : 1.0;
      ++i;
    }
    cum += mass;
    out.push_back({v, cum / total});
  }
  return out;
}

}  // namespace rcr::stats
