// Special functions underpinning the statistical tests.
//
// Implemented from scratch (Lanczos/continued fractions) so p-values are
// identical across platforms and no external math library is needed beyond
// <cmath>. Accuracy targets ~1e-10 relative, far tighter than any survey
// analysis requires; unit tests pin values against published tables.
#pragma once

namespace rcr::stats {

// log Γ(x) for x > 0 (Lanczos approximation, g=7, n=9).
double log_gamma(double x);

// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a), a > 0, x >= 0.
double gamma_p(double a, double x);

// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

// Regularized incomplete beta I_x(a, b), a,b > 0, x in [0,1].
double beta_inc(double a, double b, double x);

// Standard normal CDF and survival function.
double normal_cdf(double z);
double normal_sf(double z);

// Inverse standard normal CDF (Acklam's rational approximation, refined by
// one Halley step); |p| in (0,1).
double normal_quantile(double p);

// Survival function of the chi-squared distribution with k d.o.f.
double chi2_sf(double x, double k);

// Survival function of Student's t with nu d.o.f. (one-sided, t >= any).
double student_t_sf(double t, double nu);

// log(n choose k) via log_gamma; exact enough for Fisher's exact test.
double log_choose(double n, double k);

}  // namespace rcr::stats
