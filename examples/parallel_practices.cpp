// What does parallelization buy a researcher? Runs the real kernel suite,
// calibrates the machine model from the measured serial time, and projects
// strong scaling with both the analytic model and the discrete-event
// simulator — the F5 experiment as a walkthrough.
//
//   ./build/examples/parallel_practices [--scale 1] [--max-cores 256]
#include <cmath>
#include <iostream>

#include "core/rcr.hpp"

int main(int argc, char** argv) {
  rcr::CliParser cli(argc, argv);
  const auto scale = static_cast<std::size_t>(cli.get_int_or("scale", 1));
  const auto max_cores =
      static_cast<std::size_t>(cli.get_int_or("max-cores", 256));
  cli.finish();

  rcr::parallel::ThreadPool pool;
  std::cout << "host pool: " << pool.thread_count() << " thread(s)\n\n";

  for (const auto& k : rcr::kernels::standard_suite(scale)) {
    rcr::Stopwatch sw;
    const double checksum = k.run_serial();
    const double serial_s = std::max(1e-6, sw.elapsed_seconds());
    sw.reset();
    const double parallel_checksum = k.run_parallel(pool);
    const double parallel_s = std::max(1e-6, sw.elapsed_seconds());

    rcr::sim::MachineModel machine;
    machine.core_gflops = k.work_ops / serial_s / 1e9;
    rcr::sim::WorkloadModel work;
    work.work_ops = k.work_ops;
    work.serial_fraction = k.serial_fraction;
    work.bytes_per_flop = k.bytes_per_flop;

    std::cout << "== " << k.name << " ==\n"
              << "  measured serial:  " << rcr::format_double(serial_s * 1e3, 2)
              << " ms (checksum " << rcr::format_double(checksum, 4) << ")\n"
              << "  measured on pool: "
              << rcr::format_double(parallel_s * 1e3, 2)
              << " ms (checksum diff "
              << rcr::format_double(std::fabs(checksum - parallel_checksum), 9)
              << ")\n"
              << "  calibrated throughput: "
              << rcr::format_double(machine.core_gflops, 2) << " Gop/s/core\n";

    rcr::report::TextTable table(
        {"Cores", "Projected speedup", "Amdahl ideal", "Efficiency"});
    for (std::size_t p = 1; p <= max_cores; p *= 4) {
      const double t1 = rcr::sim::predict_time(machine, work, 1);
      const double tp = rcr::sim::predict_time(machine, work, p);
      table.add_row(
          {std::to_string(p), rcr::format_double(t1 / tp, 1),
           rcr::format_double(rcr::sim::amdahl_speedup(k.serial_fraction, p),
                              1),
           rcr::format_percent(t1 / tp / static_cast<double>(p), 0)});
    }
    std::cout << table.render() << "\n";
  }

  std::cout << "Memory-bound kernels (spmv, stencil) flatten early at the\n"
               "bandwidth ceiling; compute-bound ones (nbody, matmul,\n"
               "monte-carlo) track Amdahl — why \"just use more cores\" pays\n"
               "off so unevenly across research codes.\n";
  return 0;
}
