// Quickstart: generate a synthetic survey wave and run one crosstab.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--n 400] [--seed 7]
#include <iostream>

#include "core/rcr.hpp"

int main(int argc, char** argv) {
  rcr::CliParser cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int_or("n", 400));
  const auto seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 7));
  cli.finish();

  // 1. Generate one 2024 wave of synthetic respondents.
  const rcr::data::Table wave =
      rcr::synth::generate_wave({rcr::synth::Wave::k2024, n, seed, nullptr});
  std::cout << "generated " << wave.row_count() << " respondents, "
            << wave.column_count() << " questions\n\n";

  // 2. Validate it against the questionnaire (always clean for synthetic
  //    data; essential when ingesting a real CSV).
  const auto issues =
      rcr::survey::validate_responses(rcr::synth::instrument(), wave);
  std::cout << "validation issues: " << issues.size() << "\n\n";

  // 3. Crosstab: language usage by research field.
  const auto ct = rcr::data::crosstab_multiselect(
      wave, rcr::synth::col::kField, rcr::synth::col::kLanguages);
  rcr::report::TextTable table({"Field", "Python", "C++", "MATLAB", "R"});
  const auto col_of = [&](const char* label) {
    for (std::size_t c = 0; c < ct.col_labels.size(); ++c)
      if (ct.col_labels[c] == label) return c;
    throw rcr::Error("missing language column");
  };
  for (std::size_t f = 0; f < ct.row_labels.size(); ++f) {
    const double total = ct.counts.row_total(f);
    if (total == 0.0) continue;
    table.add_row({ct.row_labels[f],
                   rcr::format_percent(ct.row_share(f, col_of("Python")), 0),
                   rcr::format_percent(ct.row_share(f, col_of("C++")), 0),
                   rcr::format_percent(ct.row_share(f, col_of("MATLAB")), 0),
                   rcr::format_percent(ct.row_share(f, col_of("R")), 0)});
  }
  std::cout << "language mix by field (share of per-field selections):\n"
            << table.render();

  // 4. One overall share with a proper confidence interval.
  const auto shares =
      rcr::data::option_shares(wave, rcr::synth::col::kLanguages);
  for (const auto& s : shares) {
    if (s.label != "Python") continue;
    std::cout << "\nPython usage: "
              << rcr::report::share_cell(s.share.estimate, s.share.lo,
                                         s.share.hi)
              << " of " << s.total << " respondents\n";
  }
  return 0;
}
