// Full two-wave trend study for programming languages: shares with CIs,
// Holm-corrected significance, and a fitted logistic adoption curve.
//
//   ./build/examples/language_trends [--n2011 120] [--n2024 650] [--seed 7]
#include <iostream>

#include "core/rcr.hpp"

int main(int argc, char** argv) {
  rcr::CliParser cli(argc, argv);
  rcr::core::StudyConfig config;
  config.n_2011 = static_cast<std::size_t>(cli.get_int_or("n2011", 120));
  config.n_2024 = static_cast<std::size_t>(cli.get_int_or("n2024", 650));
  config.seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 7));
  cli.finish();

  const rcr::core::Study study(config);

  // Battery of share trends across all languages, Holm-adjusted.
  const auto battery =
      rcr::trend::option_battery(study.wave2011(), study.wave2024(),
                                 rcr::synth::col::kLanguages);
  rcr::report::TextTable table(
      {"Language", "2011", "2024", "Δ (pp)", "p (Holm)", "Trend"});
  for (const auto& t : battery) {
    table.add_row(
        {t.indicator, rcr::format_percent(t.share1.estimate, 1),
         rcr::format_percent(t.share2.estimate, 1),
         rcr::format_double(100.0 * (t.share2.estimate - t.share1.estimate),
                            1),
         rcr::report::p_cell(t.p_adjusted),
         rcr::trend::direction_label(t.direction)});
  }
  std::cout << "Language usage, 2011 vs 2024 (n=" << config.n_2011 << "/"
            << config.n_2024 << ")\n"
            << table.render() << "\n";

  // Did the full primary-language distribution shift?
  const auto shift = rcr::trend::distribution_shift_test(
      study.wave2011(), study.wave2024(),
      rcr::synth::col::kPrimaryLanguage);
  std::cout << "primary-language mix shift: chi2="
            << rcr::format_double(shift.statistic, 1)
            << ", p=" << rcr::report::p_cell(shift.p_value)
            << ", Cramer's V=" << rcr::format_double(shift.cramers_v, 2)
            << "\n\n";

  // Logistic adoption curve for Python.
  const auto curve = rcr::trend::fit_adoption_curve(
      study.wave2011(), 2011, study.wave2024(), 2024,
      rcr::synth::col::kLanguages, "Python");
  std::cout << "Python adoption curve: P(year) = sigmoid("
            << rcr::format_double(curve.intercept, 2) << " + "
            << rcr::format_double(curve.slope_per_year, 3)
            << " * (year - 2011))\n";
  for (int year = 2011; year <= 2027; year += 4) {
    std::cout << "  " << year << ": "
              << rcr::format_percent(curve.predict(year), 1) << "\n";
  }
  return 0;
}
