// Serve quickstart: stand up the analytics server on a synthetic wave,
// query it over TCP, and watch the cache/coalescing layers work.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/serve_quickstart [--n 5000] [--seed 7]
#include <iostream>

#include "core/rcr.hpp"

namespace serve = rcr::serve;

namespace {

// One framed request/response round trip over a connected socket is what
// TcpServer speaks; LocalTransport::query wraps the same framing
// in-process. Both paths produce byte-identical responses.
serve::Response ask(serve::LocalTransport& client, std::uint64_t epoch,
                    const serve::QuerySpec& spec) {
  auto resp = client.query(epoch, spec);
  if (resp.type == serve::MsgType::kError)
    throw rcr::Error(serve::decode_error_body(resp.body));
  return resp;
}

}  // namespace

int main(int argc, char** argv) {
  rcr::CliParser cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int_or("n", 5000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 7));
  cli.finish();

  // 1. A server owns immutable snapshots by epoch. Epoch 2024 holds one
  //    synthetic wave; a pool makes the fused engine passes parallel
  //    (results are bitwise identical either way).
  rcr::parallel::ThreadPool pool(4);
  serve::ServerConfig config;
  config.pool = &pool;
  serve::Server server(config);
  server.register_snapshot(
      2024, rcr::synth::generate_wave({rcr::synth::Wave::k2024, n, seed,
                                       nullptr}));

  // 2. Real transport: epoll TCP on loopback, thread-per-core workers.
  //    (The queries below use the in-process transport so the example
  //    stays single-binary; tests pin that both produce identical bytes.)
  serve::TcpServer tcp(server, /*port=*/0, /*workers=*/2);
  tcp.start();
  std::cout << "serving on 127.0.0.1:" << tcp.port() << "\n";

  serve::LocalTransport client(server);

  // 3. First request misses, runs one fused engine pass, and fills the
  //    cache; the repeat is a cache hit answered from the stored bytes.
  serve::QuerySpec languages;
  languages.kind = serve::QueryKind::kCrosstabMultiselect;
  languages.a = rcr::synth::col::kField;
  languages.b = rcr::synth::col::kLanguages;

  const auto first = ask(client, 2024, languages);
  const auto again = ask(client, 2024, languages);
  std::cout << "fingerprint " << std::hex << first.fingerprint << std::dec
            << ", repeat identical: " << (first == again ? "yes" : "no")
            << "\n\n";

  // 4. Decode and render like any local crosstab.
  const auto view = serve::decode_result_body(first.body);
  const auto& ct = view.crosstab;
  rcr::report::TextTable table({"Field", "Python share"});
  for (std::size_t f = 0; f < ct.row_labels.size(); ++f) {
    for (std::size_t c = 0; c < ct.col_labels.size(); ++c) {
      if (ct.col_labels[c] != "Python" || ct.counts.row_total(f) == 0.0)
        continue;
      table.add_row({ct.row_labels[f],
                     rcr::format_percent(ct.row_share(f, c), 0)});
    }
  }
  std::cout << table.render() << "\n";

  // 5. The serving counters show the pipeline at work.
  auto& reg = rcr::obs::registry();
  std::cout << "requests=" << reg.counter("serve.requests").total()
            << " hits=" << reg.counter("serve.hits").total()
            << " misses=" << reg.counter("serve.misses").total()
            << " batches=" << reg.counter("serve.batches").total()
            << " admit_limit=" << server.admit_limit() << "\n";

  tcp.stop();
  return 0;
}
