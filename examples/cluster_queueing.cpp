// Batch-cluster queueing walkthrough: generate a job trace, run it under
// FCFS and EASY backfill, and sweep the offered load — the F6 experiment
// with adjustable knobs.
//
//   ./build/examples/cluster_queueing [--cores 512] [--jobs 1500]
//                                     [--rate 40] [--seed 99]
#include <iostream>

#include "core/rcr.hpp"

int main(int argc, char** argv) {
  rcr::CliParser cli(argc, argv);
  const auto cores = static_cast<std::size_t>(cli.get_int_or("cores", 512));
  const auto jobs_n = static_cast<std::size_t>(cli.get_int_or("jobs", 1500));
  const double rate = cli.get_double_or("rate", 40.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 99));
  cli.finish();

  rcr::sim::JobStreamConfig cfg;
  cfg.jobs = jobs_n;
  cfg.arrival_rate_per_hour = rate;
  cfg.seed = seed;

  std::cout << "cluster: " << cores << " cores, " << jobs_n
            << " jobs at " << rate << " arrivals/hour\n\n";

  rcr::report::TextTable table({"Policy", "Utilization", "Mean wait (min)",
                                "Median (min)", "P95 (min)",
                                "Bounded slowdown"});
  for (const auto policy : {rcr::sim::SchedulerPolicy::kFcfs,
                            rcr::sim::SchedulerPolicy::kEasyBackfill}) {
    auto jobs = rcr::sim::generate_job_stream(cfg);  // same trace per policy
    const auto m = rcr::sim::simulate_cluster(jobs, cores, policy);
    table.add_row({rcr::sim::scheduler_label(policy),
                   rcr::format_percent(m.utilization, 1),
                   rcr::format_double(m.mean_wait / 60.0, 1),
                   rcr::format_double(m.median_wait / 60.0, 1),
                   rcr::format_double(m.p95_wait / 60.0, 1),
                   rcr::format_double(m.mean_bounded_slowdown, 2)});
  }
  std::cout << table.render() << "\n";

  // Sweep the load to find the knee.
  std::cout << "mean wait (min) vs offered load:\n";
  std::vector<rcr::report::Bar> bars;
  for (double load = 10.0; load <= 70.0; load += 10.0) {
    auto sweep_cfg = cfg;
    sweep_cfg.arrival_rate_per_hour = load;
    sweep_cfg.jobs = 1000;
    auto jobs = rcr::sim::generate_job_stream(sweep_cfg);
    const auto m = rcr::sim::simulate_cluster(
        jobs, cores, rcr::sim::SchedulerPolicy::kEasyBackfill);
    bars.push_back({rcr::format_double(load, 0) + "/h (util " +
                        rcr::format_percent(m.utilization, 0) + ")",
                    m.mean_wait / 60.0});
  }
  std::cout << rcr::report::render_bars(bars);
  return 0;
}
