// Using the toolkit on YOUR survey: define a questionnaire, ingest CSV
// responses, validate, weight against known population margins, and report
// shares with honest intervals. This is the path a real deployment of the
// study takes once actual responses exist.
//
//   ./build/examples/custom_survey [--csv path/to/responses.csv]
#include <iostream>
#include <sstream>

#include "core/rcr.hpp"

namespace {

// A small lab-practices questionnaire.
rcr::survey::Questionnaire make_questionnaire() {
  using rcr::survey::Question;
  return rcr::survey::Questionnaire(
      "lab-practices",
      {Question::single_choice("role", "Role",
                               {"student", "postdoc", "faculty"},
                               /*required=*/true),
       Question::multi_select("ci_tools", "CI tools used",
                              {"github-actions", "gitlab-ci", "jenkins"}),
       Question::likert("satisfaction", "Tooling satisfaction", 5),
       Question::numeric("build_minutes", "Typical CI build minutes")});
}

// Inline demo responses, used when --csv is not given.
constexpr const char* kDemoCsv =
    "role,ci_tools,satisfaction,build_minutes\n"
    "student,github-actions,4,12\n"
    "student,github-actions|gitlab-ci,3,25\n"
    "student,,2,\n"
    "student,github-actions,5,8\n"
    "student,jenkins,2,55\n"
    "student,github-actions,4,10\n"
    "postdoc,gitlab-ci,3,30\n"
    "postdoc,github-actions,4,15\n"
    "postdoc,,3,20\n"
    "faculty,jenkins,1,90\n"
    "faculty,github-actions,4,11\n"
    "faculty,,3,\n";

}  // namespace

int main(int argc, char** argv) {
  rcr::CliParser cli(argc, argv);
  const auto csv_path = cli.get("csv");
  cli.finish();

  const auto questionnaire = make_questionnaire();
  const auto schema = questionnaire.make_table();

  rcr::data::Table responses = [&] {
    if (csv_path) return rcr::data::read_csv_file(*csv_path, schema);
    std::istringstream demo(kDemoCsv);
    return rcr::data::read_csv(demo, schema);
  }();
  std::cout << "loaded " << responses.row_count() << " responses\n";

  // Validate before analyzing anything.
  const auto issues = rcr::survey::validate_responses(questionnaire, responses);
  for (const auto& issue : issues)
    std::cout << "  validation: row " << issue.row << " " << issue.question_id
              << ": " << issue.message << "\n";
  if (!issues.empty()) {
    std::cout << "fix the responses before analysis\n";
    return 1;
  }

  // Weight: suppose the department is actually 50/25/25 across roles but
  // students over-answered.
  const auto raking = rcr::survey::rake_weights(
      responses, {{"role",
                   {{"student", 0.5}, {"postdoc", 0.25}, {"faculty", 0.25}}}});
  std::cout << "raking converged=" << raking.converged
            << " design effect=" << rcr::format_double(raking.design_effect, 2)
            << " effective n=" << rcr::format_double(raking.effective_n, 1)
            << "\n\n";

  // CI-tool shares, unweighted vs weighted.
  rcr::report::TextTable table({"CI tool", "Unweighted", "Weighted"});
  const auto& tools = responses.multiselect("ci_tools");
  for (std::size_t o = 0; o < tools.option_count(); ++o) {
    double num = 0, den = 0, wnum = 0, wden = 0;
    for (std::size_t i = 0; i < tools.size(); ++i) {
      if (tools.is_missing(i)) continue;
      den += 1.0;
      wden += raking.weights[i];
      if (tools.has(i, o)) {
        num += 1.0;
        wnum += raking.weights[i];
      }
    }
    table.add_row({tools.option(o), rcr::format_percent(num / den, 0),
                   rcr::format_percent(wnum / wden, 0)});
  }
  std::cout << table.render() << "\n";

  // Likert summary with top-box CI.
  const auto s = rcr::survey::summarize_likert(responses, "satisfaction", 5);
  std::cout << "satisfaction: mean " << rcr::format_double(s.mean, 2)
            << ", top-box "
            << rcr::report::share_cell(s.top_box.estimate, s.top_box.lo,
                                       s.top_box.hi)
            << "\n";

  // Numeric summary.
  const auto mins =
      responses.numeric("build_minutes").present_values();
  const auto summary = rcr::stats::summarize(mins);
  std::cout << "build minutes: median " << summary.median << ", p75 "
            << summary.p75 << ", max " << summary.max << "\n";
  return 0;
}
