// Planning the next wave: power analysis, minimum detectable effects at
// the current design, stratified allocation of the recruitment budget, and
// the questionnaire codebook — the before-fielding workflow.
//
//   ./build/examples/survey_planning [--budget 800] [--baseline 0.3]
#include <cmath>
#include <iostream>

#include "core/rcr.hpp"
#include "survey/allocate.hpp"
#include "stats/power.hpp"

int main(int argc, char** argv) {
  rcr::CliParser cli(argc, argv);
  const auto budget = static_cast<std::size_t>(cli.get_int_or("budget", 800));
  const double baseline = cli.get_double_or("baseline", 0.3);
  cli.finish();

  // 1. What can the historical design (120 vs 650) detect at all?
  std::cout << "Minimum detectable shift (80% power, alpha 0.05) from a "
            << rcr::format_percent(baseline, 0) << " baseline:\n";
  rcr::report::TextTable mdd({"Design", "n2011", "n2024", "MDD (pp)"});
  for (const auto& [n1, n2] :
       std::vector<std::pair<double, double>>{
           {120, 650}, {120, 2000}, {500, 2000}}) {
    mdd.add_row({rcr::format_double(n1, 0) + " vs " +
                     rcr::format_double(n2, 0),
                 rcr::format_double(n1, 0), rcr::format_double(n2, 0),
                 rcr::format_double(
                     100.0 * rcr::stats::minimum_detectable_difference(
                                 baseline, n1, n2),
                     1)});
  }
  std::cout << mdd.render() << "\n";

  // 2. Per-group n needed to pin down specific shifts.
  std::cout << "Per-wave n needed (balanced waves, 80% power):\n";
  rcr::report::TextTable need({"Shift to detect", "n per wave"});
  for (const auto& [p1, p2] : std::vector<std::pair<double, double>>{
           {0.30, 0.40}, {0.30, 0.35}, {0.05, 0.10}, {0.45, 0.55}}) {
    need.add_row(
        {rcr::format_percent(p1, 0) + " -> " + rcr::format_percent(p2, 0),
         std::to_string(rcr::stats::two_proportion_sample_size(p1, p2))});
  }
  std::cout << need.render() << "\n";

  // 3. Split the recruitment budget across fields. Population sizes come
  //    from the calibrated field mix; within-field variability of the key
  //    outcome (GPU use) is estimated from a synthetic pilot.
  const auto pilot = rcr::synth::generate_2024(2000, 99);
  const auto& fields = rcr::synth::fields();
  const auto groups = pilot.group_rows(rcr::synth::col::kField);
  const auto& res =
      pilot.multiselect(rcr::synth::col::kParallelResources);
  const auto gpu =
      static_cast<std::size_t>(res.find_option("GPU"));
  std::vector<double> sizes, sds;
  for (std::size_t f = 0; f < fields.size(); ++f) {
    sizes.push_back(
        rcr::synth::params_for(rcr::synth::Wave::k2024).field_mix[f]);
    double hit = 0.0, n = 0.0;
    for (std::size_t row : groups[f]) {
      if (res.is_missing(row)) continue;
      n += 1.0;
      if (res.has(row, gpu)) hit += 1.0;
    }
    const double p = n > 0.0 ? hit / n : 0.5;
    sds.push_back(std::sqrt(p * (1.0 - p)));  // binomial stddev
  }
  const auto proportional =
      rcr::survey::proportional_allocation(sizes, budget);
  const auto neyman = rcr::survey::neyman_allocation(sizes, sds, budget);
  std::cout << "Allocating " << budget << " respondents across fields:\n";
  rcr::report::TextTable alloc(
      {"Field", "Pop. share", "Pilot GPU sd", "Proportional", "Neyman"});
  for (std::size_t f = 0; f < fields.size(); ++f) {
    alloc.add_row({fields[f], rcr::format_percent(sizes[f], 0),
                   rcr::format_double(sds[f], 2),
                   std::to_string(proportional[f]),
                   std::to_string(neyman[f])});
  }
  std::cout << alloc.render() << "\n";

  // 4. The instrument that would be fielded.
  std::cout << "--- codebook (first lines) ---\n";
  const std::string codebook =
      rcr::survey::render_codebook(rcr::synth::instrument());
  std::cout << codebook.substr(0, codebook.find("\n## `languages`"))
            << "\n[... " << rcr::synth::instrument().size()
            << " questions total — see render_codebook() ...]\n";
  return 0;
}
