// Microbenchmark of the RFC-4180 CSV ingest rewrite. Three readers on the
// same survey-shaped input:
//   * legacy.line_reader — a faithful reimplementation of the pre-rewrite
//     parser (std::getline records, per-line field vector, every cell
//     trimmed, each cell's column resolved by name), kept here as the
//     baseline the same way query/reference.cpp keeps the pre-engine
//     builders;
//   * serial.read_csv — the incremental state machine;
//   * parallel.read_csv_parallel — the sharded reader (pooled, plus the
//     pool-free walk of the same shard partition).
// Emits a JSON report (stdout, or --out FILE); BENCH_csv.json keeps the
// checked-in baseline.
//
// Verification is part of the run, not a separate test: write -> read ->
// write must be the byte identity for every reader on the legacy-safe
// input, parallel output must match serial byte-for-byte, and on input
// with quoted embedded newlines the state machine must round-trip where
// the line reader structurally cannot (that failure is the bug this
// rewrite fixes, recorded as "legacy_handles_quoted_newlines"). Exit
// status 2 when any check fails.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "data/csv.hpp"
#include "simd/dispatch.hpp"
#include "data/table.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace {

// --- The pre-rewrite reader, verbatim semantics ------------------------------

[[noreturn]] void legacy_fail(std::size_t line, const std::string& msg) {
  throw rcr::InvalidInputError("CSV line " + std::to_string(line) + ": " +
                               msg);
}

std::vector<std::string> legacy_split_record(const std::string& record,
                                             char delimiter,
                                             std::size_t line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < record.size(); ++i) {
    const char ch = record[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < record.size() && record[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += ch;
      }
    } else if (ch == '"') {
      if (!current.empty()) legacy_fail(line, "quote inside unquoted field");
      in_quotes = true;
    } else if (ch == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += ch;
    }
  }
  if (in_quotes) legacy_fail(line, "unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

void legacy_append_cell(rcr::data::Table& out, const std::string& name,
                        const std::string& cell, std::size_t line_no) {
  using rcr::data::ColumnKind;
  switch (out.kind(name)) {
    case ColumnKind::kNumeric: {
      if (cell.empty()) {
        out.numeric(name).push_missing();
      } else {
        const auto v = rcr::parse_double(cell);
        if (!v) legacy_fail(line_no, "not a number: '" + cell + "'");
        out.numeric(name).push(*v);
      }
      break;
    }
    case ColumnKind::kCategorical: {
      auto& col = out.categorical(name);
      if (cell.empty()) {
        col.push_missing();
      } else {
        if (col.frozen() && col.find_code(cell) == rcr::data::kMissingCode)
          legacy_fail(line_no, "unknown category '" + cell + "'");
        col.push(cell);
      }
      break;
    }
    case ColumnKind::kMultiSelect: {
      auto& col = out.multiselect(name);
      if (cell.empty()) {
        col.push_missing();
        break;
      }
      if (cell == "-") {
        col.push_mask(0);
        break;
      }
      std::vector<std::string> labels;
      for (auto& part : rcr::split(cell, '|')) {
        const std::string label{rcr::trim(part)};
        if (label.empty()) continue;
        if (col.find_option(label) < 0)
          legacy_fail(line_no, "unknown option '" + label + "'");
        labels.push_back(label);
      }
      col.push_labels(labels);
      break;
    }
  }
}

rcr::data::Table legacy_read_csv(const std::string& text,
                                 const rcr::data::Table& schema) {
  std::istringstream in(text);
  std::size_t line_no = 0;
  std::string line;
  if (!std::getline(in, line))
    throw rcr::InvalidInputError("CSV input is empty (no header row)");
  ++line_no;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  auto header = legacy_split_record(line, ',', line_no);
  for (auto& name : header) name = std::string(rcr::trim(name));

  rcr::data::Table out = schema.clone_empty();
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (rcr::trim(line).empty()) continue;
    const auto fields = legacy_split_record(line, ',', line_no);
    if (fields.size() != header.size())
      legacy_fail(line_no, "expected " + std::to_string(header.size()) +
                               " fields, got " +
                               std::to_string(fields.size()));
    for (std::size_t f = 0; f < fields.size(); ++f)
      legacy_append_cell(out, header[f], std::string(rcr::trim(fields[f])),
                         line_no);
  }
  out.validate_rectangular();
  return out;
}

// --- Bench input -------------------------------------------------------------

// Survey-shaped rows with quote-heavy labels the legacy reader still
// handles (commas and embedded quotes — no newlines or padding, which are
// exactly what it cannot parse back; those go in the bug-demo check).
rcr::data::Table make_table(std::size_t rows, std::uint64_t seed) {
  const std::vector<std::string> fields = {
      "Physics", "Biology", "CS, theory", "CS, systems", "Astronomy",
      "Earth science"};
  const std::vector<std::string> notes = {
      "plain answer", "uses \"air quotes\"", "comma, separated",
      "\"quoted\", with comma", "simple", "-"};
  const std::vector<std::string> langs = {"Python", "C++", "R",
                                          "Fortran", "Julia", "MATLAB"};

  rcr::data::Table t;
  auto& field = t.add_categorical("field", fields);
  auto& note = t.add_categorical("note", notes);
  auto& lang_col = t.add_multiselect("langs", langs);
  auto& score = t.add_numeric("score");

  rcr::Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    if (rng.next_double() < 0.05)
      field.push_missing();
    else
      field.push_code(static_cast<std::int32_t>(rng.next_below(6)));
    if (rng.next_double() < 0.08)
      note.push_missing();
    else
      note.push_code(static_cast<std::int32_t>(rng.next_below(6)));
    if (rng.next_double() < 0.10)
      lang_col.push_missing();
    else
      lang_col.push_mask(rng.next_u64() & rng.next_u64() & 0x3FULL);
    if (rng.next_double() < 0.07)
      score.push_missing();
    else
      score.push(rng.normal() * 12.0 + 40.0);
  }
  return t;
}

double best_of(int runs, const auto& pass) {
  double best = 1e300;
  for (int r = 0; r < runs; ++r) {
    rcr::Stopwatch sw;
    pass();
    best = std::min(best, sw.elapsed_seconds());
  }
  return best;
}

std::string to_csv(const rcr::data::Table& t) {
  std::ostringstream out;
  rcr::data::write_csv(out, t);
  return out.str();
}

// The write->read round-trip bug class: quoted embedded newlines (and
// padded labels) that write_csv legitimately emits. The state machine must
// reproduce the bytes; the legacy line reader must fail or mutate them.
bool state_machine_round_trips_gnarly(bool& legacy_survives) {
  rcr::data::Table t;
  auto& note =
      t.add_categorical("note", {"line one\nline two", " padded ", "plain"});
  auto& v = t.add_numeric("v");
  for (int i = 0; i < 64; ++i) {
    note.push_code(i % 3);
    v.push(0.5 * i);
  }
  const std::string text = to_csv(t);
  std::istringstream in(text);
  const bool ok = to_csv(rcr::data::read_csv(in, t)) == text;
  try {
    legacy_survives = to_csv(legacy_read_csv(text, t)) == text;
  } catch (const rcr::Error&) {
    legacy_survives = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t rows = 400000;
  std::size_t threads = 8;
  std::uint64_t seed = 23;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc)
      rows = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }
  const std::string simd = rcr::simd::describe();
  std::fprintf(stderr,
               "bench_micro_csv: seed=%llu threads=%zu rows=%zu simd=%s\n",
               static_cast<unsigned long long>(seed), threads, rows,
               simd.c_str());

  const rcr::data::Table t = make_table(rows, seed);
  const std::string text = to_csv(t);
  const double mib = static_cast<double>(text.size()) / (1024.0 * 1024.0);

  rcr::parallel::ThreadPool pool(threads == 0 ? 1 : threads);
  rcr::parallel::ThreadPool* pool_ptr = threads == 0 ? nullptr : &pool;

  rcr::data::Table legacy_t, serial_t, parallel_t, walk_t;
  const double legacy_s =
      best_of(3, [&] { legacy_t = legacy_read_csv(text, t); });
  const double serial_s = best_of(3, [&] {
    std::istringstream in(text);
    serial_t = rcr::data::read_csv(in, t);
  });
  const double parallel_s = best_of(3, [&] {
    std::istringstream in(text);
    parallel_t = rcr::data::read_csv_parallel(in, t, pool_ptr);
  });
  const double walk_s = best_of(3, [&] {
    std::istringstream in(text);
    walk_t = rcr::data::read_csv_parallel(in, t, nullptr);
  });

  // Small-input serial fallback: a sub-crossover slice through the parallel
  // entry point (which now parses it serially) vs the same bytes with
  // sharding pinned on — the regression the fallback removes.
  const std::size_t small_rows =
      std::max<std::size_t>(1, rows / 16);
  const rcr::data::Table small_t = make_table(small_rows, seed + 1);
  const std::string small_text = to_csv(small_t);
  const double small_mib =
      static_cast<double>(small_text.size()) / (1024.0 * 1024.0);
  rcr::data::Table small_fallback_t, small_forced_t;
  const double small_fallback_s = best_of(3, [&] {
    std::istringstream in(small_text);
    small_fallback_t = rcr::data::read_csv_parallel(in, small_t, pool_ptr);
  });
  rcr::data::CsvOptions forced;
  forced.parallel_shard_bytes = 64 * 1024;  // pin sharding on
  const double small_forced_s = best_of(3, [&] {
    std::istringstream in(small_text);
    small_forced_t =
        rcr::data::read_csv_parallel(in, small_t, pool_ptr, forced);
  });
  const bool fallback_identical =
      to_csv(small_fallback_t) == small_text &&
      to_csv(small_forced_t) == small_text;

  const std::string serial_bytes = to_csv(serial_t);
  const bool round_trip_verified = serial_bytes == text;
  const bool parallel_identical =
      to_csv(parallel_t) == serial_bytes && to_csv(walk_t) == serial_bytes;
  const bool legacy_agrees = to_csv(legacy_t) == serial_bytes;
  bool legacy_survives_gnarly = true;
  const bool gnarly_round_trip =
      state_machine_round_trips_gnarly(legacy_survives_gnarly);

  const bool verified = round_trip_verified && parallel_identical &&
                        legacy_agrees && gnarly_round_trip &&
                        !legacy_survives_gnarly && fallback_identical;

  char buf[512];
  std::string json = "{\n  \"benchmark\": \"micro_csv\",\n";
  std::snprintf(buf, sizeof buf,
                "  \"simd\": \"%s\",\n"
                "  \"rows\": %zu,\n  \"bytes\": %zu,\n  \"threads\": %zu,\n"
                "  \"results\": [\n",
                simd.c_str(), rows, text.size(), threads);
  json += buf;
  const struct {
    const char* name;
    double seconds;
  } lines[] = {
      {"legacy.line_reader", legacy_s},
      {"serial.read_csv", serial_s},
      {"parallel.read_csv_parallel", parallel_s},
      {"parallel.serial_walk", walk_s},
  };
  for (std::size_t i = 0; i < std::size(lines); ++i) {
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"ms\": %.2f, "
                  "\"mib_per_sec\": %.1f}%s\n",
                  lines[i].name, lines[i].seconds * 1e3,
                  mib / lines[i].seconds,
                  i + 1 < std::size(lines) ? "," : "");
    json += buf;
  }
  std::snprintf(buf, sizeof buf,
                "  ],\n  \"speedups\": {\n"
                "    \"statemachine_vs_legacy\": %.2f,\n"
                "    \"parallel_vs_legacy\": %.2f,\n"
                "    \"parallel_vs_serial\": %.2f\n  },\n",
                legacy_s / serial_s, legacy_s / parallel_s,
                serial_s / parallel_s);
  json += buf;
  std::snprintf(buf, sizeof buf,
                "  \"serial_fallback\": {\n"
                "    \"threshold_bytes\": %zu,\n"
                "    \"small_rows\": %zu,\n    \"small_bytes\": %zu,\n"
                "    \"fallback_ms\": %.2f,\n    \"forced_parallel_ms\": "
                "%.2f,\n",
                rcr::data::kParallelSerialFallbackBytes, small_rows,
                small_text.size(), small_fallback_s * 1e3,
                small_forced_s * 1e3);
  json += buf;
  std::snprintf(buf, sizeof buf,
                "    \"fallback_mib_per_sec\": %.1f,\n"
                "    \"forced_parallel_mib_per_sec\": %.1f,\n"
                "    \"fallback_vs_forced_parallel\": %.2f,\n"
                "    \"fallback_identical\": %s\n  },\n",
                small_mib / small_fallback_s, small_mib / small_forced_s,
                small_forced_s / small_fallback_s,
                fallback_identical ? "true" : "false");
  json += buf;
  std::snprintf(buf, sizeof buf,
                "  \"round_trip_verified\": %s,\n"
                "  \"parallel_identical\": %s,\n"
                "  \"gnarly_round_trip\": %s,\n"
                "  \"legacy_handles_quoted_newlines\": %s\n}\n",
                round_trip_verified ? "true" : "false",
                parallel_identical ? "true" : "false",
                gnarly_round_trip ? "true" : "false",
                legacy_survives_gnarly ? "true" : "false");
  json += buf;

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "micro_csv: cannot open %s\n", out_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  std::fputs(json.c_str(), stdout);
  return verified ? 0 : 2;
}
