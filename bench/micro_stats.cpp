// google-benchmark microbenchmarks of the statistics substrate: the survey
// analysis calls these in tight loops (batteries over dozens of indicators,
// thousands of bootstrap replicates).
#include <benchmark/benchmark.h>

#include <vector>

#include "stats/bootstrap.hpp"
#include "stats/ci.hpp"
#include "stats/contingency.hpp"
#include "stats/descriptive.hpp"
#include "stats/permutation.hpp"
#include "stats/regression.hpp"
#include "stats/special.hpp"
#include "util/rng.hpp"

namespace {

std::vector<double> random_data(std::size_t n, std::uint64_t seed) {
  rcr::Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.normal(10.0, 3.0);
  return v;
}

void BM_Mean(benchmark::State& state) {
  const auto data = random_data(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(rcr::stats::mean(data));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Mean)->Range(64, 65536);

void BM_Quantile(benchmark::State& state) {
  const auto data = random_data(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(rcr::stats::quantile(data, 0.95));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Quantile)->Range(64, 65536);

void BM_Ranks(benchmark::State& state) {
  const auto data = random_data(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state)
    benchmark::DoNotOptimize(rcr::stats::ranks(data));
}
BENCHMARK(BM_Ranks)->Range(64, 16384);

void BM_WilsonCi(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(rcr::stats::wilson_ci(137, 650));
}
BENCHMARK(BM_WilsonCi);

void BM_NormalQuantile(benchmark::State& state) {
  double p = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rcr::stats::normal_quantile(p));
    p += 1e-6;
    if (p >= 0.999) p = 0.001;
  }
}
BENCHMARK(BM_NormalQuantile);

void BM_Chi2Independence(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  rcr::stats::Contingency t(2, k);
  rcr::Rng rng(4);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < k; ++c)
      t.at(r, c) = static_cast<double>(rng.uniform_int(5, 100));
  for (auto _ : state)
    benchmark::DoNotOptimize(rcr::stats::chi_square_independence(t));
}
BENCHMARK(BM_Chi2Independence)->Arg(2)->Arg(8)->Arg(32);

void BM_FisherExact(benchmark::State& state) {
  const double n = static_cast<double>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        rcr::stats::fisher_exact(n, 2 * n, 3 * n, n));
  // Cost grows with the margin (support of the hypergeometric).
}
BENCHMARK(BM_FisherExact)->Arg(5)->Arg(50)->Arg(500);

void BM_Bootstrap(benchmark::State& state) {
  const auto data = random_data(400, 5);
  rcr::stats::BootstrapOptions opts;
  opts.replicates = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rcr::stats::bootstrap(
        data, [](std::span<const double> x) { return rcr::stats::mean(x); },
        opts));
  }
}
BENCHMARK(BM_Bootstrap)->Arg(200)->Arg(1000);

void BM_LogisticFit(benchmark::State& state) {
  rcr::Rng rng(6);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> xs(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(-2, 2);
    xs[i] = {x};
    y[i] = rng.bernoulli(rcr::stats::sigmoid(0.5 + x)) ? 1.0 : 0.0;
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(rcr::stats::logistic_fit(xs, y));
}
BENCHMARK(BM_LogisticFit)->Arg(256)->Arg(2048);

void BM_McNemar(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(rcr::stats::mcnemar_test(12, 4));  // exact path
}
BENCHMARK(BM_McNemar);

void BM_PermutationMeanDiff(benchmark::State& state) {
  const auto x = random_data(100, 7);
  const auto y = random_data(120, 8);
  rcr::stats::PermutationOptions opts;
  opts.permutations = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        rcr::stats::permutation_test_mean_diff(x, y, opts));
}
BENCHMARK(BM_PermutationMeanDiff)->Arg(500)->Arg(2000);

void BM_HolmVsBh(benchmark::State& state) {
  rcr::Rng rng(9);
  std::vector<double> p(static_cast<std::size_t>(state.range(0)));
  for (double& v : p) v = rng.next_double();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rcr::stats::holm_adjust(p));
    benchmark::DoNotOptimize(rcr::stats::benjamini_hochberg_adjust(p));
  }
}
BENCHMARK(BM_HolmVsBh)->Arg(32)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
