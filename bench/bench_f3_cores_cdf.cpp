// Regenerates experiment F3 of the reconstructed evaluation (DESIGN.md).
#include "bench/experiment_main.hpp"

int main(int argc, char** argv) {
  return rcr::bench::run_experiment("F3", argc, argv);
}
