// Incremental delta-merge macrobench: the live-update path vs. the cold
// full recompute it replaces. A survey-shaped table of --rows rows is
// split into a base (rows - delta) and a delta block (--delta rows, default
// 1% of the table). The cold path answers the registered batch by running
// a fresh QueryEngine over the merged table — O(rows) every time an
// append lands. The incremental path has already ingested the base
// (untimed) and is timed doing what rcr::serve's delta epochs do: one
// append_block(delta) plus the lazy result rebuild — O(delta rows).
//
// Before any timing is reported, every registered query is encoded
// through serve::encode_result_body on BOTH paths (the incremental
// engine's partial-merge results and the cold engine's full-scan
// results) and compared byte for byte, at the benchmark pool size and
// serially. Result bodies encode doubles as raw bit patterns, so this is
// the serving contract itself: one diverging bit anywhere fails the run
// with exit code 2 and "verified_bytes": false in the report.
//
// The acceptance bar (CI smoke + checked-in BENCH_incr.json baseline) is
// incremental >= 10x the cold recompute at a 1% delta on the 1M-row
// default.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "data/table.hpp"
#include "incr/engine.hpp"
#include "parallel/thread_pool.hpp"
#include "query/engine.hpp"
#include "serve/protocol.hpp"
#include "simd/dispatch.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

std::uint64_t g_sink = 0;  // folded results, so the optimizer keeps the work

void fold_bytes(const std::vector<std::uint8_t>& bytes) {
  for (const std::uint8_t b : bytes)
    g_sink = g_sink * 0x9E3779B97F4A7C15ULL + b;
}

// The same survey-shaped table as bench_micro_query: two categoricals,
// two multi-selects, a numeric answer, and a full-mantissa weight column.
rcr::data::Table make_table(std::size_t rows, std::uint64_t seed) {
  std::vector<std::string> fields, careers, langs, se;
  for (int i = 0; i < 6; ++i) fields.push_back("field" + std::to_string(i));
  for (int i = 0; i < 4; ++i) careers.push_back("career" + std::to_string(i));
  for (int i = 0; i < 12; ++i) langs.push_back("lang" + std::to_string(i));
  for (int i = 0; i < 8; ++i) se.push_back("se" + std::to_string(i));

  rcr::data::Table t;
  auto& field = t.add_categorical("field", fields);
  auto& career = t.add_categorical("career", careers);
  auto& lang_col = t.add_multiselect("langs", langs);
  auto& se_col = t.add_multiselect("se", se);
  auto& score = t.add_numeric("score");
  auto& w = t.add_numeric("w");

  rcr::Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    if (rng.next_double() < 0.08) field.push_missing();
    else field.push_code(static_cast<std::int32_t>(rng.next_below(6)));
    if (rng.next_double() < 0.05) career.push_missing();
    else career.push_code(static_cast<std::int32_t>(rng.next_below(4)));
    if (rng.next_double() < 0.10) lang_col.push_missing();
    else lang_col.push_mask(rng.next_u64() & rng.next_u64() & 0xFFFULL);
    if (rng.next_double() < 0.12) se_col.push_missing();
    else se_col.push_mask(rng.next_u64() & rng.next_u64() & 0xFFULL);
    if (rng.next_double() < 0.07) score.push_missing();
    else score.push(rng.normal() * 12.0 + 40.0);
    if (rng.next_double() < 0.04) w.push_missing();
    else w.push(rng.next_double() * 2.0 + 0.25);
  }
  return t;
}

double best_of(int runs, const auto& pass) {
  double best = 1e300;
  for (int r = 0; r < runs; ++r) {
    rcr::Stopwatch sw;
    pass();
    best = std::min(best, sw.elapsed_seconds());
  }
  return best;
}

// The registered batch, as serve wire specs: every servable query kind,
// the shape rcr::serve keeps live across delta epochs.
std::vector<rcr::serve::QuerySpec> batch_specs() {
  using rcr::serve::QueryKind;
  using rcr::serve::QuerySpec;
  return {
      {QueryKind::kCrosstab, "field", "career", "", 0.95},
      {QueryKind::kCrosstab, "field", "career", "w", 0.95},
      {QueryKind::kCrosstabMultiselect, "field", "langs", "", 0.95},
      {QueryKind::kCrosstabMultiselect, "field", "se", "w", 0.95},
      {QueryKind::kCategoryShares, "career", "", "", 0.95},
      {QueryKind::kOptionShares, "langs", "", "", 0.95},
      {QueryKind::kOptionShares, "se", "", "", 0.95},
      {QueryKind::kNumericSummary, "score", "", "", 0.95},
      {QueryKind::kGroupAnswered, "field", "langs", "", 0.95},
      {QueryKind::kGroupAnswered, "field", "se", "", 0.95},
  };
}

// Registers the batch on an engine (cold or incremental — same surface).
template <typename Engine>
std::vector<rcr::query::QueryId> register_batch(Engine& engine) {
  std::vector<rcr::query::QueryId> ids;
  for (const auto& spec : batch_specs()) {
    using rcr::serve::QueryKind;
    const std::optional<std::string> weight =
        spec.weight.empty() ? std::optional<std::string>{}
                            : std::optional<std::string>{spec.weight};
    switch (spec.kind) {
      case QueryKind::kCrosstab:
        ids.push_back(engine.add_crosstab(spec.a, spec.b, weight));
        break;
      case QueryKind::kCrosstabMultiselect:
        ids.push_back(engine.add_crosstab_multiselect(spec.a, spec.b, weight));
        break;
      case QueryKind::kCategoryShares:
        ids.push_back(engine.add_category_shares(spec.a, spec.confidence));
        break;
      case QueryKind::kOptionShares:
        ids.push_back(engine.add_option_shares(spec.a, spec.confidence));
        break;
      case QueryKind::kNumericSummary:
        ids.push_back(engine.add_numeric_summary(spec.a));
        break;
      case QueryKind::kGroupAnswered:
        ids.push_back(engine.add_group_answered(spec.a, spec.b));
        break;
    }
  }
  return ids;
}

// One cold pass: fresh QueryEngine over the merged table, full scan.
void cold_pass(const rcr::data::Table& merged, rcr::parallel::ThreadPool* pool,
               std::vector<std::vector<std::uint8_t>>* bodies) {
  rcr::query::QueryEngine engine(merged);
  const auto ids = register_batch(engine);
  engine.run(pool);
  const auto specs = batch_specs();
  if (bodies != nullptr) {
    bodies->clear();
    for (std::size_t q = 0; q < ids.size(); ++q)
      bodies->push_back(rcr::serve::encode_result_body(
          engine.raw_result(ids[q]), specs[q]));
  } else {
    for (std::size_t q = 0; q < ids.size(); ++q)
      fold_bytes(rcr::serve::encode_result_body(engine.raw_result(ids[q]),
                                                specs[q]));
  }
}

// Incremental result bodies at the engine's current cut.
std::vector<std::vector<std::uint8_t>> incr_bodies(
    rcr::incr::IncrementalEngine& engine,
    const std::vector<rcr::query::QueryId>& ids) {
  const auto specs = batch_specs();
  std::vector<std::vector<std::uint8_t>> bodies;
  for (std::size_t q = 0; q < ids.size(); ++q)
    bodies.push_back(
        rcr::serve::encode_result_body(engine.result(ids[q]), specs[q]));
  return bodies;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t rows = 1000000;
  std::size_t delta = 0;  // 0 -> 1% of rows
  std::size_t threads = 8;
  std::uint64_t seed = 42;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc)
      rows = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--delta") == 0 && i + 1 < argc)
      delta = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }
  if (delta == 0) delta = std::max<std::size_t>(1, rows / 100);
  if (delta >= rows) {
    std::fprintf(stderr, "bench_incr: --delta must be < --rows\n");
    return 1;
  }
  const std::string simd = rcr::simd::describe();
  std::fprintf(
      stderr, "bench_incr: seed=%llu threads=%zu rows=%zu delta=%zu simd=%s\n",
      static_cast<unsigned long long>(seed), threads, rows, delta,
      simd.c_str());

  const rcr::data::Table merged = make_table(rows, seed);
  const rcr::data::Table base = merged.slice(0, rows - delta);
  const rcr::data::Table delta_block = merged.slice(rows - delta, rows);

  rcr::parallel::ThreadPool pool(threads == 0 ? 1 : threads);
  rcr::parallel::ThreadPool* pool_ptr = threads == 0 ? nullptr : &pool;

  // --- Byte verification first: partial-merge == cold full scan, encoded
  // --- through the serving protocol, at the bench pool size and serially.
  bool verified_bytes = true;
  std::vector<std::vector<std::uint8_t>> cold_bodies;
  cold_pass(merged, pool_ptr, &cold_bodies);
  for (rcr::parallel::ThreadPool* vp :
       {pool_ptr, static_cast<rcr::parallel::ThreadPool*>(nullptr)}) {
    rcr::incr::IncrementalEngine engine(merged.slice(0, 0));
    const auto ids = register_batch(engine);
    engine.append_block(base, vp);
    engine.append_block(delta_block, vp);
    const auto bodies = incr_bodies(engine, ids);
    for (std::size_t q = 0; q < bodies.size(); ++q)
      if (bodies[q] != cold_bodies[q]) {
        std::fprintf(stderr,
                     "bench_incr: BYTE DIVERGENCE query=%zu pool=%s\n", q,
                     vp != nullptr ? "yes" : "serial");
        verified_bytes = false;
      }
  }
  for (const auto& body : cold_bodies) fold_bytes(body);

  // --- Cold path: full recompute on every append.
  const double cold_s =
      best_of(3, [&] { cold_pass(merged, pool_ptr, nullptr); });

  // --- Incremental path: the base is already live (re-ingested untimed
  // --- each rep); timed work is one delta append + the result rebuild.
  const auto specs = batch_specs();
  double incr_s = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    rcr::incr::IncrementalEngine engine(merged.slice(0, 0));
    const auto ids = register_batch(engine);
    engine.append_block(base, pool_ptr);
    (void)engine.results();  // settle the pre-delta cut, as serve would
    rcr::Stopwatch sw;
    engine.append_block(delta_block, pool_ptr);
    for (std::size_t q = 0; q < ids.size(); ++q)
      fold_bytes(
          rcr::serve::encode_result_body(engine.result(ids[q]), specs[q]));
    incr_s = std::min(incr_s, sw.elapsed_seconds());
  }

  const double speedup = cold_s / incr_s;
  char buf[512];
  std::string json = "{\n  \"benchmark\": \"incr\",\n";
  std::snprintf(buf, sizeof buf,
                "  \"simd\": \"%s\",\n"
                "  \"rows\": %zu,\n  \"delta_rows\": %zu,\n"
                "  \"threads\": %zu,\n  \"queries\": %zu,\n"
                "  \"results\": [\n",
                simd.c_str(), rows, delta, threads, batch_specs().size());
  json += buf;
  const struct {
    const char* name;
    double seconds;
  } lines[] = {
      {"cold.full_recompute", cold_s},
      {"incr.delta_update", incr_s},
  };
  for (std::size_t i = 0; i < std::size(lines); ++i) {
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"ms\": %.3f}%s\n", lines[i].name,
                  lines[i].seconds * 1e3,
                  i + 1 < std::size(lines) ? "," : "");
    json += buf;
  }
  std::snprintf(buf, sizeof buf,
                "  ],\n  \"speedups\": {\n"
                "    \"incr_vs_cold\": %.2f\n  },\n"
                "  \"verified_bytes\": %s,\n  \"checksum\": %llu\n}\n",
                speedup, verified_bytes ? "true" : "false",
                static_cast<unsigned long long>(g_sink % 1000000007ULL));
  json += buf;

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_incr: cannot open %s\n", out_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  std::fputs(json.c_str(), stdout);
  return verified_bytes ? 0 : 2;
}
