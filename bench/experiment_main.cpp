#include "bench/experiment_main.hpp"

#include <cstddef>
#include <cstdint>
#include <exception>
#include <iostream>
#include <memory>

#include "core/rcr.hpp"
#include "simd/dispatch.hpp"

namespace rcr::bench {

int run_experiment(const char* id, int argc, char** argv) {
  try {
    CliParser cli(argc, argv);
    core::StudyConfig config;
    config.n_2011 = static_cast<std::size_t>(cli.get_int_or("n2011", 120));
    config.n_2024 = static_cast<std::size_t>(cli.get_int_or("n2024", 650));
    config.seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 7));
    const auto threads = cli.get_int_or("threads", 0);
    const bool metrics_json = cli.has_switch("metrics-json");
    const bool metrics_text = cli.has_switch("metrics");
    cli.finish();

    // Metrics runs default to the shared pool so the snapshot carries
    // thread-pool and resampling activity; results are identical either
    // way (everything downstream is deterministic under the seed).
    std::unique_ptr<parallel::ThreadPool> owned_pool;
    if (threads > 0) {
      owned_pool =
          std::make_unique<parallel::ThreadPool>(static_cast<std::size_t>(threads));
      config.pool = owned_pool.get();
    } else if (metrics_json || metrics_text) {
      config.pool = &parallel::default_pool();
    }

    // Reproducibility echo: the resolved seed, thread count and dispatched
    // SIMD ISA, on stderr so piped/table output stays clean. The same
    // dispatch facts ride along in the metrics snapshot (simd.lanes /
    // simd.isa gauges), so every --metrics-json payload records them.
    const std::size_t resolved_threads =
        config.pool != nullptr ? config.pool->thread_count() : 1;
    const simd::Isa isa = simd::active_isa();
    obs::registry().gauge("simd.lanes").set(
        static_cast<std::int64_t>(simd::isa_lanes(isa)));
    obs::registry().gauge("simd.isa").set(static_cast<std::int64_t>(isa));
    std::cerr << "bench[" << id << "]: seed=" << config.seed
              << " threads=" << resolved_threads
              << " simd=" << simd::describe() << "\n";

    const core::Study study(config);
    report::ExperimentRegistry registry;
    core::register_all_experiments(registry, study);
    std::cout << registry.run(id);
    if (metrics_text) {
      std::cout << "\n== metrics ==\n" << obs::snapshot().to_table();
    }
    if (metrics_json) {
      std::cout << "\n" << obs::snapshot().to_json() << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace rcr::bench
