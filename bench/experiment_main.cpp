#include "bench/experiment_main.hpp"

#include <exception>
#include <iostream>

#include "core/rcr.hpp"

namespace rcr::bench {

int run_experiment(const char* id, int argc, char** argv) {
  try {
    CliParser cli(argc, argv);
    core::StudyConfig config;
    config.n_2011 = static_cast<std::size_t>(cli.get_int_or("n2011", 120));
    config.n_2024 = static_cast<std::size_t>(cli.get_int_or("n2024", 650));
    config.seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 7));
    cli.finish();

    const core::Study study(config);
    report::ExperimentRegistry registry;
    core::register_all_experiments(registry, study);
    std::cout << registry.run(id);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace rcr::bench
