// Serving-throughput macrobenchmark: a traffic generator driving the full
// rcr::serve stack (encode -> frame -> LocalTransport -> cache /
// single-flight / batching / admission -> engine -> encode) against an
// in-memory snapshot, in two disciplines:
//
//   * closed loop — C synthetic clients issue requests back to back; the
//     client sweep (1 / 4 / 16 by default) gives the three throughput and
//     latency load points BENCH_serve.json records;
//   * open loop — Poisson arrivals at a configured offered rate, latency
//     measured from each request's SCHEDULED arrival (so queueing delay is
//     charged even when the generator falls behind — no coordinated
//     omission). Offered rates are set relative to the measured closed-loop
//     capacity (0.5x / 0.9x / 1.5x): the overload point is where the SLO
//     window p99 blows past target, AIMD walks the admit limit down, and
//     explicit kShed backpressure appears in the shed_rate column.
//
// Query popularity is Zipfian over a catalog of distinct specs
// (synth::ZipfSampler) and arrival gaps are exponential
// (synth::exponential_interarrival); both are pure functions of uniform
// draws supplied by simd::Philox counter-based substreams — ONE substream
// per synthetic client split in O(1) from a single root generator (streams
// 2c for popularity, 2c+1 for arrivals), never reseeded per client, so any
// client's whole draw sequence is reproducible in isolation.
//
// Before timing anything the harness verifies the serving determinism
// contract: for every catalog entry the served body must equal a cold
// direct QueryEngine run byte for byte and every response must echo the
// (epoch, canonical spec) fingerprint — "verified" / "fingerprints_ok" in
// the report, exit 2 on violation. The cold-vs-hit comparison CI smokes
// against ("hit_speedup" >= 5) times the same spec served from the engine
// and then from the cache.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "data/table.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "query/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "simd/dispatch.hpp"
#include "simd/philox.hpp"
#include "synth/traffic.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kEpoch = 1;

// Survey-shaped snapshot at serving scale (same shape as micro_query).
rcr::data::Table make_table(std::size_t rows, std::uint64_t seed) {
  std::vector<std::string> fields, careers, langs;
  for (int i = 0; i < 6; ++i) fields.push_back("field" + std::to_string(i));
  for (int i = 0; i < 4; ++i) careers.push_back("career" + std::to_string(i));
  for (int i = 0; i < 12; ++i) langs.push_back("lang" + std::to_string(i));

  rcr::data::Table t;
  auto& field = t.add_categorical("field", fields);
  auto& career = t.add_categorical("career", careers);
  auto& lang_col = t.add_multiselect("langs", langs);
  auto& score = t.add_numeric("score");
  auto& w = t.add_numeric("w");

  rcr::Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    if (rng.next_double() < 0.08) field.push_missing();
    else field.push_code(static_cast<std::int32_t>(rng.next_below(6)));
    if (rng.next_double() < 0.05) career.push_missing();
    else career.push_code(static_cast<std::int32_t>(rng.next_below(4)));
    if (rng.next_double() < 0.10) lang_col.push_missing();
    else lang_col.push_mask(rng.next_u64() & rng.next_u64() & 0xFFFULL);
    if (rng.next_double() < 0.07) score.push_missing();
    else score.push(rng.normal() * 12.0 + 40.0);
    if (rng.next_double() < 0.04) w.push_missing();
    else w.push(rng.next_double() * 2.0 + 0.25);
  }
  return t;
}

// A catalog of `n` DISTINCT specs cycling through the servable kinds; the
// share kinds absorb the index into the confidence level so every entry
// fingerprints differently (distinct dashboards over the same snapshot).
std::vector<rcr::serve::QuerySpec> make_catalog(std::size_t n) {
  using rcr::serve::QueryKind;
  using rcr::serve::QuerySpec;
  std::vector<QuerySpec> catalog;
  catalog.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    QuerySpec s;
    const double conf = 0.80 + 0.00015 * static_cast<double>(i);
    switch (i % 6) {
      case 0:
        s.kind = QueryKind::kCategoryShares;
        s.a = "career";
        s.confidence = conf;
        break;
      case 1:
        s.kind = QueryKind::kOptionShares;
        s.a = "langs";
        s.confidence = conf;
        break;
      case 2:
        s.kind = QueryKind::kCategoryShares;
        s.a = "field";
        s.confidence = conf;
        break;
      case 3:
        s.kind = i % 12 == 3 ? QueryKind::kCrosstab
                             : QueryKind::kCrosstabMultiselect;
        s.a = "field";
        s.b = i % 12 == 3 ? "career" : "langs";
        s.weight = i % 24 < 12 ? "" : "w";
        break;
      case 4:
        s.kind = QueryKind::kOptionShares;
        s.a = "langs";
        s.confidence = conf + 0.00005;
        break;
      default:
        s.kind = i % 12 == 5 ? QueryKind::kNumericSummary
                             : QueryKind::kGroupAnswered;
        s.a = i % 12 == 5 ? "score" : "field";
        s.b = i % 12 == 5 ? "" : "score";
        break;
    }
    catalog.push_back(std::move(s));
  }
  return catalog;
}

double percentile(std::vector<double>& sorted_inplace, double q) {
  if (sorted_inplace.empty()) return 0.0;
  std::sort(sorted_inplace.begin(), sorted_inplace.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_inplace.size() - 1) + 0.5);
  return sorted_inplace[std::min(idx, sorted_inplace.size() - 1)];
}

struct LoadPoint {
  std::size_t clients = 0;
  double offered_rps = 0.0;  // open loop only
  std::uint64_t requests = 0;
  std::uint64_t sheds = 0;
  std::uint64_t errors = 0;
  double wall_s = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;

  double throughput() const {
    return wall_s > 0.0 ? static_cast<double>(requests - sheds) / wall_s : 0.0;
  }
};

// Response frame peek: type byte and fingerprint without a full decode
// (offset 4 skips the u32 frame length).
rcr::serve::MsgType frame_type(const std::vector<std::uint8_t>& frame) {
  return static_cast<rcr::serve::MsgType>(frame[4]);
}
std::uint64_t frame_fingerprint(const std::vector<std::uint8_t>& frame) {
  std::uint64_t fp = 0;
  std::memcpy(&fp, frame.data() + 5, sizeof(fp));
  return fp;
}

// Closed loop: `clients` threads hammer the server back to back until the
// request budget is spent.
LoadPoint run_closed_loop(rcr::serve::Server& server,
                          const std::vector<std::vector<std::uint8_t>>& frames,
                          const std::vector<std::uint64_t>& fingerprints,
                          const rcr::synth::ZipfSampler& zipf,
                          const rcr::simd::Philox& root, std::size_t clients,
                          std::uint64_t total_requests) {
  LoadPoint point;
  point.clients = clients;
  point.requests = total_requests;

  // Signed so the post-zero decrements other clients race into stay
  // negative instead of wrapping to 2^64.
  std::atomic<std::int64_t> budget{static_cast<std::int64_t>(total_requests)};
  std::atomic<std::uint64_t> sheds{0}, errors{0};
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      rcr::serve::LocalTransport transport(server);
      // O(1) split: this client's popularity stream, never reseeded.
      rcr::simd::Philox draws = root.substream(2 * c);
      auto& mine = lat[c];
      mine.reserve(total_requests / clients + 64);
      while (budget.fetch_sub(1, std::memory_order_relaxed) > 0) {
        const std::size_t pick = zipf.sample(draws.next_double());
        rcr::Stopwatch watch;
        const auto reply = transport.roundtrip_frame(frames[pick]);
        const double ms = watch.elapsed_ms();
        switch (frame_type(reply)) {
          case rcr::serve::MsgType::kResult:
            if (frame_fingerprint(reply) != fingerprints[pick])
              errors.fetch_add(1, std::memory_order_relaxed);
            mine.push_back(ms);
            break;
          case rcr::serve::MsgType::kShed:
            sheds.fetch_add(1, std::memory_order_relaxed);
            break;
          default:
            errors.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  point.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  point.sheds = sheds.load();
  point.errors = errors.load();

  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  point.p50 = percentile(all, 0.50);
  point.p95 = percentile(all, 0.95);
  point.p99 = percentile(all, 0.99);
  return point;
}

// Open loop: Poisson arrivals at `offered_rps` split across the clients;
// latency runs from the scheduled arrival instant, so a generator that
// falls behind charges the backlog to the server instead of silently
// slowing down the arrival process.
LoadPoint run_open_loop(rcr::serve::Server& server,
                        const std::vector<std::vector<std::uint8_t>>& frames,
                        const std::vector<std::uint64_t>& fingerprints,
                        const rcr::synth::ZipfSampler& zipf,
                        const rcr::simd::Philox& root, std::size_t clients,
                        double offered_rps, std::uint64_t total_requests) {
  LoadPoint point;
  point.clients = clients;
  point.offered_rps = offered_rps;
  point.requests = total_requests;

  const double per_client_rps = offered_rps / static_cast<double>(clients);
  const std::uint64_t per_client = total_requests / clients;
  std::atomic<std::uint64_t> sheds{0}, errors{0};
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      rcr::serve::LocalTransport transport(server);
      rcr::simd::Philox draws = root.substream(2 * c);      // popularity
      rcr::simd::Philox gaps = root.substream(2 * c + 1);   // arrivals
      auto& mine = lat[c];
      mine.reserve(per_client);
      double arrival_s = 0.0;
      for (std::uint64_t i = 0; i < per_client; ++i) {
        arrival_s += rcr::synth::exponential_interarrival(per_client_rps,
                                                          gaps.next_double());
        const auto scheduled =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(arrival_s));
        std::this_thread::sleep_until(scheduled);
        const std::size_t pick = zipf.sample(draws.next_double());
        const auto reply = transport.roundtrip_frame(frames[pick]);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - scheduled)
                .count();
        switch (frame_type(reply)) {
          case rcr::serve::MsgType::kResult:
            if (frame_fingerprint(reply) != fingerprints[pick])
              errors.fetch_add(1, std::memory_order_relaxed);
            mine.push_back(ms);
            break;
          case rcr::serve::MsgType::kShed:
            sheds.fetch_add(1, std::memory_order_relaxed);
            break;
          default:
            errors.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  point.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  point.requests = per_client * clients;
  point.sheds = sheds.load();
  point.errors = errors.load();

  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  point.p50 = percentile(all, 0.50);
  point.p95 = percentile(all, 0.95);
  point.p99 = percentile(all, 0.99);
  return point;
}

std::uint64_t counter_total(const char* name) {
#ifndef RCR_OBS_DISABLED
  return rcr::obs::registry().counter(name).total();
#else
  (void)name;
  return 0;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t rows = 200000;
  std::size_t catalog_size = 1024;
  std::size_t threads = 8;
  std::uint64_t closed_requests = 500000;  // per closed-loop point
  std::uint64_t open_requests = 150000;    // per open-loop point
  double zipf_s = 1.0;
  std::uint64_t seed = 20240807;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc)
      rows = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--catalog") == 0 && i + 1 < argc)
      catalog_size =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
      closed_requests = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--open-requests") == 0 && i + 1 < argc)
      open_requests = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--zipf") == 0 && i + 1 < argc)
      zipf_s = std::strtod(argv[++i], nullptr);
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }
  const std::string simd = rcr::simd::describe();
  std::fprintf(stderr,
               "bench_serve: rows=%zu catalog=%zu threads=%zu zipf=%.2f "
               "simd=%s\n",
               rows, catalog_size, threads, zipf_s, simd.c_str());

  const rcr::data::Table table = make_table(rows, seed);
  const auto catalog = make_catalog(catalog_size);
  const rcr::synth::ZipfSampler zipf(catalog_size, zipf_s);
  const rcr::simd::Philox root(seed, 0);

  rcr::parallel::ThreadPool pool(threads == 0 ? 1 : threads);
  rcr::parallel::ThreadPool* pool_ptr = threads == 0 ? nullptr : &pool;

  // Pre-encoded request frames and expected fingerprints, once per entry.
  std::vector<std::vector<std::uint8_t>> frames(catalog_size);
  std::vector<std::uint64_t> fingerprints(catalog_size);
  for (std::size_t i = 0; i < catalog_size; ++i) {
    rcr::serve::append_frame(frames[i],
                             rcr::serve::encode_request({kEpoch, catalog[i]}));
    fingerprints[i] = rcr::serve::fingerprint(kEpoch, catalog[i]);
  }

  // --- contract check: served bytes == cold engine bytes, per entry -------
  bool verified = true, fingerprints_ok = true;
  {
    rcr::serve::ServerConfig cfg;
    cfg.cache_capacity = catalog_size;
    cfg.pool = pool_ptr;
    rcr::serve::Server server(cfg);
    server.register_snapshot(kEpoch, table);
    rcr::serve::LocalTransport transport(server);
    for (std::size_t i = 0; i < catalog_size; ++i) {
      const auto spec = rcr::serve::canonicalize(catalog[i]);
      rcr::query::QueryEngine engine(table);
      const auto id = rcr::serve::register_spec(engine, spec);
      engine.run();
      const auto want = rcr::serve::encode_result_body(engine, id, spec);
      const auto miss = transport.query(kEpoch, catalog[i]);
      const auto hit = transport.query(kEpoch, catalog[i]);
      if (miss.body != want || hit.body != want) verified = false;
      if (miss.fingerprint != fingerprints[i] ||
          hit.fingerprint != fingerprints[i])
        fingerprints_ok = false;
    }
  }
  if (!verified || !fingerprints_ok) {
    std::fprintf(stderr,
                 "bench_serve: DETERMINISM VIOLATION (verified=%d "
                 "fingerprints=%d)\n",
                 verified ? 1 : 0, fingerprints_ok ? 1 : 0);
    return 2;
  }

  // --- cold vs hit (the cache's whole argument) ----------------------------
  double cold_ms = 0.0, hit_ms = 0.0;
  {
    rcr::serve::ServerConfig cfg;
    cfg.cache_capacity = catalog_size;
    cfg.pool = pool_ptr;
    rcr::serve::Server server(cfg);
    server.register_snapshot(kEpoch, table);
    rcr::serve::LocalTransport transport(server);
    const std::size_t probes = std::min<std::size_t>(catalog_size, 32);
    for (std::size_t i = 0; i < probes; ++i) {
      rcr::Stopwatch cold;
      (void)transport.roundtrip_frame(frames[i]);
      cold_ms += cold.elapsed_ms();
    }
    cold_ms /= static_cast<double>(probes);
    constexpr std::size_t kHits = 20000;
    rcr::Stopwatch hits;
    for (std::size_t i = 0; i < kHits; ++i)
      (void)transport.roundtrip_frame(frames[i % probes]);
    hit_ms = hits.elapsed_ms() / static_cast<double>(kHits);
  }
  const double hit_speedup = hit_ms > 0.0 ? cold_ms / hit_ms : 0.0;
  std::fprintf(stderr, "bench_serve: cold=%.3fms hit=%.5fms speedup=%.0fx\n",
               cold_ms, hit_ms, hit_speedup);

  // --- closed-loop client sweep (warm cache sized to the catalog) ----------
  std::vector<LoadPoint> closed;
  {
    rcr::serve::ServerConfig cfg;
    cfg.cache_capacity = catalog_size;
    cfg.pool = pool_ptr;
    rcr::serve::Server server(cfg);
    server.register_snapshot(kEpoch, table);
    for (const std::size_t clients : {1u, 4u, 16u}) {
      closed.push_back(run_closed_loop(server, frames, fingerprints, zipf,
                                       root, clients, closed_requests));
      std::fprintf(stderr,
                   "bench_serve: closed clients=%zu rps=%.0f p50=%.4fms "
                   "p99=%.4fms\n",
                   closed.back().clients, closed.back().throughput(),
                   closed.back().p50, closed.back().p99);
    }
  }
  // --- open-loop Poisson sweep (cache a quarter of the catalog, so the
  // Zipf tail keeps missing and the miss pipeline stays under load). The
  // offered rates are set relative to THIS server's capacity — a quick
  // closed-loop calibration against the constrained cache — not the warm
  // hit-path numbers above, so 0.5x/0.9x really are under- and near-load
  // and 1.5x really is overload. The overload point is where the SLO
  // window p99 blows the 2ms target, AIMD walks the admit limit down from
  // 64, and kShed backpressure appears.
  std::vector<LoadPoint> open;
  double miss_capacity_rps = 0.0;
  std::size_t final_admit_limit = 0;
  std::uint64_t sheds_before = counter_total("serve.shed");
  {
    rcr::serve::ServerConfig cfg;
    cfg.cache_capacity = std::max<std::size_t>(16, catalog_size / 4);
    cfg.slo_p99_ms = 2.0;
    cfg.max_admitted = 64;
    cfg.min_admitted = 2;
    cfg.slo_window = 512;
    cfg.pool = pool_ptr;
    {
      rcr::serve::Server calibrate(cfg);
      calibrate.register_snapshot(kEpoch, table);
      miss_capacity_rps =
          run_closed_loop(calibrate, frames, fingerprints, zipf, root, 16,
                          std::max<std::uint64_t>(open_requests / 2, 1000))
              .throughput();
      std::fprintf(stderr, "bench_serve: open-loop capacity=%.0frps\n",
                   miss_capacity_rps);
    }
    rcr::serve::Server server(cfg);
    server.register_snapshot(kEpoch, table);
    // Untimed warmup: fill the cache's share of the Zipf head and let the
    // AIMD limit settle, so the measured points are steady state and not
    // the cold-start transient.
    (void)run_closed_loop(server, frames, fingerprints, zipf, root, 8,
                          std::max<std::uint64_t>(open_requests / 4, 1000));
    for (const double factor : {0.5, 0.9, 1.5}) {
      open.push_back(run_open_loop(server, frames, fingerprints, zipf, root,
                                   32, factor * miss_capacity_rps,
                                   open_requests));
      std::fprintf(stderr,
                   "bench_serve: open offered=%.0frps achieved=%.0frps "
                   "shed=%llu p99=%.3fms limit=%zu\n",
                   open.back().offered_rps, open.back().throughput(),
                   static_cast<unsigned long long>(open.back().sheds),
                   open.back().p99, server.admit_limit());
    }
    final_admit_limit = server.admit_limit();
  }
  const std::uint64_t total_sheds = counter_total("serve.shed") - sheds_before;

  // --- report --------------------------------------------------------------
  char buf[512];
  std::string json = "{\n  \"benchmark\": \"serve\",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"simd\": \"%s\",\n  \"rows\": %zu,\n  \"catalog\": %zu,\n"
                "  \"zipf_s\": %.2f,\n  \"engine_threads\": %zu,\n"
                "  \"verified\": %s,\n  \"fingerprints_ok\": %s,\n",
                simd.c_str(), rows, catalog_size, zipf_s, threads,
                verified ? "true" : "false",
                fingerprints_ok ? "true" : "false");
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"cache\": {\"cold_ms\": %.4f, \"hit_ms\": %.6f, "
                "\"hit_speedup\": %.1f},\n",
                cold_ms, hit_ms, hit_speedup);
  json += buf;
  json += "  \"closed_loop\": [\n";
  for (std::size_t i = 0; i < closed.size(); ++i) {
    const auto& p = closed[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"clients\": %zu, \"requests\": %llu, "
                  "\"throughput_rps\": %.0f, \"p50_ms\": %.5f, "
                  "\"p95_ms\": %.5f, \"p99_ms\": %.5f}%s\n",
                  p.clients, static_cast<unsigned long long>(p.requests),
                  p.throughput(), p.p50, p.p95, p.p99,
                  i + 1 < closed.size() ? "," : "");
    json += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  ],\n  \"open_loop_capacity_rps\": %.0f,\n"
                "  \"open_loop\": [\n",
                miss_capacity_rps);
  json += buf;
  for (std::size_t i = 0; i < open.size(); ++i) {
    const auto& p = open[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"clients\": %zu, \"offered_rps\": %.0f, \"requests\": %llu, "
        "\"achieved_rps\": %.0f, \"shed_rate\": %.4f, \"p50_ms\": %.4f, "
        "\"p95_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
        p.clients, p.offered_rps, static_cast<unsigned long long>(p.requests),
        p.throughput(),
        p.requests > 0 ? static_cast<double>(p.sheds) / p.requests : 0.0,
        p.p50, p.p95, p.p99, i + 1 < open.size() ? "," : "");
    json += buf;
  }
  std::snprintf(
      buf, sizeof(buf),
      "  ],\n  \"admission\": {\"final_limit\": %zu, \"sheds\": %llu},\n"
      "  \"serve_counters\": {\"requests\": %llu, \"hits\": %llu, "
      "\"misses\": %llu, \"coalesced\": %llu, \"batches\": %llu, "
      "\"batch_queries\": %llu}\n}\n",
      final_admit_limit, static_cast<unsigned long long>(total_sheds),
      static_cast<unsigned long long>(counter_total("serve.requests")),
      static_cast<unsigned long long>(counter_total("serve.hits")),
      static_cast<unsigned long long>(counter_total("serve.misses")),
      static_cast<unsigned long long>(counter_total("serve.coalesced")),
      static_cast<unsigned long long>(counter_total("serve.batches")),
      static_cast<unsigned long long>(counter_total("serve.batch.queries")));
  json += buf;

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_serve: cannot open %s\n", out_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  std::fputs(json.c_str(), stdout);
  return 0;
}
