// Regenerates experiment T7 of the reconstructed evaluation (DESIGN.md).
#include "bench/experiment_main.hpp"

int main(int argc, char** argv) {
  return rcr::bench::run_experiment("T7", argc, argv);
}
