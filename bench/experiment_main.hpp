// Shared driver for the per-table/per-figure bench binaries.
//
// Every bench_<id> binary regenerates exactly one artifact of the
// reconstructed evaluation (see DESIGN.md's experiment index). Common flags:
//   --n2011 N        respondents in the 2011 wave   (default 120)
//   --n2024 N        respondents in the 2024 wave   (default 650)
//   --seed  S        master seed                     (default 7)
//   --threads N      run the study on an N-thread pool (0 = serial unless
//                    a metrics flag is given, then the shared default pool)
//   --metrics        append an aligned rcr::obs metrics table to the output
//   --metrics-json   append the metrics snapshot as a JSON object
#pragma once

namespace rcr::bench {

// Builds the study from CLI flags, runs the experiment with the given id,
// and prints the artifact. Returns a process exit code.
int run_experiment(const char* id, int argc, char** argv);

}  // namespace rcr::bench
