// Microbenchmarks of the computational-science kernels (serial vs pooled)
// and of the two substrate generators (synthetic respondents, job streams).
#include <benchmark/benchmark.h>

#include "kernels/matmul.hpp"
#include "kernels/montecarlo.hpp"
#include "kernels/reduction.hpp"
#include "kernels/spmv.hpp"
#include "kernels/stencil.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/cluster.hpp"
#include "synth/generator.hpp"

namespace {

rcr::parallel::ThreadPool& pool() {
  static rcr::parallel::ThreadPool p;
  return p;
}

void BM_StencilSerial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rcr::kernels::HeatGrid g(n, n);
  for (auto _ : state) g.step_serial(0.2);
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_StencilSerial)->Arg(128)->Arg(512);

void BM_StencilParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rcr::kernels::HeatGrid g(n, n);
  for (auto _ : state) g.step_parallel(pool(), 0.2);
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_StencilParallel)->Arg(128)->Arg(512);

void BM_MatmulSerial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = rcr::kernels::random_matrix(n, 1);
  const auto b = rcr::kernels::random_matrix(n, 2);
  rcr::kernels::Dense c(n * n);
  for (auto _ : state) {
    rcr::kernels::matmul_serial(a, b, c, n);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatmulSerial)->Arg(64)->Arg(128);

void BM_MatmulBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = rcr::kernels::random_matrix(n, 1);
  const auto b = rcr::kernels::random_matrix(n, 2);
  rcr::kernels::Dense c(n * n);
  for (auto _ : state) {
    rcr::kernels::matmul_blocked(a, b, c, n, 64);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatmulBlocked)->Arg(64)->Arg(128);

void BM_Spmv(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto a = rcr::kernels::random_csr(rows, rows, 12, 5);
  std::vector<double> x(rows, 1.0), y;
  for (auto _ : state) {
    rcr::kernels::spmv_serial(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_Spmv)->Arg(10000)->Arg(100000);

void BM_McPi(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(rcr::kernels::mc_pi_serial(samples, 11));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(samples));
}
BENCHMARK(BM_McPi)->Arg(100000)->Arg(1000000);

void BM_GenerateWave(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rcr::synth::generate_wave({rcr::synth::Wave::k2024, n, 7, nullptr}));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GenerateWave)->Arg(100)->Arg(1000);

void BM_ClusterSim(benchmark::State& state) {
  rcr::sim::JobStreamConfig cfg;
  cfg.jobs = static_cast<std::size_t>(state.range(0));
  cfg.arrival_rate_per_hour = 40.0;
  for (auto _ : state) {
    auto jobs = rcr::sim::generate_job_stream(cfg);
    benchmark::DoNotOptimize(rcr::sim::simulate_cluster(
        jobs, 512, rcr::sim::SchedulerPolicy::kEasyBackfill));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ClusterSim)->Arg(500)->Arg(2000);

void BM_GeneratePanel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(rcr::synth::generate_panel(n, 7));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GeneratePanel)->Arg(100)->Arg(500);

void BM_Reduction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(rcr::kernels::reduce_stream_serial(n, 3));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Reduction)->Arg(100000)->Arg(1000000);

}  // namespace

BENCHMARK_MAIN();
