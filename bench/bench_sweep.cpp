// Scenario-sweep macrobench + reproducibility gate.
//
// Runs the standard rcr::sweep catalog (Amdahl ablations, queue policies,
// network contention, interpolated populations, beta-trait variants) on
// the benchmark pool and then REPLAYS every cell twice before any timing
// is reported:
//
//   * once serially (pool = nullptr) — the provenance stamps a thread
//     count, but fingerprints must be pool-invariant like every engine in
//     the repo;
//   * once from the recorded provenance — a fresh run_cell under the
//     recorded master seed must reproduce each cell's fingerprint bit for
//     bit. This is the module's whole contract: seed + config hash IS the
//     result.
//
// Any diverging fingerprint fails the run with exit code 2 and
// "verified_replay": false in the report. The checked-in BENCH_sweep.json
// baseline records the catalog's fingerprints, so CI also catches silent
// cross-commit drift in any scenario engine.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "simd/dispatch.hpp"
#include "sweep/scenarios.hpp"
#include "sweep/sweep.hpp"
#include "util/stopwatch.hpp"

namespace {

double best_of(int runs, const auto& pass) {
  double best = 1e300;
  for (int r = 0; r < runs; ++r) {
    rcr::Stopwatch sw;
    pass();
    best = std::min(best, sw.elapsed_seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t threads = 8;
  std::uint64_t seed = 7;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }
  const std::string simd = rcr::simd::describe();
  std::fprintf(stderr, "bench_sweep: seed=%llu threads=%zu simd=%s\n",
               static_cast<unsigned long long>(seed), threads, simd.c_str());

  rcr::parallel::ThreadPool pool(threads == 0 ? 1 : threads);
  rcr::sweep::SweepConfig cfg;
  cfg.seed = seed;
  cfg.pool = threads == 0 ? nullptr : &pool;

  const auto cells = rcr::sweep::standard_catalog();
  const auto results = rcr::sweep::run_sweep(cells, cfg);

  // --- Reproducibility gate before any timing.
  bool verified_replay = true;
  rcr::sweep::SweepConfig serial_cfg;
  serial_cfg.seed = seed;
  serial_cfg.pool = nullptr;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    // Pool invariance: the serial replay must land on the same bits.
    const auto serial = rcr::sweep::run_cell(cells[i], serial_cfg);
    if (serial.fingerprint != results[i].fingerprint) {
      std::fprintf(stderr, "bench_sweep: POOL DIVERGENCE cell=%s\n",
                   cells[i].id.c_str());
      verified_replay = false;
    }
    // Provenance replay: reconstruct the sweep config purely from the
    // recorded provenance and re-run the cell.
    rcr::sweep::SweepConfig replay_cfg;
    replay_cfg.seed = results[i].provenance.master_seed;
    replay_cfg.pool = cfg.pool;
    const auto replay = rcr::sweep::run_cell(cells[i], replay_cfg);
    if (replay.fingerprint != results[i].fingerprint ||
        replay.provenance.cell_seed != results[i].provenance.cell_seed ||
        replay.provenance.config_hash != results[i].provenance.config_hash) {
      std::fprintf(stderr, "bench_sweep: REPLAY DIVERGENCE cell=%s\n",
                   cells[i].id.c_str());
      verified_replay = false;
    }
  }

  const double sweep_s = best_of(
      3, [&] { (void)rcr::sweep::run_sweep(cells, cfg); });

  std::string json = "{\n  \"benchmark\": \"sweep\",\n";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "  \"simd\": \"%s\",\n  \"seed\": %" PRIu64
                ",\n  \"threads\": %zu,\n  \"cells\": %zu,\n"
                "  \"sweep_ms\": %.3f,\n"
                "  \"verified_replay\": %s,\n  \"results\": [\n",
                simd.c_str(), seed, threads, cells.size(), sweep_s * 1e3,
                verified_replay ? "true" : "false");
  json += buf;
  for (std::size_t i = 0; i < results.size(); ++i) {
    json += "    " + rcr::sweep::render_cell_json(results[i]);
    json += i + 1 < results.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_sweep: cannot open %s\n", out_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  std::fputs(rcr::sweep::render_sweep_table(results).c_str(), stderr);
  std::fputs(json.c_str(), stdout);
  return verified_replay ? 0 : 2;
}
