// Ablation A1 (DESIGN.md ablation #3): which terms of the analytic scaling
// model matter? For each kernel archetype, compare the full model against
// variants with the bandwidth ceiling and/or barrier term removed, using
// the discrete-event simulator (which has neither closed-form term) as the
// independent reference at the core counts where it is trustworthy.
#include <cmath>
#include <exception>
#include <iostream>

#include "core/rcr.hpp"

namespace {

double des_time(const rcr::sim::MachineModel& machine,
                const rcr::sim::WorkloadModel& work, std::size_t cores) {
  const auto tasks =
      rcr::sim::make_task_durations(machine, work, 4 * cores, 0.2);
  const double serial_s = work.serial_fraction * work.work_ops /
                          (machine.core_gflops * 1e9);
  const double barrier_s =
      machine.barrier_latency_us * 1e-6 *
      std::log2(static_cast<double>(std::max<std::size_t>(2, cores)));
  return rcr::sim::simulate_fork_join(tasks, cores, serial_s, barrier_s);
}

}  // namespace

int main(int argc, char** argv) try {
  rcr::CliParser cli(argc, argv);
  const auto scale = static_cast<std::size_t>(cli.get_int_or("scale", 1));
  cli.finish();

  std::cout << "== A1 (ablation): scaling-model terms vs the DES ==\n"
            << "Speedup predicted at each core count; 'no-bw' drops the\n"
            << "bandwidth ceiling, 'no-barrier' the synchronization term.\n\n";

  rcr::parallel::ThreadPool pool;
  std::cerr << "bench[a1]: seed=n/a threads=" << pool.thread_count() << "\n";
  for (const auto& k : rcr::kernels::standard_suite(scale)) {
    rcr::Stopwatch sw;
    (void)k.run_serial();
    const double serial_s = std::max(1e-6, sw.elapsed_seconds());

    rcr::sim::MachineModel machine;
    machine.core_gflops = k.work_ops / serial_s / 1e9;
    rcr::sim::WorkloadModel work;
    work.work_ops = k.work_ops;
    work.serial_fraction = k.serial_fraction;
    work.bytes_per_flop = k.bytes_per_flop;

    const double t1 = rcr::sim::predict_time(machine, work, 1);
    const double des1 = des_time(machine, work, 1);

    rcr::report::TextTable table(
        {"Cores", "Full model", "no-bw", "no-barrier", "DES"});
    for (std::size_t p : {4, 16, 64, 256}) {
      rcr::sim::ModelAblation no_bw;
      no_bw.include_bandwidth = false;
      rcr::sim::ModelAblation no_barrier;
      no_barrier.include_barriers = false;
      table.add_row(
          {std::to_string(p),
           rcr::format_double(t1 / rcr::sim::predict_time(machine, work, p),
                              1),
           rcr::format_double(
               t1 / rcr::sim::predict_time_ablated(machine, work, p, no_bw),
               1),
           rcr::format_double(t1 / rcr::sim::predict_time_ablated(
                                       machine, work, p, no_barrier),
                              1),
           rcr::format_double(des1 / des_time(machine, work, p), 1)});
    }
    std::cout << "kernel " << k.name << " (bytes/flop "
              << rcr::format_double(k.bytes_per_flop, 1) << ")\n"
              << table.render() << "\n";
  }
  std::cout
      << "Reading: for memory-bound kernels (spmv, stencil, reduction) the\n"
      << "no-bw column overshoots wildly — the bandwidth ceiling is the\n"
      << "load-bearing term. For compute-bound kernels all variants agree\n"
      << "with the DES, so the extra terms cost nothing when idle.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
